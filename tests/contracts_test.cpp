// Contract (precondition) tests: misuse of the public API must fail fast
// and loudly rather than corrupt a simulation.  PPK_EXPECTS aborts, so
// these are gtest death tests.

#include <gtest/gtest.h>

#include "core/kpartition.hpp"
#include "core/ratio_partition.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/population.hpp"
#include "pp/transition_table.hpp"
#include "protocols/modulo_counter.hpp"
#include "protocols/threshold.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace ppk {
namespace {

TEST(ContractsDeathTest, KPartitionRequiresKAtLeast2) {
  EXPECT_DEATH(core::KPartitionProtocol{1}, "precondition");
}

TEST(ContractsDeathTest, BasicStrategyRequiresKAtLeast3) {
  EXPECT_DEATH(core::BasicStrategyProtocol{2}, "precondition");
}

TEST(ContractsDeathTest, StateAccessorsRejectOutOfRangeIndices) {
  const core::KPartitionProtocol protocol(4);
  EXPECT_DEATH((void)protocol.g(0), "precondition");
  EXPECT_DEATH((void)protocol.g(5), "precondition");
  EXPECT_DEATH((void)protocol.m(1), "precondition");   // m starts at 2
  EXPECT_DEATH((void)protocol.d(3), "precondition");   // d ends at k-2
}

TEST(ContractsDeathTest, K2HasNoMOrDStates) {
  const core::KPartitionProtocol protocol(2);
  EXPECT_DEATH((void)protocol.m(2), "precondition");
  EXPECT_DEATH((void)protocol.d(1), "precondition");
}

TEST(ContractsDeathTest, PopulationRequiresAtLeastTwoAgents) {
  EXPECT_DEATH(pp::Population(1, 4, 0), "precondition");
}

TEST(ContractsDeathTest, PopulationRejectsBadInitialState) {
  EXPECT_DEATH(pp::Population(5, 4, 4), "precondition");
}

TEST(ContractsDeathTest, SetStateValidatesArguments) {
  pp::Population population(4, 3, 0);
  EXPECT_DEATH(population.set_state(4, 0), "precondition");
  EXPECT_DEATH(population.set_state(0, 3), "precondition");
}

TEST(ContractsDeathTest, RatioPartitionRejectsZeroEntries) {
  EXPECT_DEATH(core::RatioPartitionProtocol({2, 0, 1}), "precondition");
}

TEST(ContractsDeathTest, RingNeedsThreeAgents) {
  EXPECT_DEATH(pp::InteractionGraph::ring(2), "precondition");
}

TEST(ContractsDeathTest, ErdosRenyiRejectsNonPositiveP) {
  EXPECT_DEATH(pp::InteractionGraph::erdos_renyi(5, 0.0, 1), "precondition");
}

TEST(ContractsDeathTest, ModuloCounterRejectsDegenerateModulus) {
  EXPECT_DEATH(protocols::ModuloCounterProtocol{1}, "precondition");
}

TEST(ContractsDeathTest, ThresholdRejectsZero) {
  EXPECT_DEATH(protocols::ThresholdProtocol{0}, "precondition");
}

TEST(ContractsDeathTest, RngBelowRejectsZeroBound) {
  Xoshiro256 rng(1);
  EXPECT_DEATH((void)rng.below(0), "precondition");
}

TEST(Contracts, ValidUsesDoNotDie) {
  // The companion positive cases: boundary values that must be accepted.
  const core::KPartitionProtocol protocol(3);
  EXPECT_EQ(protocol.m(2), protocol.m(2));  // k-1 == 2: valid
  EXPECT_EQ(protocol.d(1), protocol.d(1));  // k-2 == 1: valid
  pp::Population population(2, 4, 3);
  EXPECT_EQ(population.size(), 2u);
  const core::RatioPartitionProtocol ratio({1, 1});
  EXPECT_EQ(ratio.num_groups(), 2);
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.below(1), 0u);
}

}  // namespace
}  // namespace ppk
