// Tests for the R-generalized partition extension (the [24] follow-up
// realized on top of the paper's protocol).

#include "core/ratio_partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/invariants.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::core {
namespace {

std::vector<std::uint32_t> group_sizes(const pp::Protocol& protocol,
                                       const pp::Counts& counts) {
  std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    sizes[protocol.group(s)] += counts[s];
  }
  return sizes;
}

TEST(RatioPartition, InheritsInnerProtocolStructure) {
  const RatioPartitionProtocol protocol({2, 1});
  EXPECT_EQ(protocol.num_groups(), 2);
  EXPECT_EQ(protocol.inner().k(), 3);          // K = 2 + 1 slots
  EXPECT_EQ(protocol.num_states(), 3 * 3 - 2);  // 3K - 2
  EXPECT_EQ(protocol.initial_state(), protocol.inner().initial_state());
}

TEST(RatioPartition, SlotToGroupMapFollowsRatio) {
  const RatioPartitionProtocol protocol({1, 2, 3});
  const auto& inner = protocol.inner();
  // Slots (inner groups) 0 -> group 0; 1, 2 -> group 1; 3, 4, 5 -> group 2.
  EXPECT_EQ(protocol.group(inner.g(1)), 0);
  EXPECT_EQ(protocol.group(inner.g(2)), 1);
  EXPECT_EQ(protocol.group(inner.g(3)), 1);
  EXPECT_EQ(protocol.group(inner.g(4)), 2);
  EXPECT_EQ(protocol.group(inner.g(5)), 2);
  EXPECT_EQ(protocol.group(inner.g(6)), 2);
}

TEST(RatioPartition, RemainsSymmetric) {
  const RatioPartitionProtocol protocol({3, 2});
  const pp::TransitionTable table(protocol);
  EXPECT_TRUE(table.is_symmetric());
  EXPECT_TRUE(table.is_swap_consistent());
}

TEST(RatioPartition, ConvergedSizesFollowTheRatioWithinSlotSlack) {
  const std::vector<std::uint32_t> ratio{2, 1, 1};
  const RatioPartitionProtocol protocol(ratio);
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = 42;  // K = 4 slots; 42 = 10*4 + 2
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 77);
  auto oracle = stable_pattern_oracle(protocol.inner(), n);
  ASSERT_TRUE(sim.run(*oracle, 200'000'000ULL).stabilized);

  const auto sizes = group_sizes(protocol, sim.population().counts());
  const std::uint32_t total =
      std::accumulate(ratio.begin(), ratio.end(), 0u);
  const std::uint32_t per_slot = n / total;
  for (std::size_t j = 0; j < ratio.size(); ++j) {
    EXPECT_GE(sizes[j], ratio[j] * per_slot) << "group " << j;
    EXPECT_LE(sizes[j], ratio[j] * (per_slot + 1)) << "group " << j;
  }
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), n);
}

TEST(RatioPartition, ExactWhenSumDividesN) {
  const RatioPartitionProtocol protocol({3, 1});
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = 24;  // K = 4, n/K = 6: expect sizes (18, 6)
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 99);
  auto oracle = stable_pattern_oracle(protocol.inner(), n);
  ASSERT_TRUE(sim.run(*oracle, 200'000'000ULL).stabilized);
  const auto sizes = group_sizes(protocol, sim.population().counts());
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{18, 6}));
}

TEST(RatioPartition, VerifiedUnderGlobalFairnessForSmallPopulation) {
  // Exhaustively: every globally fair execution on n = 6 stabilizes with
  // sizes following R = (2, 1) exactly (n divisible by K = 3).
  const RatioPartitionProtocol protocol({2, 1});
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = 6;
  const auto verdict = verify::verify_stabilization(
      protocol, table, initial,
      [](const pp::Counts&, const std::vector<std::uint32_t>& sizes) {
        return sizes == std::vector<std::uint32_t>{4, 2};
      });
  EXPECT_TRUE(verdict.solves) << verdict.failure;
  EXPECT_GT(verdict.reachable_configs, 0u);
}

}  // namespace
}  // namespace ppk::core
