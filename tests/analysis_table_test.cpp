#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ppk::analysis {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table table({"name", "value"});
  table.row("a", 1);
  table.row("longer", 123456);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header line, separator, two data rows.
  EXPECT_NE(text.find("  name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("123456"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: '" << line << "'";
  }
}

TEST(Table, SmallFloatsKeepThreeDecimals) {
  Table table({"rate"});
  table.row(0.523);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("0.523"), std::string::npos);
}

TEST(Table, LargeFloatsKeepOneDecimal) {
  Table table({"mean"});
  table.row(162588949.5);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("162588949.5"), std::string::npos);
}

TEST(Table, NegativeValuesFormat) {
  Table table({"delta"});
  table.row(-3.25);
  table.row(-12345.6);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("-3.250"), std::string::npos);
  EXPECT_NE(out.str().find("-12345.6"), std::string::npos);
}

TEST(Table, MixedCellTypesInOneRow) {
  Table table({"k", "name", "mean", "ok"});
  table.row(4, std::string("kpartition"), 123.45, "yes");
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("kpartition"), std::string::npos);
  EXPECT_NE(text.find("123.5"), std::string::npos);  // one decimal, rounded
}

}  // namespace
}  // namespace ppk::analysis
