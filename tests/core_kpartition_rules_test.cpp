// Pin tests for Algorithm 1: every transition rule of the paper, its
// mirror, the state encoding, and the output map.

#include "core/kpartition.hpp"

#include <gtest/gtest.h>

#include "core/bipartition.hpp"
#include "pp/transition_table.hpp"

namespace ppk::core {
namespace {

using pp::StateId;
using pp::Transition;

constexpr StateId kIni = KPartitionProtocol::kInitial;
constexpr StateId kIniP = KPartitionProtocol::kInitialPrime;

class KPartitionRules : public ::testing::Test {
 protected:
  KPartitionRules() : p_(5) {}  // k = 5: all rule families non-empty
  KPartitionProtocol p_;
};

TEST_F(KPartitionRules, StateCountIs3kMinus2) {
  for (pp::GroupId k = 2; k <= 20; ++k) {
    EXPECT_EQ(KPartitionProtocol(k).num_states(), 3 * k - 2) << "k=" << k;
  }
}

TEST_F(KPartitionRules, StateEncodingRoundTrips) {
  EXPECT_TRUE(p_.is_free(kIni));
  EXPECT_TRUE(p_.is_free(kIniP));
  for (pp::GroupId x = 1; x <= 5; ++x) {
    EXPECT_TRUE(p_.is_g(p_.g(x)));
    EXPECT_EQ(p_.index_of(p_.g(x)), x);
  }
  for (pp::GroupId i = 2; i <= 4; ++i) {
    EXPECT_TRUE(p_.is_m(p_.m(i)));
    EXPECT_EQ(p_.index_of(p_.m(i)), i);
  }
  for (pp::GroupId q = 1; q <= 3; ++q) {
    EXPECT_TRUE(p_.is_d(p_.d(q)));
    EXPECT_EQ(p_.index_of(p_.d(q)), q);
  }
}

TEST_F(KPartitionRules, OutputMapMatchesPaper) {
  // f(ini) = 1, f(gi) = i, f(mi) = i, f(di) = 1 (groups are 0-based here).
  EXPECT_EQ(p_.group(kIni), 0);
  EXPECT_EQ(p_.group(kIniP), 0);
  for (pp::GroupId x = 1; x <= 5; ++x) EXPECT_EQ(p_.group(p_.g(x)), x - 1);
  for (pp::GroupId i = 2; i <= 4; ++i) EXPECT_EQ(p_.group(p_.m(i)), i - 1);
  for (pp::GroupId q = 1; q <= 3; ++q) EXPECT_EQ(p_.group(p_.d(q)), 0);
}

TEST_F(KPartitionRules, Rule1InitialPairFlipsToPrime) {
  EXPECT_EQ(p_.delta(kIni, kIni), (Transition{kIniP, kIniP}));
}

TEST_F(KPartitionRules, Rule2PrimePairFlipsToInitial) {
  EXPECT_EQ(p_.delta(kIniP, kIniP), (Transition{kIni, kIni}));
}

TEST_F(KPartitionRules, Rule3DStateFlipsFreePartner) {
  for (pp::GroupId q = 1; q <= 3; ++q) {
    EXPECT_EQ(p_.delta(p_.d(q), kIni), (Transition{p_.d(q), kIniP}));
    EXPECT_EQ(p_.delta(p_.d(q), kIniP), (Transition{p_.d(q), kIni}));
    // Mirror orientation.
    EXPECT_EQ(p_.delta(kIni, p_.d(q)), (Transition{kIniP, p_.d(q)}));
  }
}

TEST_F(KPartitionRules, Rule4GStateFlipsFreePartner) {
  for (pp::GroupId x = 1; x <= 5; ++x) {
    EXPECT_EQ(p_.delta(p_.g(x), kIni), (Transition{p_.g(x), kIniP}));
    EXPECT_EQ(p_.delta(p_.g(x), kIniP), (Transition{p_.g(x), kIni}));
    EXPECT_EQ(p_.delta(kIniP, p_.g(x)), (Transition{kIni, p_.g(x)}));
  }
}

TEST_F(KPartitionRules, Rule5MixedFreePairStartsABuild) {
  EXPECT_EQ(p_.delta(kIni, kIniP), (Transition{p_.g(1), p_.m(2)}));
  EXPECT_EQ(p_.delta(kIniP, kIni), (Transition{p_.m(2), p_.g(1)}));
}

TEST_F(KPartitionRules, Rule5ForK2CompletesImmediately) {
  const KPartitionProtocol two(2);
  EXPECT_EQ(two.delta(kIni, kIniP), (Transition{two.g(1), two.g(2)}));
  EXPECT_EQ(two.delta(kIniP, kIni), (Transition{two.g(2), two.g(1)}));
}

TEST_F(KPartitionRules, Rule6BuilderRecruitsFreeAgents) {
  for (pp::GroupId i = 2; i <= 3; ++i) {  // 2 <= i <= k-2
    const auto next = static_cast<pp::GroupId>(i + 1);
    EXPECT_EQ(p_.delta(kIni, p_.m(i)), (Transition{p_.g(i), p_.m(next)}));
    EXPECT_EQ(p_.delta(kIniP, p_.m(i)), (Transition{p_.g(i), p_.m(next)}));
    EXPECT_EQ(p_.delta(p_.m(i), kIni), (Transition{p_.m(next), p_.g(i)}));
  }
}

TEST_F(KPartitionRules, Rule7LastBuilderCompletesTheSet) {
  EXPECT_EQ(p_.delta(kIni, p_.m(4)), (Transition{p_.g(4), p_.g(5)}));
  EXPECT_EQ(p_.delta(p_.m(4), kIniP), (Transition{p_.g(5), p_.g(4)}));
}

TEST_F(KPartitionRules, Rule8BuildersCancelIntoDemolishers) {
  for (pp::GroupId i = 2; i <= 4; ++i) {
    for (pp::GroupId j = 2; j <= 4; ++j) {
      EXPECT_EQ(p_.delta(p_.m(i), p_.m(j)),
                (Transition{p_.d(static_cast<pp::GroupId>(i - 1)),
                            p_.d(static_cast<pp::GroupId>(j - 1))}));
    }
  }
}

TEST_F(KPartitionRules, Rule9DemolisherReleasesMatchingGroupMember) {
  for (pp::GroupId i = 2; i <= 3; ++i) {  // 2 <= i <= k-2
    EXPECT_EQ(p_.delta(p_.d(i), p_.g(i)),
              (Transition{p_.d(static_cast<pp::GroupId>(i - 1)), kIni}));
    EXPECT_EQ(p_.delta(p_.g(i), p_.d(i)),
              (Transition{kIni, p_.d(static_cast<pp::GroupId>(i - 1))}));
  }
}

TEST_F(KPartitionRules, Rule10LastDemolisherReleasesBoth) {
  EXPECT_EQ(p_.delta(p_.d(1), p_.g(1)), (Transition{kIni, kIni}));
  EXPECT_EQ(p_.delta(p_.g(1), p_.d(1)), (Transition{kIni, kIni}));
}

TEST_F(KPartitionRules, DemolisherIgnoresMismatchedGroupMembers) {
  // Rule 9/10 require matching indices; (d2, g3) etc. are null.
  EXPECT_EQ(p_.delta(p_.d(2), p_.g(3)), (Transition{p_.d(2), p_.g(3)}));
  EXPECT_EQ(p_.delta(p_.d(1), p_.g(4)), (Transition{p_.d(1), p_.g(4)}));
}

TEST_F(KPartitionRules, CommittedAndIntermediatePairsAreNull) {
  EXPECT_EQ(p_.delta(p_.g(2), p_.g(3)), (Transition{p_.g(2), p_.g(3)}));
  EXPECT_EQ(p_.delta(p_.g(1), p_.g(1)), (Transition{p_.g(1), p_.g(1)}));
  EXPECT_EQ(p_.delta(p_.m(2), p_.g(4)), (Transition{p_.m(2), p_.g(4)}));
  EXPECT_EQ(p_.delta(p_.d(1), p_.d(2)), (Transition{p_.d(1), p_.d(2)}));
  EXPECT_EQ(p_.delta(p_.d(2), p_.m(3)), (Transition{p_.d(2), p_.m(3)}));
}

TEST_F(KPartitionRules, StateNamesMatchPaperNotation) {
  EXPECT_EQ(p_.state_name(kIni), "initial");
  EXPECT_EQ(p_.state_name(kIniP), "initial'");
  EXPECT_EQ(p_.state_name(p_.g(3)), "g3");
  EXPECT_EQ(p_.state_name(p_.m(2)), "m2");
  EXPECT_EQ(p_.state_name(p_.d(1)), "d1");
}

TEST_F(KPartitionRules, K2EqualsBipartitionProtocolTableForTable) {
  // Section 4: "If k = 2, the protocol is exactly the same as a uniform
  // bipartition protocol in [25]."
  const KPartitionProtocol two(2);
  const BipartitionProtocol bipartition;
  ASSERT_EQ(two.num_states(), bipartition.num_states());
  for (StateId p = 0; p < two.num_states(); ++p) {
    EXPECT_EQ(two.group(p), bipartition.group(p)) << "state " << int{p};
    for (StateId q = 0; q < two.num_states(); ++q) {
      EXPECT_EQ(two.delta(p, q), bipartition.delta(p, q))
          << "pair (" << int{p} << "," << int{q} << ")";
    }
  }
}

TEST_F(KPartitionRules, EveryRuleFamilyPresentInTransitionTable) {
  // Integration with the dense table: symmetric + swap consistent for a
  // larger k, and rule lookups go through the cache.
  const KPartitionProtocol protocol(8);
  const pp::TransitionTable table(protocol);
  EXPECT_TRUE(table.is_symmetric());
  EXPECT_TRUE(table.is_swap_consistent());
  EXPECT_TRUE(table.effective(kIni, kIni));
  EXPECT_FALSE(table.effective(protocol.g(5), protocol.g(6)));
}

TEST_F(KPartitionRules, GroupCountMatchesK) {
  for (pp::GroupId k = 2; k <= 10; ++k) {
    const KPartitionProtocol protocol(k);
    EXPECT_EQ(protocol.num_groups(), k);
    // Every group in [0, k) is hit by some g state.
    std::vector<bool> hit(k, false);
    for (pp::GroupId x = 1; x <= k; ++x) hit[protocol.group(protocol.g(x))] = true;
    for (pp::GroupId g = 0; g < k; ++g) EXPECT_TRUE(hit[g]) << "group " << g;
  }
}

}  // namespace
}  // namespace ppk::core
