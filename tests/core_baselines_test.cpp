// Tests for the comparison baselines: the recursive-bipartition
// construction (exact when k | n, documented deviation otherwise) and the
// approximate-partition reconstruction.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/approx_partition.hpp"
#include "core/recursive_bipartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::core {
namespace {

std::vector<std::uint32_t> group_sizes(const pp::Protocol& protocol,
                                       const pp::Counts& counts) {
  std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    sizes[protocol.group(s)] += counts[s];
  }
  return sizes;
}

TEST(RecursiveBipartition, StateCountIs3kMinus2) {
  for (unsigned h = 1; h <= 5; ++h) {
    const RecursiveBipartitionProtocol protocol(h);
    const unsigned k = 1u << h;
    EXPECT_EQ(protocol.num_states(), 3 * k - 2) << "h=" << h;
    EXPECT_EQ(protocol.num_groups(), k);
  }
}

TEST(RecursiveBipartition, IsSymmetricAndSwapConsistent) {
  for (unsigned h = 1; h <= 4; ++h) {
    const RecursiveBipartitionProtocol protocol(h);
    const pp::TransitionTable table(protocol);
    EXPECT_TRUE(table.is_symmetric()) << "h=" << h;
    EXPECT_TRUE(table.is_swap_consistent()) << "h=" << h;
  }
}

TEST(RecursiveBipartition, StateEncodingRoundTrips) {
  const RecursiveBipartitionProtocol protocol(3);
  // Layer 1 has one node (empty prefix), two parities.
  EXPECT_EQ(protocol.free_state(1, 0, 0), 0);
  EXPECT_EQ(protocol.free_state(1, 0, 1), 1);
  EXPECT_EQ(protocol.initial_state(), protocol.free_state(1, 0, 0));
  // Leaves occupy the tail of the id space.
  for (std::uint32_t label = 0; label < 8; ++label) {
    const pp::StateId leaf = protocol.leaf_state(label);
    EXPECT_EQ(protocol.group(leaf), label);
  }
}

TEST(RecursiveBipartition, MixedPairAtSameNodeCommits) {
  const RecursiveBipartitionProtocol protocol(2);
  const pp::StateId ini = protocol.free_state(1, 0, 0);
  const pp::StateId ini_prime = protocol.free_state(1, 0, 1);
  const pp::Transition t = protocol.delta(ini, ini_prime);
  // Parity 0 takes bit 0, parity 1 takes bit 1; both descend to layer 2.
  EXPECT_EQ(t.initiator, protocol.free_state(2, 0, 0));
  EXPECT_EQ(t.responder, protocol.free_state(2, 1, 0));
}

TEST(RecursiveBipartition, FinalLayerCommitProducesLeaves) {
  const RecursiveBipartitionProtocol protocol(1);
  const pp::Transition t =
      protocol.delta(protocol.free_state(1, 0, 0), protocol.free_state(1, 0, 1));
  EXPECT_EQ(t.initiator, protocol.leaf_state(0));
  EXPECT_EQ(t.responder, protocol.leaf_state(1));
}

TEST(RecursiveBipartition, SamePairFlipsParity) {
  const RecursiveBipartitionProtocol protocol(2);
  const pp::StateId ini = protocol.free_state(1, 0, 0);
  const pp::Transition t = protocol.delta(ini, ini);
  EXPECT_EQ(t.initiator, protocol.free_state(1, 0, 1));
  EXPECT_EQ(t.responder, protocol.free_state(1, 0, 1));
}

TEST(RecursiveBipartition, FreeAgentFlipsAgainstCommittedPartner) {
  const RecursiveBipartitionProtocol protocol(2);
  const pp::StateId ini = protocol.free_state(1, 0, 0);
  const pp::StateId leaf = protocol.leaf_state(2);
  const pp::Transition t = protocol.delta(ini, leaf);
  EXPECT_EQ(t.initiator, protocol.free_state(1, 0, 1));
  EXPECT_EQ(t.responder, leaf);
}

TEST(RecursiveBipartition, LeafPairsAreNull) {
  const RecursiveBipartitionProtocol protocol(2);
  const pp::StateId a = protocol.leaf_state(0);
  const pp::StateId b = protocol.leaf_state(3);
  EXPECT_EQ(protocol.delta(a, b), (pp::Transition{a, b}));
}

TEST(RecursiveBipartition, ExactlyUniformWhenKDividesN) {
  for (unsigned h : {1u, 2u, 3u}) {
    const RecursiveBipartitionProtocol protocol(h);
    const pp::TransitionTable table(protocol);
    const std::uint32_t k = 1u << h;
    const std::uint32_t n = k * 5;
    pp::Population population(n, protocol.num_states(),
                              protocol.initial_state());
    pp::AgentSimulator sim(table, std::move(population), 21);
    pp::SilenceOracle oracle(table);  // all-leaves is silent
    const pp::SimResult result = sim.run(oracle, 200'000'000ULL);
    ASSERT_TRUE(result.stabilized) << "h=" << h;
    const auto sizes = group_sizes(protocol, sim.population().counts());
    for (auto size : sizes) EXPECT_EQ(size, 5u) << "h=" << h;
  }
}

TEST(RecursiveBipartition, DeviatesForNNotDivisibleByK) {
  // The documented limitation: strandings compound, so for some n the
  // spread exceeds 1 (here k = 4, n = 7 as worked out in the header).
  // Deviation depends on which nodes strand, so check over several seeds
  // that at least one run exceeds a spread of 1 -- under a correct uniform
  // partitioner *no* run may exceed 1.
  const RecursiveBipartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  bool saw_violation = false;
  for (std::uint64_t seed = 0; seed < 10 && !saw_violation; ++seed) {
    pp::Population population(7, protocol.num_states(),
                              protocol.initial_state());
    pp::AgentSimulator sim(table, std::move(population), seed);
    // Stragglers keep flipping forever, so run a fixed budget and inspect.
    pp::NeverStableOracle oracle;
    sim.run(oracle, 200'000);
    const auto sizes = group_sizes(protocol, sim.population().counts());
    std::uint32_t lo = *std::min_element(sizes.begin(), sizes.end());
    std::uint32_t hi = *std::max_element(sizes.begin(), sizes.end());
    if (hi - lo > 1) saw_violation = true;
  }
  EXPECT_TRUE(saw_violation);
}

TEST(RecursiveBipartition, ExhaustivelyVerifiedWhenKDividesN) {
  // Model-checked, not sampled: every globally fair execution on n = 8,
  // k = 4 stabilizes to a uniform partition (all splits are even).
  const RecursiveBipartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, 8);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(RecursiveBipartition, ExhaustivelyRefutedWhenKDoesNotDivideN) {
  // ...and for n = 7 some fair execution strands agents across layers and
  // stabilizes with a spread of 2 -- the intro's reason the paper's
  // protocol exists, as a formal counterexample rather than a sample.
  const RecursiveBipartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, 7);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
}

TEST(ApproxPartition, StateCountMatchesFormula) {
  for (pp::GroupId k : {pp::GroupId{2}, pp::GroupId{3}, pp::GroupId{4},
                        pp::GroupId{6}, pp::GroupId{8}, pp::GroupId{16}}) {
    const ApproxPartitionProtocol protocol(k);
    unsigned levels = 1;
    while ((1u << (levels - 1)) < static_cast<unsigned>(k)) ++levels;
    EXPECT_EQ(protocol.num_states(), k * levels) << "k=" << int{k};
  }
}

TEST(ApproxPartition, SplitRuleMovesHalfToSibling) {
  const ApproxPartitionProtocol protocol(4);  // L = 2
  const pp::StateId s = protocol.state(0, 1);
  const pp::Transition t = protocol.delta(s, s);
  EXPECT_EQ(t.initiator, protocol.state(0, 2));
  EXPECT_EQ(t.responder, protocol.state(1, 2));
}

TEST(ApproxPartition, OverflowSplitsKeepGroup) {
  const ApproxPartitionProtocol protocol(3);  // L = 2; group 2 + 2 > k-1
  const pp::StateId s = protocol.state(2, 2);
  const pp::Transition t = protocol.delta(s, s);
  EXPECT_EQ(t.initiator, protocol.state(2, 3));
  EXPECT_EQ(t.responder, protocol.state(2, 3));
}

TEST(ApproxPartition, IsDeliberatelyAsymmetric) {
  const ApproxPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  EXPECT_FALSE(table.is_symmetric());
}

TEST(ApproxPartition, AllGroupsGetAtLeastNOver2kAgents) {
  // The quoted [14] guarantee, checked empirically on a comfortable n.
  for (pp::GroupId k : {pp::GroupId{3}, pp::GroupId{4}, pp::GroupId{6},
                        pp::GroupId{8}}) {
    const ApproxPartitionProtocol protocol(k);
    const pp::TransitionTable table(protocol);
    const std::uint32_t n = 64u * k;
    pp::Population population(n, protocol.num_states(),
                              protocol.initial_state());
    pp::AgentSimulator sim(table, std::move(population), 5);
    pp::SilenceOracle oracle(table);
    const pp::SimResult result = sim.run(oracle, 200'000'000ULL);
    ASSERT_TRUE(result.stabilized) << "k=" << int{k};
    const auto sizes = group_sizes(protocol, sim.population().counts());
    for (pp::GroupId g = 0; g < k; ++g) {
      EXPECT_GE(sizes[g], n / (2u * k)) << "k=" << int{k} << " group "
                                        << int{g};
    }
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), n);
  }
}

TEST(ApproxPartition, TerminalConfigurationHasNoSplittablePairs) {
  const ApproxPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Population population(40, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 9);
  pp::SilenceOracle oracle(table);
  ASSERT_TRUE(sim.run(oracle, 100'000'000ULL).stabilized);
  const auto& counts = sim.population().counts();
  // At most one agent per splittable (non-final-level) state.
  for (pp::GroupId g = 0; g < 4; ++g) {
    for (unsigned level = 1; level < protocol.num_levels(); ++level) {
      EXPECT_LE(counts[protocol.state(g, level)], 1u);
    }
  }
}

}  // namespace
}  // namespace ppk::core
