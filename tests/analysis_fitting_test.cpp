#include "analysis/fitting.hpp"

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"

namespace ppk::analysis {
namespace {

TEST(LinearFit, RecoversExactLine) {
  const auto fit = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyDataHasLowerRSquared) {
  const auto fit = fit_linear({1, 2, 3, 4, 5}, {2, 5, 3, 9, 6});
  EXPECT_GT(fit.r_squared, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(PowerLawFit, RecoversExactPowerLaw) {
  // y = 3 x^2
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v * v);
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(ExponentialFit, RecoversExactExponential) {
  // y = 5 * 1.5^x
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(5.0 * std::pow(1.5, v));
  const auto fit = fit_exponential(x, y);
  EXPECT_NEAR(fit.ratio, 1.5, 1e-10);
  EXPECT_NEAR(fit.coefficient, 5.0, 1e-9);
}

TEST(PowerLawFit, DistinguishesPowerFromExponential) {
  // Exponential data fits the exponential model perfectly and the power
  // model imperfectly; vice versa for power-law data.
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> exponential_y;
  std::vector<double> power_y;
  for (double v : x) {
    exponential_y.push_back(2.0 * std::pow(2.0, v));
    power_y.push_back(2.0 * std::pow(v, 2.0));
  }
  EXPECT_GT(fit_exponential(x, exponential_y).r_squared,
            fit_power_law(x, exponential_y).r_squared);
  EXPECT_GT(fit_power_law(x, power_y).r_squared,
            fit_exponential(x, power_y).r_squared);
}

TEST(Fitting, KPartitionNScalingIsSuperlinearSubexponential) {
  // The paper's Fig. 5 claim, quantified on real (small-scale) data: the
  // fitted power-law exponent in n lies strictly between 1 and 3, and the
  // power-law model beats the exponential model on log-log axes.
  ExperimentOptions options;
  options.trials = 30;
  std::vector<double> x;
  std::vector<double> y;
  for (std::uint32_t n : {24u, 48u, 96u, 192u}) {
    const auto r = measure_kpartition(3, n, options);
    x.push_back(n);
    y.push_back(r.interactions.mean);
  }
  const auto power = fit_power_law(x, y);
  EXPECT_GT(power.exponent, 1.0);
  EXPECT_LT(power.exponent, 3.0);
  EXPECT_GT(power.r_squared, 0.9);
  EXPECT_GT(power.r_squared, fit_exponential(x, y).r_squared);
}

TEST(Fitting, KPartitionKScalingIsExponential) {
  // The paper's Fig. 6 claim, quantified: at fixed n, the exponential
  // model fits the k-sweep better than the power law.
  ExperimentOptions options;
  options.trials = 20;
  std::vector<double> x;
  std::vector<double> y;
  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}, ppk::pp::GroupId{6}, ppk::pp::GroupId{8}, ppk::pp::GroupId{12}}) {
    const auto r = measure_kpartition(k, 120, options);
    x.push_back(k);
    y.push_back(r.interactions.mean);
  }
  const auto exponential = fit_exponential(x, y);
  EXPECT_GT(exponential.ratio, 1.2);
  EXPECT_GT(exponential.r_squared, 0.85);
}

}  // namespace
}  // namespace ppk::analysis
