// Validation of the skip-ahead engine against the exact engines: identical
// stabilization statistics, exact final patterns, and the promised speedup
// regime (effective interactions decoupled from total interactions).

#include "pp/jump_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"
#include "verify/markov.hpp"

namespace ppk::pp {
namespace {

Counts all_initial(const Protocol& protocol, std::uint32_t n) {
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

TEST(JumpSimulator, ReachesTheExactStablePattern) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  for (std::uint32_t n : {9u, 13u, 16u, 40u}) {
    JumpSimulator sim(table, all_initial(protocol, n), n);
    auto oracle = core::stable_pattern_oracle(protocol, n);
    const SimResult result = sim.run(*oracle);
    ASSERT_TRUE(result.stabilized) << "n=" << n;
    EXPECT_TRUE(core::matches_stable_pattern(protocol, n, sim.counts()));
  }
}

TEST(JumpSimulator, StopsCleanlyOnSilentConfigurations) {
  // One leader: no effective pair exists; step() must return false and a
  // run with an unsatisfiable oracle must terminate rather than spin.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  JumpSimulator sim(table, Counts{1, 5}, 3);
  NeverStableOracle oracle;
  const SimResult result = sim.run(oracle, 1'000'000);
  EXPECT_FALSE(result.stabilized);
  EXPECT_EQ(result.effective, 0u);
  EXPECT_EQ(sim.effective_weight(), 0u);
}

TEST(JumpSimulator, EffectiveInteractionsMatchAgentEngineExactly) {
  // Leader election performs exactly n - 1 effective interactions in any
  // execution; the jump engine must agree.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  JumpSimulator sim(table, all_initial(protocol, 30), 7);
  SilenceOracle oracle(table);
  const SimResult result = sim.run(oracle);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.effective, 29u);
  EXPECT_EQ(sim.counts()[protocols::LeaderElectionProtocol::kLeader], 1u);
}

TEST(JumpSimulator, MeanInteractionsMatchTheExactExpectation) {
  // The interaction counter includes the geometrically skipped nulls, so
  // its mean must match the exact Markov expectation like the other
  // engines' do.  Leader election has the closed form (n-1)^2.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  const std::uint32_t n = 10;
  constexpr int kTrials = 3000;
  double total = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    JumpSimulator sim(table, all_initial(protocol, n),
                      derive_stream_seed(5, static_cast<std::uint64_t>(trial)));
    SilenceOracle oracle(table);
    total += static_cast<double>(sim.run(oracle).interactions);
  }
  const double mean = total / kTrials;
  const double exact = (n - 1.0) * (n - 1.0);  // 81
  // stddev of a single run is ~60 here; 3000 trials -> sem ~1.1.
  EXPECT_NEAR(mean, exact, 4.0);
}

TEST(JumpSimulator, AgreesWithAgentEngineOnKPartition) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 15;
  constexpr int kTrials = 80;

  double jump_mean = 0.0;
  double agent_mean = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      JumpSimulator sim(table, all_initial(protocol, n),
                        derive_stream_seed(1, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      jump_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
    {
      AgentSimulator sim(table,
                         Population(n, protocol.num_states(),
                                    protocol.initial_state()),
                         derive_stream_seed(2, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      agent_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
  }
  jump_mean /= kTrials;
  agent_mean /= kTrials;
  EXPECT_LT(std::abs(jump_mean - agent_mean) / agent_mean, 0.30)
      << "jump=" << jump_mean << " agent=" << agent_mean;
}

TEST(JumpSimulator, EffectiveWeightTracksConfiguration) {
  // From all-initial, every ordered pair is effective (rule 1), so the
  // weight starts at n(n-1); it must stay consistent with a from-scratch
  // rebuild after arbitrary steps.
  const core::KPartitionProtocol protocol(5);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  JumpSimulator sim(table, all_initial(protocol, n), 9);
  EXPECT_EQ(sim.effective_weight(), static_cast<std::uint64_t>(n) * (n - 1));

  NeverStableOracle oracle;
  for (int i = 0; i < 200; ++i) {
    if (!sim.step(oracle)) break;
    // Recompute the weight from the counts and compare.
    std::uint64_t expected = 0;
    const auto& counts = sim.counts();
    for (StateId p = 0; p < protocol.num_states(); ++p) {
      for (StateId q = 0; q < protocol.num_states(); ++q) {
        if (!table.effective(p, q) || counts[p] == 0) continue;
        const std::uint64_t cq = counts[q] - (p == q ? 1u : 0u);
        if (counts[q] == 0 || (p == q && counts[q] == 1)) continue;
        expected += static_cast<std::uint64_t>(counts[p]) * cq;
      }
    }
    ASSERT_EQ(sim.effective_weight(), expected) << "after step " << i;
  }
}

TEST(JumpSimulator, InteractionBudgetIsNeverOvershot) {
  // Regression: run/resume used to let the final geometric null skip sail
  // past the budget, overshooting by up to one skip length (huge near
  // silence).  The skip now clamps at the boundary -- exact by the
  // memorylessness of the geometric -- so a non-stabilizing run lands on
  // the budget to the interaction.  n = 49 = 1 (mod 3) keeps one free
  // agent at stability, so the configuration never goes silent and every
  // budget must be spent exactly.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  for (const std::uint64_t budget : {1ULL, 2ULL, 500ULL, 44'444ULL}) {
    JumpSimulator sim(table, all_initial(protocol, 49), 17);
    NeverStableOracle oracle;
    const SimResult result = sim.run(oracle, budget);
    EXPECT_EQ(result.interactions, budget);
    EXPECT_EQ(sim.interactions(), budget);
  }
}

TEST(JumpSimulator, SparseConfigurationBudgetIsExact) {
  // The skip clamp matters most when p_eff is tiny: two leaders among many
  // followers make nearly every interaction null, so each geometric skip
  // dwarfs small budgets.  The counter must still stop exactly on budget.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  for (const std::uint64_t budget : {1ULL, 10ULL, 1'000ULL}) {
    JumpSimulator sim(table, Counts{2, 998}, 21);
    NeverStableOracle oracle;
    const SimResult result = sim.run(oracle, budget);
    EXPECT_EQ(result.interactions, budget);
    // With p_eff = 2/(1000*999), a 1000-interaction budget almost surely
    // ends inside a null run: no effective interaction was applied.
    EXPECT_LE(result.effective, 1u);
  }
}

TEST(JumpSimulator, ChunkedResumeMatchesSingleRunBudget) {
  // Splitting one budget across resume() grants must consume exactly the
  // same total, chunk boundaries landing mid-skip included.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  JumpSimulator sim(table, all_initial(protocol, 49), 31);
  NeverStableOracle oracle;
  oracle.reset(sim.counts());
  std::uint64_t total = 0;
  for (const std::uint64_t grant : {7ULL, 1ULL, 250ULL, 3'000ULL}) {
    const SimResult r = sim.resume(oracle, grant);
    EXPECT_EQ(r.interactions, grant);
    total += r.interactions;
  }
  EXPECT_EQ(sim.interactions(), total);
}

TEST(JumpSimulator, WatchMarksRecordStateEntries) {
  // Leader election: followers only ever increase, one per effective
  // interaction, so watching kFollower must mark exactly n - 1 entries at
  // strictly increasing interaction indices.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  JumpSimulator sim(table, all_initial(protocol, 20), 13);
  std::vector<std::uint64_t> marks;
  sim.set_watch(protocols::LeaderElectionProtocol::kFollower, &marks);
  SilenceOracle oracle(table);
  const SimResult result = sim.run(oracle);
  ASSERT_TRUE(result.stabilized);
  ASSERT_EQ(marks.size(), 19u);
  for (std::size_t i = 1; i < marks.size(); ++i) {
    EXPECT_GT(marks[i], marks[i - 1]);
  }
  EXPECT_LE(marks.back(), result.interactions);
}

TEST(JumpSimulator, InteractionCounterIsMonotoneAndSkipsAreCounted) {
  const core::KPartitionProtocol protocol(6);
  const TransitionTable table(protocol);
  JumpSimulator sim(table, all_initial(protocol, 60), 4);
  auto oracle = core::stable_pattern_oracle(protocol, 60);
  const SimResult result = sim.run(*oracle);
  ASSERT_TRUE(result.stabilized);
  // Total interactions must exceed effective ones: nulls were skipped but
  // still counted.
  EXPECT_GT(result.interactions, result.effective);
}

}  // namespace
}  // namespace ppk::pp
