#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ppk {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for_index(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for_index(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ExceptionFromTaskIsRethrownOnWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace ppk
