#include "core/graph_bipartition.hpp"

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"

namespace ppk::core {
namespace {

using G = GraphBipartitionProtocol;

TEST(GraphBipartition, RulesAndOutputs) {
  const G protocol;
  EXPECT_EQ(protocol.num_states(), 5);
  EXPECT_EQ(protocol.num_groups(), 2);
  // Colours: r-side group 0, b-side group 1; the signal flag never changes
  // the output.
  EXPECT_EQ(protocol.group(G::kR), 0);
  EXPECT_EQ(protocol.group(G::kRSig), 0);
  EXPECT_EQ(protocol.group(G::kB), 1);
  EXPECT_EQ(protocol.group(G::kBSig), 1);
  // Pair.
  const auto pair = protocol.delta(G::kInitial, G::kInitial);
  EXPECT_EQ(pair.initiator, G::kR);
  EXPECT_EQ(pair.responder, G::kB);
  // Deposit: the initial settles red and parks a signal on the neighbour.
  const auto deposit = protocol.delta(G::kInitial, G::kB);
  EXPECT_EQ(deposit.initiator, G::kR);
  EXPECT_EQ(deposit.responder, G::kBSig);
  // Clear: a signal pays for a blue settlement.
  const auto clear = protocol.delta(G::kInitial, G::kRSig);
  EXPECT_EQ(clear.initiator, G::kB);
  EXPECT_EQ(clear.responder, G::kR);
  // Hop preserves both hosts' colours (mirror orientation too).
  const auto hop = protocol.delta(G::kRSig, G::kB);
  EXPECT_EQ(hop.initiator, G::kR);
  EXPECT_EQ(hop.responder, G::kBSig);
  const auto hop_mirror = protocol.delta(G::kB, G::kRSig);
  EXPECT_EQ(hop_mirror.initiator, G::kBSig);
  EXPECT_EQ(hop_mirror.responder, G::kR);
  // Cancel flips a red host; two blue-hosted signals have no red to flip.
  const auto cancel = protocol.delta(G::kRSig, G::kBSig);
  EXPECT_EQ(cancel.initiator, G::kB);
  EXPECT_EQ(cancel.responder, G::kB);
  const auto blue_blue = protocol.delta(G::kBSig, G::kBSig);
  EXPECT_EQ(blue_blue.initiator, G::kBSig);
  EXPECT_EQ(blue_blue.responder, G::kBSig);

  const pp::TransitionTable table(protocol);
  EXPECT_FALSE(table.is_symmetric());  // (initial, initial) -> (r, b)
  // The asymmetric pairing diagonal means the ordered realization is not
  // swap-consistent (same situation as leader election); every off-diagonal
  // rule is mirrored explicitly.
  EXPECT_FALSE(table.is_swap_consistent());
}

TEST(GraphBipartition, OracleRequiresExactSignalParity) {
  const G protocol;
  // Even n: no signals may remain.  Odd n: exactly one.
  const auto even = graph_bipartition_stable_oracle(protocol, 6);
  pp::Counts counts(protocol.num_states(), 0);
  counts[G::kR] = 3;
  counts[G::kB] = 3;
  even->reset(counts);
  EXPECT_TRUE(even->stable());
  counts[G::kR] = 2;
  counts[G::kRSig] = 1;
  even->reset(counts);
  EXPECT_FALSE(even->stable());

  const auto odd = graph_bipartition_stable_oracle(protocol, 7);
  pp::Counts odd_counts(protocol.num_states(), 0);
  odd_counts[G::kR] = 3;
  odd_counts[G::kB] = 3;
  odd_counts[G::kBSig] = 1;
  odd->reset(odd_counts);
  EXPECT_TRUE(odd->stable());
  odd_counts[G::kInitial] = 1;
  odd_counts[G::kB] = 2;
  odd->reset(odd_counts);
  EXPECT_FALSE(odd->stable());
}

TEST(GraphBipartition, StabilizesUniformOnCompleteGraph) {
  const G protocol;
  const pp::TransitionTable table(protocol);
  for (const std::uint32_t n : {2u, 7u, 24u, 101u}) {
    pp::AgentSimulator sim(
        table,
        pp::Population(n, protocol.num_states(), protocol.initial_state()),
        1234 + n);
    const auto oracle = graph_bipartition_stable_oracle(protocol, n);
    ASSERT_TRUE(sim.run(*oracle, 100'000'000ULL).stabilized) << "n=" << n;
    const auto sizes = sim.population().group_sizes(protocol);
    EXPECT_TRUE(pp::is_uniform_partition(sizes)) << "n=" << n;
  }
}

TEST(GraphBipartition, LiveEdgeEngineRunsSparseTopologies) {
  // The arbitrary-graph protocol on the engine it was built for: the
  // live-edge kGraphJump engine (kAuto resolves to it when a topology
  // factory is set).  Ring, star and path must all stabilize to a uniform
  // split; the count-pattern oracle is exact on every topology.
  const G protocol;
  const pp::TransitionTable table(protocol);
  const auto run_on = [&](auto factory, std::uint32_t n, const char* what) {
    pp::MonteCarloOptions options;
    options.trials = 6;
    options.master_seed = 99;
    options.engine = pp::Engine::kAuto;
    options.graph = [factory, n](std::uint64_t) { return factory(n); };
    const auto result = pp::run_monte_carlo(
        protocol, table, n,
        [&] { return graph_bipartition_stable_oracle(protocol, n); },
        options);
    EXPECT_EQ(result.stabilized_count(), options.trials)
        << what << " n=" << n;
  };
  run_on(pp::InteractionGraph::ring, 64, "ring");
  run_on(pp::InteractionGraph::star, 33, "star");
  run_on(pp::InteractionGraph::path, 17, "path");
}

TEST(GraphBipartition, FairnessAndTopologyAxesCompose) {
  // epsilon-fair scheduling restricted to a ring: the adversarial engine
  // consumes both options at once.
  const G protocol;
  const pp::TransitionTable table(protocol);
  pp::MonteCarloOptions options;
  options.trials = 4;
  options.master_seed = 7;
  options.engine = pp::Engine::kAuto;
  options.fairness = pp::FairnessSpec::epsilon_fair(0.25);
  options.graph = [](std::uint64_t) { return pp::InteractionGraph::ring(12); };
  const auto result = pp::run_monte_carlo(
      protocol, table, 12,
      [&] { return graph_bipartition_stable_oracle(protocol, 12); }, options);
  EXPECT_EQ(result.stabilized_count(), options.trials);
}

}  // namespace
}  // namespace ppk::core
