// The SIMD dispatch contract (util/simd.hpp): every kernel's scalar and
// AVX2 implementations must produce identical results, bit for bit, for
// every input -- that identity is what lets engines pinned by bit-exact
// conformance nets dispatch vector kernels at runtime.  These tests fuzz
// both implementations against each other directly (through the detail
// kernel tables, so they run meaningfully even when only one dispatch is
// available), pin the dispatch hooks, and check the blocked hypergeometric
// sampler (util/block_sampler.hpp) against the reference inversion sampler
// it reimplements, plus the shared log-factorial table it feeds on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"
#include "util/block_sampler.hpp"
#include "util/log_fact.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace ppk {
namespace {

// ---------------------------------------------------------------------------
// Dispatch hooks

TEST(SimdDispatch, ActiveNameMatchesEnabledFlag) {
  EXPECT_STREQ(simd::active_name(),
               simd::enabled() ? "avx2" : "scalar");
}

TEST(SimdDispatch, SetEnabledForcesScalarAndRestores) {
  const bool was = simd::enabled();
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
  EXPECT_STREQ(simd::active_name(), "scalar");
  simd::set_enabled(true);
  // Re-enabling selects AVX2 iff the build and CPU carry it.
  EXPECT_EQ(simd::enabled(), simd::avx2_supported());
  simd::set_enabled(was);
}

TEST(SimdDispatch, EnableWithoutSupportIsANoOp) {
  if (simd::avx2_supported()) GTEST_SKIP() << "machine has AVX2";
  simd::set_enabled(true);
  EXPECT_FALSE(simd::enabled());
}

// ---------------------------------------------------------------------------
// Integer kernels: scalar vs AVX2 on random padded cell lists

struct CellFixture {
  AlignedVector<std::uint32_t> counts;
  AlignedVector<std::uint32_t> fresh;
  AlignedVector<std::int32_t> cell_p;
  AlignedVector<std::int32_t> cell_q;
  AlignedVector<std::uint32_t> diag;
  std::size_t m = 0;         // padded cell count (multiple of 8)
  std::size_t d_padded = 0;  // padded state count (multiple of 8)
};

/// Random states/cells with the engine's invariants: the last counts slot
/// is a zero sentinel, padding cells index it, fresh <= counts pointwise.
CellFixture random_fixture(Xoshiro256& rng, std::size_t num_states,
                           std::size_t num_cells) {
  CellFixture f;
  f.d_padded = (num_states + 1 + 7) / 8 * 8;
  f.m = (num_cells + 7) / 8 * 8;
  f.counts.assign(f.d_padded, 0);
  f.fresh.assign(f.d_padded, 0);
  for (std::size_t s = 0; s < num_states; ++s) {
    f.counts[s] = static_cast<std::uint32_t>(rng.below(50'000));
    f.fresh[s] = static_cast<std::uint32_t>(rng.below(f.counts[s] + 1));
  }
  const auto sentinel = static_cast<std::int32_t>(num_states);
  f.cell_p.assign(f.m, sentinel);
  f.cell_q.assign(f.m, sentinel);
  f.diag.assign(f.m, 0);
  for (std::size_t i = 0; i < num_cells; ++i) {
    const auto p = static_cast<std::int32_t>(rng.below(num_states));
    const auto q = static_cast<std::int32_t>(rng.below(num_states));
    f.cell_p[i] = p;
    f.cell_q[i] = q;
    f.diag[i] = p == q ? 1u : 0u;
  }
  return f;
}

TEST(SimdKernels, PairWeightTotalMatchesScalarOnRandomInputs) {
  const simd::detail::Kernels* avx2 = simd::detail::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 kernels in this build";
  const simd::detail::Kernels& scalar = simd::detail::scalar_kernels();
  Xoshiro256 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const std::size_t states = 2 + rng.below(120);
    const CellFixture f = random_fixture(rng, states, 1 + rng.below(200));
    EXPECT_EQ(scalar.pair_weight_total(f.counts.data(), f.cell_p.data(),
                                       f.cell_q.data(), f.diag.data(), f.m),
              avx2->pair_weight_total(f.counts.data(), f.cell_p.data(),
                                      f.cell_q.data(), f.diag.data(), f.m));
  }
}

TEST(SimdKernels, PairWeightPickMatchesScalarForEveryDrawPosition) {
  const simd::detail::Kernels* avx2 = simd::detail::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 kernels in this build";
  const simd::detail::Kernels& scalar = simd::detail::scalar_kernels();
  Xoshiro256 rng(77);
  for (int round = 0; round < 60; ++round) {
    const CellFixture f = random_fixture(rng, 2 + rng.below(40),
                                         1 + rng.below(60));
    const std::uint64_t total =
        scalar.pair_weight_total(f.counts.data(), f.cell_p.data(),
                                 f.cell_q.data(), f.diag.data(), f.m);
    if (total == 0) continue;
    // Boundary draws (first/last of each cell) are where an off-by-one in
    // the block-skipping pick would hide; probe them plus random interiors.
    std::vector<std::uint64_t> draws = {0, total - 1, total / 2};
    for (int extra = 0; extra < 40; ++extra) draws.push_back(rng.below(total));
    for (const std::uint64_t u : draws) {
      EXPECT_EQ(scalar.pair_weight_pick(f.counts.data(), f.cell_p.data(),
                                        f.cell_q.data(), f.diag.data(), f.m,
                                        u),
                avx2->pair_weight_pick(f.counts.data(), f.cell_p.data(),
                                       f.cell_q.data(), f.diag.data(), f.m,
                                       u))
          << "u=" << u;
    }
  }
}

TEST(SimdKernels, CollisionRowTotalMatchesScalarOnRandomInputs) {
  const simd::detail::Kernels* avx2 = simd::detail::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 kernels in this build";
  const simd::detail::Kernels& scalar = simd::detail::scalar_kernels();
  Xoshiro256 rng(555);
  for (int round = 0; round < 200; ++round) {
    const std::size_t states = 2 + rng.below(100);
    const CellFixture f = random_fixture(rng, states, 8);
    for (std::uint32_t s1 = 0; s1 < states; ++s1) {
      EXPECT_EQ(scalar.collision_row_total(f.counts.data(), f.fresh.data(),
                                           f.d_padded, s1),
                avx2->collision_row_total(f.counts.data(), f.fresh.data(),
                                          f.d_padded, s1))
          << "s1=" << s1;
    }
  }
}

TEST(SimdKernels, AddI64MatchesScalar) {
  const simd::detail::Kernels* avx2 = simd::detail::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 kernels in this build";
  const simd::detail::Kernels& scalar = simd::detail::scalar_kernels();
  Xoshiro256 rng(9);
  for (int round = 0; round < 50; ++round) {
    const std::size_t m = (1 + rng.below(64)) * 8;
    AlignedVector<std::int64_t> src(m), a(m), b(m);
    for (std::size_t i = 0; i < m; ++i) {
      src[i] = static_cast<std::int64_t>(rng()) >> 16;
      a[i] = static_cast<std::int64_t>(rng()) >> 16;
      b[i] = a[i];
    }
    scalar.add_i64(a.data(), src.data(), m);
    avx2->add_i64(b.data(), src.data(), m);
    EXPECT_EQ(std::vector<std::int64_t>(a.begin(), a.end()),
              std::vector<std::int64_t>(b.begin(), b.end()));
  }
}

// ---------------------------------------------------------------------------
// The floating-point kernel: identity must hold to the last bit

TEST(SimdKernels, HyperBlock4IsBitIdenticalAcrossDispatch) {
  const simd::detail::Kernels* avx2 = simd::detail::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 kernels in this build";
  const simd::detail::Kernels& scalar = simd::detail::scalar_kernels();
  Xoshiro256 rng(31337);
  for (int round = 0; round < 5000; ++round) {
    // Ratios in the ranges the blocked walk actually produces: products of
    // two counts in [1, n], so magnitudes up to ~1e18, plus 1.0 padding.
    double num[4];
    double den[4];
    for (int j = 0; j < 4; ++j) {
      num[j] = rng.below(4) == 0
                   ? 1.0
                   : static_cast<double>(1 + rng.below(1'000'000'000)) *
                         static_cast<double>(1 + rng.below(1'000'000'000));
      den[j] = static_cast<double>(1 + rng.below(1'000'000'000)) *
               static_cast<double>(1 + rng.below(1'000'000'000));
    }
    const double pmf_in = std::exp(-static_cast<double>(rng.below(700)));
    double out_scalar[4];
    double out_avx2[4];
    scalar.hyper_block4(num, den, pmf_in, out_scalar);
    avx2->hyper_block4(num, den, pmf_in, out_avx2);
    for (int j = 0; j < 4; ++j) {
      // Bit equality, not approximate equality: the dispatch contract.
      EXPECT_EQ(out_scalar[j], out_avx2[j]) << "lane " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked hypergeometric sampler vs the reference inversion sampler

TEST(BlockSampler, AgreesWithReferenceSamplerInLaw) {
  // Both samplers walk the same pmf from the same mode, but consume their
  // uniform differently, so they only agree in law.  Chi-squared-free
  // check: compare empirical means and supports over many draws.
  Xoshiro256 rng_a(4242);
  Xoshiro256 rng_b(171717);
  const LogFact lf(1'000'000);
  const std::uint64_t total = 1'000'000;
  const std::uint64_t marked = 300'000;
  const std::uint64_t m = 50'000;
  const double expected_mean = static_cast<double>(marked) *
                               static_cast<double>(m) /
                               static_cast<double>(total);
  double sum_blocked = 0.0;
  double sum_ref = 0.0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t x = hypergeometric_blocked(rng_a, total, marked, m, lf);
    EXPECT_LE(x, m);
    sum_blocked += static_cast<double>(x);
    sum_ref += static_cast<double>(rng_b.hypergeometric(
        total, marked, m, [&lf](double v) { return lf(v); }));
  }
  // stddev of one draw ~= 112; the mean of 4000 draws has SE ~= 1.8, so a
  // +-9 window is a 5-sigma net against distribution-level breakage.
  EXPECT_NEAR(sum_blocked / draws, expected_mean, 9.0);
  EXPECT_NEAR(sum_ref / draws, expected_mean, 9.0);
}

TEST(BlockSampler, EarlyOutsConsumeNoRandomness) {
  // The sharded engine's empty-shard determinism rides on trivial draws
  // consuming NO uniforms: a shard with nothing to match must leave its
  // stream untouched regardless of dispatch or thread count.
  const LogFact lf(1024);
  for (const auto [total, marked, m, expect] :
       {std::array<std::uint64_t, 4>{100, 0, 10, 0},
        std::array<std::uint64_t, 4>{100, 40, 0, 0},
        std::array<std::uint64_t, 4>{100, 100, 17, 17},
        std::array<std::uint64_t, 4>{100, 23, 100, 23}}) {
    Xoshiro256 rng(7);
    Xoshiro256 untouched(7);
    EXPECT_EQ(hypergeometric_blocked(rng, total, marked, m, lf), expect);
    EXPECT_EQ(rng(), untouched());
  }
}

TEST(BlockSampler, DeterministicAcrossDispatch) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "machine lacks AVX2";
  const LogFact lf(1'000'000);
  std::vector<std::uint64_t> with_avx2;
  std::vector<std::uint64_t> with_scalar;
  for (const bool use_avx2 : {true, false}) {
    simd::set_enabled(use_avx2);
    Xoshiro256 rng(99);
    auto& out = use_avx2 ? with_avx2 : with_scalar;
    for (int i = 0; i < 500; ++i) {
      out.push_back(
          hypergeometric_blocked(rng, 1'000'000, 250'000, 60'000, lf));
    }
  }
  simd::set_enabled(true);
  EXPECT_EQ(with_avx2, with_scalar);
}

// ---------------------------------------------------------------------------
// The shared log-factorial table

TEST(LogFactTable, SharedSingletonReusesOneAllocation) {
  const auto a = LogFactTable::shared(1000);
  const auto b = LogFactTable::shared(500);
  // A second request within an already-built prefix returns the same block.
  EXPECT_EQ(a.get(), b.get());
  const auto c = LogFactTable::shared(2000);
  EXPECT_GE(c->size(), 2001u);
}

TEST(LogFactTable, ValuesMatchLgamma) {
  const LogFact lf(100'000);
  for (const std::uint64_t x : {0ULL, 1ULL, 2ULL, 17ULL, 999ULL, 100'000ULL}) {
    EXPECT_EQ(lf(static_cast<double>(x)),
              std::lgamma(static_cast<double>(x) + 1.0));
  }
}

TEST(LogFactTable, StirlingTailIsAccurateBeyondTheTable) {
  // Past the table bound the tail must agree with lgamma to ~1e-12
  // relative -- the pmf walk only needs the *mode's* log-pmf once per draw,
  // and mode-relative ratios are exact, so this tolerance is conservative.
  for (const double x : {1.5e6, 1e7, 5e8, 1e9}) {
    const double exact = std::lgamma(x + 1.0);
    EXPECT_NEAR(log_fact_tail(x) / exact, 1.0, 1e-12) << "x=" << x;
  }
}

}  // namespace
}  // namespace ppk
