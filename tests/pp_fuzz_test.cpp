// Property-based tests over *randomly generated* protocols: the substrate
// must behave correctly for any well-formed transition function, not just
// the hand-written ones in this repo.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recovery.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/faults.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

/// A deterministic random protocol: every ordered pair's successor is an
/// independent uniform draw (seeded), with some pairs forced to null to
/// keep the dynamics interesting.  Symmetric-ness is not enforced -- the
/// table's checker is itself under test elsewhere.
class RandomProtocol final : public Protocol {
 public:
  RandomProtocol(StateId num_states, std::uint64_t seed, double null_fraction)
      : num_states_(num_states) {
    Xoshiro256 rng(seed);
    table_.resize(static_cast<std::size_t>(num_states) * num_states);
    for (StateId p = 0; p < num_states; ++p) {
      for (StateId q = 0; q < num_states; ++q) {
        Transition t{p, q};
        if (rng.uniform01() >= null_fraction) {
          t.initiator = static_cast<StateId>(rng.below(num_states));
          t.responder = static_cast<StateId>(rng.below(num_states));
        }
        table_[static_cast<std::size_t>(p) * num_states + q] = t;
      }
    }
  }

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] StateId num_states() const override { return num_states_; }
  [[nodiscard]] StateId initial_state() const override { return 0; }
  [[nodiscard]] Transition delta(StateId p, StateId q) const override {
    return table_[static_cast<std::size_t>(p) * num_states_ + q];
  }
  [[nodiscard]] GroupId group(StateId s) const override { return s; }
  [[nodiscard]] GroupId num_groups() const override { return num_states_; }

 private:
  StateId num_states_;
  std::vector<Transition> table_;
};

class FuzzedProtocols : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzedProtocols, AgentEngineConservesPopulation) {
  const RandomProtocol protocol(6, GetParam(), 0.3);
  const TransitionTable table(protocol);
  Population population(25, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), GetParam() ^ 0xF00D);
  NeverStableOracle oracle;
  sim.run(oracle, 20'000);
  const auto& counts = sim.population().counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 25u);
  // Agent-array and count vector stay mutually consistent.
  Counts recount(protocol.num_states(), 0);
  for (std::uint32_t a = 0; a < 25; ++a) {
    ++recount[sim.population().state_of(a)];
  }
  EXPECT_EQ(recount, counts);
}

TEST_P(FuzzedProtocols, EnginesVisitTheSameStateDistribution) {
  // Run both engines for a fixed horizon many times and compare the mean
  // count of every state.  Identical interaction distributions must give
  // matching expectations; a systematic bias in either sampler shows up
  // immediately.
  const RandomProtocol protocol(5, GetParam(), 0.4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  constexpr int kTrials = 300;
  constexpr std::uint64_t kHorizon = 200;

  std::vector<double> agent_mean(protocol.num_states(), 0.0);
  std::vector<double> count_mean(protocol.num_states(), 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      Population population(n, protocol.num_states(),
                            protocol.initial_state());
      AgentSimulator sim(
          table, std::move(population),
          derive_stream_seed(GetParam(), static_cast<std::uint64_t>(trial)));
      NeverStableOracle oracle;
      sim.run(oracle, kHorizon);
      for (StateId s = 0; s < protocol.num_states(); ++s) {
        agent_mean[s] += sim.population().counts()[s];
      }
    }
    {
      Counts initial(protocol.num_states(), 0);
      initial[protocol.initial_state()] = n;
      CountSimulator sim(
          table, initial,
          derive_stream_seed(GetParam() + 1, static_cast<std::uint64_t>(trial)));
      NeverStableOracle oracle;
      sim.run(oracle, kHorizon);
      for (StateId s = 0; s < protocol.num_states(); ++s) {
        count_mean[s] += sim.counts()[s];
      }
    }
  }
  for (StateId s = 0; s < protocol.num_states(); ++s) {
    agent_mean[s] /= kTrials;
    count_mean[s] /= kTrials;
    // Mean state occupancies out of n = 12 agents.  Sampling stderr at
    // 300 trials is ~0.35 agents; 1.5 is >4 sigma (no flakes across the
    // seed grid) yet tight enough to catch an off-by-one in the pair
    // sampler, which shifts occupancies by O(1).
    EXPECT_NEAR(agent_mean[s], count_mean[s], 1.5)
        << "state " << int{s} << " seed " << GetParam();
  }
}

TEST_P(FuzzedProtocols, TableEffectiveFlagsMatchDeltas) {
  const RandomProtocol protocol(7, GetParam(), 0.5);
  const TransitionTable table(protocol);
  for (StateId p = 0; p < protocol.num_states(); ++p) {
    for (StateId q = 0; q < protocol.num_states(); ++q) {
      const Transition t = protocol.delta(p, q);
      EXPECT_EQ(table.effective(p, q), t.initiator != p || t.responder != q);
    }
  }
}

TEST_P(FuzzedProtocols, ReplayMatchesStepByStepApplication) {
  const RandomProtocol protocol(4, GetParam(), 0.2);
  const TransitionTable table(protocol);
  const std::uint32_t n = 8;

  // Generate a schedule, replay it, and verify against a hand-rolled
  // reference interpreter over plain vectors.
  Xoshiro256 rng(GetParam() ^ 0xBEEF);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> schedule;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n - 1));
    if (b >= a) ++b;
    schedule.emplace_back(a, b);
  }

  Population population(n, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), 1);
  sim.replay(schedule);

  std::vector<StateId> reference(n, protocol.initial_state());
  for (const auto& [i, j] : schedule) {
    const Transition t = protocol.delta(reference[i], reference[j]);
    reference[i] = t.initiator;
    reference[j] = t.responder;
  }
  for (std::uint32_t a = 0; a < n; ++a) {
    EXPECT_EQ(sim.population().state_of(a), reference[a]) << "agent " << a;
  }
}

TEST_P(FuzzedProtocols, ChurnEngineStaysConsistentUnderRandomFaults) {
  // Same property as AgentEngineConservesPopulation, but with a randomized
  // fault schedule mutating the population mid-run: the agent array, the
  // count vector, and the sleep bookkeeping must stay mutually consistent.
  const RandomProtocol protocol(6, GetParam(), 0.3);
  const TransitionTable table(protocol);
  ChurnSimulator sim(table, Population(25, protocol.num_states(), 0),
                     GetParam() ^ 0xF00D);
  FaultRates rates;
  rates.crash = 3e-3;
  rates.join = 3e-3;
  rates.corrupt = 2e-3;
  rates.sleep = 1e-3;
  rates.sleep_duration = 1'000;
  sim.set_schedule(make_fault_schedule(rates, 20'000, GetParam() ^ 0xCAFE));
  NeverStableOracle oracle;
  sim.run(oracle, 20'000);

  const auto& counts = sim.population().counts();
  Counts recount(protocol.num_states(), 0);
  for (std::uint32_t a = 0; a < sim.population().size(); ++a) {
    ++recount[sim.population().state_of(a)];
  }
  EXPECT_EQ(recount, counts);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u),
            sim.population().size());
}

TEST_P(FuzzedProtocols, RandomFaultsPlusRecoveryRestoreUniformPartition) {
  // The robustness claim, fuzzed: any mix of crashes, joins, corruption and
  // stuck agents followed by the recovery layer must leave the survivors in
  // a uniform partition (spread <= 1) with an intact Lemma 1 invariant.
  const auto k = static_cast<GroupId>(3 + GetParam() % 3);  // k in 3..5
  const auto n = static_cast<std::uint32_t>(12 + GetParam() % 19);
  const core::SelfHealingKPartitionProtocol protocol(k);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(n, protocol.num_states(), protocol.initial_state()),
      GetParam() ^ 0xFA17);
  FaultRates rates;
  rates.crash = 5e-4;
  rates.join = 5e-4;
  rates.corrupt = 3e-4;
  rates.sleep = 3e-4;
  rates.sleep_duration = 2'000;
  sim.set_schedule(
      make_fault_schedule(rates, 20'000, GetParam() ^ 0x5EED));
  core::RecoveryManager manager(protocol, sim);
  const SimResult result = sim.run(manager.oracle(), 30'000'000);

  ASSERT_TRUE(result.stabilized) << "k=" << int{k} << " n=" << n;
  Counts base_counts(protocol.base().num_states(), 0);
  for (StateId s = 0; s < sim.population().counts().size(); ++s) {
    base_counts[protocol.base_of(s)] += sim.population().counts()[s];
  }
  EXPECT_TRUE(core::lemma1_holds(protocol.base(), base_counts));
  std::uint32_t lo = sim.population().size(), hi = 0;
  for (GroupId x = 1; x <= k; ++x) {
    const std::uint32_t size = base_counts[protocol.base().g(x)];
    lo = std::min(lo, size);
    hi = std::max(hi, size);
  }
  EXPECT_LE(hi - lo, 1u) << "k=" << int{k} << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedProtocols,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                           21ull, 34ull),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace ppk::pp
