#include "core/weak_kpartition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/invariants.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"

namespace ppk::core {
namespace {

TEST(WeakKPartition, StateLayoutAndNames) {
  const WeakKPartitionProtocol protocol(3);
  EXPECT_EQ(protocol.num_states(), 10);  // 3k + 1
  EXPECT_EQ(protocol.num_groups(), 3);
  EXPECT_EQ(protocol.initial_state(), WeakKPartitionProtocol::kInitial);
  EXPECT_EQ(protocol.state_name(WeakKPartitionProtocol::kInitial), "initial");
  EXPECT_EQ(protocol.state_name(WeakKPartitionProtocol::kReleased),
            "released");
  EXPECT_EQ(protocol.state_name(protocol.g(2)), "g2");
  EXPECT_EQ(protocol.state_name(protocol.b(3)), "b3");
  EXPECT_EQ(protocol.state_name(protocol.d(1)), "d1");
  // All state ids distinct and in range.
  std::set<pp::StateId> seen;
  seen.insert(WeakKPartitionProtocol::kInitial);
  seen.insert(WeakKPartitionProtocol::kReleased);
  for (pp::GroupId x = 1; x <= 3; ++x) {
    seen.insert(protocol.g(x));
    seen.insert(protocol.b(x));
    if (x <= 2) seen.insert(protocol.d(x));
  }
  EXPECT_EQ(seen.size(), 10u);
  // Outputs: committed members and builders carry their index's group;
  // free agents and demolishers are parked in group 1.
  EXPECT_EQ(protocol.group(protocol.g(2)), 1);
  EXPECT_EQ(protocol.group(protocol.b(3)), 2);
  EXPECT_EQ(protocol.group(WeakKPartitionProtocol::kInitial), 0);
  EXPECT_EQ(protocol.group(protocol.d(2)), 0);
}

TEST(WeakKPartition, CoreRules) {
  const WeakKPartitionProtocol protocol(3);
  // Bootstrap is asymmetric on the diagonal: initiator commits, responder
  // builds.
  const auto boot = protocol.delta(WeakKPartitionProtocol::kInitial,
                                   WeakKPartitionProtocol::kInitial);
  EXPECT_EQ(boot.initiator, protocol.g(1));
  EXPECT_EQ(boot.responder, protocol.b(2));
  // The builder assigns its current group and advances cyclically...
  const auto assign =
      protocol.delta(protocol.b(3), WeakKPartitionProtocol::kInitial);
  EXPECT_EQ(assign.initiator, protocol.b(1));  // wraps k -> 1
  EXPECT_EQ(assign.responder, protocol.g(3));
  // ...in either orientation (swap consistency), and released agents are
  // assignable too.
  const auto mirrored =
      protocol.delta(WeakKPartitionProtocol::kReleased, protocol.b(2));
  EXPECT_EQ(mirrored.initiator, protocol.g(2));
  EXPECT_EQ(mirrored.responder, protocol.b(3));
  // Builder merge: the initiator survives; the loser demolishes its lap.
  const auto merge = protocol.delta(protocol.b(2), protocol.b(3));
  EXPECT_EQ(merge.initiator, protocol.b(2));
  EXPECT_EQ(merge.responder, protocol.d(2));
  // A loser with an empty lap retires directly.
  const auto retire = protocol.delta(protocol.b(2), protocol.b(1));
  EXPECT_EQ(retire.responder, WeakKPartitionProtocol::kReleased);
  // Demolition steps down and frees exactly one member per level.
  const auto demolish = protocol.delta(protocol.d(2), protocol.g(2));
  EXPECT_EQ(demolish.initiator, protocol.d(1));
  EXPECT_EQ(demolish.responder, WeakKPartitionProtocol::kReleased);
  const auto finish = protocol.delta(protocol.d(1), protocol.g(1));
  EXPECT_EQ(finish.initiator, WeakKPartitionProtocol::kReleased);
  EXPECT_EQ(finish.responder, WeakKPartitionProtocol::kReleased);
  // A demolisher ignores other groups' members.
  const auto null = protocol.delta(protocol.d(1), protocol.g(2));
  EXPECT_EQ(null.initiator, protocol.d(1));
  EXPECT_EQ(null.responder, protocol.g(2));
}

TEST(WeakKPartition, AsymmetricDiagonalButSwapConsistent) {
  for (const pp::GroupId k : {pp::GroupId{2}, pp::GroupId{4}}) {
    const WeakKPartitionProtocol protocol(k);
    const pp::TransitionTable table(protocol);
    // Rule 1 breaks the diagonal tie by role -- that is how the protocol
    // escapes the symmetric flip livelock under weak fairness.  Like
    // leader election, the asymmetric diagonal means the ordered rule set
    // cannot be read as unordered rules.
    EXPECT_FALSE(table.is_symmetric());
    EXPECT_FALSE(table.is_swap_consistent());
    // Asymmetric diagonals: bootstrap (two initials) plus builder merge at
    // every index (two same-index builders -> one survives, one demolishes).
    std::set<pp::StateId> expected{WeakKPartitionProtocol::kInitial};
    for (pp::GroupId p = 1; p <= k; ++p) expected.insert(protocol.b(p));
    const auto& diag = table.asymmetric_diagonal_states();
    EXPECT_EQ(std::set<pp::StateId>(diag.begin(), diag.end()), expected);
  }
}

TEST(WeakKPartition, EverySilentConfigurationReachedIsUniform) {
  // Silence is the stopping rule: every execution runs out of effective
  // interactions (initials never regenerate, merges strictly shrink the
  // builder population, demolitions strictly shrink debt), and the silent
  // configuration must be a uniform partition.  Exercise a grid of (n, k)
  // under the uniform-random scheduler.
  for (const pp::GroupId k : {pp::GroupId{2}, pp::GroupId{3}, pp::GroupId{5}}) {
    const WeakKPartitionProtocol protocol(k);
    const pp::TransitionTable table(protocol);
    for (const std::uint32_t n : {2u, 5u, 16u, 33u}) {
      pp::AgentSimulator sim(
          table,
          pp::Population(n, protocol.num_states(), protocol.initial_state()),
          0xC0FFEE + n + k);
      pp::SilenceOracle oracle(table);
      const auto result = sim.run(oracle, 100'000'000ULL);
      ASSERT_TRUE(result.stabilized) << "k=" << k << " n=" << n;
      EXPECT_TRUE(
          pp::is_uniform_partition(sim.population().group_sizes(protocol)))
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(WeakKPartition, MonteCarloFairnessAxisRoutesToWeakScheduler) {
  // End-to-end through run_monte_carlo: a FairnessSpec in the options is
  // all it takes to run trials under the weak-round-robin adversary.
  const WeakKPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  pp::MonteCarloOptions options;
  options.trials = 8;
  options.master_seed = 42;
  options.engine = pp::Engine::kAuto;
  options.fairness = pp::FairnessSpec::weak_round_robin();
  const auto result = pp::run_monte_carlo(
      protocol, table, 12,
      [&] { return std::make_unique<pp::SilenceOracle>(table); }, options);
  EXPECT_EQ(result.stabilized_count(), options.trials);
  for (const auto& trial : result.trials) {
    EXPECT_GT(trial.effective, 0u);
  }
}

}  // namespace
}  // namespace ppk::core
