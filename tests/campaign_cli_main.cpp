// Crash-safe campaign driver: the scripts/test_crash_resume.py workhorse
// and a minimal command-line front end for core/campaign.hpp.
//
//   campaign_cli --trials 24 --n 48 --k 3 --checkpoint ckpt.json
//       --out report.json
//
// Runs (or resumes) a checkpointed Monte-Carlo campaign of the k-partition
// protocol and writes a deterministic JSON report of every trial verdict
// plus the merged observability metrics.  The report depends only on the
// campaign configuration -- never on thread count, kill/resume history, or
// wall-clock -- which is exactly what the crash-resume integration test
// byte-compares.
//
// Exit codes: 0 = campaign complete, 3 = partial (interrupted or past the
// campaign deadline; rerun with the same flags to continue), 2 = refused
// (bad flags or a checkpoint written by a different configuration).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "io/atomic_file.hpp"
#include "io/json.hpp"
#include "pp/interaction_graph.hpp"
#include "util/cli.hpp"

namespace {

// Latched by the SIGINT handler; the campaign polls it at chunk
// boundaries and winds down gracefully (checkpointing in-flight trials).
std::atomic<bool> g_interrupted{false};

bool engine_from_name(const std::string& name, ppk::pp::Engine* out) {
  if (name == "auto") *out = ppk::pp::Engine::kAuto;
  else if (name == "agent") *out = ppk::pp::Engine::kAgentArray;
  else if (name == "count") *out = ppk::pp::Engine::kCountVector;
  else if (name == "jump") *out = ppk::pp::Engine::kJump;
  else if (name == "batch") *out = ppk::pp::Engine::kBatch;
  else if (name == "graph") *out = ppk::pp::Engine::kGraph;
  else if (name == "graph-jump") *out = ppk::pp::Engine::kGraphJump;
  else return false;
  return true;
}

void write_report(ppk::io::JsonWriter& json,
                  const ppk::core::CampaignResult& result) {
  json.begin_object();
  json.member("schema", "ppk-campaign-report-v1");
  json.member("complete", result.complete);
  json.key("trials");
  json.begin_array();
  for (const ppk::core::CampaignTrial& t : result.trials) {
    json.begin_object();
    json.member("interactions", t.result.interactions);
    json.member("effective", t.result.effective);
    json.member("stabilized", t.result.stabilized);
    json.member("timed_out", t.result.timed_out);
    json.member("stalled", t.result.stalled);
    json.member("failed", t.failed);
    json.member("censored", t.censored);
    json.member("retries", t.retries);
    json.key("watch_marks");
    json.begin_array();
    for (const std::uint64_t mark : t.result.watch_marks) json.value(mark);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("metrics");
  result.metrics.write_json(json);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("campaign_cli",
               "Checkpointed, supervised Monte-Carlo campaign of the "
               "k-partition protocol (core/campaign.hpp).");
  auto trials = cli.flag<int>("trials", 16, "number of trials");
  auto seed = cli.flag<long long>("seed", 0x5EED, "master RNG seed");
  auto n_flag = cli.flag<int>("n", 48, "population size");
  auto k_flag = cli.flag<int>("k", 3, "number of groups");
  auto engine = cli.flag<std::string>(
      "engine", "auto",
      "auto|agent|count|jump|batch|graph|graph-jump (graph engines run on "
      "a ring)");
  auto threads = cli.flag<int>("threads", 1,
                               "worker threads (0 = one per core)");
  auto budget = cli.flag<long long>("budget", 2'000'000,
                                    "interaction budget per attempt");
  auto chunk = cli.flag<long long>("chunk", 4096,
                                   "interactions granted per chunk");
  auto checkpoint_every = cli.flag<int>(
      "checkpoint-every", 4, "checkpoint cadence, in progress events");
  auto checkpoint = cli.flag<std::string>(
      "checkpoint", "", "checkpoint file (empty = no checkpointing)");
  auto retries = cli.flag<int>("retries", 0, "retry budget per trial");
  auto backoff = cli.flag<double>(
      "backoff", 2.0, "interaction-budget multiplier per retry");
  auto trial_deadline = cli.flag<double>(
      "trial-deadline", 0.0, "per-attempt wall-clock deadline in seconds "
                             "(0 = none)");
  auto deadline = cli.flag<double>(
      "deadline", 0.0, "campaign wall-clock deadline in seconds (0 = none)");
  auto out = cli.flag<std::string>("out", "",
                                   "write the JSON report here (atomic)");
  cli.parse(argc, argv);

  ppk::core::CampaignOptions options;
  if (!engine_from_name(*engine, &options.mc.engine)) {
    std::fprintf(stderr, "unknown engine '%s'\n", engine->c_str());
    return 2;
  }
  const auto n = static_cast<std::uint32_t>(*n_flag);
  options.mc.trials = static_cast<std::uint32_t>(*trials);
  options.mc.master_seed = static_cast<std::uint64_t>(*seed);
  options.mc.max_interactions = static_cast<std::uint64_t>(*budget);
  options.mc.threads = static_cast<std::size_t>(*threads);
  if (options.mc.engine == ppk::pp::Engine::kGraph ||
      options.mc.engine == ppk::pp::Engine::kGraphJump) {
    options.mc.graph = [n](std::uint64_t) {
      return ppk::pp::InteractionGraph::ring(n);
    };
  }
  options.checkpoint_path = *checkpoint;
  options.chunk_interactions = static_cast<std::uint64_t>(*chunk);
  options.checkpoint_every_chunks =
      static_cast<std::uint32_t>(*checkpoint_every);
  options.max_retries = static_cast<std::uint32_t>(*retries);
  options.retry_backoff = *backoff;
  if (*trial_deadline > 0.0) options.trial_deadline_seconds = *trial_deadline;
  if (*deadline > 0.0) options.campaign_deadline_seconds = *deadline;
  std::signal(SIGINT, [](int) { g_interrupted.store(true); });
  options.stop = &g_interrupted;

  const ppk::core::KPartitionProtocol protocol(
      static_cast<ppk::pp::GroupId>(*k_flag));
  const ppk::pp::TransitionTable table(protocol);
  const ppk::core::CampaignResult result = ppk::core::run_campaign(
      protocol, table, n,
      [&] { return ppk::core::stable_pattern_oracle(protocol, n); }, options);

  if (!result.error.empty()) {
    std::fprintf(stderr, "campaign refused: %s\n", result.error.c_str());
    return 2;
  }

  std::printf("campaign: %u trial(s), %u completed, %u retried, %u failed, "
              "%u censored%s%s\n",
              options.mc.trials, result.completed_count(),
              result.retried_count(), result.failed_count(),
              result.censored_count(), result.resumed ? ", resumed" : "",
              result.complete ? "" : ", PARTIAL");

  if (!out->empty()) {
    ppk::io::AtomicFileWriter file(*out);
    ppk::io::JsonWriter json(file.stream());
    write_report(json, result);
    file.stream() << '\n';
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 2;
    }
    std::printf("report written to %s\n", out->c_str());
  }
  return result.complete ? 0 : 3;
}
