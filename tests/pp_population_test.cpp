#include "pp/population.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/kpartition.hpp"

namespace ppk::pp {
namespace {

Counts counts_from_states(const Population& population, StateId num_states) {
  Counts counts(num_states, 0);
  for (std::uint32_t a = 0; a < population.size(); ++a) {
    ++counts[population.state_of(a)];
  }
  return counts;
}

TEST(Population, UniformInitialConfiguration) {
  Population population(10, 5, 2);
  EXPECT_EQ(population.size(), 10u);
  for (std::uint32_t a = 0; a < 10; ++a) {
    EXPECT_EQ(population.state_of(a), 2);
  }
  EXPECT_EQ(population.counts(), (Counts{0, 0, 10, 0, 0}));
}

TEST(Population, ExplicitInitialCounts) {
  Population population(Counts{3, 0, 2});
  EXPECT_EQ(population.size(), 5u);
  EXPECT_EQ(population.counts(), (Counts{3, 0, 2}));
  EXPECT_EQ(counts_from_states(population, 3), population.counts());
}

TEST(Population, ApplyKeepsCountsConsistent) {
  Population population(6, 4, 0);
  population.apply(0, 1, Transition{1, 2});
  EXPECT_EQ(population.state_of(0), 1);
  EXPECT_EQ(population.state_of(1), 2);
  EXPECT_EQ(population.counts(), (Counts{4, 1, 1, 0}));
  EXPECT_EQ(counts_from_states(population, 4), population.counts());
}

TEST(Population, ApplySelfTransitionIsIdempotentOnCounts) {
  Population population(4, 3, 1);
  population.apply(2, 3, Transition{1, 1});  // null in effect
  EXPECT_EQ(population.counts(), (Counts{0, 4, 0}));
}

TEST(Population, SetStateAdjustsCounts) {
  Population population(5, 3, 0);
  population.set_state(4, 2);
  EXPECT_EQ(population.counts(), (Counts{4, 0, 1}));
  EXPECT_EQ(population.state_of(4), 2);
}

TEST(Population, GroupSizesUseOutputMap) {
  const core::KPartitionProtocol protocol(3);  // 7 states
  Population population(7, protocol.num_states(), protocol.initial_state());
  // Move one agent to g2 and one to d1 (d maps to group 1).
  population.set_state(0, protocol.g(2));
  population.set_state(1, protocol.d(1));
  const auto sizes = population.group_sizes(protocol);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 6u);  // 5 free + 1 d1
  EXPECT_EQ(sizes[1], 1u);  // the g2 agent
  EXPECT_EQ(sizes[2], 0u);
}

TEST(Population, CountsSumToPopulationSize) {
  Population population(Counts{1, 2, 3, 4});
  const auto& counts = population.counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u),
            population.size());
}

TEST(IsUniformPartition, AcceptsDifferencesUpToOne) {
  EXPECT_TRUE(is_uniform_partition({3, 3, 3}));
  EXPECT_TRUE(is_uniform_partition({4, 3, 4}));
  EXPECT_TRUE(is_uniform_partition({1}));
  EXPECT_TRUE(is_uniform_partition({}));
}

TEST(IsUniformPartition, RejectsLargerSpread) {
  EXPECT_FALSE(is_uniform_partition({5, 3, 4}));
  EXPECT_FALSE(is_uniform_partition({0, 2}));
  EXPECT_FALSE(is_uniform_partition({4, 4, 4, 0}));
}

}  // namespace
}  // namespace ppk::pp
