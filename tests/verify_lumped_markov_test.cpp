// Tests of the symmetry-lumped exact Markov analysis
// (verify/lumped_markov.hpp) and its wiring through MarkovAnalysis:
//
//  * dense/lumped agreement -- both back ends must reproduce the same
//    hitting times and absorption mass to <= 1e-9 relative error at every
//    size the dense path can reach, for the k-partition, weak-k-partition
//    and bipartition families;
//  * rejection of a symmetry declaration that is not one;
//  * the ceiling claim -- for each family, a size where the dense path
//    refuses (recoverably) and the lumped path answers;
//  * exact hand-computed pins of the hitting-time CDF.

#include "verify/lumped_markov.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/symmetry.hpp"
#include "pp/transition_table.hpp"
#include "verify/markov.hpp"

namespace ppk::verify {
namespace {

pp::Counts initial_counts(const pp::Protocol& protocol, std::uint32_t n) {
  pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

/// Silence with respect to `table`: no present ordered pair is effective.
ConfigPredicate silence_predicate(const pp::TransitionTable& table) {
  return [&table](const pp::Counts& counts) {
    for (std::size_t p = 0; p < counts.size(); ++p) {
      if (counts[p] == 0) continue;
      for (std::size_t q = 0; q < counts.size(); ++q) {
        if (counts[q] == 0) continue;
        if (p == q && counts[p] < 2) continue;
        if (table.effective(static_cast<pp::StateId>(p),
                            static_cast<pp::StateId>(q))) {
          return false;
        }
      }
    }
    return true;
  };
}

/// Builds both back ends over the same chain and requires their hitting
/// time and their absorption mass on `target` to agree to 1e-9 relative.
void expect_backends_agree(const pp::Protocol& protocol,
                           const pp::TransitionTable& table, std::uint32_t n,
                           const ConfigPredicate& target,
                           const std::string& label) {
  const pp::Counts initial = initial_counts(protocol, n);

  MarkovOptions dense_options;
  dense_options.method = MarkovMethod::kDense;
  const MarkovAnalysis dense(table, initial, dense_options);
  ASSERT_EQ(dense.method(), MarkovMethod::kDense) << label;

  MarkovOptions lumped_options;
  lumped_options.symmetry = protocol.symmetry();
  const MarkovAnalysis lumped(table, initial, std::move(lumped_options));
  ASSERT_EQ(lumped.method(), MarkovMethod::kLumped) << label;

  const std::optional<double> dense_time = dense.expected_hitting_time(target);
  const std::optional<double> lumped_time =
      lumped.expected_hitting_time(target);
  ASSERT_EQ(dense_time.has_value(), lumped_time.has_value()) << label;
  if (dense_time.has_value()) {
    EXPECT_NEAR(*lumped_time / *dense_time, 1.0, 1e-9)
        << label << ": dense=" << *dense_time << " lumped=" << *lumped_time;
  }

  // Bottom-SCC identities differ across back ends (the lumped quotient
  // merges symmetric bottoms), so compare the symmetry-invariant summary:
  // total mass and the mass absorbed on target-satisfying bottoms.
  double dense_total = 0.0;
  double dense_on_target = 0.0;
  for (const auto& a : dense.absorption_probabilities()) {
    dense_total += a.probability;
    if (target(a.representative)) dense_on_target += a.probability;
  }
  double lumped_total = 0.0;
  double lumped_on_target = 0.0;
  for (const auto& a : lumped.absorption_probabilities()) {
    lumped_total += a.probability;
    if (target(a.representative)) lumped_on_target += a.probability;
  }
  EXPECT_NEAR(dense_total, 1.0, 1e-9) << label;
  EXPECT_NEAR(lumped_total, 1.0, 1e-9) << label;
  EXPECT_NEAR(lumped_on_target, dense_on_target, 1e-9) << label;
}

// ---------------------------------------------------------------------------
// Dense/lumped agreement at every size the dense path reaches

TEST(LumpedMarkov, AgreesWithDenseForKPartition) {
  struct Case {
    pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c : {Case{2, 4}, Case{2, 6}, Case{2, 9}, Case{3, 6},
                        Case{3, 7}, Case{4, 8}}) {
    const core::KPartitionProtocol protocol(c.k);
    const pp::TransitionTable table(protocol);
    expect_backends_agree(
        protocol, table, c.n,
        [&](const pp::Counts& config) {
          return core::matches_stable_pattern(protocol, c.n, config);
        },
        "kpartition k=" + std::to_string(c.k) + " n=" + std::to_string(c.n));
  }
}

TEST(LumpedMarkov, AgreesWithDenseForWeakKPartition) {
  // Trivial symmetry group: the lumped back end degenerates to the sparse
  // solver over the raw chain, which must still match dense elimination.
  for (std::uint32_t n : {4u, 5u, 6u}) {
    const core::WeakKPartitionProtocol protocol(2);
    const pp::TransitionTable table(protocol);
    expect_backends_agree(protocol, table, n, silence_predicate(table),
                          "weak-kpartition k=2 n=" + std::to_string(n));
  }
}

TEST(LumpedMarkov, AgreesWithDenseForBipartition) {
  // The order-4 group (free-flip x group-swap) -- the strongest lumping
  // this repo declares.
  for (std::uint32_t n : {3u, 4u, 6u, 7u, 8u}) {
    const core::BipartitionProtocol protocol;
    const pp::TransitionTable table(protocol);
    const auto free_agents = [](const pp::Counts& config) {
      return config[core::BipartitionProtocol::kInitial] +
             config[core::BipartitionProtocol::kInitialPrime];
    };
    expect_backends_agree(
        protocol, table, n,
        [&, n](const pp::Counts& config) {
          return free_agents(config) == n % 2 &&
                 config[core::BipartitionProtocol::kG1] +
                         config[core::BipartitionProtocol::kG2] ==
                     n - n % 2;
        },
        "bipartition n=" + std::to_string(n));
  }
}

// ---------------------------------------------------------------------------
// Exact hand pins (bipartition, n = 3)
//
// From (3 initial): every pair fires rule 1, so A=(3,0,0,0) -> B=(1,2,0,0)
// with probability 1.  From B the six ordered draws split 2:4 between
// (initial',initial') -> A and the pairing rule -> C=(0,1,1,1), which is
// the stable pattern (one parked free agent).  Hence T = 2k with
// P(T=2k) = (2/3)(1/3)^(k-1):  E[T] = 3 exactly, F[2] = 2/3, F[4] = 8/9.

TEST(LumpedMarkov, BipartitionHandComputedPinsAreExact) {
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const pp::Counts initial = initial_counts(protocol, 3);
  const ConfigPredicate target = [](const pp::Counts& config) {
    return config[core::BipartitionProtocol::kG1] == 1 &&
           config[core::BipartitionProtocol::kG2] == 1;
  };

  std::string why;
  const auto lumped = LumpedMarkovAnalysis::try_build(
      table, protocol.symmetry(), initial, {}, &why);
  ASSERT_TRUE(lumped.has_value()) << why;

  const auto expected = lumped->expected_hitting_time(target);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(*expected, 3.0, 1e-12);

  const std::vector<double> cdf = lumped->hitting_time_cdf(target, 200);
  ASSERT_EQ(cdf.size(), 201u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.0);
  EXPECT_NEAR(cdf[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cdf[3], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cdf[4], 8.0 / 9.0, 1e-12);
  // Monotone, converging to 1.
  for (std::size_t t = 1; t < cdf.size(); ++t) {
    EXPECT_GE(cdf[t], cdf[t - 1]) << "t=" << t;
  }
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
  // E[T] = sum_t P(T > t): the CDF and the hitting-time solve must tell
  // the same story.
  double tail_sum = 0.0;
  for (const double f : cdf) tail_sum += 1.0 - f;
  EXPECT_NEAR(tail_sum, 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Symmetry-declaration hygiene

TEST(LumpedMarkov, RejectsADeclaredSymmetryThatIsNotOne) {
  // g1 <-> g2 alone is NOT a symmetry of the k = 3 protocol (rules 5-7
  // name explicit group indices): try_build must refuse with a reason, not
  // silently lump a non-lumpable partition.
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const pp::SymmetrySpec bogus{
      protocol.num_states(),
      {pp::transposition(protocol.num_states(), protocol.g(1),
                         protocol.g(2))}};
  std::string why;
  const auto lumped = LumpedMarkovAnalysis::try_build(
      table, bogus, initial_counts(protocol, 6), {}, &why);
  EXPECT_FALSE(lumped.has_value());
  EXPECT_FALSE(why.empty());
}

TEST(LumpedMarkov, OrbitCapIsARecoverableError) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  LumpedOptions options;
  options.max_orbits = 4;
  std::string why;
  const auto lumped = LumpedMarkovAnalysis::try_build(
      table, protocol.symmetry(), initial_counts(protocol, 8), options, &why);
  EXPECT_FALSE(lumped.has_value());
  EXPECT_NE(why.find("orbit"), std::string::npos) << why;
}

// ---------------------------------------------------------------------------
// The ceiling claim: beyond the dense path's reach, per family

/// Smallest n in [lo, hi] whose reachable configuration count exceeds the
/// dense back end's 3000-unknown cap (0 if none): the dense hitting-time
/// query must throw there, and the lumped one must answer.
std::uint32_t first_beyond_dense(const pp::Protocol& protocol,
                                 const pp::TransitionTable& table,
                                 std::uint32_t lo, std::uint32_t hi) {
  for (std::uint32_t n = lo; n <= hi; ++n) {
    ExploreOptions explore;
    explore.max_configs = 200'000;
    const ConfigGraph graph(table, initial_counts(protocol, n), explore);
    if (graph.complete() && graph.num_configs() > 3000) return n;
  }
  return 0;
}

void expect_lumped_outreaches_dense(const pp::Protocol& protocol,
                                    const pp::TransitionTable& table,
                                    std::uint32_t n,
                                    const ConfigPredicate& target,
                                    const std::string& label) {
  const pp::Counts initial = initial_counts(protocol, n);

  // Dense: exploration still completes, but the hitting-time system
  // exceeds the cap -- a recoverable exception, not an abort.
  MarkovOptions dense_options;
  dense_options.method = MarkovMethod::kDense;
  const MarkovAnalysis dense(table, initial, dense_options);
  EXPECT_GT(dense.reachable_configs(), 3000u) << label;
  EXPECT_THROW((void)dense.expected_hitting_time(target), std::runtime_error)
      << label;

  // Lumped: same chain, exact answer.
  MarkovOptions lumped_options;
  lumped_options.symmetry = protocol.symmetry();
  const MarkovAnalysis lumped(table, initial, std::move(lumped_options));
  ASSERT_EQ(lumped.method(), MarkovMethod::kLumped) << label;
  const auto expected = lumped.expected_hitting_time(target);
  ASSERT_TRUE(expected.has_value()) << label;
  EXPECT_GT(*expected, 0.0) << label;
  EXPECT_TRUE(std::isfinite(*expected)) << label;
  EXPECT_GE(lumped.reachable_configs(), dense.reachable_configs()) << label;
}

TEST(LumpedMarkov, ReachesBeyondTheDenseCapForKPartition) {
  const core::KPartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  // Reachable configs keep g1 == g2, so the space is ~n^2/4: the dense cap
  // falls around n = 110.
  const std::uint32_t n = first_beyond_dense(protocol, table, 100, 140);
  ASSERT_GT(n, 0u);
  expect_lumped_outreaches_dense(
      protocol, table, n,
      [&](const pp::Counts& config) {
        return core::matches_stable_pattern(protocol, n, config);
      },
      "kpartition k=2 n=" + std::to_string(n));
}

TEST(LumpedMarkov, ReachesBeyondTheDenseCapForWeakKPartition) {
  const core::WeakKPartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = first_beyond_dense(protocol, table, 6, 32);
  ASSERT_GT(n, 0u);
  expect_lumped_outreaches_dense(protocol, table, n,
                                 silence_predicate(table),
                                 "weak-kpartition k=2 n=" + std::to_string(n));
}

TEST(LumpedMarkov, ReachesBeyondTheDenseCapForBipartition) {
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = first_beyond_dense(protocol, table, 100, 140);
  ASSERT_GT(n, 0u);
  expect_lumped_outreaches_dense(
      protocol, table, n,
      [n](const pp::Counts& config) {
        return config[core::BipartitionProtocol::kInitial] +
                       config[core::BipartitionProtocol::kInitialPrime] ==
                   n % 2 &&
               config[core::BipartitionProtocol::kG1] +
                       config[core::BipartitionProtocol::kG2] ==
                   n - n % 2;
      },
      "bipartition n=" + std::to_string(n));
}

// ---------------------------------------------------------------------------
// MarkovAnalysis routing

TEST(LumpedMarkov, AutoRoutesBySymmetryPresence) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const pp::Counts initial = initial_counts(protocol, 6);

  const MarkovAnalysis dense(table, initial);  // no symmetry declared
  EXPECT_EQ(dense.method(), MarkovMethod::kDense);
  EXPECT_STREQ(dense.method_name(), "dense");

  MarkovOptions with_symmetry;
  with_symmetry.symmetry = protocol.symmetry();
  const MarkovAnalysis lumped(table, initial, std::move(with_symmetry));
  EXPECT_EQ(lumped.method(), MarkovMethod::kLumped);
  EXPECT_STREQ(lumped.method_name(), "lumped");
}

TEST(LumpedMarkov, TryCreateReportsLumpedFailureRecoverably) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  MarkovOptions options;
  options.method = MarkovMethod::kLumped;
  options.symmetry = protocol.symmetry();
  options.lumped.max_orbits = 2;
  std::string why;
  const auto markov = MarkovAnalysis::try_create(
      table, initial_counts(protocol, 8), std::move(options), &why);
  EXPECT_FALSE(markov.has_value());
  EXPECT_FALSE(why.empty());
}

TEST(LumpedMarkov, NonInvariantPredicateThrows) {
  // counts[kInitial] alone is not invariant under the free-flip: the
  // lumped back end must refuse the query loudly instead of answering for
  // an arbitrary representative.
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  MarkovOptions options;
  options.symmetry = protocol.symmetry();
  // n = 5 so a one-free-agent orbit {(1,0,2,2), (0,1,2,2)} is reachable:
  // the predicate differs across it.  (At even n every reachable orbit
  // happens to be predicate-constant.)
  const MarkovAnalysis markov(table, initial_counts(protocol, 5),
                              std::move(options));
  EXPECT_THROW((void)markov.expected_hitting_time([](const pp::Counts& c) {
    return c[core::BipartitionProtocol::kInitial] == 1;
  }),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppk::verify
