// Tests for the epidemic and threshold protocols, including the textbook
// closed-form calibration of the whole simulation pipeline.

#include <gtest/gtest.h>

#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/threshold.hpp"
#include "verify/global_fairness.hpp"
#include "verify/markov.hpp"

namespace ppk::protocols {
namespace {

TEST(Epidemic, ClosedFormMatchesMarkovModule) {
  // Two independent derivations of the same quantity: the hand-derived sum
  // and the Markov chain solver.
  const EpidemicProtocol protocol;
  const pp::TransitionTable table(protocol);
  for (std::uint32_t n : {3u, 5u, 10u, 20u}) {
    pp::Counts initial{1, n - 1};
    const verify::MarkovAnalysis markov(table, initial);
    const auto analytic = markov.expected_hitting_time(
        [n](const pp::Counts& config) { return config[0] == n; });
    ASSERT_TRUE(analytic.has_value());
    EXPECT_NEAR(*analytic, EpidemicProtocol::expected_interactions(n), 1e-9)
        << "n=" << n;
  }
}

TEST(Epidemic, SimulatorMatchesClosedForm) {
  // Calibration of the simulator against theory external to this repo:
  // the empirical mean over 2000 trials must be within a few percent of
  // (the exact) sum_{i} n(n-1)/(2i(n-i)).
  const EpidemicProtocol protocol;
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = 50;
  constexpr int kTrials = 2000;
  double total = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    pp::Population population(pp::Counts{1, n - 1});
    pp::AgentSimulator sim(table, std::move(population),
                           derive_stream_seed(11, static_cast<std::uint64_t>(trial)));
    pp::SilenceOracle oracle(table);
    const auto result = sim.run(oracle, 10'000'000ULL);
    ASSERT_TRUE(result.stabilized);
    total += static_cast<double>(result.interactions);
  }
  const double empirical = total / kTrials;
  const double analytic = EpidemicProtocol::expected_interactions(n);
  EXPECT_NEAR(empirical / analytic, 1.0, 0.05)
      << "empirical=" << empirical << " analytic=" << analytic;
}

TEST(Epidemic, InformedCountIsMonotone) {
  const EpidemicProtocol protocol;
  const pp::TransitionTable table(protocol);
  pp::Population population(pp::Counts{1, 29});
  pp::AgentSimulator sim(table, std::move(population), 8);
  std::uint32_t last = 1;
  bool decreased = false;
  sim.set_observer([&](const pp::SimEvent&) {
    const std::uint32_t now =
        sim.population().counts()[EpidemicProtocol::kInformed];
    if (now < last) decreased = true;
    last = now;
  });
  pp::SilenceOracle oracle(table);
  ASSERT_TRUE(sim.run(oracle, 10'000'000ULL).stabilized);
  EXPECT_FALSE(decreased);
  EXPECT_EQ(last, 30u);
}

TEST(Threshold, StateCountIsTwoTimesTPlus1) {
  for (std::uint32_t t : {1u, 3u, 10u}) {
    EXPECT_EQ(ThresholdProtocol(t).num_states(), 2 * (t + 1));
  }
}

TEST(Threshold, MergeSaturatesAndPropagatesOutput) {
  const ThresholdProtocol protocol(3);
  // (2,-) meets (2,-): merged value 3 reaches T: both output +.
  const auto t = protocol.delta(protocol.state(2, false),
                                protocol.state(2, false));
  EXPECT_EQ(t.initiator, protocol.state(3, true));
  EXPECT_EQ(t.responder, protocol.state(0, true));
  // Output spreads even through zero-value meetings.
  const auto s = protocol.delta(protocol.state(0, true),
                                protocol.state(0, false));
  EXPECT_EQ(s.responder, protocol.state(0, true));
}

TEST(Threshold, VerifiedCorrectForAllSmallInputs) {
  // Exhaustive: for T = 3 and n = 6, every split of ones/zeros stabilizes
  // to the correct verdict under global fairness.
  const ThresholdProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = 6;
  for (std::uint32_t ones = 0; ones <= n; ++ones) {
    pp::Counts initial(protocol.num_states(), 0);
    initial[protocol.initial_state()] = n - ones;
    initial[protocol.one_state()] += ones;
    const bool expected = ones >= protocol.threshold();
    const auto verdict = verify::verify_stabilization(
        protocol, table, initial,
        [&](const pp::Counts&, const std::vector<std::uint32_t>& sizes) {
          // All agents must output the same, correct verdict.
          return expected ? sizes[0] == 0 : sizes[1] == 0;
        });
    EXPECT_TRUE(verdict.solves) << "ones=" << ones << ": " << verdict.failure;
  }
}

TEST(Threshold, StableButNotSilentBelowThreshold) {
  // Below the threshold the leftover value keeps hopping between agents:
  // outputs are stable, the configuration never goes silent.  This is the
  // library's canonical example of why stability != silence.
  const ThresholdProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = 6;
  initial[protocol.one_state()] += 2;  // 2 < 4: verdict false

  pp::Population population(initial);
  pp::AgentSimulator sim(table, std::move(population), 5);
  pp::SilenceOracle oracle(table);
  const auto result = sim.run(oracle, 100'000);
  EXPECT_FALSE(result.stabilized);  // never silent
  // But the outputs have long stabilized to "below threshold".
  const auto sizes = sim.population().group_sizes(protocol);
  EXPECT_EQ(sizes[1], 0u);
}

TEST(Threshold, SimulationDecidesLargerPopulations) {
  const ThresholdProtocol protocol(10);
  const pp::TransitionTable table(protocol);
  for (std::uint32_t ones : {5u, 10u, 60u}) {
    pp::Counts initial(protocol.num_states(), 0);
    initial[protocol.initial_state()] = 100 - ones;
    initial[protocol.one_state()] += ones;
    pp::Population population(initial);
    pp::AgentSimulator sim(table, std::move(population), ones);
    // Run a fixed budget, then check the (stabilized) outputs.
    pp::NeverStableOracle oracle;
    sim.run(oracle, 2'000'000);
    const auto sizes = sim.population().group_sizes(protocol);
    const bool expected = ones >= 10;
    EXPECT_EQ(sizes[expected ? 0 : 1], 0u) << "ones=" << ones;
  }
}

}  // namespace
}  // namespace ppk::protocols
