#include "pp/adversarial.hpp"

#include <gtest/gtest.h>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/transition_table.hpp"

namespace ppk::pp {
namespace {

double mean_interactions_adversarial(pp::GroupId k, std::uint32_t n,
                                     double epsilon, int trials,
                                     std::uint64_t master_seed,
                                     int* stabilized = nullptr) {
  const core::KPartitionProtocol protocol(k);
  const TransitionTable table(protocol);
  double total = 0.0;
  int ok = 0;
  for (int trial = 0; trial < trials; ++trial) {
    AdversarialSimulator sim(
        protocol, table,
        Population(n, protocol.num_states(), protocol.initial_state()),
        epsilon,
        derive_stream_seed(master_seed, static_cast<std::uint64_t>(trial)));
    auto oracle = core::stable_pattern_oracle(protocol, n);
    const SimResult result = sim.run(*oracle, 500'000'000ULL);
    if (result.stabilized) ++ok;
    total += static_cast<double>(result.interactions);
  }
  if (stabilized != nullptr) *stabilized = ok;
  return total / trials;
}

TEST(AdversarialSimulator, StillStabilizesBecauseItIsFair) {
  int stabilized = 0;
  mean_interactions_adversarial(3, 9, 0.1, 20, 1, &stabilized);
  EXPECT_EQ(stabilized, 20);
}

TEST(AdversarialSimulator, ReachesTheCorrectStablePattern) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  AdversarialSimulator sim(
      protocol, table,
      Population(13, protocol.num_states(), protocol.initial_state()), 0.05,
      99);
  auto oracle = core::stable_pattern_oracle(protocol, 13);
  ASSERT_TRUE(sim.run(*oracle, 500'000'000ULL).stabilized);
  EXPECT_TRUE(core::matches_stable_pattern(protocol, 13,
                                           sim.population().counts()));
  EXPECT_TRUE(is_uniform_partition(sim.population().group_sizes(protocol)));
}

TEST(AdversarialSimulator, SmallerEpsilonMeansSlowerStabilization) {
  const double friendly = mean_interactions_adversarial(3, 12, 1.0, 30, 7);
  const double hostile = mean_interactions_adversarial(3, 12, 0.05, 30, 7);
  EXPECT_GT(hostile, friendly * 1.5)
      << "friendly=" << friendly << " hostile=" << hostile;
}

TEST(AdversarialSimulator, ResumePreservesOracleProgressAcrossChunks) {
  // Regression (the PR 1 bug class, fixed here for AdversarialSimulator):
  // run() resets the oracle, so granting the budget in chunks via run()
  // discarded a quiescence lull spanning a chunk boundary.  resume() must
  // continue the oracle, making a chunked run bit-identical to an unchunked
  // one.  epsilon = 0.25 keeps the adversary's probe branch on this path.
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint64_t seed = 11;
  constexpr double kEpsilon = 0.25;
  // n = 13, k = 4 leaves one free agent whose flips stay effective after
  // stabilization, so the quiescence window does fill up.
  constexpr std::uint32_t kN = 13;
  constexpr std::uint64_t kWindow = 500;  // effective interactions
  constexpr std::uint64_t kChunk = 64;    // drawn pairs per grant
  constexpr std::uint64_t kBudget = 5'000'000;

  AdversarialSimulator whole(protocol, table,
                             Population(kN, protocol.num_states(),
                                        protocol.initial_state()),
                             kEpsilon, seed);
  auto whole_oracle = make_quiescence_oracle(protocol, kWindow);
  const SimResult reference = whole.run(whole_oracle, kBudget);
  ASSERT_TRUE(reference.stabilized);

  AdversarialSimulator chunked(protocol, table,
                               Population(kN, protocol.num_states(),
                                          protocol.initial_state()),
                               kEpsilon, seed);
  auto chunked_oracle = make_quiescence_oracle(protocol, kWindow);
  std::uint64_t total = 0;
  bool stabilized = false;
  bool first = true;
  while (!stabilized && total < kBudget) {
    const SimResult r = first ? chunked.run(chunked_oracle, kChunk)
                              : chunked.resume(chunked_oracle, kChunk);
    first = false;
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_TRUE(stabilized);
  EXPECT_EQ(total, reference.interactions);

  // Contrast: the buggy per-chunk run() pattern resets the oracle every 64
  // draws, so the 500-effective-interaction lull is never observed.
  AdversarialSimulator resetting(protocol, table,
                                 Population(kN, protocol.num_states(),
                                            protocol.initial_state()),
                                 kEpsilon, seed);
  auto reset_oracle = make_quiescence_oracle(protocol, kWindow);
  total = 0;
  stabilized = false;
  while (!stabilized && total < 200'000) {
    const SimResult r = resetting.run(reset_oracle, kChunk);
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_FALSE(stabilized);
}

TEST(AdversarialSimulator, EpsilonOneMatchesUniformScheduler) {
  // With epsilon = 1 the adversary never acts: statistics must match the
  // plain AgentSimulator.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  constexpr int kTrials = 40;
  const std::uint32_t n = 12;

  const double adversarial = mean_interactions_adversarial(3, n, 1.0, kTrials, 3);
  double uniform = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    AgentSimulator sim(table,
                       Population(n, protocol.num_states(),
                                  protocol.initial_state()),
                       derive_stream_seed(4, static_cast<std::uint64_t>(trial)));
    auto oracle = core::stable_pattern_oracle(protocol, n);
    uniform += static_cast<double>(sim.run(*oracle).interactions);
  }
  uniform /= kTrials;
  EXPECT_LT(std::abs(adversarial - uniform) / uniform, 0.4)
      << "adversarial=" << adversarial << " uniform=" << uniform;
}

// --- Fairness-policy axis ----------------------------------------------

TEST(FairnessPolicy, WeakRoundRobinStabilizesWeakProtocol) {
  // The weak-fairness protocol reaches silence under the weak-round-robin
  // adversary (every execution does -- the verifier proves it; this checks
  // the scheduler end-to-end) and the silent configuration is uniform.
  const core::WeakKPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    AdversarialSimulator sim(
        protocol, table,
        Population(14, protocol.num_states(), protocol.initial_state()),
        FairnessSpec::weak_round_robin(), seed);
    SilenceOracle oracle(table);
    const SimResult result = sim.run(oracle, 50'000'000ULL);
    ASSERT_TRUE(result.stabilized) << "seed=" << seed;
    EXPECT_TRUE(
        is_uniform_partition(sim.population().group_sizes(protocol)))
        << "seed=" << seed;
  }
}

TEST(FairnessPolicy, WeakRoundRobinCannotRefuteGlobalProtocolsBySimulation) {
  // The paper's protocol is provably INCORRECT under weak fairness (the
  // exhaustive verifier exhibits a reachable livelock SCC -- see
  // verify_weak_fairness_test.cpp), yet the concrete weak-round-robin
  // scheduler still stabilizes it: the livelock needs the adversary to
  // schedule specific pairs at exactly the right configurations, and a
  // 16-probe greedy heuristic does not orchestrate that.  Pinning the
  // stabilization documents the methodology point (docs/fairness.md):
  // heuristic weakly-fair simulation can MISS weak-fairness
  // counterexamples; only the exhaustive verifier decides them.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    AdversarialSimulator sim(
        protocol, table,
        Population(9, protocol.num_states(), protocol.initial_state()),
        FairnessSpec::weak_round_robin(), seed);
    auto oracle = core::stable_pattern_oracle(protocol, 9);
    EXPECT_TRUE(sim.run(*oracle, 50'000'000ULL).stabilized)
        << "seed=" << seed;
  }
}

TEST(FairnessPolicy, WeakRoundRobinSnapshotResumeIsBitIdentical) {
  // Snapshot under kWeakRoundRobin carries the unscheduled remainder of
  // the current round; restoring into a fresh engine and resuming must be
  // bit-identical to the uninterrupted run.
  const core::WeakKPartitionProtocol protocol(2);
  const TransitionTable table(protocol);
  const auto make = [&] {
    return AdversarialSimulator(
        protocol, table,
        Population(10, protocol.num_states(), protocol.initial_state()),
        FairnessSpec::weak_round_robin(), 77);
  };

  AdversarialSimulator reference = make();
  SilenceOracle ref_oracle(table);
  ref_oracle.reset(reference.population().counts());
  for (int i = 0; i < 37; ++i) reference.step(ref_oracle);
  const Snapshot snap = reference.snapshot();
  for (int i = 0; i < 200; ++i) reference.step(ref_oracle);

  AdversarialSimulator restored = make();
  restored.restore(snap);
  SilenceOracle oracle(table);
  oracle.reset(restored.population().counts());
  for (int i = 0; i < 200; ++i) restored.step(oracle);

  EXPECT_EQ(restored.population().states(), reference.population().states());
  EXPECT_EQ(restored.population().counts(), reference.population().counts());
}

TEST(FairnessPolicy, TopologyRestrictedSchedulingHonorsEdges) {
  // The fairness axis composes with the topology axis: on a star, the
  // arbitrary-graph bipartition protocol stabilizes to a uniform split
  // under the uniform-random policy, while the complete-graph protocol
  // wedges (initial-state leaves can only meet the hub).
  const auto star = InteractionGraph::star(7);

  const core::GraphBipartitionProtocol graph_protocol;
  const TransitionTable graph_table(graph_protocol);
  AdversarialSimulator good(
      graph_protocol, graph_table,
      Population(7, graph_protocol.num_states(),
                 graph_protocol.initial_state()),
      FairnessSpec::uniform_random(), 5, &star);
  auto oracle = core::graph_bipartition_stable_oracle(graph_protocol, 7);
  ASSERT_TRUE(good.run(*oracle, 50'000'000ULL).stabilized);
  EXPECT_TRUE(
      is_uniform_partition(good.population().group_sizes(graph_protocol)));

  const core::KPartitionProtocol paper(3);
  const TransitionTable paper_table(paper);
  AdversarialSimulator wedged(
      paper, paper_table,
      Population(7, paper.num_states(), paper.initial_state()),
      FairnessSpec::uniform_random(), 5, &star);
  auto paper_oracle = core::stable_pattern_oracle(paper, 7);
  EXPECT_FALSE(wedged.run(*paper_oracle, 500'000ULL).stabilized);
}

}  // namespace
}  // namespace ppk::pp
