#include "pp/adversarial.hpp"

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"

namespace ppk::pp {
namespace {

double mean_interactions_adversarial(pp::GroupId k, std::uint32_t n,
                                     double epsilon, int trials,
                                     std::uint64_t master_seed,
                                     int* stabilized = nullptr) {
  const core::KPartitionProtocol protocol(k);
  const TransitionTable table(protocol);
  double total = 0.0;
  int ok = 0;
  for (int trial = 0; trial < trials; ++trial) {
    AdversarialSimulator sim(
        protocol, table,
        Population(n, protocol.num_states(), protocol.initial_state()),
        epsilon,
        derive_stream_seed(master_seed, static_cast<std::uint64_t>(trial)));
    auto oracle = core::stable_pattern_oracle(protocol, n);
    const SimResult result = sim.run(*oracle, 500'000'000ULL);
    if (result.stabilized) ++ok;
    total += static_cast<double>(result.interactions);
  }
  if (stabilized != nullptr) *stabilized = ok;
  return total / trials;
}

TEST(AdversarialSimulator, StillStabilizesBecauseItIsFair) {
  int stabilized = 0;
  mean_interactions_adversarial(3, 9, 0.1, 20, 1, &stabilized);
  EXPECT_EQ(stabilized, 20);
}

TEST(AdversarialSimulator, ReachesTheCorrectStablePattern) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  AdversarialSimulator sim(
      protocol, table,
      Population(13, protocol.num_states(), protocol.initial_state()), 0.05,
      99);
  auto oracle = core::stable_pattern_oracle(protocol, 13);
  ASSERT_TRUE(sim.run(*oracle, 500'000'000ULL).stabilized);
  EXPECT_TRUE(core::matches_stable_pattern(protocol, 13,
                                           sim.population().counts()));
  EXPECT_TRUE(is_uniform_partition(sim.population().group_sizes(protocol)));
}

TEST(AdversarialSimulator, SmallerEpsilonMeansSlowerStabilization) {
  const double friendly = mean_interactions_adversarial(3, 12, 1.0, 30, 7);
  const double hostile = mean_interactions_adversarial(3, 12, 0.05, 30, 7);
  EXPECT_GT(hostile, friendly * 1.5)
      << "friendly=" << friendly << " hostile=" << hostile;
}

TEST(AdversarialSimulator, EpsilonOneMatchesUniformScheduler) {
  // With epsilon = 1 the adversary never acts: statistics must match the
  // plain AgentSimulator.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  constexpr int kTrials = 40;
  const std::uint32_t n = 12;

  const double adversarial = mean_interactions_adversarial(3, n, 1.0, kTrials, 3);
  double uniform = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    AgentSimulator sim(table,
                       Population(n, protocol.num_states(),
                                  protocol.initial_state()),
                       derive_stream_seed(4, static_cast<std::uint64_t>(trial)));
    auto oracle = core::stable_pattern_oracle(protocol, n);
    uniform += static_cast<double>(sim.run(*oracle).interactions);
  }
  uniform /= kTrials;
  EXPECT_LT(std::abs(adversarial - uniform) / uniform, 0.4)
      << "adversarial=" << adversarial << " uniform=" << uniform;
}

}  // namespace
}  // namespace ppk::pp
