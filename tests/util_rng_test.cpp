// Unit tests for the RNG stack: determinism, bounds, rough uniformity and
// stream independence.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace ppk {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the canonical splitmix64.c.
  SplitMix64 gen(1234567);
  EXPECT_EQ(gen.next(), 6457827717110365317ULL);
  EXPECT_EQ(gen.next(), 3203168211198807973ULL);
  EXPECT_EQ(gen.next(), 9817491932198370423ULL);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 gen(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 gen(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 gen(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kDraws; ++i) ++histogram[gen.below(kBuckets)];
  // Expected 10000 per bucket; allow +-5% (many sigma for a binomial).
  for (int count : histogram) {
    EXPECT_GT(count, 9500);
    EXPECT_LT(count, 10500);
  }
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 gen(321);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = gen.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(DeriveStreamSeed, StreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_stream_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveStreamSeed, DependsOnMasterSeed) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(DeriveStreamSeed, IsDeterministic) {
  EXPECT_EQ(derive_stream_seed(77, 5), derive_stream_seed(77, 5));
}

// ---------------------------------------------------------------------------
// Discrete samplers.  Strategy: exact edge cases, a chi-square against the
// exact pmf where the support is small (this exercises every branch of the
// inversions), and moment checks where it is not.  All seeds are fixed, so
// none of these are flaky.

double chi_square(const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected) {
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t x) {
  const double nd = static_cast<double>(n);
  const double xd = static_cast<double>(x);
  const double log_pmf = std::lgamma(nd + 1.0) - std::lgamma(xd + 1.0) -
                         std::lgamma(nd - xd + 1.0) + xd * std::log(p) +
                         (nd - xd) * std::log1p(-p);
  return std::exp(log_pmf);
}

double hypergeometric_pmf(std::uint64_t total, std::uint64_t marked,
                          std::uint64_t m, std::uint64_t x) {
  auto log_choose = [](double a, double b) {
    return std::lgamma(a + 1.0) - std::lgamma(b + 1.0) -
           std::lgamma(a - b + 1.0);
  };
  const double log_pmf =
      log_choose(static_cast<double>(marked), static_cast<double>(x)) +
      log_choose(static_cast<double>(total - marked),
                 static_cast<double>(m - x)) -
      log_choose(static_cast<double>(total), static_cast<double>(m));
  return std::exp(log_pmf);
}

TEST(Geometric, CertainSuccessIsZero) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Geometric, MeanMatchesTheory) {
  Xoshiro256 rng(2);
  const double p = 0.2;
  constexpr int kDraws = 50'000;
  double total = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    total += static_cast<double>(rng.geometric(p));
  }
  const double mean = total / kDraws;
  // E = (1-p)/p = 4, sd of the mean ~ sqrt(20)/sqrt(50000) ~ 0.02.
  EXPECT_NEAR(mean, 4.0, 0.15);
}

TEST(Geometric, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.geometric(0.01), b.geometric(0.01));
}

TEST(Binomial, EdgeCases) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(rng.binomial(7, 0.3), 7u);
}

TEST(Binomial, SmallCaseMatchesExactPmf) {
  // n = 5, p = 0.3 uses the bottom-up inversion branch; chi-square over
  // the full support against the exact pmf.
  Xoshiro256 rng(4);
  const std::uint64_t n = 5;
  const double p = 0.3;
  constexpr int kDraws = 60'000;
  std::vector<std::uint64_t> observed(n + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++observed[rng.binomial(n, p)];
  std::vector<double> expected;
  for (std::uint64_t x = 0; x <= n; ++x) {
    expected.push_back(kDraws * binomial_pmf(n, p, x));
  }
  // 5 dof; P(chi2 > 20.5) ~ 0.001, and the seed is fixed.
  EXPECT_LT(chi_square(observed, expected), 20.5);
}

TEST(Binomial, LargeMeanBranchMatchesMoments) {
  // n p = 4000 forces the mode-centered walk; check mean and variance.
  Xoshiro256 rng(5);
  const std::uint64_t n = 10'000;
  const double p = 0.4;
  constexpr int kDraws = 20'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(rng.binomial(n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  const double expect_mean = 4000.0;
  const double expect_var = 2400.0;  // n p (1-p)
  EXPECT_NEAR(mean, expect_mean, 2.0);         // sem ~ 0.35
  EXPECT_NEAR(var / expect_var, 1.0, 0.05);
}

TEST(Binomial, ComplementSymmetryKeepsSupport) {
  // p > 0.5 routes through the n - Binomial(n, 1-p) symmetry.
  Xoshiro256 rng(6);
  constexpr int kDraws = 20'000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.binomial(50, 0.9);
    ASSERT_LE(x, 50u);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / kDraws, 45.0, 0.1);
}

TEST(Hypergeometric, EdgeCases) {
  Xoshiro256 rng(8);
  EXPECT_EQ(rng.hypergeometric(10, 4, 0), 0u);
  EXPECT_EQ(rng.hypergeometric(10, 0, 5), 0u);
  EXPECT_EQ(rng.hypergeometric(10, 10, 5), 5u);
  EXPECT_EQ(rng.hypergeometric(10, 4, 10), 4u);
}

TEST(Hypergeometric, StaysInSupport) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t total = 2 + rng.below(60);
    const std::uint64_t marked = rng.below(total + 1);
    const std::uint64_t m = rng.below(total + 1);
    const std::uint64_t x = rng.hypergeometric(total, marked, m);
    const std::uint64_t x_min =
        m + marked > total ? m + marked - total : 0;
    const std::uint64_t x_max = marked < m ? marked : m;
    ASSERT_GE(x, x_min) << total << " " << marked << " " << m;
    ASSERT_LE(x, x_max) << total << " " << marked << " " << m;
  }
}

TEST(Hypergeometric, SmallCaseMatchesExactPmf) {
  // N = 10, K = 4, m = 5: support {0..4}, exact pmf from binomials.
  Xoshiro256 rng(10);
  constexpr int kDraws = 60'000;
  std::vector<std::uint64_t> observed(5, 0);
  for (int i = 0; i < kDraws; ++i) ++observed[rng.hypergeometric(10, 4, 5)];
  std::vector<double> expected;
  for (std::uint64_t x = 0; x <= 4; ++x) {
    expected.push_back(kDraws * hypergeometric_pmf(10, 4, 5, x));
  }
  // 4 dof; P(chi2 > 18.5) ~ 0.001, fixed seed.
  EXPECT_LT(chi_square(observed, expected), 18.5);
}

TEST(Hypergeometric, LargeCaseMatchesMoments) {
  Xoshiro256 rng(11);
  const std::uint64_t total = 100'000;
  const std::uint64_t marked = 30'000;
  const std::uint64_t m = 500;
  constexpr int kDraws = 20'000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.hypergeometric(total, marked, m));
  }
  // E = m K / N = 150; sd of one draw ~ 10.2, sem ~ 0.07.
  EXPECT_NEAR(sum / kDraws, 150.0, 0.5);
}

TEST(Hypergeometric, TabledLogFactorialIsBitIdentical) {
  // The batch engine passes lgamma values read from a table; the sampler
  // must consume the same randomness and return the same value.
  std::vector<double> table(201);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = std::lgamma(static_cast<double>(i) + 1.0);
  }
  Xoshiro256 a(12);
  Xoshiro256 b(12);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t total = 2 + a.below(150);
    (void)b.below(150);  // keep the streams aligned
    const std::uint64_t marked = a.below(total + 1);
    (void)b.below(total + 1);
    const std::uint64_t m = a.below(total + 1);
    (void)b.below(total + 1);
    const std::uint64_t x = a.hypergeometric(total, marked, m);
    const std::uint64_t y = b.hypergeometric(
        total, marked, m,
        [&table](double v) { return table[static_cast<std::size_t>(v)]; });
    ASSERT_EQ(x, y) << total << " " << marked << " " << m;
  }
}

}  // namespace
}  // namespace ppk
