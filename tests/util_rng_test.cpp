// Unit tests for the RNG stack: determinism, bounds, rough uniformity and
// stream independence.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace ppk {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the canonical splitmix64.c.
  SplitMix64 gen(1234567);
  EXPECT_EQ(gen.next(), 6457827717110365317ULL);
  EXPECT_EQ(gen.next(), 3203168211198807973ULL);
  EXPECT_EQ(gen.next(), 9817491932198370423ULL);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 gen(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 gen(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 gen(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kDraws; ++i) ++histogram[gen.below(kBuckets)];
  // Expected 10000 per bucket; allow +-5% (many sigma for a binomial).
  for (int count : histogram) {
    EXPECT_GT(count, 9500);
    EXPECT_LT(count, 10500);
  }
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 gen(321);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = gen.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(DeriveStreamSeed, StreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_stream_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveStreamSeed, DependsOnMasterSeed) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(DeriveStreamSeed, IsDeterministic) {
  EXPECT_EQ(derive_stream_seed(77, 5), derive_stream_seed(77, 5));
}

}  // namespace
}  // namespace ppk
