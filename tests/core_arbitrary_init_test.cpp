// The paper's protocol assumes *designated initial states* (every agent
// starts in `initial`).  These tests pin down exactly how that assumption
// is load-bearing: from adversarial initial configurations the protocol
// can be permanently wrong (it is not self-stabilizing), while from any
// configuration that is *reachable* from the designated one it always
// recovers (that is just Theorem 1 restated).

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::core {
namespace {

TEST(ArbitraryInitialStates, AllCommittedToOneGroupIsAStableFailure) {
  // Everyone starts in g1: no rule applies to (g, g) pairs, so the
  // population is silent at sizes (n, 0, ..., 0) -- permanently wrong.
  const KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.g(1)] = 8;
  const auto verdict = verify::verify_uniform_partition_from(
      protocol, table, initial);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
  EXPECT_EQ(verdict.reachable_configs, 1u);  // it is already wedged
}

TEST(ArbitraryInitialStates, CorruptedCountsViolateLemma1AndStayWrong) {
  // A d2 agent with no matching g2 to demolish: rule 9 never fires, the
  // demolisher is stuck, and f(d2) = 1 leaves the partition lopsided.
  const KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.d(2)] = 2;
  initial[protocol.g(1)] = 2;
  initial[protocol.g(4)] = 2;
  EXPECT_FALSE(lemma1_holds(protocol, initial));
  const auto verdict = verify::verify_uniform_partition_from(
      protocol, table, initial);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
}

TEST(ArbitraryInitialStates, ReachableConfigurationsAlwaysRecover) {
  // Contrast: every configuration reachable from the designated initial
  // one still stabilizes correctly (Theorem 1 applied mid-flight).  We
  // verify from a handful of genuinely reachable mid-protocol
  // configurations for n = 7, k = 3.
  const KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);

  // Enumerate some reachable configurations first.
  pp::Counts designated(protocol.num_states(), 0);
  designated[protocol.initial_state()] = 7;
  std::vector<pp::Counts> mid_flight;
  verify::for_each_reachable(table, designated,
                             [&](const pp::Counts& config) {
                               if (mid_flight.size() < 25) {
                                 mid_flight.push_back(config);
                               }
                             });
  ASSERT_GE(mid_flight.size(), 10u);

  for (const auto& config : mid_flight) {
    EXPECT_TRUE(lemma1_holds(protocol, config));
    const auto verdict =
        verify::verify_uniform_partition_from(protocol, table, config);
    EXPECT_TRUE(verdict.solves) << verdict.failure;
  }
}

TEST(ArbitraryInitialStates, MixedFreeStartIsFine) {
  // initial vs initial' is immaterial: starting from any mix of the two
  // free states still solves the problem (they are one equivalence class
  // in every argument of the paper).
  const KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  for (std::uint32_t primed = 0; primed <= 6; ++primed) {
    pp::Counts initial(protocol.num_states(), 0);
    initial[KPartitionProtocol::kInitial] = 6 - primed;
    initial[KPartitionProtocol::kInitialPrime] = primed;
    const auto verdict =
        verify::verify_uniform_partition_from(protocol, table, initial);
    EXPECT_TRUE(verdict.solves) << "primed=" << primed << ": "
                                << verdict.failure;
  }
}

}  // namespace
}  // namespace ppk::core
