// Verifies the observability layer's "zero overhead when disabled" claim at
// its strongest: with no sink attached, the engines' steady-state loops
// perform no heap allocation at all -- the hook is a single predictable
// null-pointer test and nothing else.
//
// The test replaces the global allocation functions with counting wrappers
// and measures the allocation delta across a long stretch of simulation.
// It lives in its own binary so the instrumented operator new cannot
// interfere with (or be perturbed by) unrelated tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/adversarial.hpp"
#include "pp/count_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/population.hpp"
#include "pp/transition_table.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using ppk::core::KPartitionProtocol;

TEST(ObsZeroAlloc, CountEngineSteadyStateAllocatesNothingWithoutSink) {
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 200;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  ppk::pp::CountSimulator sim(table, initial, 123);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  oracle->reset(sim.counts());
  for (int i = 0; i < 256; ++i) sim.step(*oracle);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 20000; ++i) sim.step(*oracle);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the disabled observability path must not allocate";
}

TEST(ObsZeroAlloc, GraphEngineSteadyStateAllocatesNothingWithoutSink) {
  // GraphSimulator gained obs hooks in this PR; its dormant path must stay
  // allocation-free like the other engines'.
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 64;

  ppk::pp::GraphSimulator sim(
      table, ppk::pp::InteractionGraph::complete(n),
      ppk::pp::Population(n, protocol.num_states(), protocol.initial_state()),
      123);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  oracle->reset(sim.population().counts());
  for (int i = 0; i < 256; ++i) sim.step(*oracle);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 20000; ++i) sim.step(*oracle);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the disabled observability path must not allocate";
}

TEST(ObsZeroAlloc, AdversarialEngineSteadyStateAllocatesNothingWithoutSink) {
  // AdversarialSimulator gained obs hooks in this PR; epsilon = 0.25 keeps
  // the adversary's probe loop (the extra branch) on the measured path.
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 64;

  ppk::pp::AdversarialSimulator sim(
      protocol, table,
      ppk::pp::Population(n, protocol.num_states(), protocol.initial_state()),
      0.25, 123);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  oracle->reset(sim.population().counts());
  for (int i = 0; i < 256; ++i) sim.step(*oracle);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 20000; ++i) sim.step(*oracle);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the disabled observability path must not allocate";
}

TEST(ObsZeroAlloc, JumpEngineSteadyStateAllocatesNothingWithoutSink) {
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 200;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  ppk::pp::JumpSimulator sim(table, initial, 123);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  oracle->reset(sim.counts());
  for (int i = 0; i < 64; ++i) sim.step(*oracle);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 5000 && sim.step(*oracle); ++i) {
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the disabled observability path must not allocate";
}

}  // namespace
