#include "analysis/stats.hpp"

#include <gtest/gtest.h>

namespace ppk::analysis {
namespace {

TEST(OnlineStats, MatchesClosedFormsOnSmallSample) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStats, EmptyIsAllZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(OnlineStats, IsNumericallyStableForLargeOffsets) {
  // Welford vs naive sum-of-squares: large mean, small spread.
  OnlineStats stats;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) stats.add(base + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.mean(), base, 1e-2);
  EXPECT_NEAR(stats.variance(), 1.001001, 1e-3);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 5);
  for (int i = 0; i < 1000; ++i) large.add(i % 5);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, InterpolatesLikeNumpy) {
  const std::vector<double> samples{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 1.75);
}

TEST(Quantile, HandlesUnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Summarize, FillsEveryField) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(Summarize, EmptySampleIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace ppk::analysis
