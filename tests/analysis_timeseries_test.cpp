#include "analysis/timeseries.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"

namespace ppk::analysis {
namespace {

TEST(TimeSeries, SamplesOnStrideGrid) {
  const core::KPartitionProtocol protocol(3);
  pp::Population population(6, protocol.num_states(),
                            protocol.initial_state());
  TimeSeries series(protocol, 10);
  series.sample(5, population);   // off-grid: ignored
  series.sample(10, population);  // on-grid
  series.sample(20, population);
  series.sample(23, population, /*force=*/true);
  ASSERT_EQ(series.rows().size(), 3u);
  EXPECT_EQ(series.rows()[0].interaction, 10u);
  EXPECT_EQ(series.rows()[2].interaction, 23u);
}

TEST(TimeSeries, RecordsGroupSizes) {
  const core::KPartitionProtocol protocol(3);
  pp::Population population(6, protocol.num_states(),
                            protocol.initial_state());
  population.set_state(0, protocol.g(2));
  TimeSeries series(protocol, 1);
  series.sample(1, population);
  ASSERT_EQ(series.rows().size(), 1u);
  EXPECT_EQ(series.rows()[0].group_sizes,
            (std::vector<std::uint32_t>{5, 1, 0}));
}

TEST(TimeSeries, WritesCsvWithPerGroupColumns) {
  const core::KPartitionProtocol protocol(2);
  pp::Population population(4, protocol.num_states(),
                            protocol.initial_state());
  TimeSeries series(protocol, 1);
  series.sample(1, population);
  std::ostringstream out;
  series.write_csv(out);
  EXPECT_EQ(out.str(), "interaction,group1,group2\n1,4,0\n");
}

TEST(TimeSeries, MaxSpreadSinceTracksDisturbances) {
  const core::KPartitionProtocol protocol(2);
  pp::Population population(4, protocol.num_states(),
                            protocol.initial_state());
  TimeSeries series(protocol, 1);
  series.sample(1, population);  // sizes (4, 0): spread 4
  population.set_state(0, protocol.g(2));
  population.set_state(1, protocol.g(2));
  series.sample(2, population);  // sizes (2, 2): spread 0
  EXPECT_EQ(series.max_spread_since(0), 4u);
  EXPECT_EQ(series.max_spread_since(2), 0u);
}

TEST(TimeSeries, IntegratesWithSimulatorObserver) {
  const core::KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Population population(16, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 3);
  TimeSeries series(protocol, 50);
  sim.set_observer([&](const pp::SimEvent& event) {
    series.sample(event.interaction, sim.population());
  });
  auto oracle = core::stable_pattern_oracle(protocol, 16);
  ASSERT_TRUE(sim.run(*oracle, 10'000'000ULL).stabilized);
  EXPECT_GT(series.rows().size(), 0u);
  // The trajectory ends uniform and never exceeds spread n after start.
  const auto& last = series.rows().back();
  std::uint32_t total = 0;
  for (auto s : last.group_sizes) total += s;
  EXPECT_LE(total, 16u);  // m/f states map into groups too, sum == n
  EXPECT_EQ(total, 16u);
}

}  // namespace
}  // namespace ppk::analysis
