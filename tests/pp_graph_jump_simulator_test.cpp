// The live-edge engine's own contract: the incrementally maintained live
// set must always equal a from-scratch rebuild, zero live edges must stop
// a run immediately (exact wedge detection), chunked run()+resume() must
// be bit-identical to an unchunked run (the pending-null carry), budgets
// must be exact, and watch marks must follow the agent-engine semantics.
//
// Also pins the satellite-3 contract: GraphSimulator cannot detect a
// wedged configuration (no effective interactions means no oracle
// callbacks, so even a QuiescenceOracle never fires) and burns its full
// budget, while the live-edge engine stops at interaction zero.

#include "pp/graph_jump_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

Population all_initial(const core::KPartitionProtocol& protocol,
                       std::uint32_t n) {
  return Population(n, protocol.num_states(), protocol.initial_state());
}

/// From-scratch recount of live directed edges -- the invariant the
/// engine maintains incrementally.
std::uint64_t count_live(const TransitionTable& table,
                         const InteractionGraph& graph,
                         const Population& population) {
  std::uint64_t live = 0;
  for (const auto& [a, b] : graph.edges()) {
    const StateId sa = population.state_of(a);
    const StateId sb = population.state_of(b);
    if (table.effective(sa, sb)) ++live;
    if (table.effective(sb, sa)) ++live;
  }
  return live;
}

/// The archetypal wedged ring: every agent committed to g1 except two
/// builders m2 placed antipodally.  All *adjacent* ordered pairs --
/// (g1, g1), (g1, m2), (m2, g1) -- are null, yet (m2, m2) is an effective
/// pair globally (rule 8), so the configuration is wedged on the ring but
/// not silent in the complete-graph sense.
Population wedged_population(const core::KPartitionProtocol& protocol,
                             std::uint32_t n) {
  Population population(n, protocol.num_states(), protocol.g(1));
  population.set_state(0, protocol.m(2));
  population.set_state(n / 2, protocol.m(2));
  return population;
}

TEST(GraphJumpSimulator, LiveSetMatchesRebuildThroughoutARun) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 18;
  for (const auto& graph :
       {InteractionGraph::ring(n), InteractionGraph::star(n),
        InteractionGraph::erdos_renyi(n, 0.4, 11)}) {
    GraphJumpSimulator sim(table, graph, all_initial(protocol, n), 42);
    NeverStableOracle oracle;
    oracle.reset(sim.population().counts());
    EXPECT_EQ(sim.live_directed_edges(),
              count_live(table, sim.graph(), sim.population()));
    for (int step = 0; step < 400; ++step) {
      if (!sim.step(oracle)) break;
      ASSERT_EQ(sim.live_directed_edges(),
                count_live(table, sim.graph(), sim.population()))
          << "after effective interaction " << step;
    }
  }
}

TEST(GraphJumpSimulator, WedgedRingStopsAtInteractionZero) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  const Population population = wedged_population(protocol, n);

  // Wedged, not silent: the complete-graph silence oracle still sees the
  // (m2, m2) pair.
  SilenceOracle silence(table);
  silence.reset(population.counts());
  EXPECT_FALSE(silence.stable());

  GraphJumpSimulator sim(table, InteractionGraph::ring(n), population, 7);
  EXPECT_EQ(sim.live_directed_edges(), 0u);
  auto oracle = core::stable_pattern_oracle(protocol, n);
  const SimResult result = sim.run(*oracle, 1'000'000);
  EXPECT_EQ(result.interactions, 0u);
  EXPECT_EQ(result.effective, 0u);
  EXPECT_FALSE(result.stabilized);
}

TEST(GraphJumpSimulator, GraphSimulatorBurnsBudgetWhereLiveEdgeStalls) {
  // Satellite regression for the documented GraphSimulator contract:
  // oracles hear about effective interactions only, so on a wedged
  // configuration no oracle -- quiescence included -- can fire and the
  // per-draw engine exhausts the budget.  The live-edge engine reports
  // the same dead end at interaction zero.  Pinned on both sparse chain
  // topologies.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 16;
  constexpr std::uint64_t kBudget = 20'000;
  for (const auto& graph :
       {InteractionGraph::ring(n), InteractionGraph::path(n)}) {
    const Population population = wedged_population(protocol, n);

    GraphSimulator per_draw(table, graph, population, 3);
    auto quiescence = make_quiescence_oracle(protocol, 100);
    const SimResult burned = per_draw.run(quiescence, kBudget);
    EXPECT_EQ(burned.interactions, kBudget);
    EXPECT_EQ(burned.effective, 0u);
    EXPECT_FALSE(burned.stabilized);

    GraphJumpSimulator live_edge(table, graph, population, 3);
    auto quiescence2 = make_quiescence_oracle(protocol, 100);
    const SimResult stalled = live_edge.run(quiescence2, kBudget);
    EXPECT_EQ(stalled.interactions, 0u);
    EXPECT_FALSE(stalled.stabilized);
    EXPECT_EQ(live_edge.live_directed_edges(), 0u);
  }
}

TEST(GraphJumpSimulator, ChunkedRunResumeIsBitIdentical) {
  // The pending-null carry keeps the RNG stream independent of budget
  // boundaries, so a run granted in chunks must reproduce the unchunked
  // run bit for bit -- final states, totals and outcome alike.  (The
  // complete-graph jump engine re-samples at the boundary and only agrees
  // in law; this engine is held to the stronger pairwise-class contract.)
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  constexpr std::uint64_t kBudget = 60'000;
  for (const auto& graph :
       {InteractionGraph::ring(n), InteractionGraph::star(n),
        InteractionGraph::path(n), InteractionGraph::complete(n),
        InteractionGraph::erdos_renyi(n, 0.5, 23)}) {
    GraphJumpSimulator whole(table, graph, all_initial(protocol, n), 99);
    auto whole_oracle = core::stable_pattern_oracle(protocol, n);
    const SimResult unchunked = whole.run(*whole_oracle, kBudget);

    GraphJumpSimulator chunked(table, graph, all_initial(protocol, n), 99);
    auto chunked_oracle = core::stable_pattern_oracle(protocol, n);
    SimResult total = chunked.run(*chunked_oracle, 64);
    while (!total.stabilized && total.interactions < kBudget) {
      const SimResult r = chunked.resume(
          *chunked_oracle,
          std::min<std::uint64_t>(64, kBudget - total.interactions));
      total.interactions += r.interactions;
      total.effective += r.effective;
      total.stabilized = r.stabilized;
      if (r.interactions == 0 && !r.stabilized) break;  // wedged
    }

    EXPECT_EQ(total.interactions, unchunked.interactions);
    EXPECT_EQ(total.effective, unchunked.effective);
    EXPECT_EQ(total.stabilized, unchunked.stabilized);
    EXPECT_EQ(chunked.population().states(), whole.population().states());
    EXPECT_EQ(chunked.live_directed_edges(), whole.live_directed_edges());
  }
}

TEST(GraphJumpSimulator, SameSeedReproducesBitForBit) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 15;
  for (int rep = 0; rep < 2; ++rep) {
    GraphJumpSimulator a(table, InteractionGraph::ring(n),
                         all_initial(protocol, n), 1234);
    GraphJumpSimulator b(table, InteractionGraph::ring(n),
                         all_initial(protocol, n), 1234);
    auto oa = core::stable_pattern_oracle(protocol, n);
    auto ob = core::stable_pattern_oracle(protocol, n);
    const SimResult ra = a.run(*oa, 100'000);
    const SimResult rb = b.run(*ob, 100'000);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.effective, rb.effective);
    EXPECT_EQ(a.population().states(), b.population().states());
  }
}

TEST(GraphJumpSimulator, BudgetIsExactUnderNullSkips) {
  // A geometric null run crossing the budget boundary must stop exactly at
  // it (and park the remainder), never overshoot.  The trajectory for a
  // fixed seed is deterministic, so first probe where this run goes silent
  // (k-partition eventually strands a builder and dies even on the
  // complete graph), then rerun with half that budget: it must bind to the
  // interaction.
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 22;
  NeverStableOracle oracle;

  GraphJumpSimulator probe(table, InteractionGraph::complete(n),
                           all_initial(protocol, n), 5);
  const SimResult full = probe.run(oracle);  // ends only at silence
  ASSERT_FALSE(full.stabilized);
  ASSERT_GT(full.interactions, 2u);

  const std::uint64_t budget = full.interactions / 2;
  GraphJumpSimulator sim(table, InteractionGraph::complete(n),
                         all_initial(protocol, n), 5);
  const SimResult result = sim.run(oracle, budget);
  EXPECT_EQ(result.interactions, budget);
  EXPECT_EQ(sim.interactions(), budget);
}

TEST(GraphJumpSimulator, WatchMarksFollowAgentSemantics) {
  // Every stabilized k-partition run locks in exactly floor(n/k) group
  // sets, each marked by one agent entering g_k -- identical to the
  // agent/count/jump watch contract.
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 14;  // floor(14/4) = 3 groupings
  GraphJumpSimulator sim(table, InteractionGraph::complete(n),
                         all_initial(protocol, n), 17);
  std::vector<std::uint64_t> marks;
  sim.set_watch(protocol.g(4), &marks);
  auto oracle = core::stable_pattern_oracle(protocol, n);
  const SimResult result = sim.run(*oracle);
  ASSERT_TRUE(result.stabilized);
  ASSERT_EQ(marks.size(), 3u);
  for (std::size_t i = 1; i < marks.size(); ++i) {
    EXPECT_GT(marks[i], marks[i - 1]);
  }
  EXPECT_LE(marks.back(), sim.interactions());
}

}  // namespace
}  // namespace ppk::pp
