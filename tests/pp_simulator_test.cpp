#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/trace.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"

namespace ppk::pp {
namespace {

TEST(AgentSimulator, CountsEveryDrawnPairIncludingNull) {
  // A population of only followers never reacts: every step is a null
  // interaction, and the paper's measure counts them all.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  Population population(Counts{0, 5});  // five followers
  AgentSimulator sim(table, std::move(population), 1);
  NeverStableOracle oracle;
  const SimResult result = sim.run(oracle, 1000);
  EXPECT_EQ(result.interactions, 1000u);
  EXPECT_EQ(result.effective, 0u);
  EXPECT_FALSE(result.stabilized);
}

TEST(AgentSimulator, LeaderElectionStabilizesToOneLeader) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  Population population(50, 2, protocols::LeaderElectionProtocol::kLeader);
  AgentSimulator sim(table, std::move(population), 7);
  SilenceOracle oracle(table);
  const SimResult result = sim.run(oracle);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.effective, 49u);  // exactly n - 1 demotions
  EXPECT_EQ(sim.population().counts()[0], 1u);
  EXPECT_EQ(sim.population().counts()[1], 49u);
}

TEST(AgentSimulator, SameSeedSameExecution) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  auto run_once = [&] {
    Population population(9, protocol.num_states(), protocol.initial_state());
    AgentSimulator sim(table, std::move(population), 42);
    auto oracle = core::stable_pattern_oracle(protocol, 9);
    return sim.run(*oracle).interactions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AgentSimulator, DifferentSeedsUsuallyDiffer) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  auto run_once = [&](std::uint64_t seed) {
    Population population(9, protocol.num_states(), protocol.initial_state());
    AgentSimulator sim(table, std::move(population), seed);
    auto oracle = core::stable_pattern_oracle(protocol, 9);
    return sim.run(*oracle).interactions;
  };
  int distinct = 0;
  const auto base = run_once(0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    if (run_once(seed) != base) ++distinct;
  }
  EXPECT_GT(distinct, 0);
}

TEST(AgentSimulator, ResumePreservesOracleProgressAcrossChunks) {
  // Regression: run_bounded used to grant the budget in chunks via run(),
  // and every run() resets the oracle -- a quiescence lull spanning a chunk
  // boundary was discarded, so a window longer than the chunk could never
  // be satisfied.  resume() must continue the oracle where the previous
  // chunk stopped, making a chunked run identical to an unchunked one.
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint64_t seed = 11;
  // n = 13, k = 4 leaves one free agent whose flips stay effective after
  // stabilization, so the quiescence window does fill up.
  constexpr std::uint32_t kN = 13;
  constexpr std::uint64_t kWindow = 500;  // effective interactions
  constexpr std::uint64_t kChunk = 64;    // drawn pairs per grant
  constexpr std::uint64_t kBudget = 5'000'000;

  Population whole_pop(kN, protocol.num_states(), protocol.initial_state());
  AgentSimulator whole(table, std::move(whole_pop), seed);
  auto whole_oracle = make_quiescence_oracle(protocol, kWindow);
  const SimResult reference = whole.run(whole_oracle, kBudget);
  ASSERT_TRUE(reference.stabilized);

  Population chunked_pop(kN, protocol.num_states(), protocol.initial_state());
  AgentSimulator chunked(table, std::move(chunked_pop), seed);
  auto chunked_oracle = make_quiescence_oracle(protocol, kWindow);
  std::uint64_t total = 0;
  bool stabilized = false;
  bool first = true;
  while (!stabilized && total < kBudget) {
    const SimResult r = first ? chunked.run(chunked_oracle, kChunk)
                              : chunked.resume(chunked_oracle, kChunk);
    first = false;
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_TRUE(stabilized);
  EXPECT_EQ(total, reference.interactions);

  // Contrast: the buggy per-chunk run() pattern resets the oracle every 64
  // draws, so the 500-effective-interaction lull is never observed.
  Population reset_pop(kN, protocol.num_states(), protocol.initial_state());
  AgentSimulator resetting(table, std::move(reset_pop), seed);
  auto reset_oracle = make_quiescence_oracle(protocol, kWindow);
  total = 0;
  stabilized = false;
  while (!stabilized && total < 200'000) {
    const SimResult r = resetting.run(reset_oracle, kChunk);
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_FALSE(stabilized);
}

TEST(AgentSimulator, ObserverSeesEveryEffectiveInteraction) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  Population population(12, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), 3);
  std::uint64_t observed = 0;
  sim.set_observer([&](const SimEvent& event) {
    ++observed;
    EXPECT_NE(event.initiator, event.responder);
    // Events must describe a real rule of the protocol.
    const Transition t = protocol.delta(event.p, event.q);
    EXPECT_EQ(t.initiator, event.p_next);
    EXPECT_EQ(t.responder, event.q_next);
  });
  auto oracle = core::stable_pattern_oracle(protocol, 12);
  const SimResult result = sim.run(*oracle);
  EXPECT_EQ(observed, result.effective);
}

TEST(AgentSimulator, ReplayAppliesScheduleDeterministically) {
  // Replays the first grouping of the paper's Fig. 1 narrative on n = 6,
  // k = 6: all agents pair into initial', then a chain builds g1..g6.
  const core::KPartitionProtocol protocol(6);
  const TransitionTable table(protocol);
  Population population(6, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), 0);

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> schedule = {
      {0, 1}, {2, 3}, {4, 5},  // everyone -> initial'
      {4, 5},                  // both back to initial
      {0, 5},                  // initial' x initial -> m2 x g1
      {5, 1}, {5, 2}, {5, 3},  // wrong order: m-agent is the initiator
  };
  sim.replay({{0, 1}, {2, 3}, {4, 5}});
  for (std::uint32_t a = 0; a < 6; ++a) {
    EXPECT_EQ(sim.population().state_of(a),
              core::KPartitionProtocol::kInitialPrime);
  }
  sim.replay({{4, 5}});
  EXPECT_EQ(sim.population().state_of(4), core::KPartitionProtocol::kInitial);
  EXPECT_EQ(sim.population().state_of(5), core::KPartitionProtocol::kInitial);

  // (a1 in initial', a6 in initial): rule 5 mirrored -> a1 = m2? No:
  // (initial', initial) -> (m2, g1): initiator a1 was initial'.
  sim.replay({{0, 5}});
  EXPECT_EQ(sim.population().state_of(0), protocol.m(2));
  EXPECT_EQ(sim.population().state_of(5), protocol.g(1));

  // The m2 agent converts the remaining free agents one by one.
  sim.replay({{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(sim.population().state_of(1), protocol.g(2));
  EXPECT_EQ(sim.population().state_of(2), protocol.g(3));
  EXPECT_EQ(sim.population().state_of(3), protocol.g(4));
  EXPECT_EQ(sim.population().state_of(0), protocol.m(5));

  // Last free agent: rule 7 completes the set.
  sim.replay({{0, 4}});
  EXPECT_EQ(sim.population().state_of(0), protocol.g(6));
  EXPECT_EQ(sim.population().state_of(4), protocol.g(5));
  EXPECT_TRUE(core::matches_stable_pattern(protocol, 6,
                                           sim.population().counts()));
}

TEST(CountSimulator, PreservesPopulationSize) {
  const core::KPartitionProtocol protocol(5);
  const TransitionTable table(protocol);
  Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = 20;
  CountSimulator sim(table, initial, 11);
  NeverStableOracle oracle;
  sim.run(oracle, 5000);
  const auto& counts = sim.counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 20u);
}

TEST(CountSimulator, ConvergesToStablePattern) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = 17;
  CountSimulator sim(table, initial, 5);
  auto oracle = core::stable_pattern_oracle(protocol, 17);
  const SimResult result = sim.run(*oracle);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(core::matches_stable_pattern(protocol, 17, sim.counts()));
}

TEST(EngineAgreement, MeanInteractionsMatchAcrossEngines) {
  // Both engines sample the same pair distribution, so their mean
  // stabilization times must agree statistically.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 15;
  constexpr int kTrials = 60;

  double agent_mean = 0.0;
  double count_mean = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      Population population(n, protocol.num_states(), protocol.initial_state());
      AgentSimulator sim(table, std::move(population),
                         derive_stream_seed(1, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      agent_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
    {
      Counts initial(protocol.num_states(), 0);
      initial[protocol.initial_state()] = n;
      CountSimulator sim(table, initial,
                         derive_stream_seed(2, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      count_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
  }
  agent_mean /= kTrials;
  count_mean /= kTrials;
  // Means are a few hundred; allow a generous 35% relative gap to keep the
  // test deterministic-flake-free while still catching distribution bugs.
  EXPECT_LT(std::abs(agent_mean - count_mean) / agent_mean, 0.35)
      << "agent=" << agent_mean << " count=" << count_mean;
}

TEST(TraceRecorder, RecordsHumanReadableEvents) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  Population population(3, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), 0);
  TraceRecorder recorder(protocol);
  sim.set_observer(recorder.observer());
  sim.replay({{0, 1}});  // (initial, initial) -> (initial', initial')
  ASSERT_EQ(recorder.events().size(), 1u);
  const std::string text = recorder.to_string();
  EXPECT_NE(text.find("(a1,a2)"), std::string::npos);
  EXPECT_NE(text.find("initial"), std::string::npos);
}

TEST(TraceFormatting, FormatsAgentsAndCounts) {
  const core::KPartitionProtocol protocol(3);
  Population population(3, protocol.num_states(), protocol.initial_state());
  population.set_state(1, protocol.g(2));
  EXPECT_EQ(format_agents(protocol, population), "a1:initial a2:g2 a3:initial");
  EXPECT_EQ(format_counts(protocol, population.counts()),
            "{initial:2, g2:1}");
}

}  // namespace
}  // namespace ppk::pp
