#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

namespace ppk::analysis {
namespace {

TEST(MeasureKPartition, AllTrialsStabilize) {
  ExperimentOptions options;
  options.trials = 25;
  const auto result = measure_kpartition(4, 16, options);
  EXPECT_EQ(result.k, 4);
  EXPECT_EQ(result.n, 16u);
  EXPECT_EQ(result.trials, 25u);
  EXPECT_EQ(result.stabilized, 25u);
  EXPECT_GT(result.interactions.mean, 0.0);
  EXPECT_GE(result.interactions.max, result.interactions.mean);
  EXPECT_LE(result.effective.mean, result.interactions.mean);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(MeasureKPartition, ReproducibleAcrossCalls) {
  ExperimentOptions options;
  options.trials = 10;
  options.master_seed = 2718;
  const auto a = measure_kpartition(3, 12, options);
  const auto b = measure_kpartition(3, 12, options);
  EXPECT_DOUBLE_EQ(a.interactions.mean, b.interactions.mean);
  EXPECT_DOUBLE_EQ(a.interactions.stddev, b.interactions.stddev);
}

TEST(MeasureKPartition, SeedChangesResults) {
  ExperimentOptions options;
  options.trials = 10;
  options.master_seed = 1;
  const auto a = measure_kpartition(3, 12, options);
  options.master_seed = 2;
  const auto b = measure_kpartition(3, 12, options);
  EXPECT_NE(a.interactions.mean, b.interactions.mean);
}

TEST(MeasureKPartition, CountEngineWorksToo) {
  ExperimentOptions options;
  options.trials = 10;
  options.engine = pp::Engine::kCountVector;
  const auto result = measure_kpartition(5, 15, options);
  EXPECT_EQ(result.stabilized, 10u);
}

TEST(MeasureKPartition, MoreAgentsNeedMoreInteractions) {
  // The paper's headline n-scaling (Fig. 5), as a coarse monotonicity
  // property over a 4x population increase.
  ExperimentOptions options;
  options.trials = 15;
  const auto small = measure_kpartition(3, 12, options);
  const auto large = measure_kpartition(3, 48, options);
  EXPECT_GT(large.interactions.mean, small.interactions.mean);
}

TEST(MeasureKPartition, LargerKNeedsMoreInteractionsAtFixedN) {
  // The paper's k-scaling (Fig. 6), coarse version.
  ExperimentOptions options;
  options.trials = 15;
  const auto k3 = measure_kpartition(3, 24, options);
  const auto k6 = measure_kpartition(6, 24, options);
  EXPECT_GT(k6.interactions.mean, k3.interactions.mean);
}

}  // namespace
}  // namespace ppk::analysis
