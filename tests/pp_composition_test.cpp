// Tests for the parallel product construction, including the formal
// version of the paper's motivating argument: composing independent
// partitions does not yield a uniform joint partition.

#include "pp/composition.hpp"

#include <gtest/gtest.h>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/leader_election.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::pp {
namespace {

TEST(ProductProtocol, EncodeDecodeRoundTrips) {
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  const ProductProtocol product(a, b, ProductOutput::kPair);
  EXPECT_EQ(product.num_states(), a.num_states() * b.num_states());
  for (StateId sa = 0; sa < a.num_states(); ++sa) {
    for (StateId sb = 0; sb < b.num_states(); ++sb) {
      const StateId s = product.encode(sa, sb);
      const auto [da, db] = product.decode(s);
      EXPECT_EQ(da, sa);
      EXPECT_EQ(db, sb);
    }
  }
}

TEST(ProductProtocol, DeltaActsComponentwise) {
  const core::KPartitionProtocol a(2);
  const protocols::EpidemicProtocol b;
  const ProductProtocol product(a, b, ProductOutput::kFirst);
  // (initial, I) meets (initial, S): component a flips both to initial',
  // component b infects the responder.
  const StateId p = product.encode(0, protocols::EpidemicProtocol::kInformed);
  const StateId q =
      product.encode(0, protocols::EpidemicProtocol::kSusceptible);
  const Transition t = product.delta(p, q);
  EXPECT_EQ(t.initiator,
            product.encode(1, protocols::EpidemicProtocol::kInformed));
  EXPECT_EQ(t.responder,
            product.encode(1, protocols::EpidemicProtocol::kInformed));
}

TEST(ProductProtocol, SymmetricComponentsGiveASymmetricProduct) {
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  const ProductProtocol product(a, b, ProductOutput::kPair);
  const TransitionTable table(product);
  EXPECT_TRUE(table.is_symmetric());
  EXPECT_TRUE(table.is_swap_consistent());
}

TEST(ProductProtocol, AsymmetricComponentMakesProductAsymmetric) {
  const core::KPartitionProtocol a(2);
  const protocols::LeaderElectionProtocol b;
  const ProductProtocol product(a, b, ProductOutput::kSecond);
  const TransitionTable table(product);
  EXPECT_FALSE(table.is_symmetric());
}

TEST(ProductProtocol, EachComponentStillSolvesItsOwnProblem) {
  // The product of 2-partition and 3-partition solves *each* partition
  // problem under global fairness (projected outputs), exhaustively for
  // n = 6.
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  for (ProductOutput output : {ProductOutput::kFirst, ProductOutput::kSecond}) {
    const ProductProtocol product(a, b, output);
    const TransitionTable table(product);
    const auto verdict = verify::verify_uniform_partition(product, table, 6);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_TRUE(verdict.solves) << verdict.failure;
  }
}

TEST(ProductProtocol, PairOutputIsNotAUniformPartitionThePapersPoint) {
  // The introduction's argument, verified: the joint output of two
  // independent uniform partitions is NOT a uniform 6-partition -- some
  // globally fair execution stabilizes with misaligned components.
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  const ProductProtocol product(a, b, ProductOutput::kPair);
  const TransitionTable table(product);
  EXPECT_EQ(product.num_groups(), 6);
  const auto verdict = verify::verify_uniform_partition(product, table, 6);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
}

TEST(ProductProtocol, SimulationStabilizesBothComponents) {
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  const ProductProtocol product(a, b, ProductOutput::kPair);
  const TransitionTable table(product);

  const std::uint32_t n = 18;
  Population population(n, product.num_states(), product.initial_state());
  AgentSimulator sim(table, std::move(population), 42);
  // Stop when both component count-patterns hold: run in slices and test.
  bool done = false;
  for (int slice = 0; slice < 2000 && !done; ++slice) {
    NeverStableOracle oracle;
    sim.run(oracle, 1000);
    Counts ca(a.num_states(), 0);
    Counts cb(b.num_states(), 0);
    for (std::uint32_t agent = 0; agent < n; ++agent) {
      const auto [sa, sb] = product.decode(sim.population().state_of(agent));
      ++ca[sa];
      ++cb[sb];
    }
    done = core::matches_stable_pattern(a, n, ca) &&
           core::matches_stable_pattern(b, n, cb);
  }
  EXPECT_TRUE(done);
}

TEST(ProductProtocol, ComposesTheNewFamiliesRegressionForHardCodedBound) {
  // Regression: the constructor used to check the state product against a
  // hard-coded UINT16_MAX with a 32-bit multiply instead of the StateId
  // type's own limit.  The new families must compose with the paper's
  // protocol: graph-bipartition x k-partition(3) (5 * 7 = 35 states) and
  // weak-k-partition(4) x k-partition(3) (13 * 7 = 91 states).
  const core::GraphBipartitionProtocol bip;
  const core::WeakKPartitionProtocol weak(4);
  const core::KPartitionProtocol paper(3);

  const ProductProtocol graph_product(bip, paper, ProductOutput::kPair);
  EXPECT_EQ(graph_product.num_states(), 35);
  EXPECT_EQ(graph_product.num_groups(), 6);
  const auto [ba, bb] = graph_product.decode(graph_product.initial_state());
  EXPECT_EQ(ba, bip.initial_state());
  EXPECT_EQ(bb, paper.initial_state());

  const ProductProtocol weak_product(weak, paper, ProductOutput::kPair);
  EXPECT_EQ(weak_product.num_states(), 13 * 7);
  EXPECT_EQ(weak_product.num_groups(), 12);

  // Both components still solve their own partition problem under global
  // fairness, exhaustively at n = 6 (projected outputs).
  const ProductProtocol projected(bip, paper, ProductOutput::kFirst);
  const TransitionTable table(projected);
  const auto verdict = verify::verify_uniform_partition(projected, table, 6);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(ProductProtocol, StateNamesCombineComponents) {
  const core::KPartitionProtocol a(2);
  const core::KPartitionProtocol b(3);
  const ProductProtocol product(a, b, ProductOutput::kPair);
  EXPECT_EQ(product.state_name(product.initial_state()),
            "<initial,initial>");
}

}  // namespace
}  // namespace ppk::pp
