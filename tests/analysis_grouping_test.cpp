#include "analysis/grouping_tracker.hpp"

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"

namespace ppk::analysis {
namespace {

TEST(GroupingBreakdown, ComputesIncrementsFromMarks) {
  pp::MonteCarloResult result;
  // Two synthetic trials with NI = (10, 30, 70) and (20, 40, 60).
  pp::TrialResult a;
  a.interactions = 100;
  a.watch_marks = {10, 30, 70};
  pp::TrialResult b;
  b.interactions = 80;
  b.watch_marks = {20, 40, 60};
  result.trials = {a, b};

  const auto breakdown = grouping_breakdown(result);
  ASSERT_EQ(breakdown.groupings, 3u);
  // NI'_1: (10 + 20) / 2; NI'_2: (20 + 20) / 2; NI'_3: (40 + 20) / 2.
  EXPECT_DOUBLE_EQ(breakdown.mean_increment[0], 15.0);
  EXPECT_DOUBLE_EQ(breakdown.mean_increment[1], 20.0);
  EXPECT_DOUBLE_EQ(breakdown.mean_increment[2], 30.0);
  // Tails: (100 - 70) and (80 - 60) -> mean 25.
  EXPECT_DOUBLE_EQ(breakdown.mean_tail, 25.0);
}

TEST(GroupingBreakdown, EmptyResultIsEmpty) {
  const auto breakdown = grouping_breakdown(pp::MonteCarloResult{});
  EXPECT_EQ(breakdown.groupings, 0u);
  EXPECT_TRUE(breakdown.mean_increment.empty());
}

TEST(GroupingBreakdown, NoMarksMeansOnlyTail) {
  pp::MonteCarloResult result;
  pp::TrialResult t;
  t.interactions = 42;
  result.trials = {t};
  const auto breakdown = grouping_breakdown(result);
  EXPECT_EQ(breakdown.groupings, 0u);
  EXPECT_DOUBLE_EQ(breakdown.mean_tail, 42.0);
}

TEST(GroupingBreakdown, IntegratesWithRealExperiment) {
  // End to end on a real run: increments must be positive and sum (with
  // the tail) to the mean total interaction count.
  ExperimentOptions options;
  options.trials = 20;
  options.track_groupings = true;
  const auto result = measure_kpartition(3, 10, options);
  ASSERT_EQ(result.stabilized, 20u);
  ASSERT_EQ(result.breakdown.groupings, 3u);  // floor(10/3)

  double sum = result.breakdown.mean_tail;
  for (double inc : result.breakdown.mean_increment) {
    EXPECT_GT(inc, 0.0);
    sum += inc;
  }
  EXPECT_NEAR(sum, result.interactions.mean, 1e-6);
}

TEST(GroupingBreakdown, LaterGroupingsCostMoreOnAverage) {
  // The paper's observation NI'_1 < NI'_2 < ... (fewer uncommitted agents
  // make each successive grouping slower).  Checked on a configuration
  // with enough trials for the ordering to be statistically solid.
  ExperimentOptions options;
  options.trials = 60;
  options.track_groupings = true;
  const auto result = measure_kpartition(4, 24, options);
  ASSERT_EQ(result.breakdown.groupings, 6u);
  EXPECT_LT(result.breakdown.mean_increment.front(),
            result.breakdown.mean_increment.back());
}

}  // namespace
}  // namespace ppk::analysis
