// Tests of the CSR sparse-matrix kit (util/csr.hpp): builder canonical
// form, both iterative solvers against hand-solvable systems, and the
// residual certificate's refusal to bless a non-converged answer.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/csr.hpp"

namespace ppk::util {
namespace {

TEST(CsrBuilder, SortsColumnsAndMergesDuplicates) {
  CsrBuilder builder(2, 3);
  builder.add(0, 2, 1.0);
  builder.add(0, 0, 2.0);
  builder.add(0, 2, 0.5);  // duplicate: must merge additively
  builder.add(1, 1, 4.0);
  const CsrMatrix a = builder.build();

  ASSERT_EQ(a.rows, 2u);
  ASSERT_EQ(a.cols, 3u);
  ASSERT_EQ(a.nnz(), 3u);
  // Row 0: columns ascending, duplicate merged.
  EXPECT_EQ(a.col[0], 0u);
  EXPECT_DOUBLE_EQ(a.value[0], 2.0);
  EXPECT_EQ(a.col[1], 2u);
  EXPECT_DOUBLE_EQ(a.value[1], 1.5);
  // Row 1.
  EXPECT_EQ(a.col[2], 1u);
  EXPECT_DOUBLE_EQ(a.value[2], 4.0);
}

TEST(CsrSolve, GaussSeidelSolvesADiagonallyDominantSystem) {
  // [ 4 -1  0 ] [x]   [ 2 ]        x = (1, 2, 3)
  // [-1  4 -1 ] [y] = [ 4 ]
  // [ 0 -1  4 ] [z]   [10 ]
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, -1.0);
  builder.add(1, 0, -1.0);
  builder.add(1, 1, 4.0);
  builder.add(1, 2, -1.0);
  builder.add(2, 1, -1.0);
  builder.add(2, 2, 4.0);
  const CsrMatrix a = builder.build();
  const std::vector<double> b = {2.0, 4.0, 10.0};

  std::vector<double> x(3, 0.0);
  const SolveCertificate cert = solve_sparse(a, b, x);
  ASSERT_TRUE(cert.converged) << "residual " << cert.residual;
  EXPECT_LE(cert.residual, cert.residual_bound);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(CsrSolve, JacobiAgreesWithGaussSeidel) {
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 5.0);
  builder.add(0, 2, 1.0);
  builder.add(1, 1, 3.0);
  builder.add(1, 0, -1.0);
  builder.add(2, 2, 6.0);
  builder.add(2, 1, 2.0);
  const CsrMatrix a = builder.build();
  const std::vector<double> b = {7.0, -1.0, 4.0};

  std::vector<double> gs(3, 0.0);
  SolveOptions gs_options;
  gs_options.method = SolveOptions::Method::kGaussSeidel;
  ASSERT_TRUE(solve_sparse(a, b, gs, gs_options).converged);

  std::vector<double> jacobi(3, 0.0);
  SolveOptions jacobi_options;
  jacobi_options.method = SolveOptions::Method::kJacobi;
  ASSERT_TRUE(solve_sparse(a, b, jacobi, jacobi_options).converged);

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(gs[i], jacobi[i], 1e-10) << "component " << i;
  }
}

TEST(CsrSolve, MissingDiagonalFailsTheCertificateInsteadOfDividing) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);  // row 1 has no diagonal entry
  const CsrMatrix a = builder.build();
  const std::vector<double> b = {1.0, 1.0};

  std::vector<double> x(2, 0.0);
  const SolveCertificate cert = solve_sparse(a, b, x);
  EXPECT_FALSE(cert.converged);
}

TEST(CsrSolve, NonConvergentSystemReportsFailure) {
  // Not diagonally dominant and spectral radius of the iteration matrix
  // > 1: both stationary methods diverge, and the certificate must say so
  // rather than returning garbage as "solved".
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 3.0);
  builder.add(1, 0, 3.0);
  builder.add(1, 1, 1.0);
  const CsrMatrix a = builder.build();
  const std::vector<double> b = {1.0, 2.0};

  std::vector<double> x(2, 0.0);
  SolveOptions options;
  options.max_sweeps = 200;
  const SolveCertificate cert = solve_sparse(a, b, x, options);
  EXPECT_FALSE(cert.converged);
  EXPECT_GT(cert.residual, cert.residual_bound);
}

TEST(CompensatedSumTest, RecoversMassLostToCancellation) {
  // 1 + 1e-16 (x many) naively stays 1; Neumaier keeps the tail.
  CompensatedSum sum;
  sum.add(1.0);
  for (int i = 0; i < 1000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1000e-16, 1e-18);
}

}  // namespace
}  // namespace ppk::util
