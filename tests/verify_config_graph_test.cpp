// Tests of the reachable-configuration explorer and SCC machinery on
// protocols whose graphs are small enough to reason about by hand.

#include "verify/config_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/bipartition.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"

namespace ppk::verify {
namespace {

pp::Counts initial_counts(const pp::Protocol& protocol, std::uint32_t n) {
  pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

TEST(ConfigGraph, LeaderElectionChainIsALine) {
  // From n leaders the only reachable configs are (n-j leaders, j
  // followers): a straight line of n configurations.
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const ConfigGraph graph(table, initial_counts(protocol, 5));
  ASSERT_TRUE(graph.complete());
  EXPECT_EQ(graph.num_configs(), 5u);

  // Exactly one config has no outgoing edges: the single-leader one.
  std::size_t terminal = 0;
  for (std::size_t c = 0; c < graph.num_configs(); ++c) {
    if (graph.edges(c).empty()) {
      ++terminal;
      EXPECT_EQ(graph.config(c)[protocols::LeaderElectionProtocol::kLeader],
                1u);
    }
  }
  EXPECT_EQ(terminal, 1u);
}

TEST(ConfigGraph, LeaderElectionSccsAreSingletonsWithOneBottom) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const ConfigGraph graph(table, initial_counts(protocol, 6));
  ASSERT_TRUE(graph.complete());
  EXPECT_EQ(graph.num_sccs(), graph.num_configs());  // acyclic: all singleton
  std::size_t bottoms = 0;
  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    if (graph.is_bottom_scc(scc)) ++bottoms;
  }
  EXPECT_EQ(bottoms, 1u);
}

TEST(ConfigGraph, EdgesCarryTheAppliedRule) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const ConfigGraph graph(table, initial_counts(protocol, 3));
  ASSERT_TRUE(graph.complete());
  // The initial config's only edge applies (L, L).
  bool found_initial = false;
  for (std::size_t c = 0; c < graph.num_configs(); ++c) {
    if (graph.config(c)[0] == 3) {
      found_initial = true;
      ASSERT_EQ(graph.edges(c).size(), 1u);
      EXPECT_EQ(graph.edges(c)[0].p, protocols::LeaderElectionProtocol::kLeader);
      EXPECT_EQ(graph.edges(c)[0].q, protocols::LeaderElectionProtocol::kLeader);
    }
  }
  EXPECT_TRUE(found_initial);
}

TEST(ConfigGraph, BipartitionHasFlippingBottomSccs) {
  // n = 4: stable configs have 2 g1 + 2 g2 and nothing else -- a singleton
  // silent bottom SCC.  n = 5 leaves one free agent that flips forever, so
  // the bottom SCC has exactly two configurations.
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  {
    const ConfigGraph graph(table, initial_counts(protocol, 4));
    ASSERT_TRUE(graph.complete());
    for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
      if (!graph.is_bottom_scc(scc)) continue;
      EXPECT_EQ(graph.members_of_scc(scc).size(), 1u);
    }
  }
  {
    const ConfigGraph graph(table, initial_counts(protocol, 5));
    ASSERT_TRUE(graph.complete());
    std::size_t bottoms = 0;
    for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
      if (!graph.is_bottom_scc(scc)) continue;
      ++bottoms;
      const auto members = graph.members_of_scc(scc);
      EXPECT_EQ(members.size(), 2u);  // free agent toggling initial/initial'
      for (auto c : members) {
        EXPECT_EQ(graph.config(c)[core::BipartitionProtocol::kG1], 2u);
        EXPECT_EQ(graph.config(c)[core::BipartitionProtocol::kG2], 2u);
      }
    }
    EXPECT_EQ(bottoms, 1u);
  }
}

TEST(ConfigGraph, SccIdsAreReverseTopological) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const ConfigGraph graph(table, initial_counts(protocol, 5));
  for (std::size_t c = 0; c < graph.num_configs(); ++c) {
    for (const Edge& e : graph.edges(c)) {
      EXPECT_GE(graph.scc_of()[static_cast<std::uint32_t>(c)],
                graph.scc_of()[e.target]);
    }
  }
}

TEST(ConfigGraph, RespectsMaxConfigsLimit) {
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  ExploreOptions options;
  options.max_configs = 3;
  const ConfigGraph graph(table, initial_counts(protocol, 30), options);
  EXPECT_FALSE(graph.complete());
}

TEST(ConfigGraph, MembersOfSccPartitionTheConfigs) {
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const ConfigGraph graph(table, initial_counts(protocol, 6));
  ASSERT_TRUE(graph.complete());
  std::set<std::uint32_t> seen;
  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    for (auto c : graph.members_of_scc(scc)) {
      EXPECT_TRUE(seen.insert(c).second) << "config in two SCCs";
    }
  }
  EXPECT_EQ(seen.size(), graph.num_configs());
}

}  // namespace
}  // namespace ppk::verify
