#include "util/fenwick.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ppk {
namespace {

/// The reference the tree replaced: left-to-right prefix scan selection.
std::size_t linear_sample(const std::vector<std::uint32_t>& weights,
                          std::uint64_t u) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  ADD_FAILURE() << "u out of range";
  return weights.size();
}

TEST(FenwickTree, AssignComputesTotalsAndPrefixSums) {
  const std::vector<std::uint32_t> weights = {3, 0, 5, 1, 0, 7};
  FenwickTree tree(weights);
  EXPECT_EQ(tree.size(), weights.size());
  EXPECT_EQ(tree.total(), 16u);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= weights.size(); ++i) {
    EXPECT_EQ(tree.prefix_sum(i), running) << "prefix " << i;
    if (i < weights.size()) running += weights[i];
  }
}

TEST(FenwickTree, SampleMatchesLinearScanForEveryDraw) {
  // Bit-compatibility contract: for every u, the descent must select the
  // same index a left-to-right scan does (this is what keeps the count
  // engine's output identical across the upgrade).
  const std::vector<std::uint32_t> weights = {2, 0, 1, 4, 0, 0, 3, 5};
  const FenwickTree tree(weights);
  for (std::uint64_t u = 0; u < tree.total(); ++u) {
    EXPECT_EQ(tree.sample(u), linear_sample(weights, u)) << "u=" << u;
  }
}

TEST(FenwickTree, SampleMatchesLinearScanAfterUpdates) {
  Xoshiro256 rng(42);
  std::vector<std::uint32_t> weights(13, 1);
  FenwickTree tree(weights);
  for (int round = 0; round < 200; ++round) {
    const auto i = static_cast<std::size_t>(rng.below(weights.size()));
    if (rng.below(2) == 0 && weights[i] > 0) {
      weights[i] -= 1;
      tree.add(i, -1);
    } else {
      weights[i] += 1;
      tree.add(i, +1);
    }
    ASSERT_GT(tree.total(), 0u);
    const std::uint64_t u = rng.below(tree.total());
    ASSERT_EQ(tree.sample(u), linear_sample(weights, u)) << "round " << round;
  }
}

TEST(FenwickTree, RebuildEqualsAssignWithoutReallocating) {
  std::vector<std::uint32_t> first = {3, 0, 7, 1, 4, 9, 2};
  std::vector<std::uint32_t> second = {1, 5, 0, 8, 2, 2, 6};
  FenwickTree via_assign(second);
  FenwickTree via_rebuild(first);
  via_rebuild.rebuild(second);
  EXPECT_EQ(via_rebuild.size(), via_assign.size());
  EXPECT_EQ(via_rebuild.total(), via_assign.total());
  for (std::size_t i = 0; i <= second.size(); ++i) {
    EXPECT_EQ(via_rebuild.prefix_sum(i), via_assign.prefix_sum(i)) << i;
  }
  for (std::uint64_t u = 0; u < via_assign.total(); ++u) {
    EXPECT_EQ(via_rebuild.sample(u), via_assign.sample(u)) << "u=" << u;
  }
}

TEST(FenwickTree, NonPowerOfTwoSizesCoverEveryIndex) {
  for (std::size_t size : {1u, 2u, 3u, 5u, 7u, 9u, 16u, 17u, 31u}) {
    std::vector<std::uint32_t> weights(size, 2);
    const FenwickTree tree(weights);
    std::vector<bool> hit(size, false);
    for (std::uint64_t u = 0; u < tree.total(); ++u) {
      hit[tree.sample(u)] = true;
    }
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_TRUE(hit[i]) << "size " << size << " index " << i;
    }
  }
}

}  // namespace
}  // namespace ppk
