// End-to-end convergence of Algorithm 1 under the uniform-random scheduler
// (which is globally fair with probability 1), plus run-time property
// checks of the paper's lemmas along real executions.

#include <gtest/gtest.h>

#include <tuple>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/transition_table.hpp"

namespace ppk::core {
namespace {

using Params = std::tuple<pp::GroupId /*k*/, std::uint32_t /*n*/>;

class Convergence : public ::testing::TestWithParam<Params> {};

TEST_P(Convergence, ReachesTheStablePatternAndUniformPartition) {
  const auto [k, n] = GetParam();
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 0xABCDEF);
  auto oracle = stable_pattern_oracle(protocol, n);
  const pp::SimResult result = sim.run(*oracle, 500'000'000ULL);

  ASSERT_TRUE(result.stabilized) << "k=" << int{k} << " n=" << n;
  EXPECT_TRUE(matches_stable_pattern(protocol, n, sim.population().counts()));

  const auto sizes = sim.population().group_sizes(protocol);
  EXPECT_TRUE(pp::is_uniform_partition(sizes));
  std::uint32_t total = 0;
  for (auto s : sizes) total += s;
  EXPECT_EQ(total, n);
}

TEST_P(Convergence, CountEngineReachesTheSamePattern) {
  const auto [k, n] = GetParam();
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  pp::CountSimulator sim(table, initial, 0xFEDCBA);
  auto oracle = stable_pattern_oracle(protocol, n);
  const pp::SimResult result = sim.run(*oracle, 500'000'000ULL);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(matches_stable_pattern(protocol, n, sim.counts()));
}

// Sweep k and n including every residue class of n mod k (the paper's
// Fig. 3 shows the residue matters).
INSTANTIATE_TEST_SUITE_P(
    Grid, Convergence,
    ::testing::Values(
        Params{2, 3}, Params{2, 4}, Params{2, 17}, Params{2, 64},
        Params{3, 3}, Params{3, 4}, Params{3, 5}, Params{3, 30},
        Params{4, 5}, Params{4, 8}, Params{4, 9}, Params{4, 10},
        Params{4, 11}, Params{4, 40}, Params{5, 7}, Params{5, 25},
        Params{6, 13}, Params{6, 36}, Params{7, 21}, Params{8, 16},
        Params{10, 23}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

class InvariantAlongExecution : public ::testing::TestWithParam<Params> {};

TEST_P(InvariantAlongExecution, Lemma1HoldsAtEveryEffectiveStep) {
  const auto [k, n] = GetParam();
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 31337);

  std::uint64_t checked = 0;
  bool violated = false;
  sim.set_observer([&](const pp::SimEvent&) {
    ++checked;
    if (!lemma1_holds(protocol, sim.population().counts())) violated = true;
  });
  auto oracle = stable_pattern_oracle(protocol, n);
  const pp::SimResult result = sim.run(*oracle, 50'000'000ULL);
  ASSERT_TRUE(result.stabilized);
  EXPECT_FALSE(violated);
  EXPECT_GT(checked, 0u);
}

TEST_P(InvariantAlongExecution, GkCountNeverDecreases) {
  const auto [k, n] = GetParam();
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 777);

  const pp::StateId gk = protocol.g(k);
  std::uint32_t last = 0;
  bool decreased = false;
  sim.set_observer([&](const pp::SimEvent&) {
    const std::uint32_t now = sim.population().counts()[gk];
    if (now < last) decreased = true;
    last = now;
  });
  auto oracle = stable_pattern_oracle(protocol, n);
  ASSERT_TRUE(sim.run(*oracle, 50'000'000ULL).stabilized);
  EXPECT_FALSE(decreased);
  EXPECT_EQ(last, n / k);  // Lemma 4: #gk ends at floor(n/k)
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantAlongExecution,
    ::testing::Values(Params{3, 8}, Params{3, 9}, Params{4, 10}, Params{4, 12},
                      Params{5, 11}, Params{5, 15}, Params{6, 14},
                      Params{7, 15}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(ConvergenceEdgeCases, SmallestPopulationNEquals3) {
  // n = 3 is the paper's minimum; for k = 3 the stable pattern is one agent
  // per group with no leftover.
  const KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  pp::Population population(3, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 8);
  auto oracle = stable_pattern_oracle(protocol, 3);
  ASSERT_TRUE(sim.run(*oracle, 10'000'000ULL).stabilized);
  const auto sizes = sim.population().group_sizes(protocol);
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(ConvergenceEdgeCases, KLargerThanHalfOfN) {
  // n < 2k: floor(n/k) = 1, so one full set plus n - k leftovers.
  const KPartitionProtocol protocol(6);
  const pp::TransitionTable table(protocol);
  pp::Population population(9, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 15);
  auto oracle = stable_pattern_oracle(protocol, 9);
  ASSERT_TRUE(sim.run(*oracle, 100'000'000ULL).stabilized);
  const auto sizes = sim.population().group_sizes(protocol);
  EXPECT_TRUE(pp::is_uniform_partition(sizes));
}

TEST(ConvergenceEdgeCases, StablePatternIsTrulySilentForGroupChanges) {
  // After stabilization, run 10k more interactions: group sizes must not
  // move (the stable configuration's definition).
  const KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::Population population(13, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 4);
  auto oracle = stable_pattern_oracle(protocol, 13);
  ASSERT_TRUE(sim.run(*oracle, 100'000'000ULL).stabilized);
  const auto sizes_before = sim.population().group_sizes(protocol);

  pp::NeverStableOracle never;
  sim.run(never, 10'000);
  EXPECT_EQ(sim.population().group_sizes(protocol), sizes_before);
  EXPECT_TRUE(matches_stable_pattern(protocol, 13, sim.population().counts()));
}

}  // namespace
}  // namespace ppk::core
