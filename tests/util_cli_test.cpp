#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ppk {
namespace {

TEST(Cli, DefaultsAreUsedWithoutArguments) {
  Cli cli("prog", "test");
  auto trials = cli.flag<int>("trials", 100, "trial count");
  auto fast = cli.flag<bool>("fast", false, "fast mode");
  EXPECT_EQ(cli.try_parse({}), std::nullopt);
  EXPECT_EQ(*trials, 100);
  EXPECT_FALSE(*fast);
}

TEST(Cli, ParsesSpaceSeparatedValue) {
  Cli cli("prog", "test");
  auto trials = cli.flag<int>("trials", 100, "trial count");
  EXPECT_EQ(cli.try_parse({"--trials", "7"}), std::nullopt);
  EXPECT_EQ(*trials, 7);
}

TEST(Cli, ParsesEqualsSeparatedValue) {
  Cli cli("prog", "test");
  auto seed = cli.flag<long long>("seed", 1, "rng seed");
  EXPECT_EQ(cli.try_parse({"--seed=987654321012"}), std::nullopt);
  EXPECT_EQ(*seed, 987654321012LL);
}

TEST(Cli, BoolFlagWithoutValueMeansTrue) {
  Cli cli("prog", "test");
  auto fast = cli.flag<bool>("fast", false, "fast mode");
  EXPECT_EQ(cli.try_parse({"--fast"}), std::nullopt);
  EXPECT_TRUE(*fast);
}

TEST(Cli, BoolFlagAcceptsExplicitValues) {
  Cli cli("prog", "test");
  auto fast = cli.flag<bool>("fast", true, "fast mode");
  EXPECT_EQ(cli.try_parse({"--fast=false"}), std::nullopt);
  EXPECT_FALSE(*fast);
  EXPECT_EQ(cli.try_parse({"--fast=yes"}), std::nullopt);
  EXPECT_TRUE(*fast);
}

TEST(Cli, ParsesDoubleAndString) {
  Cli cli("prog", "test");
  auto scale = cli.flag<double>("scale", 1.0, "scale factor");
  auto out = cli.flag<std::string>("out", "a.csv", "output path");
  EXPECT_EQ(cli.try_parse({"--scale", "2.5", "--out", "b.csv"}), std::nullopt);
  EXPECT_DOUBLE_EQ(*scale, 2.5);
  EXPECT_EQ(*out, "b.csv");
}

TEST(Cli, UnknownFlagIsAnError) {
  Cli cli("prog", "test");
  auto error = cli.try_parse({"--nope"});
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unknown flag"), std::string::npos);
}

TEST(Cli, MalformedNumberIsAnError) {
  Cli cli("prog", "test");
  cli.flag<int>("trials", 100, "trial count");
  auto error = cli.try_parse({"--trials", "abc"});
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("number"), std::string::npos);
}

TEST(Cli, MissingValueIsAnError) {
  Cli cli("prog", "test");
  cli.flag<int>("trials", 100, "trial count");
  auto error = cli.try_parse({"--trials"});
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("needs a value"), std::string::npos);
}

TEST(Cli, PositionalArgumentIsAnError) {
  Cli cli("prog", "test");
  auto error = cli.try_parse({"stray"});
  ASSERT_TRUE(error.has_value());
}

TEST(Cli, HelpIsReported) {
  Cli cli("prog", "test");
  auto error = cli.try_parse({"--help"});
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(*error, "help");
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  Cli cli("fig3", "Regenerates Figure 3.");
  cli.flag<int>("trials", 100, "trials per point");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("fig3"), std::string::npos);
  EXPECT_NE(usage.find("--trials"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

TEST(Cli, LaterOccurrenceWins) {
  Cli cli("prog", "test");
  auto trials = cli.flag<int>("trials", 1, "trial count");
  EXPECT_EQ(cli.try_parse({"--trials", "2", "--trials", "3"}), std::nullopt);
  EXPECT_EQ(*trials, 3);
}

}  // namespace
}  // namespace ppk
