// Engine snapshot/restore contract (pp/snapshot.hpp): for every engine,
// restoring a mid-run snapshot into a freshly constructed engine and
// resuming is bit-identical to the engine that was snapshotted -- same
// interaction totals, same trajectory, and (the strongest form) the same
// snapshot at the end.  Also covers the text serialization round-trip
// (io/snapshot_io.hpp) and the oracle save_state/restore_state hooks the
// campaign layer persists alongside engine snapshots.
//
// The conformance fuzzer's snapshot-resume net checks the same contract
// against randomized protocols; these tests are the deterministic,
// per-engine unit-level version that fails with a nameable engine.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "io/snapshot_io.hpp"
#include "pp/adversarial.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/faults.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"

namespace {

using ppk::core::KPartitionProtocol;
using ppk::pp::Counts;
using ppk::pp::Population;
using ppk::pp::Snapshot;
using ppk::pp::StabilityOracle;
using ppk::pp::StateId;

constexpr std::uint64_t kSeed = 0xDEC0DEULL;
constexpr std::uint64_t kCut = 2'000;
constexpr std::uint64_t kRest = 3'000;

/// Never stable: the engines burn their full grants, so both sides of the
/// comparison see identical grant sequences and the test isolates engine
/// state from oracle state.
class NeverStable final : public StabilityOracle {
 public:
  void reset(const Counts&) override {}
  void on_transition(StateId, StateId, StateId, StateId) override {}
  [[nodiscard]] bool stable() const override { return false; }
};

/// Runs `make()`-built engines through the snapshot contract:
/// run(cut) -> snapshot -> text round-trip -> restore into a fresh engine
/// -> resume both -> demand identical results and identical final
/// snapshots.  `prepare` reinstalls constructor-time inputs that restore()
/// does not carry (the churn engine's fault schedule).
template <typename MakeSim, typename Prepare>
void expect_roundtrip(MakeSim make, Prepare prepare,
                      std::uint64_t cut = kCut, std::uint64_t rest = kRest) {
  auto original = make();
  prepare(original);
  NeverStable oracle_a;
  const auto first = original.run(oracle_a, cut);
  // Silence-detecting engines (jump, live-edge) may stop short of the cut
  // on a dead configuration; the contract still holds because both sides
  // of the comparison see the identical grant sequence.
  ASSERT_GT(first.interactions, 0u);

  const Snapshot snap = original.snapshot();
  const std::string text = ppk::io::serialize_snapshot(snap);
  std::string error;
  const auto parsed = ppk::io::parse_snapshot(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, snap);

  const auto rest_a = original.resume(oracle_a, rest);

  auto restored = make();
  prepare(restored);
  restored.restore(*parsed);
  NeverStable oracle_b;
  const auto rest_b = restored.resume(oracle_b, rest);

  EXPECT_EQ(rest_a.interactions, rest_b.interactions);
  EXPECT_EQ(rest_a.effective, rest_b.effective);
  EXPECT_EQ(rest_a.stabilized, rest_b.stabilized);
  EXPECT_EQ(original.snapshot(), restored.snapshot());
}

template <typename MakeSim>
void expect_roundtrip(MakeSim make) {
  expect_roundtrip(std::move(make), [](auto&) {});
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : protocol_(3), table_(protocol_) {}

  [[nodiscard]] Population population(std::uint32_t n) const {
    return Population(n, protocol_.num_states(), protocol_.initial_state());
  }

  [[nodiscard]] Counts initial(std::uint32_t n) const {
    Counts counts(protocol_.num_states(), 0);
    counts[protocol_.initial_state()] = n;
    return counts;
  }

  KPartitionProtocol protocol_;
  ppk::pp::TransitionTable table_;
};

TEST_F(SnapshotTest, AgentSimulatorRoundTrips) {
  expect_roundtrip(
      [&] { return ppk::pp::AgentSimulator(table_, population(30), kSeed); });
}

TEST_F(SnapshotTest, CountSimulatorRoundTrips) {
  expect_roundtrip(
      [&] { return ppk::pp::CountSimulator(table_, initial(30), kSeed); });
}

TEST_F(SnapshotTest, JumpSimulatorRoundTrips) {
  // Short cut: the jump engine stalls once the configuration goes silent
  // (~700 drawn pairs at n = 30), and the snapshot should land mid-life.
  expect_roundtrip(
      [&] { return ppk::pp::JumpSimulator(table_, initial(30), kSeed); },
      [](auto&) {}, /*cut=*/300, /*rest=*/5'000);
}

TEST_F(SnapshotTest, BatchSimulatorRoundTrips) {
  expect_roundtrip(
      [&] { return ppk::pp::BatchSimulator(table_, initial(200), kSeed); });
}

TEST_F(SnapshotTest, BatchShardedSimulatorRoundTrips) {
  // Pool dispatch forced (grain 0, 2 workers): the snapshot must capture
  // dynamic state only, so restoring while the parallel path runs still
  // round-trips bit-identically.
  expect_roundtrip(
      [&] {
        return ppk::pp::BatchShardedSimulator(table_, initial(200), kSeed,
                                              /*threads=*/2);
      },
      [](auto& sim) { sim.set_parallel_grain(0); });
}

TEST_F(SnapshotTest, GraphSimulatorRoundTrips) {
  expect_roundtrip([&] {
    return ppk::pp::GraphSimulator(
        table_, ppk::pp::InteractionGraph::ring(24), population(24), kSeed);
  });
}

TEST_F(SnapshotTest, GraphJumpSimulatorRoundTrips) {
  expect_roundtrip([&] {
    return ppk::pp::GraphJumpSimulator(
        table_, ppk::pp::InteractionGraph::erdos_renyi(24, 0.3, 7),
        population(24), kSeed);
  });
}

TEST_F(SnapshotTest, AdversarialSimulatorRoundTrips) {
  expect_roundtrip([&] {
    return ppk::pp::AdversarialSimulator(protocol_, table_, population(24),
                                         1.0, kSeed);
  });
}

TEST_F(SnapshotTest, WeakKPartitionFamilyRoundTrips) {
  // The weak-fairness family through the snapshot contract: the agent
  // engine (short cut -- the protocol goes silent quickly at this n), and
  // the weak-round-robin scheduler whose snapshot carries the unscheduled
  // remainder of the current round through the *text* serialization.
  const ppk::core::WeakKPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const auto pop = [&](std::uint32_t n) {
    return Population(n, protocol.num_states(), protocol.initial_state());
  };
  expect_roundtrip(
      [&] { return ppk::pp::AgentSimulator(table, pop(30), kSeed); },
      [](auto&) {}, /*cut=*/300, /*rest=*/5'000);
  expect_roundtrip(
      [&] {
        return ppk::pp::AdversarialSimulator(
            protocol, table, pop(24),
            ppk::pp::FairnessSpec::weak_round_robin(), kSeed);
      },
      [](auto&) {}, /*cut=*/300, /*rest=*/2'000);
}

TEST_F(SnapshotTest, GraphBipartitionFamilyRoundTrips) {
  // The arbitrary-graph family on its home engine (live-edge, sparse
  // star).  n is odd, so one parked signal keeps hopping forever and the
  // run never goes silent before the cut.
  const ppk::core::GraphBipartitionProtocol protocol;
  const ppk::pp::TransitionTable table(protocol);
  expect_roundtrip([&] {
    return ppk::pp::GraphJumpSimulator(
        table, ppk::pp::InteractionGraph::star(25),
        Population(25, protocol.num_states(), protocol.initial_state()),
        kSeed);
  });
}

TEST_F(SnapshotTest, ChurnSimulatorWithScheduleRoundTrips) {
  // Events straddle the snapshot: the crash fires before the cut, the join
  // and corruption after it -- restore() must carry the schedule cursor so
  // the restored engine fires exactly the not-yet-applied tail.
  const auto schedule = [&] {
    std::vector<ppk::pp::FaultEvent> events;
    events.push_back({500, ppk::pp::FaultKind::kCrash, std::nullopt,
                      std::nullopt, 0});
    events.push_back({kCut + 700, ppk::pp::FaultKind::kJoin, std::nullopt,
                      std::nullopt, 0});
    events.push_back({kCut + 1500, ppk::pp::FaultKind::kCorrupt, std::nullopt,
                      std::nullopt, 0});
    return events;
  };
  expect_roundtrip(
      [&] { return ppk::pp::ChurnSimulator(table_, population(26), kSeed); },
      [&](ppk::pp::ChurnSimulator& sim) { sim.set_schedule(schedule()); });
}

TEST_F(SnapshotTest, QuiescenceOracleStateSurvivesTheBoundary) {
  // Drive with a history-keeping oracle and split the run at the cut:
  // reset() alone would restart the lull window, so the restored side must
  // also restore_state() -- the exact sequence the campaign layer runs.
  const std::uint32_t n = 30;
  const auto group_of = [&] {
    std::vector<ppk::pp::GroupId> groups;
    for (StateId s = 0; s < protocol_.num_states(); ++s) {
      groups.push_back(protocol_.group(s));
    }
    return groups;
  }();

  ppk::pp::AgentSimulator a(table_, population(n), kSeed);
  ppk::pp::QuiescenceOracle oracle_a(group_of, 400);
  const auto first = a.run(oracle_a, kCut);
  const Snapshot snap = a.snapshot();
  const Counts at_cut = a.population().counts();
  const auto oracle_words = oracle_a.save_state();
  const auto rest_a = first.stabilized || first.interactions < kCut
                          ? first
                          : a.resume(oracle_a, kRest);

  ppk::pp::AgentSimulator b(table_, population(n), kSeed);
  b.restore(snap);
  ppk::pp::QuiescenceOracle oracle_b(group_of, 400);
  oracle_b.reset(at_cut);
  oracle_b.restore_state(oracle_words);
  const auto rest_b = first.stabilized || first.interactions < kCut
                          ? first
                          : b.resume(oracle_b, kRest);

  EXPECT_EQ(rest_a.interactions, rest_b.interactions);
  EXPECT_EQ(rest_a.effective, rest_b.effective);
  EXPECT_EQ(rest_a.stabilized, rest_b.stabilized);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST_F(SnapshotTest, SerializationRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(ppk::io::parse_snapshot("", &error).has_value());
  EXPECT_FALSE(ppk::io::parse_snapshot("bogus agent 0", &error).has_value());
  EXPECT_FALSE(
      ppk::io::parse_snapshot("ppk-snapshot-v1 agent 2 ff", &error)
          .has_value())
      << "word count must match";
  EXPECT_FALSE(error.empty());
}

TEST_F(SnapshotTest, RestoreRejectsTheWrongEngineTag) {
  ppk::pp::CountSimulator sim(table_, initial(20), kSeed);
  NeverStable oracle;
  (void)sim.run(oracle, 100);
  Snapshot snap = sim.snapshot();
  snap.engine = "agent";
  EXPECT_DEATH(sim.restore(snap), "precondition");
}

}  // namespace
