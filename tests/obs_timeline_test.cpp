// Tests for ConvergenceTimeline (obs/timeline.hpp), in particular the
// batch-aware sampling contract: a stride boundary crossed inside an
// aggregated advance (a collision-free batch or a geometric null run) must
// still produce a sample, attributed to the advance endpoint.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/transition_table.hpp"

namespace {

using ppk::core::KPartitionProtocol;
using ppk::obs::ConvergenceTimeline;
using ppk::obs::MetricsRegistry;
using ppk::obs::ObsSink;

// Every stride boundary up to `final_interactions` must appear exactly once,
// in order, regardless of how coarsely the engine advanced the clock.
void expect_complete_boundaries(const ConvergenceTimeline& timeline,
                                std::uint64_t stride,
                                std::uint64_t final_interactions) {
  std::vector<std::uint64_t> expected;
  expected.push_back(0);  // the seeded initial sample
  for (std::uint64_t b = stride; b <= final_interactions; b += stride) {
    expected.push_back(b);
  }
  if (expected.back() != final_interactions) {
    expected.push_back(final_interactions);  // the forced finish() sample
  }
  ASSERT_EQ(timeline.samples().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(timeline.samples()[i].interaction, expected[i]) << "sample " << i;
  }
}

TEST(ObsTimeline, RecordEmitsOneSamplePerCoveredBoundary) {
  const KPartitionProtocol protocol(2);
  ConvergenceTimeline timeline(protocol, 10);
  ppk::pp::Counts counts(protocol.num_states(), 0);
  counts[0] = 8;

  timeline.seed(counts);
  timeline.seed(counts);  // idempotent
  ASSERT_EQ(timeline.samples().size(), 1u);
  EXPECT_EQ(timeline.samples()[0].interaction, 0u);

  timeline.record(9, counts, 0);  // no boundary crossed
  ASSERT_EQ(timeline.samples().size(), 1u);

  timeline.record(25, counts, 3);  // covers boundaries 10 and 20 at once
  ASSERT_EQ(timeline.samples().size(), 3u);
  EXPECT_EQ(timeline.samples()[1].interaction, 10u);
  EXPECT_EQ(timeline.samples()[1].observed_at, 25u);
  EXPECT_EQ(timeline.samples()[2].interaction, 20u);
  EXPECT_EQ(timeline.samples()[2].observed_at, 25u);
  EXPECT_EQ(timeline.samples()[2].effective, 3u);

  timeline.finish(37, counts, 5);  // boundary 30, then the off-grid final
  ASSERT_EQ(timeline.samples().size(), 5u);
  EXPECT_EQ(timeline.samples()[3].interaction, 30u);
  EXPECT_EQ(timeline.samples()[4].interaction, 37u);
  EXPECT_EQ(timeline.samples()[4].observed_at, 37u);

  timeline.finish(37, counts, 5);  // already covered: no duplicate
  EXPECT_EQ(timeline.samples().size(), 5u);
}

TEST(ObsTimeline, DerivedStatsMatchTheCounts) {
  const KPartitionProtocol protocol(3);
  ConvergenceTimeline timeline(protocol, 100);
  ppk::pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.g(1)] = 4;
  counts[protocol.g(2)] = 4;
  counts[protocol.g(3)] = 3;
  counts[protocol.m(2)] = 1;  // group(m_2) = 2

  timeline.seed(counts);
  const auto& sample = timeline.samples().front();
  ASSERT_EQ(sample.group_sizes.size(), 3u);
  EXPECT_EQ(sample.group_sizes[0], 4u);
  EXPECT_EQ(sample.group_sizes[1], 5u);  // g_2 plus the m_2 builder
  EXPECT_EQ(sample.group_sizes[2], 3u);
  EXPECT_EQ(sample.spread, 2u);
  EXPECT_EQ(sample.counts, counts);
}

// Engine-driven tests need the instrumentation points, which
// -DPPK_OBSERVABILITY=OFF compiles out entirely; skip them there.
#if PPK_OBS_ENABLED
constexpr bool kHooksCompiled = true;
#else
constexpr bool kHooksCompiled = false;
#endif

TEST(ObsTimeline, PairwiseEngineSamplesAreExact) {
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 60;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  MetricsRegistry registry;
  ConvergenceTimeline timeline(protocol, 50);
  ObsSink sink(registry, &timeline);
  ppk::pp::CountSimulator sim(table, initial, 21);
  sim.set_obs_sink(&sink);
  timeline.seed(initial);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const auto result = sim.run(*oracle);
  ASSERT_TRUE(result.stabilized);
  timeline.finish(sim.interactions(), sim.counts(), result.effective);

  expect_complete_boundaries(timeline, 50, result.interactions);
  for (const auto& sample : timeline.samples()) {
    // One record() per drawn pair: every sample is captured on its boundary.
    EXPECT_EQ(sample.observed_at, sample.interaction);
    std::uint64_t total = 0;
    for (auto c : sample.counts) total += c;
    EXPECT_EQ(total, n);
  }
  EXPECT_EQ(timeline.samples().back().effective, result.effective);
}

TEST(ObsTimeline, ForcedBatchAdvancesNeverSkipBoundaries) {
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 600;  // batches span many strides of 16
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  MetricsRegistry registry;
  ConvergenceTimeline timeline(protocol, 16);
  ObsSink sink(registry, &timeline);
  ppk::pp::BatchSimulator sim(table, initial, 33);
  sim.set_batch_mode(ppk::pp::BatchMode::kForceBatch);
  sim.set_obs_sink(&sink);
  timeline.seed(initial);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const auto result = sim.run(*oracle);
  ASSERT_TRUE(result.stabilized);
  timeline.finish(sim.interactions(), sim.counts(), result.effective);

  expect_complete_boundaries(timeline, 16, result.interactions);

  // The collision-free batch width is Theta(sqrt(n)) >> 16, so most
  // advances cross several boundaries at once -- batch-attributed samples
  // (observed_at > interaction) must exist, and attribution lag is bounded
  // by the widest advance the sink saw.
  std::uint64_t attributed = 0;
  std::uint64_t max_lag = 0;
  for (const auto& sample : timeline.samples()) {
    EXPECT_GE(sample.observed_at, sample.interaction);
    if (sample.observed_at > sample.interaction) {
      ++attributed;
      max_lag = std::max(max_lag, sample.observed_at - sample.interaction);
    }
    std::uint64_t total = 0;
    for (auto c : sample.counts) total += c;
    EXPECT_EQ(total, n);
  }
  EXPECT_GT(attributed, 0u);
  EXPECT_GT(registry.counter("sim.advances.batch").value(), 0u);
  const auto& widths = registry.histogram("sim.advance_size.batch");
  double widest = 0.0;
  for (std::size_t b = 0; b < widths.counts().size(); ++b) {
    if (widths.counts()[b] > 0) widest = widths.bucket_hi(b);
  }
  EXPECT_LE(static_cast<double>(max_lag), widest);
}

TEST(ObsTimeline, JumpEngineNullRunBoundariesAreExact) {
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 120;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  MetricsRegistry registry;
  ConvergenceTimeline timeline(protocol, 64);
  ObsSink sink(registry, &timeline);
  ppk::pp::JumpSimulator sim(table, initial, 9);
  sim.set_obs_sink(&sink);
  timeline.seed(initial);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const auto result = sim.run(*oracle);
  ASSERT_TRUE(result.stabilized);
  timeline.finish(sim.interactions(), sim.counts(), result.effective);

  expect_complete_boundaries(timeline, 64, result.interactions);

  // The jump engine reports each null run BEFORE applying the concluding
  // pair, so a boundary inside a null run carries the configuration that
  // actually held there; consecutive samples from one null run must agree.
  const auto& samples = timeline.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].observed_at == samples[i - 1].observed_at &&
        samples[i].observed_at > samples[i].interaction) {
      EXPECT_EQ(samples[i].counts, samples[i - 1].counts);
      EXPECT_EQ(samples[i].effective, samples[i - 1].effective);
    }
  }
  EXPECT_GT(registry.histogram("sim.null_run.jump").total(), 0u);
}

TEST(ObsTimeline, CsvAndJsonCarryEverySample) {
  const KPartitionProtocol protocol(2);
  ConvergenceTimeline timeline(protocol, 5);
  ppk::pp::Counts counts(protocol.num_states(), 0);
  counts[0] = 6;
  timeline.seed(counts);
  timeline.record(12, counts, 2);

  std::ostringstream csv;
  timeline.write_csv(csv);
  const std::string rows = csv.str();
  // Header plus samples at 0, 5, 10.
  EXPECT_EQ(std::count(rows.begin(), rows.end(), '\n'), 4);
  EXPECT_NE(rows.find("interaction,observed_at,effective,spread,uniform"),
            std::string::npos);

  std::ostringstream js;
  {
    ppk::io::JsonWriter json(js);
    timeline.write_json(json);
  }
  EXPECT_NE(js.str().find("\"stride\": 5"), std::string::npos);
  EXPECT_NE(js.str().find("\"observed_at\": 12"), std::string::npos);
}

}  // namespace
