#include "analysis/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

namespace ppk::analysis {
namespace {

TEST(Histogram, CountsFallIntoCorrectBuckets) {
  Histogram histogram(0.0, 10.0, 5);  // buckets [0,2) [2,4) ... [8,10)
  histogram.add(0.0);
  histogram.add(1.9);
  histogram.add(2.0);
  histogram.add(9.9);
  EXPECT_EQ(histogram.counts(), (std::vector<std::uint64_t>{2, 1, 0, 0, 1}));
  EXPECT_EQ(histogram.total(), 4u);
}

TEST(Histogram, OutOfRangeValuesSaturate) {
  Histogram histogram(0.0, 10.0, 2);
  histogram.add(-5.0);
  histogram.add(50.0);
  EXPECT_EQ(histogram.counts(), (std::vector<std::uint64_t>{1, 1}));
}

TEST(Histogram, BucketBoundsPartitionTheRange) {
  Histogram histogram(0.0, 12.0, 4);
  EXPECT_DOUBLE_EQ(histogram.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.bucket_hi(0), 3.0);
  EXPECT_DOUBLE_EQ(histogram.bucket_lo(3), 9.0);
  EXPECT_DOUBLE_EQ(histogram.bucket_hi(3), 12.0);
}

TEST(Histogram, FromSamplesCoversAllData) {
  const std::vector<double> samples{3.0, 7.0, 7.5, 12.0, 100.0};
  const auto histogram = Histogram::from_samples(samples, 10);
  EXPECT_EQ(histogram.total(), samples.size());
  const auto& counts = histogram.counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ull),
            samples.size());
}

TEST(Histogram, FromSamplesHandlesConstantData) {
  const auto histogram = Histogram::from_samples({5.0, 5.0, 5.0}, 4);
  EXPECT_EQ(histogram.total(), 3u);
}

TEST(Histogram, PrintRendersBars) {
  Histogram histogram(0.0, 2.0, 2);
  histogram.add(0.5);
  histogram.add(0.6);
  histogram.add(1.5);
  std::ostringstream out;
  histogram.print(out, 10);
  const std::string text = out.str();
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(text.find(" 2"), std::string::npos);
  EXPECT_NE(text.find(" 1"), std::string::npos);
}

}  // namespace
}  // namespace ppk::analysis
