// Exhaustive verification of the paper's Theorem 1 on small populations:
// every globally fair execution stabilizes to a uniform k-partition.  This
// is the strongest correctness evidence in the repo -- it checks *all*
// reachable configurations, not sampled executions -- and it also pins the
// negative result motivating the protocol's D states (Section 3.2).

#include <gtest/gtest.h>

#include <tuple>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::core {
namespace {

using Params = std::tuple<pp::GroupId /*k*/, std::uint32_t /*n*/>;

class Theorem1 : public ::testing::TestWithParam<Params> {};

TEST_P(Theorem1, SolvesUniformKPartitionUnderGlobalFairness) {
  const auto [k, n] = GetParam();
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, n);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_TRUE(verdict.solves) << verdict.failure;
  EXPECT_GT(verdict.bottom_sccs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SmallPopulations, Theorem1,
    ::testing::Values(
        // k = 2 (the bipartition base case), every residue.
        Params{2, 3}, Params{2, 4}, Params{2, 5}, Params{2, 6}, Params{2, 9},
        // k = 3, n covering residues 0, 1, 2.
        Params{3, 3}, Params{3, 4}, Params{3, 5}, Params{3, 6}, Params{3, 7},
        Params{3, 8}, Params{3, 9},
        // k = 4, residues 0..3.
        Params{4, 4}, Params{4, 5}, Params{4, 6}, Params{4, 7}, Params{4, 8},
        // k = 5.
        Params{5, 5}, Params{5, 6}, Params{5, 7}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(Lemma1Exhaustive, HoldsOnEveryReachableConfiguration) {
  // The paper proves Lemma 1 by induction over transitions; here it is
  // checked on the full reachable set for several (n, k).
  for (const auto& [k, n] :
       {Params{3, 7}, Params{3, 8}, Params{4, 6}, Params{4, 8}, Params{5, 6}}) {
    const KPartitionProtocol protocol(k);
    const pp::TransitionTable table(protocol);
    pp::Counts initial(protocol.num_states(), 0);
    initial[protocol.initial_state()] = n;
    std::size_t violations = 0;
    const std::size_t visited = verify::for_each_reachable(
        table, initial, [&](const pp::Counts& config) {
          if (!lemma1_holds(protocol, config)) ++violations;
        });
    EXPECT_EQ(violations, 0u) << "k=" << int{k} << " n=" << n;
    EXPECT_GT(visited, 1u);
  }
}

TEST(Lemma6Exhaustive, BottomSccsAreExactlyTheStablePattern) {
  // Beyond uniformity: the stabilized configurations are precisely the
  // Lemma 6 pattern.
  const pp::GroupId k = 4;
  const std::uint32_t n = 7;
  const KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  const auto verdict = verify::verify_stabilization(
      protocol, table, initial,
      [&](const pp::Counts& config, const std::vector<std::uint32_t>&) {
        return matches_stable_pattern(protocol, n, config);
      });
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(BasicStrategy, FailsForThePapersCounterexampleShape) {
  // Section 3.2: without D states, dn/ke or more builders can appear and
  // the population wedges in a non-uniform silent configuration.  The
  // smallest witness shape is n = 2k; use k = 3, n = 6 (the k = 4, n = 12
  // narrative scaled down) -- the verifier must find a bad bottom SCC.
  const BasicStrategyProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, 6);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
  EXPECT_NE(verdict.failure.find("bad output"), std::string::npos)
      << verdict.failure;
}

TEST(BasicStrategy, PapersExactCounterexampleN12K4) {
  // The paper's own numbers: n = 12, k = 4 can wedge as
  // g1,g2,m3 / g1,g2,m3 / g1,g2,m3 / g1,g2,m3 -> groups (4,4,4,0).
  const BasicStrategyProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, 12);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
}

TEST(BasicStrategy, FullProtocolFixesTheSameInstances) {
  // The same (n, k) instances where the basic strategy fails are solved by
  // the full protocol -- the D states are exactly the fix.
  {
    const KPartitionProtocol protocol(3);
    const pp::TransitionTable table(protocol);
    EXPECT_TRUE(verify::verify_uniform_partition(protocol, table, 6).solves);
  }
  {
    const KPartitionProtocol protocol(4);
    const pp::TransitionTable table(protocol);
    const auto verdict = verify::verify_uniform_partition(protocol, table, 12);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_TRUE(verdict.solves) << verdict.failure;
  }
}

}  // namespace
}  // namespace ppk::core
