// Fault-injection subsystem (pp/faults.hpp) and the self-healing recovery
// layer (core/recovery.hpp): deterministic schedules, engine consistency
// under churn, loud failure of stale oracles, and the PR's acceptance
// scenario -- crash 7 of 40 agents, k = 4, and watch the 33 survivors
// re-converge to a uniform 4-partition.

#include "pp/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/recovery.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recovery.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

// --- Schedules -------------------------------------------------------------

TEST(FaultScheduleTest, SameSeedReproducesBitForBit) {
  FaultRates rates;
  rates.crash = 1e-3;
  rates.join = 5e-4;
  rates.corrupt = 2e-4;
  rates.sleep = 1e-4;
  const auto a = make_fault_schedule(rates, 100'000, 42);
  const auto b = make_fault_schedule(rates, 100'000, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].duration, b[i].duration);
  }
  const auto c = make_fault_schedule(rates, 100'000, 43);
  EXPECT_NE(a.size(), 0u);
  // A different seed yields a different schedule (equality would require a
  // astronomically unlikely collision of every gap draw).
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultScheduleTest, EventCountTracksRateAndStaysSorted) {
  FaultRates low;
  low.crash = 1e-4;
  FaultRates high;
  high.crash = 1e-2;
  const std::uint64_t horizon = 200'000;
  const auto few = make_fault_schedule(low, horizon, 7);
  const auto many = make_fault_schedule(high, horizon, 7);
  // Expectations are rate * horizon = 20 and 2000; a 5x band on either
  // side is dozens of sigma.
  EXPECT_GT(few.size(), 4u);
  EXPECT_LT(few.size(), 100u);
  EXPECT_GT(many.size(), 400u);
  EXPECT_LT(many.size(), 10'000u);
  for (const auto& schedule : {few, many}) {
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      EXPECT_LT(schedule[i].at, horizon);
      if (i > 0) EXPECT_GE(schedule[i].at, schedule[i - 1].at);
    }
  }
}

TEST(FaultScheduleTest, ZeroRatesYieldNoEvents) {
  EXPECT_TRUE(make_fault_schedule(FaultRates{}, 1'000'000, 1).empty());
}

// --- ChurnSimulator --------------------------------------------------------

TEST(ChurnSimulatorTest, AgentArrayAndCountsStayConsistentUnderChurn) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(20, protocol.num_states(), protocol.initial_state()),
      11);
  FaultRates rates;
  rates.crash = 2e-3;
  rates.join = 2e-3;
  rates.corrupt = 1e-3;
  rates.sleep = 1e-3;
  rates.sleep_duration = 500;
  sim.set_schedule(make_fault_schedule(rates, 50'000, 99));
  NeverStableOracle oracle;
  sim.run(oracle, 50'000);

  EXPECT_GT(sim.trace().size(), 0u);
  const auto& counts = sim.population().counts();
  Counts recount(protocol.num_states(), 0);
  for (std::uint32_t a = 0; a < sim.population().size(); ++a) {
    ++recount[sim.population().state_of(a)];
  }
  EXPECT_EQ(recount, counts);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u),
            sim.population().size());
}

TEST(ChurnSimulatorTest, SameSeedAndScheduleReproduceBitForBit) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  FaultRates rates;
  rates.crash = 1e-3;
  rates.join = 1e-3;
  const auto schedule = make_fault_schedule(rates, 30'000, 5);

  auto run = [&] {
    ChurnSimulator sim(
        table, Population(25, protocol.num_states(), protocol.initial_state()),
        77);
    sim.set_schedule(schedule);
    NeverStableOracle oracle;
    sim.run(oracle, 30'000);
    return std::make_pair(sim.population().counts(), sim.trace());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  ASSERT_EQ(a.second.size(), b.second.size());
  for (std::size_t i = 0; i < a.second.size(); ++i) {
    EXPECT_EQ(a.second[i].at, b.second[i].at);
    EXPECT_EQ(a.second[i].agent, b.second[i].agent);
    EXPECT_EQ(a.second[i].old_state, b.second[i].old_state);
    EXPECT_EQ(a.second[i].new_state, b.second[i].new_state);
  }
}

TEST(ChurnSimulatorTest, CrashAtMinimumPopulationIsDropped) {
  const core::KPartitionProtocol protocol(2);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(2, protocol.num_states(), protocol.initial_state()),
      1);
  NeverStableOracle oracle;
  EXPECT_EQ(sim.crash(std::nullopt, &oracle), std::nullopt);
  EXPECT_EQ(sim.population().size(), 2u);
  EXPECT_TRUE(sim.trace().empty());
}

TEST(ChurnSimulatorTest, SleepingAgentTakesNoInteractions) {
  // A protocol in which *every* pair is effective: a sleeping agent's state
  // can only survive unchanged if pairs hitting it are truly nulled.
  class AlwaysFlip final : public Protocol {
   public:
    [[nodiscard]] std::string name() const override { return "flip"; }
    [[nodiscard]] StateId num_states() const override { return 4; }
    [[nodiscard]] StateId initial_state() const override { return 0; }
    [[nodiscard]] Transition delta(StateId p, StateId q) const override {
      return {static_cast<StateId>((p + 1) % 4),
              static_cast<StateId>((q + 1) % 4)};
    }
    [[nodiscard]] GroupId group(StateId s) const override { return s; }
    [[nodiscard]] GroupId num_groups() const override { return 4; }
  };
  const AlwaysFlip protocol;
  const TransitionTable table(protocol);
  ChurnSimulator sim(table, Population(5, 4, 0), 3);
  NeverStableOracle oracle;
  sim.sleep(0u, 2'000, &oracle);
  const StateId before = sim.population().state_of(0);
  for (int i = 0; i < 1'000; ++i) sim.step(oracle);
  EXPECT_EQ(sim.population().state_of(0), before);
  EXPECT_TRUE(sim.asleep(0));
}

TEST(ChurnSimulatorTest, StableRunEndsEarlyWhenRemainingEventsLieBeyondBudget) {
  // Regression: with a stable oracle but a scheduled event far beyond the
  // interaction budget, run() used to idle away the entire remaining budget
  // one null draw at a time before returning stabilized = true.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(12, protocol.num_states(), protocol.initial_state()),
      17);
  FaultEvent far;
  far.at = 1'000'000'000'000ULL;  // far beyond any budget used here
  far.kind = FaultKind::kJoin;
  sim.set_schedule({far});
  const auto oracle = core::churn_aware_stable_oracle(protocol);
  const SimResult r = sim.run(*oracle, 5'000'000);
  EXPECT_TRUE(r.stabilized);
  // n = 12, k = 3 stabilizes in a few thousand interactions; the run must
  // stop there, not burn the rest of the 5M budget waiting for the event.
  EXPECT_LT(r.interactions, 1'000'000u);
  EXPECT_EQ(sim.pending_events(), 1u);  // the event itself never fired
}

// --- Stale-oracle hardening (satellite: oracles vs mid-run churn) ----------

using FaultsDeathTest = ::testing::Test;

TEST(FaultsDeathTest, FixedPatternOracleGoesStaleOnChurnAndFailsLoudly) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(12, protocol.num_states(), protocol.initial_state()),
      9);
  auto oracle = core::stable_pattern_oracle(protocol, 12);
  oracle->reset(sim.population().counts());
  EXPECT_FALSE(oracle->is_stale());
  sim.crash(std::nullopt, oracle.get());
  EXPECT_TRUE(oracle->is_stale());
  EXPECT_DEATH((void)oracle->stable(), "invariant");
}

TEST(FaultsDeathTest, FixedPatternOracleRejectsResetWithWrongTotal) {
  const core::KPartitionProtocol protocol(3);
  auto oracle = core::stable_pattern_oracle(protocol, 12);
  Counts wrong(protocol.num_states(), 0);
  wrong[protocol.initial_state()] = 11;  // oracle was built for n = 12
  EXPECT_DEATH(oracle->reset(wrong), "precondition");
}

// --- Self-healing wrapper --------------------------------------------------

TEST(SelfHealingProtocolTest, TableIsWellFormedAndTriplesTheStateSpace) {
  for (GroupId k : {GroupId{2}, GroupId{3}, GroupId{5}}) {
    const core::SelfHealingKPartitionProtocol protocol(k);
    EXPECT_EQ(int{protocol.num_states()}, 3 * (3 * int{k} - 2));
    EXPECT_EQ(protocol.num_groups(), k);
    // The TransitionTable constructor machine-checks swap-consistency and
    // symmetry of the realized rules, cross-epoch resets included.
    const TransitionTable table(protocol);
    EXPECT_EQ(table.num_states(), protocol.num_states());
  }
}

TEST(SelfHealingProtocolTest, CrossEpochPairsResetTheCyclicallyOlderAgent) {
  const core::SelfHealingKPartitionProtocol protocol(4);
  const auto fresh = [&](std::uint32_t e) {
    return protocol.encode(e, protocol.base().initial_state());
  };
  const StateId old_g1 = protocol.encode(0, protocol.base().g(1));
  const StateId new_g1 = protocol.encode(1, protocol.base().g(1));
  // epoch 0 meets epoch 1: the epoch-0 agent restarts in epoch 1.
  const Transition t = protocol.delta(old_g1, new_g1);
  EXPECT_EQ(t.initiator, fresh(1));
  EXPECT_EQ(t.responder, new_g1);
  // Mirrored orientation resets the same agent.
  const Transition u = protocol.delta(new_g1, old_g1);
  EXPECT_EQ(u.initiator, new_g1);
  EXPECT_EQ(u.responder, fresh(1));
  // The cycle wraps: epoch 2 meets epoch 0 -> the epoch-2 agent restarts.
  const StateId wrap = protocol.encode(2, protocol.base().g(2));
  const StateId cur = protocol.encode(0, protocol.base().g(2));
  const Transition w = protocol.delta(wrap, cur);
  EXPECT_EQ(w.initiator, fresh(0));
  EXPECT_EQ(w.responder, cur);
}

// --- The acceptance scenario: crash 7 of 40, k = 4 -------------------------

struct ScenarioResult {
  SimResult sim;
  std::uint32_t waves = 0;
  std::uint32_t population = 0;
  Counts base_counts;
  std::uint32_t spread = 0;
  bool lemma1 = false;
};

ScenarioResult run_crash_scenario(std::uint64_t seed, bool with_recovery,
                                  std::uint64_t budget) {
  constexpr std::uint32_t kN = 40;
  constexpr std::uint32_t kCrashers = 7;
  constexpr GroupId kK = 4;
  std::vector<FaultEvent> schedule;
  for (std::uint32_t i = 0; i < kCrashers; ++i) {
    FaultEvent event;
    event.at = 5'000;  // comfortably after stabilization of n = 40
    event.kind = FaultKind::kCrash;
    schedule.push_back(event);
  }

  ScenarioResult out;
  if (with_recovery) {
    const core::SelfHealingKPartitionProtocol protocol(kK);
    const TransitionTable table(protocol);
    ChurnSimulator sim(
        table, Population(kN, protocol.num_states(), protocol.initial_state()),
        seed);
    sim.set_schedule(schedule);
    core::RecoveryManager manager(protocol, sim);
    out.sim = sim.run(manager.oracle(), budget);
    out.waves = manager.waves_started();
    out.population = sim.population().size();
    out.base_counts.assign(protocol.base().num_states(), 0);
    for (StateId s = 0; s < sim.population().counts().size(); ++s) {
      out.base_counts[protocol.base_of(s)] += sim.population().counts()[s];
    }
    out.lemma1 = core::lemma1_holds(protocol.base(), out.base_counts);
    std::uint32_t lo = kN, hi = 0;
    for (GroupId x = 1; x <= kK; ++x) {
      const std::uint32_t size = out.base_counts[protocol.base().g(x)];
      lo = std::min(lo, size);
      hi = std::max(hi, size);
    }
    out.spread = hi - lo;
  } else {
    const core::KPartitionProtocol protocol(kK);
    const TransitionTable table(protocol);
    ChurnSimulator sim(
        table, Population(kN, protocol.num_states(), protocol.initial_state()),
        seed);
    sim.set_schedule(schedule);
    const auto oracle = core::churn_aware_stable_oracle(protocol);
    out.sim = sim.run(*oracle, budget);
    out.population = sim.population().size();
    out.base_counts = sim.population().counts();
    out.lemma1 = core::lemma1_holds(protocol, out.base_counts);
    std::uint32_t lo = kN, hi = 0;
    for (GroupId x = 1; x <= kK; ++x) {
      const std::uint32_t size = out.base_counts[protocol.g(x)];
      lo = std::min(lo, size);
      hi = std::max(hi, size);
    }
    out.spread = hi - lo;
  }
  return out;
}

TEST(RecoveryScenarioTest, SurvivorsRebalanceToUniformPartition) {
  const ScenarioResult r = run_crash_scenario(2026, true, 20'000'000);
  EXPECT_TRUE(r.sim.stabilized);
  EXPECT_EQ(r.population, 33u);
  EXPECT_GE(r.waves, 1u);
  // 33 = 4*8 + 1: four groups of 8 plus one leftover free agent.
  EXPECT_LE(r.spread, 1u);
  EXPECT_TRUE(r.lemma1);
}

TEST(RecoveryScenarioTest, ScenarioIsReproducibleBySeed) {
  const ScenarioResult a = run_crash_scenario(99, true, 20'000'000);
  const ScenarioResult b = run_crash_scenario(99, true, 20'000'000);
  EXPECT_TRUE(a.sim.stabilized);
  EXPECT_EQ(a.sim.interactions, b.sim.interactions);
  EXPECT_EQ(a.sim.effective, b.sim.effective);
  EXPECT_EQ(a.base_counts, b.base_counts);
  EXPECT_EQ(a.waves, b.waves);
}

TEST(RecoveryScenarioTest, WithoutRecoveryTheBudgetEndsTheRunUnstabilized) {
  // 40 committed agents lose 7: the 33 survivors are all in g states, but
  // the stable pattern of n = 33 needs a free agent -- unreachable for the
  // bare protocol no matter which agents crashed.  The run must end by
  // budget (no hang) with a broken invariant.
  const ScenarioResult r = run_crash_scenario(2026, false, 2'000'000);
  EXPECT_FALSE(r.sim.stabilized);
  EXPECT_EQ(r.sim.interactions, 2'000'000u);
  EXPECT_EQ(r.population, 33u);
  EXPECT_FALSE(r.lemma1);
}

TEST(RecoveryScenarioTest, FaultRemovingLastStragglerReleasesPendingWave) {
  // Regression: a wave requested while a previous wave was still converting
  // (wave_pending_ set, old_remaining_ > 0) was stranded forever when the
  // last old-epoch straggler was removed by a *fault* rather than by a
  // protocol transition -- handle_transition never saw the count reach zero
  // and the damaged configuration never repaired.
  const core::SelfHealingKPartitionProtocol protocol(2);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(12, protocol.num_states(), protocol.initial_state()),
      21);
  core::RecoveryManager manager(protocol, sim);
  ASSERT_TRUE(sim.run(manager.oracle(), 20'000'000).stabilized);

  const auto count_epoch = [&](std::uint32_t epoch) {
    std::uint32_t count = 0;
    for (std::uint32_t a = 0; a < sim.population().size(); ++a) {
      if (protocol.epoch_of(sim.population().state_of(a)) == epoch) ++count;
    }
    return count;
  };
  const auto lowest_in_epoch = [&](std::uint32_t epoch) {
    for (std::uint32_t a = 0; a < sim.population().size(); ++a) {
      if (protocol.epoch_of(sim.population().state_of(a)) == epoch) return a;
    }
    ADD_FAILURE() << "no agent in epoch " << epoch;
    return 0u;
  };

  // Crash one committed agent: the stable population has old_remaining_ ==
  // 0, so wave 1 starts immediately and epoch 0 becomes the old epoch.
  sim.crash(0u, &manager.oracle());
  ASSERT_EQ(manager.epoch(), 1u);
  ASSERT_EQ(manager.waves_started(), 1u);

  // Let the wave convert all but two stragglers (conversions are monotone:
  // no transition re-creates epoch 0).
  std::uint64_t safety = 0;
  while (count_epoch(0) > 2) {
    sim.step(manager.oracle());
    ASSERT_LT(++safety, 10'000'000u) << "wave failed to spread";
  }

  // A second disruption while the wave is in flight: the new wave must
  // wait for the two remaining stragglers.
  sim.crash(lowest_in_epoch(1), &manager.oracle());
  ASSERT_TRUE(manager.wave_pending());

  // Crash both stragglers: the pending wave loses its trigger unless
  // handle_fault itself re-evaluates the wave request.
  sim.crash(lowest_in_epoch(0), &manager.oracle());
  sim.crash(lowest_in_epoch(0), &manager.oracle());
  ASSERT_EQ(count_epoch(0), 0u);
  EXPECT_FALSE(manager.wave_pending());

  // And the survivors re-converge to the uniform partition of n = 8.
  const SimResult r = sim.run(manager.oracle(), 50'000'000);
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(sim.population().size(), 8u);
  Counts base_counts(protocol.base().num_states(), 0);
  const Counts& counts = sim.population().counts();
  for (StateId s = 0; s < counts.size(); ++s) {
    base_counts[protocol.base_of(s)] += counts[s];
  }
  EXPECT_TRUE(core::lemma1_holds(protocol.base(), base_counts));
  const std::uint32_t g1 = base_counts[protocol.base().g(1)];
  const std::uint32_t g2 = base_counts[protocol.base().g(2)];
  EXPECT_LE(g1 > g2 ? g1 - g2 : g2 - g1, 1u);
}

TEST(RecoveryScenarioTest, JoinsAreAbsorbedWithoutAWave) {
  const core::SelfHealingKPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(40, protocol.num_states(), protocol.initial_state()),
      7);
  std::vector<FaultEvent> schedule;
  for (int i = 0; i < 10; ++i) {
    FaultEvent event;
    event.at = 5'000;
    event.kind = FaultKind::kJoin;
    schedule.push_back(event);
  }
  sim.set_schedule(schedule);
  core::RecoveryManager manager(protocol, sim);
  const SimResult result = sim.run(manager.oracle(), 20'000'000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(manager.waves_started(), 0u);
  EXPECT_EQ(sim.population().size(), 50u);
}

TEST(RecoveryScenarioTest, CorruptionTriggersRepair) {
  const core::SelfHealingKPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  ChurnSimulator sim(
      table, Population(30, protocol.num_states(), protocol.initial_state()),
      13);
  std::vector<FaultEvent> schedule;
  for (int i = 0; i < 3; ++i) {
    FaultEvent event;
    event.at = 5'000;
    event.kind = FaultKind::kCorrupt;
    schedule.push_back(event);
  }
  sim.set_schedule(schedule);
  core::RecoveryManager manager(protocol, sim);
  const SimResult result = sim.run(manager.oracle(), 20'000'000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_GE(manager.waves_started(), 1u);
  EXPECT_EQ(sim.population().size(), 30u);
}

// --- analysis::measure_recovery -------------------------------------------

TEST(MeasureRecoveryTest, RecoversUnderCrashesAndReportsMetrics) {
  analysis::RecoveryOptions options;
  options.trials = 4;
  options.master_seed = 31;
  options.max_interactions = 10'000'000;
  options.rates.crash = 2e-4;
  options.fault_horizon = 20'000;
  options.with_recovery = true;
  const auto result = analysis::measure_recovery(GroupId{3}, 24, options);
  EXPECT_EQ(result.trials.size(), 4u);
  EXPECT_DOUBLE_EQ(result.recovered_fraction, 1.0);
  for (const auto& trial : result.trials) {
    EXPECT_TRUE(trial.stabilized);
    EXPECT_LE(trial.final_spread, 1u);
    EXPECT_TRUE(trial.lemma1_ok);
    if (trial.faults_applied > 0) {
      EXPECT_GT(trial.rebalance_interactions, 0u);
    }
  }
}

TEST(MeasureRecoveryTest, BareProtocolFailsToRecoverFromCrashes) {
  analysis::RecoveryOptions options;
  options.trials = 4;
  options.master_seed = 31;
  options.max_interactions = 500'000;  // budget-bound, not a hang
  options.rates.crash = 2e-4;
  options.fault_horizon = 20'000;
  options.with_recovery = false;
  const auto result = analysis::measure_recovery(GroupId{3}, 24, options);
  for (const auto& trial : result.trials) {
    if (trial.faults_applied == 0) continue;  // crash-free trial recovers
    EXPECT_LE(trial.interactions, 500'000u);
  }
  // Determinism across repeated invocations.
  const auto again = analysis::measure_recovery(GroupId{3}, 24, options);
  for (std::size_t t = 0; t < result.trials.size(); ++t) {
    EXPECT_EQ(result.trials[t].interactions, again.trials[t].interactions);
    EXPECT_EQ(result.trials[t].stabilized, again.trials[t].stabilized);
  }
}

}  // namespace
}  // namespace ppk::pp
