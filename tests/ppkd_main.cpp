// ppkd -- the scenario daemon (ROADMAP item 4; docs/ppkd.md).
//
// A thin CLI over serve::run_socket_server: AF_UNIX line-delimited JSON in,
// frames out, jobs on the checkpointed campaign layer, results in the
// (scenario-hash, seed) cache under --state-dir.  SIGINT/SIGTERM wind the
// daemon down the same way a client `shutdown` does: running jobs get
// their stop flag, checkpoint, and the next start resumes them.

#include <csignal>

#include <atomic>
#include <string>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("ppkd", "Scenario server: line-delimited JSON over AF_UNIX.");
  auto socket_path =
      cli.flag<std::string>("socket", "./ppkd.sock", "listening socket path");
  auto state_dir = cli.flag<std::string>(
      "state-dir", "./ppkd-state",
      "checkpoint + result-cache directory (empty disables persistence)");
  auto threads = cli.flag<long long>(
      "threads", 1, "worker threads per simulate job (0 = hardware cores)");
  auto chunk = cli.flag<long long>(
      "chunk", 1 << 16,
      "campaign chunk size in interactions (a job's checkpoints are bound "
      "to one chunk size)");
  auto checkpoint_every = cli.flag<long long>(
      "checkpoint-every", 4, "checkpoint cadence in campaign progress events");
  auto markov_max_orbits = cli.flag<long long>(
      "markov-max-orbits", 1'000'000,
      "exact-mode exploration cap (orbits lumped, configurations dense); a "
      "markov/verify job exceeding it fails with an error frame");
  cli.parse(argc, argv);

  ppk::serve::ServiceOptions options;
  options.state_dir = *state_dir;
  options.job_threads = static_cast<std::size_t>(*threads < 0 ? 0 : *threads);
  options.chunk_interactions =
      *chunk < 1 ? 1ULL : static_cast<std::uint64_t>(*chunk);
  options.checkpoint_every_chunks =
      *checkpoint_every < 1 ? 1U : static_cast<std::uint32_t>(*checkpoint_every);
  options.markov_max_orbits = static_cast<std::size_t>(
      *markov_max_orbits < 1 ? 1 : *markov_max_orbits);
  ppk::serve::ScenarioService service(options);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  return ppk::serve::run_socket_server(*socket_path, service, &g_stop);
}
