// In-process ScenarioService tests: the wire protocol without sockets.
// Submit/streaming/caching semantics, byte-identical cache replay,
// seed-independent exact-mode entries, stop-flag cancellation with a
// retained checkpoint, and crash-resume equivalence of the result frame.

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ppk::serve {
namespace {

/// Collects frames from handle_line (thread-safe: simulate jobs emit trial
/// frames from campaign workers).
class FrameLog {
 public:
  ScenarioService::Emit emit() {
    return [this](const std::string& frame) {
      const std::lock_guard<std::mutex> lock(mutex_);
      frames_.push_back(frame);
    };
  }

  std::vector<std::string> take() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out = std::move(frames_);
    frames_.clear();
    return out;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> frames_;
};

/// Frames of one kind ("event": "<kind>").
std::vector<std::string> of_kind(const std::vector<std::string>& frames,
                                 const std::string& kind) {
  std::vector<std::string> out;
  const std::string needle = "\"event\": \"" + kind + "\"";
  for (const std::string& f : frames) {
    if (f.find(needle) != std::string::npos) out.push_back(f);
  }
  return out;
}

std::string temp_dir(const char* tag) {
  std::string tmpl = std::string("/tmp/ppk_serve_") + tag + "_XXXXXX";
  std::vector<char> buffer(tmpl.begin(), tmpl.end());
  buffer.push_back('\0');
  const char* made = ::mkdtemp(buffer.data());
  EXPECT_NE(made, nullptr);
  return made != nullptr ? made : "/tmp";
}

std::string submit_line(const std::string& id, const ScenarioSpec& spec) {
  return "{\"op\": \"submit\", \"id\": \"" + id +
         "\", \"scenario\": " + single_line_json(serialize_scenario(spec)) +
         "}";
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

TEST(ServeServer, SingleLineJsonCollapsesStructureOnly) {
  EXPECT_EQ(single_line_json("{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n"),
            "{\"a\": 1,\"b\": [2]}");
  // Newlines inside strings are escaped by the writer and must survive.
  EXPECT_EQ(single_line_json("{\n  \"a\": \"x\\n  y\"\n}\n"),
            "{\"a\": \"x\\n  y\"}");
}

TEST(ServeServer, PingErrorsAndUnknownOps) {
  ScenarioService service(ServiceOptions{});
  FrameLog log;
  EXPECT_TRUE(service.handle_line("{\"op\": \"ping\"}", log.emit()));
  EXPECT_TRUE(service.handle_line("not json at all", log.emit()));
  EXPECT_TRUE(service.handle_line("{\"op\": \"dance\"}", log.emit()));
  EXPECT_TRUE(service.handle_line("{\"noop\": 1}", log.emit()));
  const std::vector<std::string> frames = log.take();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_NE(frames[0].find("\"pong\""), std::string::npos);
  EXPECT_NE(frames[1].find("\"error\""), std::string::npos);
  EXPECT_NE(frames[2].find("unknown op"), std::string::npos);
  EXPECT_NE(frames[3].find("'op'"), std::string::npos);
}

TEST(ServeServer, ShutdownStopsTheTransport) {
  ScenarioService service(ServiceOptions{});
  FrameLog log;
  EXPECT_FALSE(service.handle_line("{\"op\": \"shutdown\"}", log.emit()));
  const std::vector<std::string> frames = log.take();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].find("\"bye\""), std::string::npos);
}

TEST(ServeServer, InvalidScenariosGetErrorFrames) {
  ScenarioService service(ServiceOptions{});
  FrameLog log;
  // Silence oracle on kpartition: validation diagnostic passes through.
  ScenarioSpec bad;
  bad.oracle = ScenarioOracle::kSilence;
  EXPECT_TRUE(service.handle_line(submit_line("j1", bad), log.emit()));
  // A fault schedule parses but is not yet schedulable.
  ScenarioSpec faulted;
  faulted.faults.push_back({100, pp::FaultKind::kCrash, std::nullopt,
                            std::nullopt, 0});
  EXPECT_TRUE(service.handle_line(submit_line("j2", faulted), log.emit()));
  EXPECT_TRUE(service.handle_line("{\"op\": \"submit\", \"id\": \"j3\"}",
                                  log.emit()));
  const std::vector<std::string> frames = log.take();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_NE(frames[0].find("oracle.kind"), std::string::npos);
  EXPECT_NE(frames[1].find("not yet schedulable"), std::string::npos);
  EXPECT_NE(frames[2].find("'scenario'"), std::string::npos);
}

TEST(ServeServer, SimulateStreamsTrialsAndReplaysFromTheCache) {
  ServiceOptions options;
  options.state_dir = temp_dir("sim");
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.n = 12;
  spec.trials = 4;
  spec.seed = 7;
  spec.budget = 1'000'000;

  EXPECT_TRUE(service.handle_line(submit_line("a", spec), log.emit()));
  const std::vector<std::string> first = log.take();
  ASSERT_EQ(of_kind(first, "accepted").size(), 1u);
  EXPECT_NE(first[0].find("\"cached\": false"), std::string::npos);
  EXPECT_EQ(of_kind(first, "trial").size(), 4u);
  ASSERT_EQ(of_kind(first, "job").size(), 1u);
  EXPECT_NE(of_kind(first, "job")[0].find("\"resumed\": false"),
            std::string::npos);
  const std::vector<std::string> results = of_kind(first, "result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("\"mode\": \"simulate\""), std::string::npos);
  // The result frame is spec-pure: no job id in it.
  EXPECT_EQ(results[0].find("\"id\""), std::string::npos);
  // Completion deletes the job checkpoint and stores the cache entry.
  EXPECT_TRUE(file_exists(
      service.cache().entry_path(scenario_hash_hex(spec), spec.seed)));

  // Resubmission: cache hit, byte-identical result frame, no trials re-run.
  EXPECT_TRUE(service.handle_line(submit_line("b", spec), log.emit()));
  const std::vector<std::string> second = log.take();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_NE(second[0].find("\"cached\": true"), std::string::npos);
  EXPECT_EQ(second[1], results[0]);

  // A fresh service over the same state dir replays the same bytes.
  ScenarioService reopened(options);
  EXPECT_TRUE(reopened.handle_line(submit_line("c", spec), log.emit()));
  const std::vector<std::string> third = log.take();
  ASSERT_EQ(third.size(), 2u);
  EXPECT_EQ(third[1], results[0]);
}

TEST(ServeServer, ExactModesCacheSeedIndependently) {
  ServiceOptions options;
  options.state_dir = temp_dir("exact");
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.k = 2;
  spec.n = 6;
  spec.mode = ScenarioMode::kVerify;
  spec.seed = 1;

  EXPECT_TRUE(service.handle_line(submit_line("v1", spec), log.emit()));
  const std::vector<std::string> first = log.take();
  const std::vector<std::string> results = of_kind(first, "result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("\"solves\": true"), std::string::npos);

  // A different seed is the same exact question: cache hit, same bytes.
  spec.seed = 424242;
  EXPECT_TRUE(service.handle_line(submit_line("v2", spec), log.emit()));
  const std::vector<std::string> second = log.take();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_NE(second[0].find("\"cached\": true"), std::string::npos);
  EXPECT_EQ(second[1], results[0]);
}

TEST(ServeServer, MarkovModeReportsTheExactExpectation) {
  ServiceOptions options;
  options.state_dir = temp_dir("markov");
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.k = 2;
  spec.n = 5;
  spec.mode = ScenarioMode::kMarkov;

  EXPECT_TRUE(service.handle_line(submit_line("m1", spec), log.emit()));
  const std::vector<std::string> results = of_kind(log.take(), "result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("\"mode\": \"markov\""), std::string::npos);
  EXPECT_NE(results[0].find("\"expected_interactions\": "), std::string::npos);
  // The paper's protocol reaches the stable pattern with probability 1, so
  // the expectation is finite (not the null the writer uses for "never").
  EXPECT_EQ(results[0].find("\"expected_interactions\": null"),
            std::string::npos);
  EXPECT_NE(results[0].find("\"absorptions\": [{"), std::string::npos);
}

TEST(ServeServer, MarkovOrbitCapIsAnErrorFrameNotACrash) {
  // An exact analysis that cannot complete (here: an orbit cap far below
  // the chain's size) must come back as an `error` frame on the wire --
  // the daemon used to abort the whole process -- and the service must
  // keep answering afterwards.
  ServiceOptions options;
  options.state_dir = temp_dir("markov_cap");
  options.markov_max_orbits = 4;
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.k = 2;
  spec.n = 8;
  spec.mode = ScenarioMode::kMarkov;

  EXPECT_TRUE(service.handle_line(submit_line("cap", spec), log.emit()));
  const std::vector<std::string> frames = log.take();
  EXPECT_TRUE(of_kind(frames, "result").empty());
  const std::vector<std::string> errors = of_kind(frames, "error");
  ASSERT_EQ(errors.size(), 1u);

  // The failed job left nothing cached and the daemon still serves.
  EXPECT_FALSE(
      file_exists(service.cache().exact_entry_path(scenario_hash_hex(spec))));
  EXPECT_TRUE(service.handle_line("{\"op\": \"ping\"}", log.emit()));
  EXPECT_EQ(log.take().size(), 1u);
}

TEST(ServeServer, UntaggedExactCacheEntryIsAMissAndGetsRetagged) {
  // Migration: an exact entry written by a pre-schema daemon (no
  // "exact_schema" member) must be recomputed, not replayed, and the
  // recomputation overwrites it with a tagged frame.
  ServiceOptions options;
  options.state_dir = temp_dir("markov_mig");
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.k = 2;
  spec.n = 5;
  spec.mode = ScenarioMode::kMarkov;

  EXPECT_TRUE(service.handle_line(submit_line("m1", spec), log.emit()));
  const std::vector<std::string> results = of_kind(log.take(), "result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find(kExactResultSchema), std::string::npos);

  const std::string entry =
      service.cache().exact_entry_path(scenario_hash_hex(spec));
  ASSERT_TRUE(file_exists(entry));

  // Simulate the v1 daemon: same answer, no schema tag.
  {
    std::ofstream out(entry, std::ios::trunc);
    out << "{\"event\": \"result\", \"mode\": \"markov\", "
           "\"expected_interactions\": 17.5}\n";
  }
  EXPECT_TRUE(service.handle_line(submit_line("m2", spec), log.emit()));
  const std::vector<std::string> second = log.take();
  ASSERT_EQ(of_kind(second, "accepted").size(), 1u);
  EXPECT_NE(of_kind(second, "accepted")[0].find("\"cached\": false"),
            std::string::npos);
  const std::vector<std::string> recomputed = of_kind(second, "result");
  ASSERT_EQ(recomputed.size(), 1u);
  EXPECT_EQ(recomputed[0], results[0]);

  // The entry on disk is tagged again: the third submission is a hit.
  std::ifstream in(entry);
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_NE(stored.str().find(kExactResultSchema), std::string::npos);
  EXPECT_TRUE(service.handle_line(submit_line("m3", spec), log.emit()));
  const std::vector<std::string> third = log.take();
  ASSERT_EQ(of_kind(third, "accepted").size(), 1u);
  EXPECT_NE(of_kind(third, "accepted")[0].find("\"cached\": true"),
            std::string::npos);
}

TEST(ServeServer, ConformanceModeRunsTheHarness) {
  ServiceOptions options;
  options.state_dir = temp_dir("conf");
  ScenarioService service(options);
  FrameLog log;

  ScenarioSpec spec;
  spec.mode = ScenarioMode::kConformance;
  spec.n = 8;
  spec.k = 2;
  spec.trials = 5;
  spec.budget = 50'000;

  EXPECT_TRUE(service.handle_line(submit_line("c1", spec), log.emit()));
  const std::vector<std::string> results = of_kind(log.take(), "result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("\"mode\": \"conformance\""), std::string::npos);
  EXPECT_NE(results[0].find("\"ok\": true"), std::string::npos);
}

TEST(ServeServer, CancelCheckpointsAndResumeCompletesIdentically) {
  // Budget-exhausting trials (quiescence window no trial can meet) on the
  // slow reference engine: long enough to cancel mid-flight reliably.
  ScenarioSpec spec;
  spec.n = 20'000;
  spec.trials = 8;
  spec.seed = 11;
  spec.budget = 3'000'000;
  spec.engine = pp::Engine::kAgentArray;
  spec.oracle = ScenarioOracle::kQuiescence;
  spec.quiescence_window = 1ULL << 62;
  ASSERT_EQ(validate_scenario(spec), "");

  // Reference: one uninterrupted run.
  ServiceOptions options;
  options.state_dir = temp_dir("cancel_ref");
  options.chunk_interactions = 1ULL << 14;
  options.checkpoint_every_chunks = 2;
  std::string reference;
  {
    ScenarioService service(options);
    FrameLog log;
    EXPECT_TRUE(service.handle_line(submit_line("ref", spec), log.emit()));
    const std::vector<std::string> results = of_kind(log.take(), "result");
    ASSERT_EQ(results.size(), 1u);
    reference = results[0];
  }

  // Interrupted: cancel from another thread mid-run, then resume in a
  // fresh service over the same state dir.
  options.state_dir = temp_dir("cancel_cut");
  const std::string checkpoint = options.state_dir + "/ckpt-" +
                                 scenario_hash_hex(spec) + "-" +
                                 std::to_string(spec.seed) + ".json";
  bool cancelled_midway = false;
  {
    ScenarioService service(options);
    FrameLog log;
    std::thread submitter([&] {
      EXPECT_TRUE(service.handle_line(submit_line("cut", spec), log.emit()));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    service.cancel("cut");
    submitter.join();
    const std::vector<std::string> frames = log.take();
    if (!of_kind(frames, "incomplete").empty()) {
      cancelled_midway = true;
      EXPECT_TRUE(file_exists(checkpoint));  // resumable state retained
    }
  }
  {
    ScenarioService service(options);
    FrameLog log;
    EXPECT_TRUE(service.handle_line(submit_line("cut2", spec), log.emit()));
    const std::vector<std::string> frames = log.take();
    const std::vector<std::string> results = of_kind(frames, "result");
    ASSERT_EQ(results.size(), 1u);
    // Whether this leg resumed a checkpoint or replayed the cache, the
    // result bytes must match the uninterrupted reference exactly.
    EXPECT_EQ(results[0], reference);
    if (cancelled_midway) {
      const std::vector<std::string> jobs = of_kind(frames, "job");
      ASSERT_EQ(jobs.size(), 1u);
      EXPECT_NE(jobs[0].find("\"resumed\": true"), std::string::npos);
      EXPECT_FALSE(file_exists(checkpoint));  // consumed on completion
    }
  }
}

TEST(ServeServer, CancelReportsWhetherTheJobExisted) {
  ScenarioService service(ServiceOptions{});
  FrameLog log;
  EXPECT_TRUE(
      service.handle_line("{\"op\": \"cancel\", \"id\": \"ghost\"}", log.emit()));
  const std::vector<std::string> frames = log.take();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].find("\"found\": false"), std::string::npos);
  EXPECT_FALSE(service.cancel("ghost"));
}

}  // namespace
}  // namespace ppk::serve
