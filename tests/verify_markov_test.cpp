// Tests for the exact Markov-chain analysis, including closed-form cases
// worked out by hand and the flagship cross-validation: the analytic
// expected stabilization time matches the Monte-Carlo estimate.

#include "verify/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"

namespace ppk::verify {
namespace {

pp::Counts initial_counts(const pp::Protocol& protocol, std::uint32_t n) {
  pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

// Closed form for leader election from n leaders: with j leaders alive the
// probability that a drawn ordered pair is (L, L) is j(j-1)/(n(n-1)), so
// the expected interactions are sum_{j=2..n} n(n-1) / (j(j-1))
//                              = n(n-1) * (1 - 1/n) = (n-1)^2.
TEST(MarkovAnalysis, LeaderElectionHittingTimeMatchesClosedForm) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 12u}) {
    const MarkovAnalysis markov(table, initial_counts(protocol, n));
    const auto expected = markov.expected_hitting_time(
        [](const pp::Counts& config) { return config[0] == 1; });
    ASSERT_TRUE(expected.has_value()) << "n=" << n;
    // Partial-pivoted elimination on a chain this small is exact to
    // rounding: pin the closed form at 1e-9 *relative*.
    const auto closed_form = static_cast<double>((n - 1) * (n - 1));
    EXPECT_NEAR(*expected / closed_form, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(MarkovAnalysis, BipartitionHandComputedExpectationIsExact) {
  // n = 3 from all-initial: (3,0,0,0) -> (1,2,0,0) surely; from there the
  // six ordered draws go back with probability 1/3 and pair off into the
  // stable (0,1,1,1) with probability 2/3.  E_A = 1 + E_B and
  // E_B = 1 + E_A/3 give E_A = 3 exactly -- a pin on both the dense
  // elimination and the lumped solve, at solver-roundoff tolerance.
  const core::BipartitionProtocol protocol;
  const pp::TransitionTable table(protocol);
  pp::Counts start(protocol.num_states(), 0);
  start[core::BipartitionProtocol::kInitial] = 3;
  const auto target = [](const pp::Counts& config) {
    return config[core::BipartitionProtocol::kG1] == 1 &&
           config[core::BipartitionProtocol::kG2] == 1;
  };

  MarkovOptions dense_options;
  dense_options.method = MarkovMethod::kDense;
  const MarkovAnalysis dense(table, start, dense_options);
  const auto dense_expected = dense.expected_hitting_time(target);
  ASSERT_TRUE(dense_expected.has_value());
  EXPECT_NEAR(*dense_expected, 3.0, 1e-12);

  MarkovOptions lumped_options;
  lumped_options.symmetry = protocol.symmetry();
  const MarkovAnalysis lumped(table, start, std::move(lumped_options));
  ASSERT_EQ(lumped.method(), MarkovMethod::kLumped);
  const auto lumped_expected = lumped.expected_hitting_time(target);
  ASSERT_TRUE(lumped_expected.has_value());
  EXPECT_NEAR(*lumped_expected, 3.0, 1e-12);
}

TEST(MarkovAnalysis, HittingTimeIsZeroWhenAlreadyInTarget) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  pp::Counts start(protocol.num_states(), 0);
  start[protocols::LeaderElectionProtocol::kLeader] = 1;
  start[protocols::LeaderElectionProtocol::kFollower] = 4;
  const MarkovAnalysis markov(table, start);
  const auto expected = markov.expected_hitting_time(
      [](const pp::Counts& config) { return config[0] == 1; });
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(*expected, 0.0);
}

TEST(MarkovAnalysis, UnreachableTargetYieldsNullopt) {
  const protocols::LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  const MarkovAnalysis markov(table, initial_counts(protocol, 4));
  // Zero leaders is unreachable, so the absorbing bottom SCC (1 leader)
  // contains no target configuration.
  const auto expected = markov.expected_hitting_time(
      [](const pp::Counts& config) { return config[0] == 0; });
  EXPECT_FALSE(expected.has_value());
}

TEST(MarkovAnalysis, KPartitionAnalyticMatchesMonteCarlo) {
  // The flagship cross-check: exact expectation vs 4000 sampled trials.
  // With stddev/mean around 0.6 for these sizes, 4000 trials give a
  // standard error under 1%, so a 5% tolerance is comfortable yet tight
  // enough to catch real modeling bugs (e.g. mishandled null-interaction
  // self-loops would shift the mean by >20%).
  struct Case {
    pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c : {Case{3, 6}, Case{3, 7}, Case{4, 8}}) {
    const core::KPartitionProtocol protocol(c.k);
    const pp::TransitionTable table(protocol);
    const MarkovAnalysis markov(table, initial_counts(protocol, c.n));
    const auto analytic = markov.expected_hitting_time(
        [&](const pp::Counts& config) {
          return core::matches_stable_pattern(protocol, c.n, config);
        });
    ASSERT_TRUE(analytic.has_value());

    pp::MonteCarloOptions options;
    options.trials = 4000;
    options.master_seed = 424242;
    const auto empirical = pp::run_monte_carlo(
        protocol, table, c.n,
        [&] { return core::stable_pattern_oracle(protocol, c.n); }, options);
    const double mean = empirical.mean_interactions();
    EXPECT_NEAR(mean / *analytic, 1.0, 0.05)
        << "k=" << int{c.k} << " n=" << c.n << " analytic=" << *analytic
        << " empirical=" << mean;
  }
}

TEST(MarkovAnalysis, KPartitionAbsorbsInStablePatternWithProbabilityOne) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const MarkovAnalysis markov(table, initial_counts(protocol, 7));
  const auto absorption = markov.absorption_probabilities();
  double total = 0.0;
  for (const auto& a : absorption) {
    total += a.probability;
    // Every bottom SCC of the correct protocol is the stable pattern.
    EXPECT_TRUE(core::matches_stable_pattern(protocol, 7, a.representative));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MarkovAnalysis, BasicStrategyWedgeProbabilityMatchesSimulation) {
  // Exact wedge probability for the basic strategy at k = 3, n = 6, then
  // a Monte-Carlo estimate against it.
  const core::BasicStrategyProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const MarkovAnalysis markov(table, initial_counts(protocol, 6));

  double wedge_probability = 0.0;
  for (const auto& a : markov.absorption_probabilities()) {
    const auto& rep = a.representative;
    std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
    for (pp::StateId s = 0; s < rep.size(); ++s) {
      sizes[protocol.group(s)] += rep[s];
    }
    if (!pp::is_uniform_partition(sizes)) wedge_probability += a.probability;
  }
  EXPECT_GT(wedge_probability, 0.0);
  EXPECT_LT(wedge_probability, 0.5);

  // Empirical estimate over 4000 trials, inspecting each final partition.
  constexpr int kTrials = 4000;
  int wedged = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    pp::Population population(6, protocol.num_states(),
                              protocol.initial_state());
    pp::AgentSimulator sim(table, std::move(population),
                           derive_stream_seed(777, static_cast<std::uint64_t>(trial)));
    pp::SilenceOracle oracle(table);
    ASSERT_TRUE(sim.run(oracle, 10'000'000ULL).stabilized);
    if (!pp::is_uniform_partition(sim.population().group_sizes(protocol))) {
      ++wedged;
    }
  }
  const double empirical = static_cast<double>(wedged) / kTrials;
  // Binomial standard error at p ~ 0.1 over 4000 trials is ~0.005; allow
  // five sigma.
  EXPECT_NEAR(empirical, wedge_probability, 0.025);
}

TEST(MarkovAnalysis, AbsorptionSumsToOneForBipartitionStyleChains) {
  const core::KPartitionProtocol protocol(2);
  const pp::TransitionTable table(protocol);
  for (std::uint32_t n : {4u, 5u, 7u}) {
    const MarkovAnalysis markov(table, initial_counts(protocol, n));
    double total = 0.0;
    for (const auto& a : markov.absorption_probabilities()) {
      total += a.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(MarkovAnalysis, HittingTimeGrowsWithN) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  double previous = 0.0;
  for (std::uint32_t n : {4u, 6u, 8u}) {
    const MarkovAnalysis markov(table, initial_counts(protocol, n));
    const auto expected = markov.expected_hitting_time(
        [&](const pp::Counts& config) {
          return core::matches_stable_pattern(protocol, n, config);
        });
    ASSERT_TRUE(expected.has_value());
    EXPECT_GT(*expected, previous);
    previous = *expected;
  }
}

}  // namespace
}  // namespace ppk::verify
