// Ground-truth regression tests for the per-agent verifier
// (verify/weak_fairness.hpp): the weak-fairness protocol is correct under
// weak fairness, the global-fairness protocols are not (negative
// controls), and the arbitrary-graph bipartition protocol is correct on
// every small topology while the complete-graph protocol fails on a star.

#include <gtest/gtest.h>

#include "core/bipartition.hpp"
#include "core/graph_bipartition.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/transition_table.hpp"
#include "verify/agent_graph.hpp"
#include "verify/global_fairness.hpp"
#include "verify/weak_fairness.hpp"

namespace ppk {
namespace {

// --- AgentConfigGraph basics -------------------------------------------

TEST(AgentConfigGraph, CompleteGraphPairsAndNullApply) {
  core::GraphBipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  verify::AgentConfigGraph graph(protocol, table, 4);
  ASSERT_TRUE(graph.complete());
  EXPECT_EQ(graph.pairs().size(), 6u);  // C(4, 2)
  EXPECT_EQ(graph.num_agents(), 4u);
  // Config 0 is the all-initial tuple.
  for (std::uint32_t a = 0; a < 4; ++a) {
    EXPECT_EQ(graph.state_of(0, a), protocol.initial_state());
  }
  // A silent pair returns the same configuration: find a config with two
  // settled agents (r, r) -- (r, r) is null.
  bool checked = false;
  for (std::size_t c = 0; c < graph.num_configs() && !checked; ++c) {
    if (graph.state_of(c, 0) == core::GraphBipartitionProtocol::kR &&
        graph.state_of(c, 1) == core::GraphBipartitionProtocol::kR) {
      EXPECT_EQ(graph.apply(c, 0, 1), c);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(AgentConfigGraph, SccIdsAreReverseTopological) {
  core::WeakKPartitionProtocol protocol(2);
  pp::TransitionTable table(protocol);
  verify::AgentConfigGraph graph(protocol, table, 4);
  ASSERT_TRUE(graph.complete());
  for (std::size_t c = 0; c < graph.num_configs(); ++c) {
    for (const auto& [a, b] : graph.pairs()) {
      EXPECT_GE(graph.scc_of(c), graph.scc_of(graph.apply(c, a, b)));
      EXPECT_GE(graph.scc_of(c), graph.scc_of(graph.apply(c, b, a)));
    }
  }
}

TEST(AgentConfigGraph, TopologyRestrictsPairs) {
  core::GraphBipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  const auto ring = pp::InteractionGraph::ring(5);
  verify::AgentConfigGraph::Options options;
  options.topology = &ring;
  verify::AgentConfigGraph graph(protocol, table, 5, options);
  ASSERT_TRUE(graph.complete());
  EXPECT_EQ(graph.pairs().size(), 5u);
}

// --- Weak fairness: positive ------------------------------------------

TEST(WeakFairness, WeakKPartitionSolvesSmallNK) {
  for (const pp::GroupId k : {pp::GroupId{2}, pp::GroupId{3}}) {
    core::WeakKPartitionProtocol protocol(k);
    pp::TransitionTable table(protocol);
    for (std::uint32_t n = 2; n <= 5; ++n) {
      const auto verdict =
          verify::verify_weak_uniform_partition(protocol, table, n);
      ASSERT_TRUE(verdict.exploration_complete) << "k=" << k << " n=" << n;
      EXPECT_TRUE(verdict.solves)
          << "k=" << k << " n=" << n << ": " << verdict.failure;
      EXPECT_GT(verdict.bottom_sccs, 0u);
    }
  }
}

TEST(WeakFairness, WeakKPartitionSolvesK4) {
  core::WeakKPartitionProtocol protocol(4);
  pp::TransitionTable table(protocol);
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const auto verdict =
        verify::verify_weak_uniform_partition(protocol, table, n);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_TRUE(verdict.solves) << "n=" << n << ": " << verdict.failure;
  }
}

// The weak-fairness protocol must also solve under global fairness (a
// strictly stronger scheduler), checked by the count-vector verifier at
// sizes the per-agent graph cannot reach.
TEST(WeakFairness, WeakKPartitionAlsoSolvesGlobalFairness) {
  for (const pp::GroupId k : {pp::GroupId{2}, pp::GroupId{3}}) {
    core::WeakKPartitionProtocol protocol(k);
    pp::TransitionTable table(protocol);
    for (std::uint32_t n = k; n <= 8; ++n) {
      const auto verdict =
          verify::verify_uniform_partition(protocol, table, n);
      ASSERT_TRUE(verdict.exploration_complete);
      EXPECT_TRUE(verdict.solves)
          << "k=" << k << " n=" << n << ": " << verdict.failure;
    }
  }
}

// --- Weak fairness: negative controls ---------------------------------

// The 4-state complete-graph bipartition protocol is correct under global
// fairness but NOT under weak fairness: a weakly fair adversary can park
// the execution in an SCC of symmetric flip configurations whose outputs
// are constant but non-uniform.
TEST(WeakFairness, BipartitionFailsUnderWeakFairness) {
  core::BipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  for (std::uint32_t n = 3; n <= 5; ++n) {
    // Sanity: global fairness holds at this n...
    EXPECT_TRUE(verify::verify_uniform_partition(protocol, table, n).solves);
    // ...weak fairness does not, and the verdict carries a witness.
    const auto verdict =
        verify::verify_weak_uniform_partition(protocol, table, n);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_FALSE(verdict.solves) << "n=" << n;
    EXPECT_FALSE(verdict.failure.empty());
  }
}

TEST(WeakFairness, PaperKPartitionFailsUnderWeakFairness) {
  core::KPartitionProtocol protocol(3);
  pp::TransitionTable table(protocol);
  for (std::uint32_t n = 3; n <= 5; ++n) {
    EXPECT_TRUE(verify::verify_uniform_partition(protocol, table, n).solves);
    const auto verdict =
        verify::verify_weak_uniform_partition(protocol, table, n);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_FALSE(verdict.solves) << "n=" << n;
  }
}

// --- Arbitrary graphs: positive ---------------------------------------

TEST(GraphFairness, GraphBipartitionSolvesOnEveryTopology) {
  core::GraphBipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  const auto check = [&](const pp::InteractionGraph& g, const char* what) {
    const auto verdict =
        verify::verify_graph_uniform_partition(protocol, table, g);
    ASSERT_TRUE(verdict.exploration_complete) << what;
    EXPECT_TRUE(verdict.solves)
        << what << " n=" << g.num_agents() << ": " << verdict.failure;
  };
  for (std::uint32_t n = 2; n <= 6; ++n) {
    check(pp::InteractionGraph::complete(n), "complete");
    check(pp::InteractionGraph::path(n), "path");
    if (n >= 3) {
      check(pp::InteractionGraph::ring(n), "ring");
      check(pp::InteractionGraph::star(n), "star");
    }
  }
  check(pp::InteractionGraph::erdos_renyi(7, 0.5, 20260808), "erdos-renyi");
}

// The count-vector verifier sees the same protocol as correct on the
// complete graph: hop transitions preserve both participants' outputs, so
// its bottom SCCs are output-preserving.
TEST(GraphFairness, GraphBipartitionAlsoPassesCountVerifier) {
  core::GraphBipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  for (std::uint32_t n = 2; n <= 10; ++n) {
    const auto verdict = verify::verify_uniform_partition(protocol, table, n);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_TRUE(verdict.solves) << "n=" << n << ": " << verdict.failure;
  }
}

// --- Arbitrary graphs: negative control -------------------------------

// The complete-graph bipartition protocol on a star: initial-state leaves
// can only meet the hub, and once the hub leaves `initial` the remaining
// leaves are stuck -- a bottom SCC with non-uniform outputs.
TEST(GraphFairness, BipartitionFailsOnStar) {
  core::BipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  for (std::uint32_t n = 4; n <= 6; ++n) {
    const auto star = pp::InteractionGraph::star(n);
    const auto verdict =
        verify::verify_graph_uniform_partition(protocol, table, star);
    ASSERT_TRUE(verdict.exploration_complete);
    EXPECT_FALSE(verdict.solves) << "n=" << n;
    EXPECT_FALSE(verdict.failure.empty());
  }
}

// The signal-relay protocol needs global fairness: under weak fairness an
// adversary can keep two signals alive forever (hop them between blue
// hosts and schedule every pair at harmless moments), so outputs never
// stabilize.  This pins the protocol * fairness matrix documented in
// docs/fairness.md.
TEST(GraphFairness, GraphBipartitionFailsUnderWeakFairness) {
  core::GraphBipartitionProtocol protocol;
  pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_weak_uniform_partition(protocol, table, 4);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
}

}  // namespace
}  // namespace ppk
