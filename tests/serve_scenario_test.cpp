// Scenario-spec tests: canonical round trips (random spec -> serialize ->
// parse -> re-serialize byte-equal), fail-fast diagnostics at the server
// boundary, the seed-masked cache hash, and the scenario <-> conformance
// case bridge.

#include "serve/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ppk::serve {
namespace {

TEST(ServeScenario, DefaultSpecIsValidAndRoundTrips) {
  const ScenarioSpec spec;
  EXPECT_EQ(validate_scenario(spec), "");
  const std::string text = serialize_scenario(spec);
  std::string error;
  const std::optional<ScenarioSpec> parsed = parse_scenario(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(serialize_scenario(*parsed), text);
}

TEST(ServeScenario, AcceptanceSpecParses) {
  // The ISSUE's end-to-end scenario: k-partition, n = 1e5, epsilon-fair,
  // ring topology, submitted as a literal document.
  const std::string text = R"({
    "schema": "ppk-scenario-v1",
    "protocol": "kpartition",
    "k": 3,
    "n": 100000,
    "topology": {"kind": "ring", "p": 0.5},
    "fairness": {"policy": "epsilon-fair", "epsilon": 0.5},
    "oracle": {"kind": "quiescence", "window": 100000},
    "engine": "auto",
    "mode": "simulate",
    "trials": 2,
    "seed": 42,
    "budget": 200000,
    "faults": []
  })";
  std::string error;
  const std::optional<ScenarioSpec> spec = parse_scenario(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->n, 100000u);
  EXPECT_EQ(spec->topology, ScenarioTopology::kRing);
  EXPECT_TRUE(spec->fairness.needs_adversarial_engine());
}

// ---------------------------------------------------------------------------
// Round-trip fuzz net

/// Draws one *valid* spec: every axis randomized within the validation
/// envelope (engine drawn from the set the fairness x topology rules
/// allow).
ScenarioSpec random_valid_spec(SplitMix64& rng) {
  ScenarioSpec spec;
  switch (rng.next() % 3) {
    case 0: spec.family = ScenarioFamily::kKPartition; break;
    case 1: spec.family = ScenarioFamily::kWeakKPartition; break;
    default: spec.family = ScenarioFamily::kGraphBipartition; break;
  }
  spec.k = spec.family == ScenarioFamily::kGraphBipartition
               ? 2
               : static_cast<pp::GroupId>(2 + rng.next() % 4);
  spec.n = static_cast<std::uint32_t>(spec.k + 3 + rng.next() % 40);
  switch (rng.next() % 5) {
    case 0: spec.topology = ScenarioTopology::kComplete; break;
    case 1: spec.topology = ScenarioTopology::kRing; break;
    case 2: spec.topology = ScenarioTopology::kStar; break;
    case 3: spec.topology = ScenarioTopology::kPath; break;
    default: spec.topology = ScenarioTopology::kErdosRenyi; break;
  }
  spec.er_p = 0.1 + 0.9 * (static_cast<double>(rng.next() % 1000) / 1000.0);
  switch (rng.next() % 3) {
    case 0: spec.fairness = pp::FairnessSpec::uniform_random(); break;
    case 1:
      spec.fairness = pp::FairnessSpec::epsilon_fair(
          0.25 + 0.75 * (static_cast<double>(rng.next() % 100) / 100.0));
      break;
    default: spec.fairness = pp::FairnessSpec::weak_round_robin(); break;
  }
  spec.oracle = rng.next() % 2 == 0
                    ? ScenarioOracle::kQuiescence
                    : (spec.family == ScenarioFamily::kWeakKPartition
                           ? ScenarioOracle::kSilence
                           : ScenarioOracle::kStablePattern);
  spec.quiescence_window = 1 + rng.next() % 1'000'000;
  if (spec.fairness.needs_adversarial_engine()) {
    spec.engine = rng.next() % 2 == 0 ? pp::Engine::kAuto
                                      : pp::Engine::kAgentArray;
  } else if (spec.topology == ScenarioTopology::kComplete) {
    const pp::Engine engines[] = {pp::Engine::kAuto, pp::Engine::kAgentArray,
                                  pp::Engine::kCountVector, pp::Engine::kJump,
                                  pp::Engine::kBatch,
                                  pp::Engine::kBatchSharded};
    spec.engine = engines[rng.next() % 6];
  } else {
    const pp::Engine engines[] = {pp::Engine::kAuto, pp::Engine::kGraph,
                                  pp::Engine::kGraphJump};
    spec.engine = engines[rng.next() % 3];
  }
  spec.mode = ScenarioMode::kSimulate;
  spec.trials = static_cast<std::uint32_t>(1 + rng.next() % 20);
  spec.seed = rng.next();
  spec.budget = 1 + rng.next() % 1'000'000;
  if (rng.next() % 4 == 0) {
    // A sorted, in-range fault schedule exercises the fault grammar.
    std::uint64_t at = 0;
    const std::size_t events = 1 + rng.next() % 3;
    const std::uint32_t num_states =
        spec.family == ScenarioFamily::kGraphBipartition
            ? 5u
            : (spec.family == ScenarioFamily::kWeakKPartition
                   ? 3u * spec.k + 1u
                   : 3u * spec.k - 2u);
    for (std::size_t i = 0; i < events; ++i) {
      pp::FaultEvent f;
      at += rng.next() % 1000;
      f.at = at;
      switch (rng.next() % 5) {
        case 0: f.kind = pp::FaultKind::kCrash; break;
        case 1: f.kind = pp::FaultKind::kJoin; break;
        case 2: f.kind = pp::FaultKind::kCorrupt; break;
        case 3: f.kind = pp::FaultKind::kSleep; break;
        default: f.kind = pp::FaultKind::kReset; break;
      }
      if (rng.next() % 2 == 0) {
        f.agent = static_cast<std::uint32_t>(rng.next() % spec.n);
      }
      if (rng.next() % 2 == 0) {
        f.state = static_cast<pp::StateId>(rng.next() % num_states);
      }
      if (f.kind == pp::FaultKind::kSleep) f.duration = 1 + rng.next() % 5000;
      spec.faults.push_back(f);
    }
  }
  return spec;
}

TEST(ServeScenario, RandomSpecsRoundTripByteEqual) {
  SplitMix64 rng(0xC0FFEEULL);
  for (int i = 0; i < 300; ++i) {
    const ScenarioSpec spec = random_valid_spec(rng);
    ASSERT_EQ(validate_scenario(spec), "")
        << "draw " << i << ":\n" << serialize_scenario(spec);
    const std::string text = serialize_scenario(spec);
    std::string error;
    const std::optional<ScenarioSpec> parsed = parse_scenario(text, &error);
    ASSERT_TRUE(parsed.has_value()) << "draw " << i << ": " << error;
    EXPECT_EQ(serialize_scenario(*parsed), text) << "draw " << i;
    EXPECT_EQ(scenario_hash(*parsed), scenario_hash(spec)) << "draw " << i;
  }
}

TEST(ServeScenario, HashMasksTheSeedAndNothingElse) {
  ScenarioSpec a;
  ScenarioSpec b = a;
  b.seed = a.seed + 999;  // seed is the per-entry cache axis, not the hash's
  EXPECT_EQ(scenario_hash(a), scenario_hash(b));

  ScenarioSpec c = a;
  c.n += 1;
  EXPECT_NE(scenario_hash(a), scenario_hash(c));
  ScenarioSpec d = a;
  d.fairness = pp::FairnessSpec::epsilon_fair(0.5);
  EXPECT_NE(scenario_hash(a), scenario_hash(d));
  ScenarioSpec e = a;
  e.topology = ScenarioTopology::kRing;
  EXPECT_NE(scenario_hash(a), scenario_hash(e));

  EXPECT_EQ(scenario_hash_hex(a).size(), 16u);
}

// ---------------------------------------------------------------------------
// Diagnostics

/// Parses the default spec's serialization after applying `edit` to the
/// text, expecting failure; returns the diagnostic.
std::string diagnose(const std::string& text) {
  std::string error;
  const std::optional<ScenarioSpec> spec = parse_scenario(text, &error);
  EXPECT_FALSE(spec.has_value()) << text;
  return error;
}

std::string with_replacement(std::string text, const std::string& from,
                             const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return text;
}

TEST(ServeScenario, DiagnosticsNameTheOffendingField) {
  const std::string good = serialize_scenario(ScenarioSpec{});

  EXPECT_NE(diagnose(with_replacement(good, "ppk-scenario-v1", "ppk-v0"))
                .find("schema"),
            std::string::npos);
  EXPECT_NE(diagnose(with_replacement(good, "\"kpartition\"", "\"tripartition\""))
                .find("protocol"),
            std::string::npos);
  EXPECT_NE(diagnose(with_replacement(good, "\"complete\"", "\"torus\""))
                .find("topology.kind"),
            std::string::npos);
  EXPECT_NE(diagnose(with_replacement(good, "\"uniform-random\"", "\"unfair\""))
                .find("fairness.policy"),
            std::string::npos);
  EXPECT_NE(diagnose(with_replacement(good, "\"mode\": \"simulate\"",
                                      "\"mode\": \"dream\""))
                .find("mode"),
            std::string::npos);
  // Unknown members fail loudly instead of silently running a default.
  EXPECT_NE(diagnose(with_replacement(good, "\"seed\": 1",
                                      "\"sede\": 1"))
                .find("unknown member 'sede'"),
            std::string::npos);
  EXPECT_NE(diagnose("[1, 2, 3]").find("object"), std::string::npos);
  EXPECT_NE(diagnose("{\"schema\": \"ppk-scenario-v1\"").find("scenario:"),
            std::string::npos);
}

TEST(ServeScenario, ValidationCrossChecksTheAxes) {
  ScenarioSpec spec;

  spec.oracle = ScenarioOracle::kSilence;  // kpartition never goes silent
  EXPECT_NE(validate_scenario(spec).find("oracle.kind"), std::string::npos);

  spec = ScenarioSpec{};
  spec.family = ScenarioFamily::kWeakKPartition;
  spec.oracle = ScenarioOracle::kStablePattern;
  EXPECT_NE(validate_scenario(spec).find("oracle.kind"), std::string::npos);

  spec = ScenarioSpec{};
  spec.engine = pp::Engine::kGraph;  // graph engine on the complete graph
  EXPECT_NE(validate_scenario(spec).find("engine"), std::string::npos);

  spec = ScenarioSpec{};
  spec.topology = ScenarioTopology::kRing;
  spec.engine = pp::Engine::kBatch;  // batch engine cannot take a topology
  EXPECT_NE(validate_scenario(spec).find("engine"), std::string::npos);

  spec = ScenarioSpec{};
  spec.fairness = pp::FairnessSpec::weak_round_robin();
  spec.engine = pp::Engine::kCountVector;
  EXPECT_NE(validate_scenario(spec).find("engine"), std::string::npos);

  spec = ScenarioSpec{};
  spec.fairness = pp::FairnessSpec::weak_round_robin();
  spec.n = 100'000;  // a full ordered round per lap is 1e10 pairs
  EXPECT_NE(validate_scenario(spec).find("n"), std::string::npos);

  spec = ScenarioSpec{};
  spec.mode = ScenarioMode::kVerify;
  spec.n = 64;  // exhaustive exploration cap
  EXPECT_NE(validate_scenario(spec).find("n"), std::string::npos);

  spec = ScenarioSpec{};
  spec.mode = ScenarioMode::kMarkov;
  spec.family = ScenarioFamily::kWeakKPartition;
  spec.oracle = ScenarioOracle::kSilence;
  EXPECT_NE(validate_scenario(spec).find("protocol"), std::string::npos);

  spec = ScenarioSpec{};
  spec.mode = ScenarioMode::kVerify;
  spec.n = 6;
  spec.fairness = pp::FairnessSpec::epsilon_fair(0.5);
  EXPECT_NE(validate_scenario(spec).find("fairness.policy"),
            std::string::npos);

  spec = ScenarioSpec{};
  spec.faults.push_back({100, pp::FaultKind::kCrash, std::nullopt,
                         std::nullopt, 0});
  spec.faults.push_back({50, pp::FaultKind::kCrash, std::nullopt,
                         std::nullopt, 0});  // unsorted
  EXPECT_NE(validate_scenario(spec).find("sorted"), std::string::npos);

  spec = ScenarioSpec{};
  spec.faults.push_back({0, pp::FaultKind::kCorrupt, std::nullopt,
                         pp::StateId{200}, 0});  // kpartition k=3 has 7 states
  EXPECT_NE(validate_scenario(spec).find("state"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Conformance bridge

TEST(ServeScenario, ConformanceBridgeRoundTrips) {
  ScenarioSpec spec;
  spec.mode = ScenarioMode::kConformance;
  spec.n = 10;
  spec.k = 4;
  spec.trials = 12;
  spec.seed = 77;
  spec.budget = 50'000;
  ASSERT_EQ(validate_scenario(spec), "");

  std::string why;
  const std::optional<verify::ConformanceCase> c =
      scenario_to_conformance(spec, &why);
  ASSERT_TRUE(c.has_value()) << why;
  EXPECT_EQ(c->protocol.family, verify::ConformanceProtocol::Family::kKPartition);
  EXPECT_EQ(c->protocol.k, 4);
  EXPECT_EQ(c->n, 10u);
  EXPECT_EQ(c->seed, 77u);
  EXPECT_EQ(c->trials, 12);
  EXPECT_EQ(c->budget, 50'000u);

  const std::optional<ScenarioSpec> back = scenario_from_conformance(*c);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serialize_scenario(*back), serialize_scenario(spec));
}

TEST(ServeScenario, ConformanceBridgeRefusesUnrepresentableAxes) {
  ScenarioSpec spec;
  spec.topology = ScenarioTopology::kRing;
  std::string why;
  EXPECT_FALSE(scenario_to_conformance(spec, &why).has_value());
  EXPECT_NE(why.find("topology"), std::string::npos);

  spec = ScenarioSpec{};
  spec.fairness = pp::FairnessSpec::epsilon_fair(0.5);
  EXPECT_FALSE(scenario_to_conformance(spec, &why).has_value());
  EXPECT_NE(why.find("fairness"), std::string::npos);

  verify::ConformanceCase candidate;
  candidate.protocol.family = verify::ConformanceProtocol::Family::kCandidate;
  EXPECT_FALSE(scenario_from_conformance(candidate).has_value());

  verify::ConformanceCase mutated;
  mutated.mutation = verify::TableMutation{};
  EXPECT_FALSE(scenario_from_conformance(mutated).has_value());
}

// ---------------------------------------------------------------------------
// Runtime

TEST(ServeScenario, RuntimeFillsCampaignOptionsFromTheSpec) {
  ScenarioSpec spec;
  spec.topology = ScenarioTopology::kErdosRenyi;
  spec.er_p = 0.25;
  spec.fairness = pp::FairnessSpec::epsilon_fair(0.5);
  spec.trials = 5;
  spec.seed = 1234;
  spec.budget = 77'000;
  ASSERT_EQ(validate_scenario(spec), "");

  const ScenarioRuntime runtime(spec);
  EXPECT_EQ(runtime.protocol().num_groups(), spec.k);
  const core::CampaignOptions options = runtime.campaign_options();
  EXPECT_EQ(options.mc.trials, 5u);
  EXPECT_EQ(options.mc.master_seed, 1234u);
  EXPECT_EQ(options.mc.max_interactions, 77'000u);
  EXPECT_EQ(options.mc.fairness.policy, pp::FairnessPolicy::kEpsilonFair);
  ASSERT_TRUE(static_cast<bool>(options.mc.graph));
  EXPECT_EQ(options.mc.graph(1).num_agents(), spec.n);
  EXPECT_EQ(options.topology_tag, "erdos-renyi:p=0.25");

  // A fresh oracle per trial, bound to the runtime's protocol objects.
  const pp::OracleFactory factory = runtime.oracle_factory();
  const auto oracle = factory();
  ASSERT_NE(oracle, nullptr);
}

}  // namespace
}  // namespace ppk::serve
