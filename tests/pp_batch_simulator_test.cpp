// Validation of the collision-free batch engine: exact stable patterns in
// every mode, exact interaction budgets, agreement with the closed-form
// expectations, and clean behavior on silent configurations.  The
// statistical four-way comparison against the other engines lives in
// pp_engine_equivalence_test.cpp.

#include "pp/batch_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

Counts all_initial(const Protocol& protocol, std::uint32_t n) {
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

TEST(BatchSimulator, ReachesTheExactStablePatternInEveryMode) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  for (const BatchMode mode :
       {BatchMode::kAuto, BatchMode::kForceBatch, BatchMode::kForceThin}) {
    for (std::uint32_t n : {9u, 13u, 16u, 40u}) {
      BatchSimulator sim(table, all_initial(protocol, n), n);
      sim.set_batch_mode(mode);
      auto oracle = core::stable_pattern_oracle(protocol, n);
      const SimResult result = sim.run(*oracle);
      ASSERT_TRUE(result.stabilized)
          << "n=" << n << " mode=" << static_cast<int>(mode);
      EXPECT_TRUE(core::matches_stable_pattern(protocol, n, sim.counts()));
    }
  }
}

TEST(BatchSimulator, PopulationIsConservedAcrossBatches) {
  const core::KPartitionProtocol protocol(5);
  const TransitionTable table(protocol);
  const std::uint32_t n = 64;
  BatchSimulator sim(table, all_initial(protocol, n), 77);
  sim.set_batch_mode(BatchMode::kForceBatch);
  NeverStableOracle oracle;
  for (int i = 0; i < 50; ++i) {
    sim.step(oracle);
    std::uint64_t total = 0;
    for (auto c : sim.counts()) total += c;
    ASSERT_EQ(total, n) << "after advance " << i;
  }
}

TEST(BatchSimulator, StopsCleanlyOnSilentConfigurations) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  BatchSimulator sim(table, Counts{1, 5}, 3);
  NeverStableOracle oracle;
  const SimResult result = sim.run(oracle, 1'000'000);
  EXPECT_FALSE(result.stabilized);
  EXPECT_EQ(result.effective, 0u);
  EXPECT_EQ(result.interactions, 0u);
  EXPECT_EQ(sim.effective_weight(), 0u);
  EXPECT_FALSE(sim.step(oracle));
}

TEST(BatchSimulator, EffectiveInteractionsMatchAgentEngineExactly) {
  // Leader election performs exactly n - 1 effective interactions in any
  // execution, whichever regime draws them.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  for (const BatchMode mode : {BatchMode::kForceBatch, BatchMode::kForceThin}) {
    BatchSimulator sim(table, all_initial(protocol, 30), 7);
    sim.set_batch_mode(mode);
    SilenceOracle oracle(table);
    const SimResult result = sim.run(oracle);
    EXPECT_TRUE(result.stabilized);
    EXPECT_EQ(result.effective, 29u);
    EXPECT_EQ(sim.counts()[protocols::LeaderElectionProtocol::kLeader], 1u);
  }
}

TEST(BatchSimulator, MeanInteractionsMatchTheExactExpectation) {
  // Leader election on n agents takes (n-1)^2 expected interactions; the
  // batched counter (null draws included) must agree in the mean.  Forced
  // batch mode keeps the whole run on the collision-free path.
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  const std::uint32_t n = 10;
  constexpr int kTrials = 3000;
  double total = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchSimulator sim(table, all_initial(protocol, n),
                       derive_stream_seed(6, static_cast<std::uint64_t>(trial)));
    sim.set_batch_mode(BatchMode::kForceBatch);
    SilenceOracle oracle(table);
    total += static_cast<double>(sim.run(oracle).interactions);
  }
  const double mean = total / kTrials;
  const double exact = (n - 1.0) * (n - 1.0);  // 81
  // stddev of a single run is ~60 here; 3000 trials -> sem ~1.1.
  EXPECT_NEAR(mean, exact, 4.0);
}

TEST(BatchSimulator, InteractionBudgetIsExactInEveryMode) {
  // Batches truncate at the budget and thin-regime skips clamp, so a
  // non-stabilizing run must land on the budget exactly -- never short
  // (unless silent), never over.  n = 49 = 1 (mod 3) leaves one free agent
  // at stability, so rule 4 keeps the configuration non-silent forever.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  for (const BatchMode mode :
       {BatchMode::kAuto, BatchMode::kForceBatch, BatchMode::kForceThin}) {
    for (const std::uint64_t budget : {1ULL, 7ULL, 100ULL, 12'345ULL}) {
      BatchSimulator sim(table, all_initial(protocol, 49), 11);
      sim.set_batch_mode(mode);
      NeverStableOracle oracle;
      const SimResult result = sim.run(oracle, budget);
      EXPECT_EQ(result.interactions, budget)
          << "mode=" << static_cast<int>(mode);
      EXPECT_EQ(sim.interactions(), budget);
    }
  }
}

TEST(BatchSimulator, ChunkedResumeAdvancesExactlyTheGrants) {
  // n = 81 = 1 (mod 4): never silent (see above), so every grant is spent.
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  BatchSimulator sim(table, all_initial(protocol, 81), 23);
  NeverStableOracle oracle;
  oracle.reset(sim.counts());
  std::uint64_t total = 0;
  for (const std::uint64_t grant : {13ULL, 1ULL, 999ULL, 4'096ULL}) {
    const SimResult r = sim.resume(oracle, grant);
    EXPECT_EQ(r.interactions, grant);
    total += r.interactions;
  }
  EXPECT_EQ(sim.interactions(), total);
}

TEST(BatchSimulator, SameSeedReproducesBitForBit) {
  const core::KPartitionProtocol protocol(6);
  const TransitionTable table(protocol);
  for (const BatchMode mode :
       {BatchMode::kAuto, BatchMode::kForceBatch, BatchMode::kForceThin}) {
    BatchSimulator a(table, all_initial(protocol, 120), 99);
    BatchSimulator b(table, all_initial(protocol, 120), 99);
    a.set_batch_mode(mode);
    b.set_batch_mode(mode);
    auto oracle_a = core::stable_pattern_oracle(protocol, 120);
    auto oracle_b = core::stable_pattern_oracle(protocol, 120);
    const SimResult ra = a.run(*oracle_a);
    const SimResult rb = b.run(*oracle_b);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.effective, rb.effective);
    EXPECT_EQ(a.counts(), b.counts());
  }
}

TEST(BatchSimulator, LargePopulationUsesTheLgammaFallback) {
  // Populations beyond the log-factorial table threshold exercise the
  // live-lgamma path; the run must still reach a valid configuration.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 2'000'000;  // > kLogFactTableMax
  BatchSimulator sim(table, all_initial(protocol, n), 5);
  sim.set_batch_mode(BatchMode::kForceBatch);
  NeverStableOracle oracle;
  const SimResult r = sim.run(oracle, 200'000);
  EXPECT_EQ(r.interactions, 200'000u);
  std::uint64_t total = 0;
  for (auto c : sim.counts()) total += c;
  EXPECT_EQ(total, n);
}

}  // namespace
}  // namespace ppk::pp
