// Tests of the cross-engine conformance harness (verify/conformance.hpp):
// the clean protocol passes every net, the committed corpus replays to its
// recorded verdicts, the mutation smoke check proves the harness detects a
// single flipped transition (and shrinks it to a deterministic repro), and
// the repro file format round-trips.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kpartition.hpp"
#include "verify/conformance.hpp"

namespace ppk::verify {
namespace {

namespace fs = std::filesystem;

ConformanceOptions fast_options() {
  ConformanceOptions options;
  options.ground_truth_max_n = 8;  // keep the exact nets cheap in the gate
  return options;
}

// ---------------------------------------------------------------------------
// Clean conformance

TEST(Conformance, KPartitionCaseIsConformantAcrossAllEngines) {
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kKPartition;
  c.protocol.k = 3;
  c.n = 12;
  c.seed = 20260806;
  c.trials = 24;
  c.budget = 200'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
  // every-engine trajectory nets + pairwise resume nets + KS rows
  EXPECT_GE(report.checks_run, 20);
}

TEST(Conformance, SmallNCaseEnablesGroundTruthNets) {
  ConformanceCase c;
  c.protocol.k = 2;
  c.n = 6;  // <= ground_truth_max_n: reachable-set + model checker active
  c.seed = 7;
  c.trials = 16;
  c.budget = 50'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Conformance, CandidateProtocolCaseIsConformant) {
  // An arbitrary symmetric 3-state candidate (most candidates never
  // stabilize -- conformance is about engine agreement, not protocol
  // correctness, so the nets must hold regardless).
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kCandidate;
  c.protocol.candidate =
      CandidateSpec{3, num_symmetric_deltas(3) / 2, 0, 0b011};
  c.n = 9;
  c.seed = 11;
  c.trials = 16;
  c.budget = 20'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Conformance, WeakKPartitionCaseIsConformantAcrossAllEngines) {
  // The weak-fairness family rides every net the paper's protocol does:
  // silence is its stopping rule, and every stabilized configuration must
  // be a uniform partition (the ground-truth uniformity check).
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kWeakKPartition;
  c.protocol.k = 3;
  c.n = 12;
  c.seed = 20260808;
  c.trials = 24;
  c.budget = 200'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.checks_run, 20);
}

TEST(Conformance, WeakKPartitionSmallNEnablesGroundTruthNets) {
  // n = 6 <= ground_truth_max_n: the reachable set (10 states at k = 3)
  // and the global-fairness model checker both activate for the weak
  // family.
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kWeakKPartition;
  c.protocol.k = 2;
  c.n = 6;
  c.seed = 13;
  c.trials = 16;
  c.budget = 50'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Conformance, GraphBipartitionCaseIsConformantOnSparseRows) {
  // The arbitrary-graph family on the rows it was designed for: the
  // per-draw and live-edge engines over the ring, star, path and a seeded
  // G(n, 0.5), pinned pairwise by the sparse distribution net, plus the
  // complete-graph references.  Unlike the paper's protocol it must
  // *stabilize* (not wedge) on every connected topology.
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kGraphBipartition;
  c.n = 12;
  c.seed = 20260808;
  c.trials = 16;
  c.budget = 60'000;
  c.engines = {ConformanceEngine::kAgent,        ConformanceEngine::kGraphRing,
               ConformanceEngine::kGraphStar,    ConformanceEngine::kGraphPath,
               ConformanceEngine::kGraphEr,      ConformanceEngine::kLiveEdgeRing,
               ConformanceEngine::kLiveEdgeStar, ConformanceEngine::kLiveEdgePath,
               ConformanceEngine::kLiveEdgeEr,
               ConformanceEngine::kLiveEdgeComplete};
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.checks_run, 24);
}

TEST(Conformance, GraphBipartitionSmallNEnablesGroundTruthNets) {
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kGraphBipartition;
  c.n = 7;  // odd n: the stable pattern carries exactly one parked signal
  c.seed = 17;
  c.trials = 16;
  c.budget = 50'000;
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Conformance, SparseTopologyRowsAreConformantAndTerminate) {
  // n = 12, k = 4 wedges readily on the ring and path (builders walled in
  // by committed neighbours), so this case exercises the stall path of
  // every sparse row: the live-edge engine must prove the dead end and
  // stop, the chunked driver must not spin on a stalled engine (the drive
  // loop used to re-grant forever), and the live-edge rows must match
  // their per-draw counterparts in law on the censored axes.
  ConformanceCase c;
  c.protocol.family = ConformanceProtocol::Family::kKPartition;
  c.protocol.k = 4;
  c.n = 12;
  c.seed = 20260806;
  c.trials = 16;
  c.budget = 60'000;
  c.engines = {ConformanceEngine::kAgent,        ConformanceEngine::kGraphRing,
               ConformanceEngine::kGraphStar,    ConformanceEngine::kGraphPath,
               ConformanceEngine::kGraphEr,      ConformanceEngine::kLiveEdgeRing,
               ConformanceEngine::kLiveEdgeStar, ConformanceEngine::kLiveEdgePath,
               ConformanceEngine::kLiveEdgeEr,
               ConformanceEngine::kLiveEdgeComplete};
  const ConformanceReport report = check_conformance(c, fast_options());
  EXPECT_TRUE(report.ok()) << report.summary();
  // 10 trajectory nets + 10 chunked nets (all rows are pairwise) + 2
  // vs-agent KS rows (live-edge-complete only sparse-excluded ones drop
  // out) + 4 sparse-pair KS rows.
  EXPECT_GE(report.checks_run, 24);
}

TEST(Conformance, DeterministicVerdict) {
  ConformanceCase c;
  c.protocol.k = 4;
  c.n = 10;
  c.seed = 42;
  c.trials = 12;
  c.budget = 100'000;
  c.engines = {ConformanceEngine::kAgent, ConformanceEngine::kJump,
               ConformanceEngine::kGraphComplete};
  const ConformanceReport a = check_conformance(c, fast_options());
  const ConformanceReport b = check_conformance(c, fast_options());
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.summary(), b.summary());
}

// ---------------------------------------------------------------------------
// Mutation smoke: the harness must see a single flipped transition

TEST(ConformanceMutation, FlippedTransitionIsDetectedAndShrinks) {
  const core::KPartitionProtocol protocol(3);
  ConformanceCase c;
  c.protocol.k = 3;
  // Engines run (initial, initial) -> (g1, g1) instead of the true rule;
  // every reference model keeps the paper's semantics.  The first mutated
  // application creates two g1 members with no balancing m/d/gk mass, so
  // Lemma 1 breaks immediately.
  c.mutation = TableMutation{core::KPartitionProtocol::kInitial,
                             core::KPartitionProtocol::kInitial,
                             pp::Transition{protocol.g(1), protocol.g(1)}};
  c.n = 12;
  c.seed = 3;
  c.trials = 12;
  c.budget = 50'000;
  c.engines = {ConformanceEngine::kAgent};

  const ConformanceOptions options = fast_options();
  const ConformanceReport report = check_conformance(c, options);
  ASSERT_FALSE(report.ok()) << "harness failed to flag the mutated table";
  const Divergence& d = report.divergences.front();
  EXPECT_EQ(d.check, ConformanceCheck::kLemma1) << report.summary();

  const ConformanceRepro repro = shrink_failure(c, d, options);
  // Two free agents suffice to fire the mutated rule: minimal n = 3 (the
  // protocol's floor), and the schedule shrinks to a single interaction.
  EXPECT_EQ(repro.shrunk.n, 3u);
  EXPECT_EQ(repro.shrunk.protocol.k, 2u);  // mutation survives at k = 2
  ASSERT_FALSE(repro.schedule.empty());
  EXPECT_EQ(repro.schedule.size(), 1u);

  // The shrunken repro replays deterministically to the same verdict.
  const ConformanceReport replayed = replay_repro(repro, options);
  EXPECT_FALSE(replayed.ok());
  ASSERT_FALSE(replayed.divergences.empty());
  EXPECT_EQ(replayed.divergences.front().check, ConformanceCheck::kLemma1);
}

TEST(ConformanceMutation, FlippedTransitionIsDetectedThroughLiveEdgeEngine) {
  // Same mutation smoke as above, but the only driven engine is the
  // live-edge row on a sparse graph: its CheckingOracle must catch the
  // Lemma 1 break exactly like the agent reference does -- the skip-ahead
  // sampling must not skip past oracle-visible transitions.
  const core::KPartitionProtocol protocol(3);
  ConformanceCase c;
  c.protocol.k = 3;
  c.mutation = TableMutation{core::KPartitionProtocol::kInitial,
                             core::KPartitionProtocol::kInitial,
                             pp::Transition{protocol.g(1), protocol.g(1)}};
  c.n = 12;
  c.seed = 3;
  c.trials = 12;
  c.budget = 50'000;
  c.engines = {ConformanceEngine::kLiveEdgeRing};

  const ConformanceReport report = check_conformance(c, fast_options());
  ASSERT_FALSE(report.ok())
      << "live-edge engine failed to flag the mutated table";
  const Divergence& d = report.divergences.front();
  EXPECT_EQ(d.check, ConformanceCheck::kLemma1) << report.summary();
  EXPECT_EQ(d.engine, ConformanceEngine::kLiveEdgeRing);
}

TEST(ConformanceMutation, TimingOnlyMutationOnlyFailsTheExactNet) {
  // Nullifying rule 1 ((initial, initial) -> (initial', initial') becomes
  // a no-op) leaves the all-initial start silent: initial' is never
  // produced, so no other rule can ever fire.  Every relative net passes
  // -- the trajectory is trivially deterministic, Lemma 1 holds in the
  // all-initial configuration, and all engines agree with each other on
  // the never-stabilizes law.  Only the exact-distribution net, whose
  // reference is the true protocol's first-passage CDF rather than
  // another engine, can see that the censored sample (a point mass at the
  // budget) is impossibly slow.
  ConformanceCase c;
  c.protocol.k = 2;
  c.mutation = TableMutation{core::KPartitionProtocol::kInitial,
                             core::KPartitionProtocol::kInitial,
                             pp::Transition{core::KPartitionProtocol::kInitial,
                                            core::KPartitionProtocol::kInitial}};
  c.n = 8;
  c.seed = 1;
  c.trials = 16;
  c.budget = 20'000;
  c.engines = {ConformanceEngine::kAgent};

  const ConformanceReport report = check_conformance(c, fast_options());
  ASSERT_FALSE(report.ok())
      << "the absolute exact-distribution reference missed a timing-only "
      << "mutation invisible to every engine-to-engine net";
  for (const Divergence& d : report.divergences) {
    EXPECT_EQ(d.check, ConformanceCheck::kExactDistribution)
        << report.summary();
    EXPECT_EQ(d.engine, ConformanceEngine::kAgent);
  }
}

TEST(Conformance, ExactNetPassesBeyondTheDenseSolverCeiling) {
  // The acceptance case for the lumped analysis: n = 110 puts the
  // k = 2 chain (~3100 reachable configurations, g1 == g2 throughout)
  // beyond the dense solver's 3000-unknown ceiling, yet the
  // exact-distribution net still gets its reference CDF from the lumped
  // chain (~1/4 the orbits) and every complete-topology engine must match
  // it.  Budget exceeds the horizon so censoring is the horizon's.
  ConformanceCase c;
  c.protocol.k = 2;
  c.n = 110;
  c.seed = 20260808;
  c.trials = 10;
  c.budget = 60'000;
  c.engines = {
      ConformanceEngine::kAgent,        ConformanceEngine::kCount,
      ConformanceEngine::kJump,         ConformanceEngine::kBatchAuto,
      ConformanceEngine::kBatchForced,  ConformanceEngine::kThinForced,
      ConformanceEngine::kBatchSharded, ConformanceEngine::kGraphComplete,
      ConformanceEngine::kAdversarialEps1,
      ConformanceEngine::kChurnNoFaults,
      ConformanceEngine::kLiveEdgeComplete};
  ConformanceOptions options = fast_options();
  options.exact_max_n = 128;
  const ConformanceReport report = check_conformance(c, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The exact net alone contributes one check per engine.
  EXPECT_GE(report.checks_run, 30);
}

TEST(ConformanceMutation, ReproSerializationRoundTrips) {
  const core::KPartitionProtocol protocol(3);
  ConformanceCase c;
  c.protocol.k = 3;
  c.mutation = TableMutation{core::KPartitionProtocol::kInitial,
                             core::KPartitionProtocol::kInitial,
                             pp::Transition{protocol.g(1), protocol.g(1)}};
  c.n = 8;
  c.seed = 5;
  c.trials = 8;
  c.budget = 20'000;
  c.engines = {ConformanceEngine::kAgent};

  const ConformanceOptions options = fast_options();
  const ConformanceReport report = check_conformance(c, options);
  ASSERT_FALSE(report.ok());
  ConformanceRepro repro =
      shrink_failure(c, report.divergences.front(), options);
  repro.expect_pass = false;

  const std::string text = serialize_repro(repro);
  std::string error;
  const auto parsed = parse_repro(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->shrunk.n, repro.shrunk.n);
  EXPECT_EQ(parsed->shrunk.seed, repro.shrunk.seed);
  EXPECT_EQ(parsed->check, repro.check);
  EXPECT_EQ(parsed->engine, repro.engine);
  EXPECT_EQ(parsed->schedule, repro.schedule);
  EXPECT_EQ(parsed->expect_pass, repro.expect_pass);
  ASSERT_TRUE(parsed->shrunk.mutation.has_value());
  EXPECT_EQ(parsed->shrunk.mutation->p, repro.shrunk.mutation->p);
  EXPECT_EQ(parsed->shrunk.mutation->out, repro.shrunk.mutation->out);

  const ConformanceReport replayed = replay_repro(*parsed, options);
  EXPECT_FALSE(replayed.ok()) << "parsed repro lost the divergence";
}

TEST(ConformanceRepro, ParserRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_repro("", &error).has_value());
  EXPECT_FALSE(parse_repro("not-a-repro\n", &error).has_value());
  EXPECT_FALSE(
      parse_repro("ppk-conformance-repro-v1\nengine agent\ncheck lemma1\n",
                  &error)
          .has_value());
  EXPECT_EQ(error, "missing protocol line");
  EXPECT_FALSE(parse_repro("ppk-conformance-repro-v1\n"
                           "protocol kpartition 3\n"
                           "engine warp-drive\ncheck lemma1\n",
                           &error)
                   .has_value());
}

TEST(ConformanceRepro, NewFamilyHeadersRoundTrip) {
  ConformanceRepro weak;
  weak.shrunk.protocol.family = ConformanceProtocol::Family::kWeakKPartition;
  weak.shrunk.protocol.k = 4;
  weak.engine = ConformanceEngine::kJump;
  weak.check = ConformanceCheck::kTrajectory;
  weak.expect_pass = true;
  const auto weak_parsed = parse_repro(serialize_repro(weak), nullptr);
  ASSERT_TRUE(weak_parsed.has_value());
  EXPECT_EQ(weak_parsed->shrunk.protocol.family,
            ConformanceProtocol::Family::kWeakKPartition);
  EXPECT_EQ(weak_parsed->shrunk.protocol.k, 4u);

  ConformanceRepro graph;
  graph.shrunk.protocol.family =
      ConformanceProtocol::Family::kGraphBipartition;
  graph.engine = ConformanceEngine::kLiveEdgeStar;
  graph.check = ConformanceCheck::kSnapshotResume;
  const auto graph_parsed = parse_repro(serialize_repro(graph), nullptr);
  ASSERT_TRUE(graph_parsed.has_value());
  EXPECT_EQ(graph_parsed->shrunk.protocol.family,
            ConformanceProtocol::Family::kGraphBipartition);
}

TEST(ConformanceNames, RoundTrip) {
  for (const ConformanceEngine engine : all_conformance_engines()) {
    const auto back = conformance_engine_from_name(
        conformance_engine_name(engine));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, engine);
  }
  for (const ConformanceCheck check :
       {ConformanceCheck::kTrajectory, ConformanceCheck::kChunkedResume,
        ConformanceCheck::kDistribution, ConformanceCheck::kLemma1,
        ConformanceCheck::kGroundTruth,
        ConformanceCheck::kExactDistribution}) {
    const auto back =
        conformance_check_from_name(conformance_check_name(check));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, check);
  }
}

// ---------------------------------------------------------------------------
// Deterministic fuzz session (the PR-gate slice of the nightly job)

TEST(ConformanceFuzz, ShortDeterministicSessionIsClean) {
  FuzzOptions options;
  options.seed = 0xF00D;
  options.num_cases = 4;
  options.max_n = 14;
  options.max_k = 4;
  options.trials = 10;
  options.kpartition_budget = 120'000;
  options.candidate_budget = 10'000;
  options.check = fast_options();
  const FuzzResult result = fuzz_conformance(options);
  EXPECT_EQ(result.cases_run, 4);
  ASSERT_FALSE(result.failure.has_value())
      << serialize_repro(*result.failure);
}

// ---------------------------------------------------------------------------
// Committed corpus replay

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  const fs::path dir(PPK_CONFORMANCE_CORPUS_DIR);
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".repro") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ConformanceCorpus, EveryCommittedReproReplaysToItsRecordedVerdict) {
  const std::vector<fs::path> files = corpus_files();
  ASSERT_FALSE(files.empty())
      << "no .repro files under " << PPK_CONFORMANCE_CORPUS_DIR;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const auto repro = parse_repro(text.str(), &error);
    ASSERT_TRUE(repro.has_value()) << file << ": " << error;
    const ConformanceReport report = replay_repro(*repro, fast_options());
    if (repro->expect_pass) {
      EXPECT_TRUE(report.ok())
          << file << " regressed:\n"
          << report.summary();
    } else {
      EXPECT_FALSE(report.ok())
          << file << ": the harness no longer detects this divergence "
          << "(detector sensitivity regressed)";
    }
  }
}

}  // namespace
}  // namespace ppk::verify
