// The generic global-fairness verifier exercised on the classic protocols
// with known stabilization behaviour.

#include <gtest/gtest.h>

#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/approximate_majority.hpp"
#include "protocols/exact_majority.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/modulo_counter.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::protocols {
namespace {

TEST(LeaderElection, StabilizesToExactlyOneLeader) {
  const LeaderElectionProtocol protocol;
  const pp::TransitionTable table(protocol);
  for (std::uint32_t n : {2u, 3u, 5u, 10u, 25u}) {
    pp::Counts initial(protocol.num_states(), 0);
    initial[LeaderElectionProtocol::kLeader] = n;
    const auto verdict = verify::verify_stabilization(
        protocol, table, initial,
        [](const pp::Counts& config, const std::vector<std::uint32_t>&) {
          return config[LeaderElectionProtocol::kLeader] == 1;
        });
    EXPECT_TRUE(verdict.solves) << "n=" << n << ": " << verdict.failure;
  }
}

TEST(ApproximateMajority, AlwaysReachesConsensusUnderGlobalFairness) {
  const ApproximateMajorityProtocol protocol;
  const pp::TransitionTable table(protocol);
  // From any mixed start the bottom SCCs must be all-X or all-Y.
  for (const auto& [x, y, b] :
       {std::tuple{3u, 2u, 0u}, {2u, 2u, 1u}, {4u, 1u, 3u}}) {
    pp::Counts initial{x, y, b};
    const auto verdict = verify::verify_stabilization(
        protocol, table, initial,
        [&](const pp::Counts& config, const std::vector<std::uint32_t>&) {
          const std::uint32_t n = x + y + b;
          return config[ApproximateMajorityProtocol::kX] == n ||
                 config[ApproximateMajorityProtocol::kY] == n;
        });
    EXPECT_TRUE(verdict.solves)
        << "x=" << x << " y=" << y << " b=" << b << ": " << verdict.failure;
  }
}

TEST(ExactMajority, MajorityOpinionWinsInEveryFairExecution) {
  const ExactMajorityProtocol protocol;
  const pp::TransitionTable table(protocol);
  // 4 strong A vs 3 strong B: group 0 ("A wins") must absorb everyone.
  pp::Counts initial{4, 3, 0, 0};
  const auto verdict = verify::verify_stabilization(
      protocol, table, initial,
      [](const pp::Counts&, const std::vector<std::uint32_t>& sizes) {
        return sizes[0] == 7 && sizes[1] == 0;
      });
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(ExactMajority, MinorityNeverWinsEvenWhenItStartsLoud) {
  const ExactMajorityProtocol protocol;
  const pp::TransitionTable table(protocol);
  pp::Counts initial{2, 5, 0, 0};  // B has the majority
  const auto verdict = verify::verify_stabilization(
      protocol, table, initial,
      [](const pp::Counts&, const std::vector<std::uint32_t>& sizes) {
        return sizes[1] == 7;
      });
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(ExactMajority, TieLeavesAllAgentsWeak) {
  const ExactMajorityProtocol protocol;
  const pp::TransitionTable table(protocol);
  pp::Counts initial{3, 3, 0, 0};
  const auto verdict = verify::verify_stabilization(
      protocol, table, initial,
      [](const pp::Counts& config, const std::vector<std::uint32_t>&) {
        return config[ExactMajorityProtocol::kStrongA] == 0 &&
               config[ExactMajorityProtocol::kStrongB] == 0;
      });
  EXPECT_TRUE(verdict.solves) << verdict.failure;
}

TEST(ModuloCounter, SingleHolderEndsWithNModM) {
  for (std::uint32_t m : {2u, 3u, 5u}) {
    const ModuloCounterProtocol protocol(m);
    const pp::TransitionTable table(protocol);
    for (std::uint32_t n : {3u, 4u, 7u}) {
      pp::Counts initial(protocol.num_states(), 0);
      initial[protocol.initial_state()] = n;
      const auto verdict = verify::verify_stabilization(
          protocol, table, initial,
          [&](const pp::Counts& config, const std::vector<std::uint32_t>&) {
            // Exactly one non-sink holder carrying n mod m.
            std::uint32_t holders = 0;
            for (std::uint32_t v = 0; v < m; ++v) holders += config[v];
            return holders == 1 && config[n % m] == 1;
          });
      EXPECT_TRUE(verdict.solves)
          << "m=" << m << " n=" << n << ": " << verdict.failure;
    }
  }
}

TEST(ModuloCounter, SimulationAgreesWithTheory) {
  const ModuloCounterProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  const std::uint32_t n = 30;  // 30 mod 4 = 2
  pp::Population population(n, protocol.num_states(),
                            protocol.initial_state());
  pp::AgentSimulator sim(table, std::move(population), 13);
  pp::SilenceOracle oracle(table);
  ASSERT_TRUE(sim.run(oracle, 10'000'000ULL).stabilized);
  EXPECT_EQ(sim.population().counts()[2], 1u);
  EXPECT_EQ(sim.population().counts()[protocol.sink()], n - 1);
}

TEST(ApproximateMajority, SimulationConvergesToInitialMajority) {
  // Statistical: with a 3:1 margin on n = 100, consensus on X should win
  // in the overwhelming majority of runs.
  const ApproximateMajorityProtocol protocol;
  const pp::TransitionTable table(protocol);
  int x_wins = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    pp::Population population(pp::Counts{75, 25, 0});
    pp::AgentSimulator sim(table, std::move(population), seed);
    pp::SilenceOracle oracle(table);
    if (!sim.run(oracle, 10'000'000ULL).stabilized) continue;
    if (sim.population().counts()[ApproximateMajorityProtocol::kX] == 100) {
      ++x_wins;
    }
  }
  EXPECT_GE(x_wins, 18);
}

}  // namespace
}  // namespace ppk::protocols
