// Crash-safe campaign layer (core/campaign.hpp): checkpoint round trips,
// interrupt/resume bit-identity, thread-count invariance, retry/backoff
// supervision, and the refusal paths.  The SIGKILL version of the resume
// story lives in scripts/test_crash_resume.py; these tests drive the same
// machinery in-process where every step is assertable.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/campaign.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "pp/fairness.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"

#include <memory>
#include <vector>

namespace {

using ppk::core::CampaignCheckpoint;
using ppk::core::CampaignOptions;
using ppk::core::CampaignResult;
using ppk::core::KPartitionProtocol;
using ppk::obs::MetricsRegistry;

std::string registry_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  ppk::io::JsonWriter json(out);
  registry.write_json(json);
  return out.str();
}

std::uint64_t counter_value(const MetricsRegistry& registry,
                            const std::string& name) {
  const auto it = registry.counters().find(name);
  return it != registry.counters().end() ? it->second.value() : 0;
}

/// Trial verdicts as one comparable string (everything the report carries).
std::string verdicts(const CampaignResult& result) {
  std::ostringstream out;
  for (const auto& t : result.trials) {
    out << t.result.interactions << '/' << t.result.effective << '/'
        << t.result.stabilized << t.result.timed_out << t.result.stalled
        << t.failed << t.censored << '/' << t.retries;
    for (const std::uint64_t m : t.result.watch_marks) out << ',' << m;
    out << '\n';
  }
  return out.str();
}

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() : protocol_(3), table_(protocol_) {}

  [[nodiscard]] CampaignOptions base_options() const {
    CampaignOptions options;
    options.mc.trials = 8;
    options.mc.master_seed = 99;
    options.mc.max_interactions = 200'000;
    options.chunk_interactions = 512;
    options.checkpoint_every_chunks = 2;
    return options;
  }

  [[nodiscard]] CampaignResult run(const CampaignOptions& options) const {
    return ppk::core::run_campaign(
        protocol_, table_, kN,
        [&] { return ppk::core::stable_pattern_oracle(protocol_, kN); },
        options);
  }

  [[nodiscard]] std::string temp_checkpoint(const char* tag) const {
    const auto path = std::filesystem::temp_directory_path() /
                      (std::string("ppk_campaign_test_") + tag + ".json");
    std::filesystem::remove(path);
    return path.string();
  }

  static constexpr std::uint32_t kN = 40;
  KPartitionProtocol protocol_;
  ppk::pp::TransitionTable table_;
};

TEST_F(CampaignTest, CompletesAndCountsVerdicts) {
  const CampaignResult result = run(base_options());
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.error.empty());
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.trials.size(), 8u);
  EXPECT_EQ(result.completed_count(), 8u);
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_EQ(result.censored_count(), 0u);
  for (const auto& t : result.trials) EXPECT_TRUE(t.result.stabilized);
  EXPECT_EQ(counter_value(result.metrics, "trials"), 8u);
  EXPECT_EQ(counter_value(result.metrics, "trials.stabilized"), 8u);
}

TEST_F(CampaignTest, ResultIsThreadCountInvariant) {
  CampaignOptions options = base_options();
  const CampaignResult one = run(options);
  options.mc.threads = 4;
  const CampaignResult four = run(options);
  EXPECT_EQ(verdicts(one), verdicts(four));
  EXPECT_EQ(registry_json(one.metrics), registry_json(four.metrics));
}

TEST_F(CampaignTest, CheckpointSerializationRoundTripsExactly) {
  // Run half the campaign (tiny deadline halts at the first chunk
  // boundaries), parse the checkpoint it wrote, re-serialize, and demand
  // the identical bytes: every field, including in-flight snapshots and
  // histogram buckets, must survive.
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("roundtrip");
  options.campaign_deadline_seconds = 1e-9;
  const CampaignResult partial = run(options);
  EXPECT_FALSE(partial.complete);
  EXPECT_GT(partial.censored_count(), 0u);

  std::ifstream file(options.checkpoint_path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  const auto ckpt =
      ppk::core::parse_campaign_checkpoint(buffer.str(), &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ppk::core::serialize_campaign_checkpoint(*ckpt), buffer.str());
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, InterruptedCampaignResumesBitIdentically) {
  const CampaignResult reference = run(base_options());
  ASSERT_TRUE(reference.complete);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    CampaignOptions options = base_options();
    options.mc.threads = threads;
    options.checkpoint_path = temp_checkpoint("resume");
    options.campaign_deadline_seconds = 1e-9;  // halt at the first boundary
    const CampaignResult partial = run(options);
    EXPECT_FALSE(partial.complete);

    options.campaign_deadline_seconds.reset();
    const CampaignResult resumed = run(options);
    EXPECT_TRUE(resumed.resumed);
    ASSERT_TRUE(resumed.complete) << "threads=" << threads;
    EXPECT_EQ(verdicts(resumed), verdicts(reference))
        << "threads=" << threads;
    EXPECT_EQ(registry_json(resumed.metrics),
              registry_json(reference.metrics))
        << "threads=" << threads;
    std::filesystem::remove(options.checkpoint_path);
  }
}

TEST_F(CampaignTest, StopFlagCensorsAndKeepsTheCampaignResumable) {
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("stop");
  const std::atomic<bool> stop{true};
  options.stop = &stop;
  const CampaignResult halted = run(options);
  EXPECT_FALSE(halted.complete);
  EXPECT_EQ(halted.censored_count(), options.mc.trials);

  options.stop = nullptr;
  const CampaignResult resumed = run(options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(verdicts(resumed), verdicts(run(base_options())));
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, RetryBacksOffTheBudgetUntilStabilization) {
  CampaignOptions options = base_options();
  options.mc.trials = 4;
  options.mc.max_interactions = 40;  // far too small for n = 40
  options.max_retries = 12;
  options.retry_backoff = 2.0;
  MetricsRegistry runtime;
  options.runtime_metrics = &runtime;
  const CampaignResult result = run(options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_GT(result.retried_count(), 0u);
  for (const auto& t : result.trials) {
    EXPECT_TRUE(t.result.stabilized);
    EXPECT_GT(t.retries, 0u);
    // Accumulated work spans every attempt, so it exceeds the base budget.
    EXPECT_GT(t.result.interactions, options.mc.max_interactions);
  }
  EXPECT_GT(runtime.counter("campaign.retries").value(), 0u);
  EXPECT_EQ(runtime.gauge("campaign.trials.failed").value(), 0);
}

TEST_F(CampaignTest, ExhaustedRetriesFailTheTrial) {
  CampaignOptions options = base_options();
  options.mc.trials = 2;
  options.mc.max_interactions = 10;
  options.max_retries = 1;
  options.retry_backoff = 1.0;  // no growth: it can never stabilize
  const CampaignResult result = run(options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.failed_count(), 2u);
  for (const auto& t : result.trials) {
    EXPECT_TRUE(t.failed);
    EXPECT_FALSE(t.result.stabilized);
    EXPECT_EQ(t.retries, 1u);
  }
  EXPECT_EQ(counter_value(result.metrics, "trials.failed"), 2u);
}

TEST_F(CampaignTest, RefusesACheckpointFromADifferentConfiguration) {
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("fingerprint");
  const CampaignResult first = run(options);
  ASSERT_TRUE(first.complete);

  options.mc.master_seed = 100;  // different campaign, same file
  const CampaignResult refused = run(options);
  EXPECT_FALSE(refused.error.empty());
  EXPECT_TRUE(refused.trials.empty());
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, RefusesAMalformedCheckpointFile) {
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("malformed");
  {
    std::ofstream file(options.checkpoint_path);
    file << "{\"schema\":\"ppk-campaign-v1\",\"garbage\":true}";
  }
  const CampaignResult refused = run(options);
  EXPECT_FALSE(refused.error.empty());
  EXPECT_TRUE(refused.trials.empty());
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, RuntimeMetricsRecordCheckpointWrites) {
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("runtime");
  MetricsRegistry runtime;
  options.runtime_metrics = &runtime;
  const CampaignResult result = run(options);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(runtime.counter("campaign.checkpoints").value(), 0u);
  EXPECT_EQ(runtime.histogram("campaign.checkpoint.write_us").total(),
            runtime.counter("campaign.checkpoints").value());
  EXPECT_EQ(runtime.gauge("campaign.trials.censored").value(), 0);
  EXPECT_EQ(runtime.gauge("campaign.trials.failed").value(), 0);
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, FingerprintCoversTheTrajectoryShapingKnobs) {
  const CampaignOptions base = base_options();
  ppk::pp::Counts initial(protocol_.num_states(), 0);
  initial[protocol_.initial_state()] = kN;
  const std::string fp = ppk::core::campaign_fingerprint(initial, base);

  CampaignOptions changed = base;
  changed.chunk_interactions = 1024;
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), fp);
  changed = base;
  changed.mc.master_seed = 7;
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), fp);
  changed = base;
  changed.max_retries = 3;
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), fp);

  // Supervision-only knobs deliberately stay out: they never change a
  // completed trial's trajectory, so resuming across them is sound.
  changed = base;
  changed.campaign_deadline_seconds = 5.0;
  changed.checkpoint_every_chunks = 99;
  EXPECT_EQ(ppk::core::campaign_fingerprint(initial, changed), fp);
}

TEST_F(CampaignTest, FingerprintCoversFairnessAndTopology) {
  const CampaignOptions base = base_options();
  ppk::pp::Counts initial(protocol_.num_states(), 0);
  initial[protocol_.initial_state()] = kN;
  const std::string fp = ppk::core::campaign_fingerprint(initial, base);

  // The fairness policy and its epsilon both shape every adversarial
  // trajectory; each must change the fingerprint on its own.
  CampaignOptions changed = base;
  changed.mc.fairness.policy = ppk::pp::FairnessPolicy::kWeakRoundRobin;
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), fp);
  changed = base;
  changed.mc.fairness.policy = ppk::pp::FairnessPolicy::kEpsilonFair;
  changed.mc.fairness.epsilon = 0.25;
  const std::string quarter = ppk::core::campaign_fingerprint(initial, changed);
  EXPECT_NE(quarter, fp);
  changed.mc.fairness.epsilon = 0.5;
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), quarter);

  // A caller-supplied topology tag distinguishes topologies the factory
  // presence bit cannot (ring vs star).
  changed = base;
  changed.topology_tag = "ring";
  const std::string ring = ppk::core::campaign_fingerprint(initial, changed);
  EXPECT_NE(ring, fp);
  changed.topology_tag = "star";
  EXPECT_NE(ppk::core::campaign_fingerprint(initial, changed), ring);
}

TEST_F(CampaignTest, RefusesAFairnessMismatchedCheckpoint) {
  // A checkpoint written under weak round-robin must NOT resume under the
  // default uniform-random fairness: the policies draw entirely different
  // trajectories, so finishing the campaign under the wrong one would
  // silently mix statistics.  (The pre-fix fingerprint omitted fairness
  // and resumed cleanly.)
  CampaignOptions options = base_options();
  options.checkpoint_path = temp_checkpoint("fairness_mismatch");
  options.mc.fairness.policy = ppk::pp::FairnessPolicy::kWeakRoundRobin;
  const std::atomic<bool> stop{true};
  options.stop = &stop;  // wind down immediately; the checkpoint still lands
  const CampaignResult halted = run(options);
  EXPECT_FALSE(halted.complete);

  options.stop = nullptr;
  options.mc.fairness = ppk::pp::FairnessSpec{};  // back to uniform-random
  const CampaignResult refused = run(options);
  EXPECT_FALSE(refused.error.empty());
  EXPECT_TRUE(refused.trials.empty());
  std::filesystem::remove(options.checkpoint_path);
}

TEST_F(CampaignTest, AdversarialFairnessRoutesToTheAdversarialEngine) {
  // An epsilon-fair campaign must draw the same trajectories as the
  // Monte-Carlo runner's adversarial route with the same seeds.  (Pre-fix
  // the campaign ignored `mc.fairness` and ran the uniform scheduler, so
  // the totals disagree.)
  CampaignOptions options = base_options();
  options.mc.trials = 4;
  options.mc.fairness =
      ppk::pp::FairnessSpec{ppk::pp::FairnessPolicy::kEpsilonFair, 0.5};
  const CampaignResult campaign = run(options);
  ASSERT_TRUE(campaign.complete);

  const ppk::pp::MonteCarloResult reference = ppk::pp::run_monte_carlo(
      protocol_, table_, kN,
      [&] { return ppk::core::stable_pattern_oracle(protocol_, kN); },
      options.mc);
  ASSERT_EQ(reference.trials.size(), campaign.trials.size());
  for (std::size_t t = 0; t < campaign.trials.size(); ++t) {
    EXPECT_EQ(campaign.trials[t].result.interactions,
              reference.trials[t].interactions)
        << "trial " << t;
    EXPECT_EQ(campaign.trials[t].result.effective,
              reference.trials[t].effective)
        << "trial " << t;
    EXPECT_TRUE(campaign.trials[t].result.stabilized) << "trial " << t;
  }
}

TEST_F(CampaignTest, CountsOnlyOverloadRejectsAdversarialFairness) {
  // Without a protocol the adversarial engine cannot probe for progress;
  // the counts-only overload must fail fast instead of silently running
  // the uniform scheduler.
  CampaignOptions options = base_options();
  options.mc.fairness.policy = ppk::pp::FairnessPolicy::kWeakRoundRobin;
  ppk::pp::Counts initial(protocol_.num_states(), 0);
  initial[protocol_.initial_state()] = kN;
  EXPECT_DEATH(
      (void)ppk::core::run_campaign(
          table_, initial,
          [&] { return ppk::core::stable_pattern_oracle(protocol_, kN); },
          options),
      "needs_adversarial_engine");
}

TEST_F(CampaignTest, WeakRoundRobinCheckpointResumesBitIdentically) {
  // The checkpoint-kill-resume story under kWeakRoundRobin: the
  // adversarial engine's snapshot carries the unscheduled remainder of
  // the current round, so a censored-and-resumed campaign must be
  // bit-identical to an uninterrupted one.  Uses the weak-fairness
  // k-partition family (the global-fairness family livelocks here).
  ppk::core::WeakKPartitionProtocol weak(3);
  ppk::pp::TransitionTable table(weak);
  CampaignOptions options = base_options();
  options.mc.trials = 4;
  const auto make_oracle = [&] {
    return std::make_unique<ppk::pp::SilenceOracle>(table);
  };
  options.mc.fairness.policy = ppk::pp::FairnessPolicy::kWeakRoundRobin;
  const CampaignResult reference =
      ppk::core::run_campaign(weak, table, kN, make_oracle, options);
  ASSERT_TRUE(reference.complete);
  for (const auto& t : reference.trials) EXPECT_TRUE(t.result.stabilized);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    CampaignOptions interrupted = options;
    interrupted.mc.threads = threads;
    interrupted.checkpoint_path = temp_checkpoint("weak_rr_resume");
    interrupted.campaign_deadline_seconds = 1e-9;  // censor at first boundary
    const CampaignResult partial =
        ppk::core::run_campaign(weak, table, kN, make_oracle, interrupted);
    EXPECT_FALSE(partial.complete);

    interrupted.campaign_deadline_seconds.reset();
    const CampaignResult resumed =
        ppk::core::run_campaign(weak, table, kN, make_oracle, interrupted);
    EXPECT_TRUE(resumed.resumed);
    ASSERT_TRUE(resumed.complete) << "threads=" << threads;
    EXPECT_EQ(verdicts(resumed), verdicts(reference)) << "threads=" << threads;
    EXPECT_EQ(registry_json(resumed.metrics), registry_json(reference.metrics))
        << "threads=" << threads;
    std::filesystem::remove(interrupted.checkpoint_path);
  }
}

TEST_F(CampaignTest, StreamsTrialVerdictsAsTheyComplete) {
  CampaignOptions options = base_options();
  options.mc.threads = 4;
  std::vector<char> announced(options.mc.trials, 0);
  std::uint32_t events = 0;
  options.on_trial = [&](std::uint32_t trial,
                         const ppk::core::CampaignTrial& t) {
    // Serialized under the campaign lock, so plain writes are safe.
    ASSERT_LT(trial, announced.size());
    announced[trial] += 1;
    events += t.result.stabilized ? 1u : 0u;
  };
  const CampaignResult result = run(options);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(events, options.mc.trials);
  for (const char count : announced) EXPECT_EQ(count, 1);
}

}  // namespace
