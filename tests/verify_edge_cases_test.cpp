// Edge-case coverage for the verifier plumbing and engine fallbacks that
// the mainline tests do not reach.

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recursive_bipartition.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "verify/global_fairness.hpp"

namespace ppk {
namespace {

TEST(VerifierEdgeCases, IncompleteExplorationYieldsUnknownVerdict) {
  const core::KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  verify::ExploreOptions options;
  options.max_configs = 2;  // force truncation
  const auto verdict =
      verify::verify_uniform_partition(protocol, table, 12, options);
  EXPECT_FALSE(verdict.exploration_complete);
  EXPECT_FALSE(verdict.solves);
  EXPECT_NE(verdict.failure.find("max_configs"), std::string::npos);
}

TEST(VerifierEdgeCases, VerdictCountsAreConsistent) {
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  const auto verdict = verify::verify_uniform_partition(protocol, table, 6);
  ASSERT_TRUE(verdict.exploration_complete);
  EXPECT_GT(verdict.reachable_configs, 0u);
  EXPECT_GT(verdict.num_sccs, 0u);
  EXPECT_LE(verdict.bottom_sccs, verdict.num_sccs);
  EXPECT_LE(verdict.num_sccs, verdict.reachable_configs);
}

TEST(MonteCarloEdgeCases, JumpEngineIsSelectable) {
  const core::KPartitionProtocol protocol(4);
  const pp::TransitionTable table(protocol);
  pp::MonteCarloOptions options;
  options.trials = 10;
  options.engine = pp::Engine::kJump;
  const auto result = pp::run_monte_carlo(
      protocol, table, 17,
      [&] { return core::stable_pattern_oracle(protocol, 17); }, options);
  EXPECT_EQ(result.stabilized_count(), 10u);
  // Reproducibility holds for the jump engine too.
  const auto again = pp::run_monte_carlo(
      protocol, table, 17,
      [&] { return core::stable_pattern_oracle(protocol, 17); }, options);
  for (std::size_t t = 0; t < result.trials.size(); ++t) {
    EXPECT_EQ(result.trials[t].interactions, again.trials[t].interactions);
  }
}

TEST(MonteCarloEdgeCases, WatchStateForcesAgentEngine) {
  // watch_state needs the per-agent observer, so the jump/count engines
  // fall back to the agent engine -- marks must still be produced.
  const core::KPartitionProtocol protocol(3);
  const pp::TransitionTable table(protocol);
  pp::MonteCarloOptions options;
  options.trials = 5;
  options.engine = pp::Engine::kJump;
  options.watch_state = protocol.g(3);
  const auto result = pp::run_monte_carlo(
      protocol, table, 9,
      [&] { return core::stable_pattern_oracle(protocol, 9); }, options);
  for (const auto& trial : result.trials) {
    ASSERT_TRUE(trial.stabilized);
    EXPECT_EQ(trial.watch_marks.size(), 3u);  // floor(9/3)
  }
}

TEST(RecursiveBipartitionEdgeCases, FreeStatesMapToLeftmostLeaf) {
  const core::RecursiveBipartitionProtocol protocol(3);  // k = 8
  // A layer-2 free agent with prefix 1 sits over leaves 100..111; its
  // provisional group is the leftmost, 100 = 4.
  EXPECT_EQ(protocol.group(protocol.free_state(2, 1, 0)), 4);
  EXPECT_EQ(protocol.group(protocol.free_state(2, 1, 1)), 4);
  // Root-layer agents map to group 0.
  EXPECT_EQ(protocol.group(protocol.free_state(1, 0, 0)), 0);
  // Layer-3 prefix 3 (11) covers leaves 110, 111 -> group 6.
  EXPECT_EQ(protocol.group(protocol.free_state(3, 3, 0)), 6);
}

TEST(RecursiveBipartitionEdgeCases, StateNamesAreReadable) {
  const core::RecursiveBipartitionProtocol protocol(2);
  EXPECT_EQ(protocol.state_name(protocol.free_state(1, 0, 0)), "free[e]");
  EXPECT_EQ(protocol.state_name(protocol.free_state(2, 1, 1)), "free[1']");
  EXPECT_EQ(protocol.state_name(protocol.leaf_state(2)), "leaf[10]");
}

TEST(VerifierEdgeCases, Theorem1ExtendedGrid) {
  // A second, larger sweep of Theorem 1 beyond the mainline grid --
  // these have bigger reachable spaces and all residues for k = 6.
  struct Case {
    pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c : {Case{3, 10}, Case{3, 11}, Case{3, 12}, Case{4, 9},
                        Case{4, 10}, Case{6, 6}, Case{6, 7}, Case{6, 8}}) {
    const core::KPartitionProtocol protocol(c.k);
    const pp::TransitionTable table(protocol);
    const auto verdict =
        verify::verify_uniform_partition(protocol, table, c.n);
    ASSERT_TRUE(verdict.exploration_complete)
        << "k=" << int{c.k} << " n=" << c.n;
    EXPECT_TRUE(verdict.solves)
        << "k=" << int{c.k} << " n=" << c.n << ": " << verdict.failure;
  }
}

}  // namespace
}  // namespace ppk
