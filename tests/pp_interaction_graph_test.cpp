#include "pp/interaction_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/epidemic.hpp"

namespace ppk::pp {
namespace {

TEST(InteractionGraph, CompleteHasAllPairs) {
  const auto graph = InteractionGraph::complete(6);
  EXPECT_EQ(graph.num_agents(), 6u);
  EXPECT_EQ(graph.edges().size(), 15u);
  EXPECT_TRUE(graph.is_connected());
  EXPECT_DOUBLE_EQ(graph.average_degree(), 5.0);
}

TEST(InteractionGraph, RingHasNEdges) {
  const auto graph = InteractionGraph::ring(8);
  EXPECT_EQ(graph.edges().size(), 8u);
  EXPECT_TRUE(graph.is_connected());
  EXPECT_DOUBLE_EQ(graph.average_degree(), 2.0);
}

TEST(InteractionGraph, StarHasHub) {
  const auto graph = InteractionGraph::star(10);
  EXPECT_EQ(graph.edges().size(), 9u);
  EXPECT_TRUE(graph.is_connected());
  for (const auto& [a, b] : graph.edges()) {
    EXPECT_EQ(a, 0u);
    EXPECT_NE(b, 0u);
  }
}

TEST(InteractionGraph, PathIsConnectedWithNMinus1Edges) {
  const auto graph = InteractionGraph::path(7);
  EXPECT_EQ(graph.edges().size(), 6u);
  EXPECT_TRUE(graph.is_connected());
}

TEST(InteractionGraph, ErdosRenyiIsConnectedAndSeeded) {
  const auto a = InteractionGraph::erdos_renyi(30, 0.3, 5);
  const auto b = InteractionGraph::erdos_renyi(30, 0.3, 5);
  EXPECT_TRUE(a.is_connected());
  EXPECT_EQ(a.edges(), b.edges());  // deterministic in the seed
  const auto c = InteractionGraph::erdos_renyi(30, 0.3, 6);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(InteractionGraph, ErdosRenyiDensityTracksP) {
  const auto graph = InteractionGraph::erdos_renyi(60, 0.5, 9);
  const double expected = 0.5 * (60.0 * 59.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(graph.edges().size()), expected,
              expected * 0.2);
}

TEST(InteractionGraph, ErdosRenyiSubThresholdReportsFailureInsteadOfAborting) {
  // Regression: the bounded resample loop used to end in PPK_ASSERT(false)
  // -- a process abort -- with an unreachable complete-graph fallback
  // behind it that would have silently substituted a different topology
  // had the assert ever been compiled out.  Sub-threshold p must surface
  // as a recoverable outcome instead.
  const auto graph = InteractionGraph::try_erdos_renyi(64, 0.005, 3, 25);
  EXPECT_FALSE(graph.has_value());
  EXPECT_THROW(InteractionGraph::erdos_renyi(64, 0.005, 3),
               std::runtime_error);
}

TEST(InteractionGraph, ErdosRenyiSparseDensityAndConnectivity) {
  // The geometric-skip generator must hit the same G(n, p) law as the old
  // per-pair coin flips: check edge density in the sparse regime it was
  // built for (p far below the dense grid the other tests use).
  const std::uint32_t n = 2000;
  const double p = 0.01;  // ~2.6x the ln(n)/n connectivity threshold
  const auto graph = InteractionGraph::erdos_renyi(n, p, 77);
  EXPECT_TRUE(graph.is_connected());
  const double expected =
      p * static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(graph.edges().size()), expected,
              expected * 0.05);
  // Still deterministic in the seed.
  const auto again = InteractionGraph::erdos_renyi(n, p, 77);
  EXPECT_EQ(graph.edges(), again.edges());
}

TEST(InteractionGraph, ErdosRenyiMillionAgentsNearThreshold) {
  // The acceptance bar for the O(m) generator: a connected G(n, p) at
  // n = 10^6 near the connectivity threshold, which the old O(n^2) scan
  // (half a trillion coin flips per attempt) could not produce at all.
  const std::uint32_t n = 1'000'000;
  const double p = 2.0 * std::log(static_cast<double>(n)) /
                   static_cast<double>(n);  // c = 2: connected w.h.p.
  const auto graph = InteractionGraph::try_erdos_renyi(n, p, 2026, 4);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->num_agents(), n);
  const double expected =
      p * static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(graph->edges().size()), expected,
              expected * 0.02);
}

TEST(GraphSimulator, CompleteGraphMatchesAgentSimulatorStatistically) {
  // On the complete graph the edge+orientation draw is the uniform ordered
  // pair draw, so stabilization statistics must match AgentSimulator's.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  constexpr int kTrials = 50;

  double graph_mean = 0.0;
  double agent_mean = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      GraphSimulator sim(table, InteractionGraph::complete(n),
                         Population(n, protocol.num_states(),
                                    protocol.initial_state()),
                         derive_stream_seed(10, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      graph_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
    {
      AgentSimulator sim(table,
                         Population(n, protocol.num_states(),
                                    protocol.initial_state()),
                         derive_stream_seed(20, static_cast<std::uint64_t>(trial)));
      auto oracle = core::stable_pattern_oracle(protocol, n);
      agent_mean += static_cast<double>(sim.run(*oracle).interactions);
    }
  }
  graph_mean /= kTrials;
  agent_mean /= kTrials;
  EXPECT_LT(std::abs(graph_mean - agent_mean) / agent_mean, 0.35)
      << "graph=" << graph_mean << " agent=" << agent_mean;
}

TEST(GraphSimulator, EpidemicSpreadsOnAnyConnectedGraph) {
  const protocols::EpidemicProtocol protocol;
  const TransitionTable table(protocol);
  for (const auto& graph :
       {InteractionGraph::ring(20), InteractionGraph::star(20),
        InteractionGraph::path(20), InteractionGraph::erdos_renyi(20, 0.3, 3)}) {
    Population population(Counts{1, 19});  // one informed agent (agent 0)
    GraphSimulator sim(table, graph, std::move(population), 77);
    SilenceOracle oracle(table);
    const SimResult result = sim.run(oracle, 1'000'000);
    ASSERT_TRUE(result.stabilized);
    EXPECT_EQ(sim.population().counts()[protocols::EpidemicProtocol::kInformed],
              20u);
  }
}

TEST(GraphSimulator, ResumePreservesOracleProgressAcrossChunks) {
  // Regression (the PR 1 bug class, fixed here for GraphSimulator): run()
  // resets the oracle, so granting the budget in chunks via run() discarded
  // a quiescence lull spanning a chunk boundary -- a window longer than the
  // chunk could never fill.  resume() must continue the oracle where the
  // previous chunk stopped, making a chunked run identical to an unchunked
  // one (the RNG consumes per drawn pair, so chunking is transparent).
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint64_t seed = 11;
  // n = 13, k = 4 leaves one free agent whose flips stay effective after
  // stabilization, so the quiescence window does fill up.
  constexpr std::uint32_t kN = 13;
  constexpr std::uint64_t kWindow = 500;  // effective interactions
  constexpr std::uint64_t kChunk = 64;    // drawn pairs per grant
  constexpr std::uint64_t kBudget = 5'000'000;

  GraphSimulator whole(table, InteractionGraph::complete(kN),
                       Population(kN, protocol.num_states(),
                                  protocol.initial_state()),
                       seed);
  auto whole_oracle = make_quiescence_oracle(protocol, kWindow);
  const SimResult reference = whole.run(whole_oracle, kBudget);
  ASSERT_TRUE(reference.stabilized);

  GraphSimulator chunked(table, InteractionGraph::complete(kN),
                         Population(kN, protocol.num_states(),
                                    protocol.initial_state()),
                         seed);
  auto chunked_oracle = make_quiescence_oracle(protocol, kWindow);
  std::uint64_t total = 0;
  bool stabilized = false;
  bool first = true;
  while (!stabilized && total < kBudget) {
    const SimResult r = first ? chunked.run(chunked_oracle, kChunk)
                              : chunked.resume(chunked_oracle, kChunk);
    first = false;
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_TRUE(stabilized);
  EXPECT_EQ(total, reference.interactions);

  // Contrast: the buggy per-chunk run() pattern resets the oracle every 64
  // draws, so the 500-effective-interaction lull is never observed.
  GraphSimulator resetting(table, InteractionGraph::complete(kN),
                           Population(kN, protocol.num_states(),
                                      protocol.initial_state()),
                           seed);
  auto reset_oracle = make_quiescence_oracle(protocol, kWindow);
  total = 0;
  stabilized = false;
  while (!stabilized && total < 200'000) {
    const SimResult r = resetting.run(reset_oracle, kChunk);
    total += r.interactions;
    stabilized = r.stabilized;
  }
  EXPECT_FALSE(stabilized);
}

TEST(GraphSimulator, KPartitionCanWedgeOnSparseGraphs) {
  // The paper assumes the complete interaction graph; Lemmas 2-5 use
  // arbitrary pairs.  On a ring, a builder can be walled in by committed
  // neighbours and the run stalls in a non-stable configuration.  We
  // assert the *weaker*, deterministic fact that some seeds fail to reach
  // the stable pattern on the ring within a generous budget while the
  // complete graph always stabilizes (same seeds, same budget).
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 12;
  const std::uint64_t budget = 3'000'000;

  int ring_failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    {
      GraphSimulator sim(table, InteractionGraph::complete(n),
                         Population(n, protocol.num_states(),
                                    protocol.initial_state()),
                         seed);
      auto oracle = core::stable_pattern_oracle(protocol, n);
      EXPECT_TRUE(sim.run(*oracle, budget).stabilized) << "seed " << seed;
    }
    {
      GraphSimulator sim(table, InteractionGraph::ring(n),
                         Population(n, protocol.num_states(),
                                    protocol.initial_state()),
                         seed);
      auto oracle = core::stable_pattern_oracle(protocol, n);
      if (!sim.run(*oracle, budget).stabilized) ++ring_failures;
    }
  }
  EXPECT_GT(ring_failures, 0);
}

}  // namespace
}  // namespace ppk::pp
