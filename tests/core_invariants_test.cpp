// Unit tests for the Lemma 1 / Lemma 6 helpers themselves (their use along
// executions lives in core_kpartition_convergence_test.cpp).

#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/kpartition.hpp"

namespace ppk::core {
namespace {

pp::Counts zero_counts(const KPartitionProtocol& protocol) {
  return pp::Counts(protocol.num_states(), 0);
}

TEST(Lemma1, HoldsInInitialConfiguration) {
  const KPartitionProtocol protocol(5);
  auto counts = zero_counts(protocol);
  counts[protocol.initial_state()] = 10;
  EXPECT_TRUE(lemma1_holds(protocol, counts));
}

TEST(Lemma1, HoldsForOneBuilderChain) {
  // One agent in m3 implies one agent in each of g1, g2 (its buildees).
  const KPartitionProtocol protocol(5);
  auto counts = zero_counts(protocol);
  counts[protocol.m(3)] = 1;
  counts[protocol.g(1)] = 1;
  counts[protocol.g(2)] = 1;
  counts[protocol.initial_state()] = 4;
  EXPECT_TRUE(lemma1_holds(protocol, counts));
}

TEST(Lemma1, ViolatedWhenABuildeeIsMissing) {
  const KPartitionProtocol protocol(5);
  auto counts = zero_counts(protocol);
  counts[protocol.m(3)] = 1;
  counts[protocol.g(1)] = 1;  // g2 missing
  counts[protocol.initial_state()] = 5;
  EXPECT_FALSE(lemma1_holds(protocol, counts));
}

TEST(Lemma1, HoldsForDemolisherChain) {
  // d2 accounts for one agent in each of g1, g2.
  const KPartitionProtocol protocol(5);
  auto counts = zero_counts(protocol);
  counts[protocol.d(2)] = 1;
  counts[protocol.g(1)] = 1;
  counts[protocol.g(2)] = 1;
  counts[protocol.initial_state()] = 2;
  EXPECT_TRUE(lemma1_holds(protocol, counts));
}

TEST(Lemma1, HoldsForCompleteGroupSets) {
  const KPartitionProtocol protocol(4);
  auto counts = zero_counts(protocol);
  for (pp::GroupId x = 1; x <= 4; ++x) counts[protocol.g(x)] = 3;
  EXPECT_TRUE(lemma1_holds(protocol, counts));
  counts[protocol.g(4)] = 4;  // more gk than g1: impossible
  EXPECT_FALSE(lemma1_holds(protocol, counts));
}

TEST(Lemma1, ImpliesGxAtLeastGk) {
  // A random-ish mix satisfying the formula has every #gx >= #gk.
  const KPartitionProtocol protocol(6);
  auto counts = zero_counts(protocol);
  counts[protocol.g(6)] = 2;
  counts[protocol.g(5)] = 2;
  counts[protocol.g(4)] = 2;
  counts[protocol.m(4)] = 0;
  counts[protocol.g(3)] = 3;
  counts[protocol.m(4)] = 1;  // m4 adds one to g1..g3
  counts[protocol.g(2)] = 3;
  counts[protocol.g(1)] = 3;
  counts[protocol.initial_state()] = 1;
  ASSERT_TRUE(lemma1_holds(protocol, counts));
  for (pp::GroupId x = 1; x <= 6; ++x) {
    EXPECT_GE(counts[protocol.g(x)], counts[protocol.g(6)]);
  }
}

TEST(StableCounts, ExactDivisionLeavesNoLeftovers) {
  const KPartitionProtocol protocol(4);
  const auto target = stable_counts(protocol, 12);  // r = 0
  for (pp::GroupId x = 1; x <= 4; ++x) EXPECT_EQ(target[protocol.g(x)], 3u);
  EXPECT_EQ(std::accumulate(target.begin(), target.end(), 0u), 12u);
  EXPECT_EQ(target[KPartitionProtocol::kInitial], 0u);
}

TEST(StableCounts, RemainderOneLeavesOneFreeAgent) {
  const KPartitionProtocol protocol(4);
  const auto target = stable_counts(protocol, 13);  // r = 1
  for (pp::GroupId x = 1; x <= 4; ++x) EXPECT_EQ(target[protocol.g(x)], 3u);
  EXPECT_EQ(target[KPartitionProtocol::kInitial], 1u);
}

TEST(StableCounts, RemainderRLeavesPartialBuild) {
  // Lemma 6 with r = 3 (n = 15, k = 4): g1, g2 get an extra agent and one
  // agent parks in m3.
  const KPartitionProtocol protocol(4);
  const auto target = stable_counts(protocol, 15);
  EXPECT_EQ(target[protocol.g(1)], 4u);
  EXPECT_EQ(target[protocol.g(2)], 4u);
  EXPECT_EQ(target[protocol.g(3)], 3u);
  EXPECT_EQ(target[protocol.g(4)], 3u);
  EXPECT_EQ(target[protocol.m(3)], 1u);
  EXPECT_EQ(std::accumulate(target.begin(), target.end(), 0u), 15u);
}

TEST(StableCounts, StablePatternGroupSizesAreUniform) {
  for (pp::GroupId k = 2; k <= 9; ++k) {
    const KPartitionProtocol protocol(k);
    for (std::uint32_t n = 3; n <= 40; ++n) {
      const auto target = stable_counts(protocol, n);
      std::vector<std::uint32_t> sizes(k, 0);
      for (pp::StateId s = 0; s < target.size(); ++s) {
        sizes[protocol.group(s)] += target[s];
      }
      EXPECT_TRUE(pp::is_uniform_partition(sizes))
          << "k=" << int{k} << " n=" << n;
      EXPECT_EQ(std::accumulate(target.begin(), target.end(), 0u), n);
      // The paper's Lemma 1 must hold at the stable configuration too.
      EXPECT_TRUE(lemma1_holds(protocol, target));
    }
  }
}

TEST(MatchesStablePattern, TreatsBothFreeStatesAsEquivalent) {
  const KPartitionProtocol protocol(4);
  auto counts = stable_counts(protocol, 13);  // one free agent in initial
  EXPECT_TRUE(matches_stable_pattern(protocol, 13, counts));
  // Move the free agent to initial': still stable.
  counts[KPartitionProtocol::kInitial] = 0;
  counts[KPartitionProtocol::kInitialPrime] = 1;
  EXPECT_TRUE(matches_stable_pattern(protocol, 13, counts));
}

TEST(MatchesStablePattern, RejectsNearMisses) {
  const KPartitionProtocol protocol(4);
  auto counts = stable_counts(protocol, 12);
  EXPECT_TRUE(matches_stable_pattern(protocol, 12, counts));
  // Swap one g1 for one g2.
  --counts[protocol.g(1)];
  ++counts[protocol.g(2)];
  EXPECT_FALSE(matches_stable_pattern(protocol, 12, counts));
}

TEST(StablePatternOracle, FiresExactlyOnThePattern) {
  const KPartitionProtocol protocol(3);
  const std::uint32_t n = 10;  // r = 1
  auto oracle = stable_pattern_oracle(protocol, n);

  auto counts = stable_counts(protocol, n);
  oracle->reset(counts);
  EXPECT_TRUE(oracle->stable());

  pp::Counts off = counts;
  --off[protocol.g(1)];
  ++off[KPartitionProtocol::kInitial];
  oracle->reset(off);
  EXPECT_FALSE(oracle->stable());
}

}  // namespace
}  // namespace ppk::core
