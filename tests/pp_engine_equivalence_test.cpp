// Statistical equivalence of the simulation engines (including the batch
// engine's two forced regimes and the restricted-scheduler simulators
// specialized to unrestricted parameters -- GraphSimulator on the complete
// graph, AdversarialSimulator with epsilon = 1): all of them must sample
// stabilization-time distributions identical to AgentSimulator's, because
// they all claim to realize the same uniform-random scheduler.  A two-sample
// Kolmogorov-Smirnov test per engine pair catches distribution-level bugs
// (wrong pair weights, off-by-one in null accounting, broken batch
// composition) that mean-comparison tests miss.
//
// Also pins down per-engine bit-reproducibility: the same seed must give
// the same trajectory, interaction for interaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/adversarial.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

Counts all_initial(const Protocol& protocol, std::uint32_t n) {
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

/// Two-sample Kolmogorov-Smirnov statistic D = sup |F_a - F_b| over sorted
/// samples.  Ties are handled by advancing both sides past the tied value
/// before comparing the empirical CDFs.
double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

/// Critical value at significance alpha = 0.01: c(alpha) * sqrt((m+n)/(mn))
/// with c(0.01) = sqrt(-ln(0.01 / 2) / 2) ~= 1.628.
double ks_threshold(std::size_t m, std::size_t n) {
  const auto md = static_cast<double>(m);
  const auto nd = static_cast<double>(n);
  return 1.628 * std::sqrt((md + nd) / (md * nd));
}

enum class EngineUnderTest {
  kAgent,
  kCount,
  kJump,
  kBatchAuto,
  kBatchForced,
  kThinForced,
  // The sharded SoA batch engine, single-worker and with pool dispatch
  // forced (grain 0, 4 workers): both rows must match the agent reference
  // in law, and the threaded row doubles as a distribution-level pin that
  // sharded parallelism is invisible.
  kSharded,
  kShardedThreads4,
  // Restricted-scheduler simulators specialized to unrestricted parameters
  // (this PR): both claim to degenerate to the uniform-random scheduler, so
  // both must match the agent reference in law.
  kGraphComplete,    // GraphSimulator on the complete graph
  kAdversarialEps1,  // AdversarialSimulator with a zero stall budget
  // The live-edge skip-ahead engine on the complete graph: its geometric
  // null-skip conditioned on the live set must realize exactly the uniform
  // ordered-pair draw there.
  kLiveEdgeComplete,
};

const char* engine_name(EngineUnderTest e) {
  switch (e) {
    case EngineUnderTest::kAgent: return "agent";
    case EngineUnderTest::kCount: return "count";
    case EngineUnderTest::kJump: return "jump";
    case EngineUnderTest::kBatchAuto: return "batch-auto";
    case EngineUnderTest::kBatchForced: return "batch-forced";
    case EngineUnderTest::kThinForced: return "thin-forced";
    case EngineUnderTest::kSharded: return "sharded";
    case EngineUnderTest::kShardedThreads4: return "sharded-threads4";
    case EngineUnderTest::kGraphComplete: return "graph-complete";
    case EngineUnderTest::kAdversarialEps1: return "adversarial-eps1";
    case EngineUnderTest::kLiveEdgeComplete: return "live-edge-complete";
  }
  return "?";
}

/// Builds the stopping oracle a family row uses (fresh per trial).
using OracleFactory = std::function<std::unique_ptr<StabilityOracle>()>;

/// Stabilization interaction count of one trial on one engine.  Every
/// engine gets its own independent RNG stream (stream id = engine tag) so
/// no accidental coupling can mask a distributional difference.
double one_trial(EngineUnderTest engine, const Protocol& protocol,
                 const TransitionTable& table, std::uint32_t n,
                 const OracleFactory& make_oracle, int trial) {
  const std::uint64_t seed = derive_stream_seed(
      100 + static_cast<std::uint64_t>(engine),
      static_cast<std::uint64_t>(trial));
  auto oracle = make_oracle();
  SimResult result;
  switch (engine) {
    case EngineUnderTest::kAgent: {
      AgentSimulator sim(
          table, Population(n, protocol.num_states(), protocol.initial_state()),
          seed);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kCount: {
      CountSimulator sim(table, all_initial(protocol, n), seed);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kJump: {
      JumpSimulator sim(table, all_initial(protocol, n), seed);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kBatchAuto:
    case EngineUnderTest::kBatchForced:
    case EngineUnderTest::kThinForced: {
      BatchSimulator sim(table, all_initial(protocol, n), seed);
      sim.set_batch_mode(engine == EngineUnderTest::kBatchAuto
                             ? BatchMode::kAuto
                             : (engine == EngineUnderTest::kBatchForced
                                    ? BatchMode::kForceBatch
                                    : BatchMode::kForceThin));
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kSharded:
    case EngineUnderTest::kShardedThreads4: {
      const bool threaded = engine == EngineUnderTest::kShardedThreads4;
      BatchShardedSimulator sim(table, all_initial(protocol, n), seed,
                                threaded ? 4 : 1);
      if (threaded) sim.set_parallel_grain(0);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kGraphComplete: {
      GraphSimulator sim(
          table, InteractionGraph::complete(n),
          Population(n, protocol.num_states(), protocol.initial_state()),
          seed);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kAdversarialEps1: {
      // epsilon = 1: the adversary branch never fires, leaving the pure
      // uniform pair draw.
      AdversarialSimulator sim(
          protocol, table,
          Population(n, protocol.num_states(), protocol.initial_state()),
          1.0, seed);
      result = sim.run(*oracle);
      break;
    }
    case EngineUnderTest::kLiveEdgeComplete: {
      GraphJumpSimulator sim(
          table, InteractionGraph::complete(n),
          Population(n, protocol.num_states(), protocol.initial_state()),
          seed);
      result = sim.run(*oracle);
      break;
    }
  }
  EXPECT_TRUE(result.stabilized);
  return static_cast<double>(result.interactions);
}

std::vector<double> sample_engine(EngineUnderTest engine,
                                  const Protocol& protocol,
                                  const TransitionTable& table, std::uint32_t n,
                                  const OracleFactory& make_oracle,
                                  int trials) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    xs.push_back(one_trial(engine, protocol, table, n, make_oracle, t));
  }
  return xs;
}

void expect_engines_match_agent(const Protocol& protocol,
                                const TransitionTable& table, std::uint32_t n,
                                const OracleFactory& make_oracle, int trials) {
  const std::vector<double> agent = sample_engine(
      EngineUnderTest::kAgent, protocol, table, n, make_oracle, trials);
  for (const EngineUnderTest engine :
       {EngineUnderTest::kCount, EngineUnderTest::kJump,
        EngineUnderTest::kBatchAuto, EngineUnderTest::kBatchForced,
        EngineUnderTest::kThinForced, EngineUnderTest::kSharded,
        EngineUnderTest::kShardedThreads4, EngineUnderTest::kGraphComplete,
        EngineUnderTest::kAdversarialEps1,
        EngineUnderTest::kLiveEdgeComplete}) {
    const std::vector<double> xs =
        sample_engine(engine, protocol, table, n, make_oracle, trials);
    const double d = ks_statistic(agent, xs);
    const double threshold = ks_threshold(agent.size(), xs.size());
    EXPECT_LT(d, threshold)
        << "protocol=" << protocol.name() << " n=" << n
        << " engine=" << engine_name(engine) << ": KS D=" << d
        << " exceeds the alpha=0.01 critical value " << threshold
        << " against agent-array -- the engine's stabilization-time "
           "distribution is off.";
  }
}

void expect_all_engines_match_agent(pp::GroupId k, std::uint32_t n,
                                    int trials) {
  const core::KPartitionProtocol protocol(k);
  const TransitionTable table(protocol);
  expect_engines_match_agent(
      protocol, table, n,
      [&] { return core::stable_pattern_oracle(protocol, n); }, trials);
}

// The four-way grid from the issue: small and moderate populations, small
// and large k.  Fixed seeds keep these deterministic (no flaky alpha risk:
// these exact streams pass; a regression that shifts the distribution by
// more than the KS resolution fails).

TEST(EngineEquivalence, SmallPopulationSmallK) {
  expect_all_engines_match_agent(3, 60, 200);
}

TEST(EngineEquivalence, SmallPopulationLargeK) {
  expect_all_engines_match_agent(8, 60, 200);
}

TEST(EngineEquivalence, ModeratePopulationSmallK) {
  expect_all_engines_match_agent(3, 240, 80);
}

TEST(EngineEquivalence, ModeratePopulationLargeK) {
  expect_all_engines_match_agent(8, 240, 60);
}

TEST(EngineEquivalence, WeakKPartitionFamilyMatchesAgentAcrossEngines) {
  // The weak-fairness family through the same KS net: silence is its
  // stopping rule, and every engine must realize the same stabilization
  // -time law as the agent reference.
  const core::WeakKPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  expect_engines_match_agent(
      protocol, table, 48,
      [&] { return std::make_unique<SilenceOracle>(table); }, 120);
}

TEST(EngineEquivalence, GraphBipartitionFamilyMatchesAgentAcrossEngines) {
  // The arbitrary-graph family on the complete graph: the count-pattern
  // oracle stops every engine, and all of them must agree in law.  n is
  // odd so the stable pattern carries one parked signal.
  const core::GraphBipartitionProtocol protocol;
  const TransitionTable table(protocol);
  const std::uint32_t n = 49;
  expect_engines_match_agent(
      protocol, table, n,
      [&] { return core::graph_bipartition_stable_oracle(protocol, n); },
      120);
}

TEST(EngineEquivalence, LiveEdgeMatchesPerDrawOnSparseTopologies) {
  // On a sparse graph neither engine matches the agent reference (the
  // scheduler is a different process), but the live-edge engine's exact
  // geometric null-skip must realize the *same* conditional law as the
  // per-draw GraphSimulator on the same graph.  Stabilization times are
  // censored at the budget: a wedged trial contributes `budget` whether
  // the per-draw engine burned it or the live-edge engine proved the dead
  // end early -- stall detection is an efficiency property, not a
  // distributional one.  Effective counts need no censoring (both engines
  // stop producing them at the same wedge).
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 16;
  constexpr int kTrials = 200;
  constexpr std::uint64_t kBudget = 100'000;

  struct Topology {
    const char* name;
    InteractionGraph graph;
  };
  const Topology topologies[] = {
      {"ring", InteractionGraph::ring(n)},
      {"star", InteractionGraph::star(n)},
      {"path", InteractionGraph::path(n)},
      {"er", InteractionGraph::erdos_renyi(n, 0.5, 99)},
  };
  for (std::size_t topo = 0; topo < std::size(topologies); ++topo) {
    std::vector<double> draw_time;
    std::vector<double> draw_effective;
    std::vector<double> live_time;
    std::vector<double> live_effective;
    for (int trial = 0; trial < kTrials; ++trial) {
      {
        GraphSimulator sim(
            table, topologies[topo].graph,
            Population(n, protocol.num_states(), protocol.initial_state()),
            derive_stream_seed(500 + topo, static_cast<std::uint64_t>(trial)));
        auto oracle = core::stable_pattern_oracle(protocol, n);
        const SimResult r = sim.run(*oracle, kBudget);
        draw_time.push_back(
            static_cast<double>(r.stabilized ? r.interactions : kBudget));
        draw_effective.push_back(static_cast<double>(r.effective));
      }
      {
        GraphJumpSimulator sim(
            table, topologies[topo].graph,
            Population(n, protocol.num_states(), protocol.initial_state()),
            derive_stream_seed(600 + topo, static_cast<std::uint64_t>(trial)));
        auto oracle = core::stable_pattern_oracle(protocol, n);
        const SimResult r = sim.run(*oracle, kBudget);
        live_time.push_back(
            static_cast<double>(r.stabilized ? r.interactions : kBudget));
        live_effective.push_back(static_cast<double>(r.effective));
      }
    }
    struct Axis {
      const char* name;
      const std::vector<double>& a;
      const std::vector<double>& b;
    };
    const Axis axes[] = {
        {"stabilization-time", draw_time, live_time},
        {"effective-count", draw_effective, live_effective},
    };
    for (const Axis& axis : axes) {
      const double d = ks_statistic(axis.a, axis.b);
      const double threshold = ks_threshold(axis.a.size(), axis.b.size());
      EXPECT_LT(d, threshold)
          << "topology=" << topologies[topo].name << " axis=" << axis.name
          << ": KS D=" << d << " exceeds the alpha=0.01 critical value "
          << threshold
          << " -- the live-edge engine's conditional law is off.";
    }
  }
}

TEST(EngineEquivalence, EveryEngineIsBitReproducible) {
  const core::KPartitionProtocol protocol(5);
  const TransitionTable table(protocol);
  const std::uint32_t n = 101;
  for (const EngineUnderTest engine :
       {EngineUnderTest::kAgent, EngineUnderTest::kCount,
        EngineUnderTest::kJump, EngineUnderTest::kBatchAuto,
        EngineUnderTest::kBatchForced, EngineUnderTest::kThinForced,
        EngineUnderTest::kSharded, EngineUnderTest::kShardedThreads4,
        EngineUnderTest::kGraphComplete, EngineUnderTest::kAdversarialEps1,
        EngineUnderTest::kLiveEdgeComplete}) {
    const auto factory = [&] {
      return core::stable_pattern_oracle(protocol, n);
    };
    const double first = one_trial(engine, protocol, table, n, factory, 7);
    const double second = one_trial(engine, protocol, table, n, factory, 7);
    EXPECT_EQ(first, second) << engine_name(engine);
  }
}

}  // namespace
}  // namespace ppk::pp
