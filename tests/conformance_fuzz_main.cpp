// Standalone conformance-fuzz driver: the nightly CI entry point.
//
//   conformance_fuzz --seconds 600 --seed 0 --out repro.txt
//
// Runs randomized conformance cases until the time or case budget is spent.
// On divergence the failure is auto-shrunk, written to --out as a
// replayable ppk-conformance-repro-v1 file (CI uploads it as an artifact),
// and the process exits 1.  With --seed 0 the master seed is derived from
// the clock so successive nightly runs explore different cases; the chosen
// seed is always printed, and rerunning with --seed <that> --seconds 0
// reproduces the session deterministically.
//
//   conformance_fuzz --replay repro.txt
//
// Replays a repro file and exits 0 iff the recorded verdict still holds
// (expect pass => conformant, expect fail => still diverges).  --replay
// also accepts a ppk-scenario-v1 JSON document (the ppkd request format,
// docs/ppkd.md): the scenario is bridged to its equivalent conformance
// case and must be conformant -- every server scenario is a fuzz case.

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "io/atomic_file.hpp"
#include "serve/scenario.hpp"
#include "util/cli.hpp"
#include "verify/conformance.hpp"

namespace {

// Latched by the SIGINT handler: fuzz_conformance polls it between cases,
// so Ctrl-C finishes the in-flight case, reports what ran, and exits
// cleanly (130) instead of dying mid-check.
std::atomic<bool> g_interrupted{false};

/// A ppk-scenario-v1 document replayed as its equivalent conformance case
/// (serve/scenario.hpp bridge).  Exit 0 iff the case is conformant.
int replay_scenario(const std::string& path, const std::string& text) {
  std::string error;
  const auto spec = ppk::serve::parse_scenario(text, &error);
  if (!spec.has_value()) {
    std::cerr << path << ": " << error << '\n';
    return 2;
  }
  std::string why;
  const auto c = ppk::serve::scenario_to_conformance(*spec, &why);
  if (!c.has_value()) {
    std::cerr << path << ": " << why << '\n';
    return 2;
  }
  const ppk::verify::ConformanceReport report =
      ppk::verify::check_conformance(*c);
  std::cout << "replay " << path << " (scenario "
            << ppk::serve::scenario_hash_hex(*spec)
            << "): " << (report.ok() ? "conformant" : "divergent") << '\n';
  if (!report.ok()) std::cout << report.summary();
  return report.ok() ? 0 : 1;
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "cannot read " << path << '\n';
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  // Scenario documents are JSON objects; repro files are line-oriented with
  // a leading schema comment.  Dispatch on the first non-space byte.
  const std::string document = text.str();
  const std::size_t first = document.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && document[first] == '{') {
    return replay_scenario(path, document);
  }
  std::string error;
  const auto repro = ppk::verify::parse_repro(document, &error);
  if (!repro.has_value()) {
    std::cerr << path << ": " << error << '\n';
    return 2;
  }
  const ppk::verify::ConformanceReport report =
      ppk::verify::replay_repro(*repro);
  std::cout << "replay " << path << ": "
            << (report.ok() ? "conformant" : "divergent") << " (expected "
            << (repro->expect_pass ? "conformant" : "divergent") << ")\n";
  if (!report.ok()) std::cout << report.summary();
  return report.ok() == repro->expect_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("conformance_fuzz",
               "Differential conformance fuzzer over all simulation engines "
               "(see src/verify/conformance.hpp).");
  auto seconds = cli.flag<double>("seconds", 0.0,
                                  "wall-clock budget; 0 = use --cases only");
  auto cases = cli.flag<int>("cases", 16, "case budget (when --seconds 0)");
  auto seed = cli.flag<long long>(
      "seed", 1, "master seed; 0 = derive from the clock (printed)");
  auto max_n = cli.flag<int>("max-n", 36, "largest population to draw");
  auto max_k = cli.flag<int>("max-k", 6, "largest k to draw");
  auto trials = cli.flag<int>("trials", 30, "KS sample size per engine");
  auto out = cli.flag<std::string>("out", "conformance_repro.txt",
                                   "where to write a shrunken repro");
  auto replay = cli.flag<std::string>("replay", "",
                                      "replay this repro file and exit");
  cli.parse(argc, argv);

  if (!replay->empty()) return replay_file(*replay);

  std::signal(SIGINT, [](int) { g_interrupted.store(true); });

  ppk::verify::FuzzOptions options;
  options.stop = &g_interrupted;
  options.seed = static_cast<std::uint64_t>(*seed);
  if (options.seed == 0) {
    options.seed = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  options.deadline_seconds = *seconds;
  options.num_cases = *cases;
  options.max_n = static_cast<std::uint32_t>(*max_n);
  options.max_k = static_cast<ppk::pp::GroupId>(*max_k);
  options.trials = *trials;

  std::cout << "conformance_fuzz: seed=" << options.seed;
  if (options.deadline_seconds > 0.0) {
    std::cout << " seconds=" << options.deadline_seconds;
  } else {
    std::cout << " cases=" << options.num_cases;
  }
  std::cout << std::endl;

  const ppk::verify::FuzzResult result =
      ppk::verify::fuzz_conformance(options);
  std::cout << "cases run: " << result.cases_run << '\n';
  if (!result.failure.has_value()) {
    if (g_interrupted.load()) {
      std::cout << "interrupted: session stopped early, all cases run so "
                   "far conformant\n";
      return 130;
    }
    std::cout << "all conformant\n";
    return 0;
  }

  const std::string text = ppk::verify::serialize_repro(*result.failure);
  std::cout << "DIVERGENCE (shrunk):\n" << text;
  // Atomic (temp + rename): a crash or second Ctrl-C mid-write cannot
  // leave a truncated repro for CI to upload.
  std::string error;
  if (!ppk::io::write_file_atomic(*out, text, &error)) {
    std::cerr << "cannot write repro: " << error << '\n';
    return 1;
  }
  std::cout << "repro written to " << *out << '\n';
  return 1;
}
