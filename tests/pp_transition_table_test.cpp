#include "pp/transition_table.hpp"

#include <gtest/gtest.h>

#include "core/bipartition.hpp"
#include "core/kpartition.hpp"
#include "protocols/approximate_majority.hpp"
#include "protocols/exact_majority.hpp"
#include "protocols/leader_election.hpp"

namespace ppk::pp {
namespace {

TEST(TransitionTable, CachesDeltaVerbatim) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  for (StateId p = 0; p < protocol.num_states(); ++p) {
    for (StateId q = 0; q < protocol.num_states(); ++q) {
      EXPECT_EQ(table.apply(p, q), protocol.delta(p, q));
    }
  }
}

TEST(TransitionTable, EffectiveMatchesStateChange) {
  const core::KPartitionProtocol protocol(5);
  const TransitionTable table(protocol);
  for (StateId p = 0; p < protocol.num_states(); ++p) {
    for (StateId q = 0; q < protocol.num_states(); ++q) {
      const Transition t = protocol.delta(p, q);
      EXPECT_EQ(table.effective(p, q), t.initiator != p || t.responder != q);
    }
  }
}

// The paper's protocol is symmetric (Theorem 1 statement); this is the
// machine check for a sweep of k.
TEST(TransitionTable, KPartitionIsSymmetricForAllK) {
  for (GroupId k = 2; k <= 12; ++k) {
    const core::KPartitionProtocol protocol(k);
    const TransitionTable table(protocol);
    EXPECT_TRUE(table.is_symmetric()) << "k=" << k;
    EXPECT_TRUE(table.is_swap_consistent()) << "k=" << k;
  }
}

TEST(TransitionTable, BasicStrategyIsSymmetric) {
  for (GroupId k = 3; k <= 8; ++k) {
    const core::BasicStrategyProtocol protocol(k);
    const TransitionTable table(protocol);
    EXPECT_TRUE(table.is_symmetric()) << "k=" << k;
    EXPECT_TRUE(table.is_swap_consistent()) << "k=" << k;
  }
}

TEST(TransitionTable, BipartitionIsSymmetric) {
  const core::BipartitionProtocol protocol;
  const TransitionTable table(protocol);
  EXPECT_TRUE(table.is_symmetric());
  EXPECT_TRUE(table.is_swap_consistent());
}

TEST(TransitionTable, LeaderElectionIsAsymmetric) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  EXPECT_FALSE(table.is_symmetric());
  ASSERT_EQ(table.asymmetric_diagonal_states().size(), 1u);
  EXPECT_EQ(table.asymmetric_diagonal_states()[0],
            protocols::LeaderElectionProtocol::kLeader);
}

TEST(TransitionTable, ApproximateMajorityIsSymmetricButNotSwapConsistent) {
  // AM has no diagonal rule mapping equals to distinct states, so it is
  // symmetric in the paper's sense -- but (X, Y) -> (X, B) blanks the
  // *responder*, so the ordered realization is not swap-consistent.
  const protocols::ApproximateMajorityProtocol protocol;
  const TransitionTable table(protocol);
  EXPECT_TRUE(table.is_symmetric());
  EXPECT_FALSE(table.is_swap_consistent());
}

TEST(TransitionTable, ExactMajorityIsSymmetricButUsessOrderedRules) {
  const protocols::ExactMajorityProtocol protocol;
  const TransitionTable table(protocol);
  // Its diagonal has no rules, so it is "symmetric" in the paper's sense...
  EXPECT_TRUE(table.is_symmetric());
  // ...and its off-diagonal rules are realized swap-consistently.
  EXPECT_TRUE(table.is_swap_consistent());
}

TEST(TransitionTable, NullPairsAreNotEffective) {
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  // Two committed group members never react.
  EXPECT_FALSE(table.effective(protocol.g(1), protocol.g(2)));
  EXPECT_FALSE(table.effective(protocol.g(3), protocol.g(3)));
  // d and m states do not react with each other.
  EXPECT_FALSE(table.effective(protocol.d(1), protocol.m(2)));
}

}  // namespace
}  // namespace ppk::pp
