#include "pp/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"

namespace ppk::pp {
namespace {

class MonteCarloTest : public ::testing::Test {
 protected:
  MonteCarloTest() : protocol_(4), table_(protocol_) {}

  OracleFactory oracle_factory(std::uint32_t n) const {
    return [this, n] { return core::stable_pattern_oracle(protocol_, n); };
  }

  core::KPartitionProtocol protocol_;
  TransitionTable table_;
};

TEST_F(MonteCarloTest, RunsRequestedTrials) {
  MonteCarloOptions options;
  options.trials = 17;
  const auto result =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), options);
  EXPECT_EQ(result.trials.size(), 17u);
  EXPECT_EQ(result.stabilized_count(), 17u);
  for (const auto& trial : result.trials) {
    EXPECT_GT(trial.interactions, 0u);
    EXPECT_LE(trial.effective, trial.interactions);
  }
}

TEST_F(MonteCarloTest, SameMasterSeedReproducesBitForBit) {
  MonteCarloOptions options;
  options.trials = 10;
  options.master_seed = 123;
  const auto a =
      run_monte_carlo(protocol_, table_, 13, oracle_factory(13), options);
  const auto b =
      run_monte_carlo(protocol_, table_, 13, oracle_factory(13), options);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    EXPECT_EQ(a.trials[t].interactions, b.trials[t].interactions);
    EXPECT_EQ(a.trials[t].effective, b.trials[t].effective);
  }
}

TEST_F(MonteCarloTest, ThreadCountDoesNotChangeResults) {
  MonteCarloOptions serial;
  serial.trials = 12;
  serial.master_seed = 99;
  serial.threads = 1;
  MonteCarloOptions parallel = serial;
  parallel.threads = 4;
  const auto a =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), serial);
  const auto b =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), parallel);
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    EXPECT_EQ(a.trials[t].interactions, b.trials[t].interactions);
  }
}

TEST_F(MonteCarloTest, EnginesAgreeOnStabilization) {
  MonteCarloOptions options;
  options.trials = 8;
  options.engine = Engine::kCountVector;
  const auto result =
      run_monte_carlo(protocol_, table_, 16, oracle_factory(16), options);
  EXPECT_EQ(result.stabilized_count(), 8u);
}

TEST_F(MonteCarloTest, WatchMarksCountGkEntries) {
  // Every stabilized trial locks in exactly floor(n/k) group sets, each
  // marked by one agent entering g_k.
  MonteCarloOptions options;
  options.trials = 10;
  options.watch_state = protocol_.g(4);
  const std::uint32_t n = 14;  // floor(14/4) = 3 groupings
  const auto result =
      run_monte_carlo(protocol_, table_, n, oracle_factory(n), options);
  for (const auto& trial : result.trials) {
    ASSERT_TRUE(trial.stabilized);
    EXPECT_EQ(trial.watch_marks.size(), 3u);
    // Marks are the paper's NI_i: strictly increasing interaction indices.
    for (std::size_t i = 1; i < trial.watch_marks.size(); ++i) {
      EXPECT_GT(trial.watch_marks[i], trial.watch_marks[i - 1]);
    }
    EXPECT_LE(trial.watch_marks.back(), trial.interactions);
  }
}

TEST_F(MonteCarloTest, WatchMarksWorkOnCountAndJumpEngines) {
  // Regression: requesting watch_state on a non-agent engine used to
  // silently return empty marks.  Count and jump now record them; all
  // three agent-faithful engines must agree on the mark structure.
  for (const Engine engine :
       {Engine::kAgentArray, Engine::kCountVector, Engine::kJump}) {
    MonteCarloOptions options;
    options.trials = 10;
    options.engine = engine;
    options.watch_state = protocol_.g(4);
    const std::uint32_t n = 14;  // floor(14/4) = 3 groupings
    const auto result =
        run_monte_carlo(protocol_, table_, n, oracle_factory(n), options);
    for (const auto& trial : result.trials) {
      ASSERT_TRUE(trial.stabilized);
      ASSERT_EQ(trial.watch_marks.size(), 3u)
          << "engine=" << static_cast<int>(engine);
      for (std::size_t i = 1; i < trial.watch_marks.size(); ++i) {
        EXPECT_GT(trial.watch_marks[i], trial.watch_marks[i - 1]);
      }
      EXPECT_LE(trial.watch_marks.back(), trial.interactions);
    }
  }
}

TEST_F(MonteCarloTest, WatchOnBatchEngineFailsFast) {
  // The batch engine aggregates interactions and cannot attribute marks to
  // individual draws; asking for both is a contract violation, not a
  // silently empty result.
  MonteCarloOptions options;
  options.trials = 1;
  options.engine = Engine::kBatch;
  options.watch_state = protocol_.g(4);
  EXPECT_DEATH(
      run_monte_carlo(protocol_, table_, 14, oracle_factory(14), options),
      "precondition");
}

TEST_F(MonteCarloTest, AutoEngineResolutionPolicy) {
  // kAuto picks by population size and never picks batch when marks are
  // requested; explicit choices pass through untouched.
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100, false), Engine::kAgentArray);
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100'000, false), Engine::kBatch);
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100, true), Engine::kAgentArray);
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100'000, true),
            Engine::kCountVector);
  EXPECT_EQ(resolve_engine(Engine::kJump, 100'000, false), Engine::kJump);
  EXPECT_EQ(resolve_engine(Engine::kBatch, 10, false), Engine::kBatch);
}

TEST_F(MonteCarloTest, BatchAndAutoEnginesStabilizeLikeTheOthers) {
  for (const Engine engine : {Engine::kBatch, Engine::kAuto}) {
    MonteCarloOptions options;
    options.trials = 8;
    options.engine = engine;
    const auto result =
        run_monte_carlo(protocol_, table_, 16, oracle_factory(16), options);
    EXPECT_EQ(result.stabilized_count(), 8u)
        << "engine=" << static_cast<int>(engine);
  }
}

TEST_F(MonteCarloTest, MaxInteractionsBoundsUnstableRuns) {
  MonteCarloOptions options;
  options.trials = 3;
  options.max_interactions = 50;
  // An oracle that never fires forces the budget to bind.
  const auto result = run_monte_carlo(
      protocol_, table_, 12,
      [] { return std::make_unique<NeverStableOracle>(); }, options);
  for (const auto& trial : result.trials) {
    EXPECT_EQ(trial.interactions, 50u);
    EXPECT_FALSE(trial.stabilized);
  }
}

TEST_F(MonteCarloTest, DefaultBudgetIsFiniteNotUINT64MAX) {
  // Regression: the default used to be UINT64_MAX, so a run whose stable
  // pattern was unreachable (e.g. a post-crash population) hung forever.
  const MonteCarloOptions options;
  EXPECT_EQ(options.max_interactions, kDefaultInteractionBudget);
  EXPECT_LT(kDefaultInteractionBudget, UINT64_MAX);
  // ...while still clearing the paper's most expensive configuration
  // (n = 960, k = 8 stabilizes in ~7e8 interactions) by a wide margin.
  EXPECT_GE(kDefaultInteractionBudget, 10'000'000'000ULL);
}

TEST_F(MonteCarloTest, NonConvergentInputTerminatesViaBudget) {
  // Deliberately non-convergent input: every agent committed to g1 is
  // silent under Algorithm 1 (committed agents cannot re-balance), and the
  // stable pattern for n = 12 is unreachable.  The trial must end at the
  // budget with stabilized = false -- not hang.
  Counts stuck(protocol_.num_states(), 0);
  stuck[protocol_.g(1)] = 12;
  MonteCarloOptions options;
  options.trials = 2;
  options.max_interactions = 100'000;
  const auto result =
      run_monte_carlo(table_, stuck, oracle_factory(12), options);
  for (const auto& trial : result.trials) {
    EXPECT_FALSE(trial.stabilized);
    EXPECT_FALSE(trial.timed_out);
    // The agent engine cannot see silence, so it exhausts the budget drawing
    // null pairs: ordinary budget exhaustion, not a stall.
    EXPECT_FALSE(trial.stalled);
    EXPECT_EQ(trial.interactions, 100'000u);
    EXPECT_EQ(trial.effective, 0u);  // all-g1 is silent
  }
}

TEST_F(MonteCarloTest, SilentDeadConfigurationReportsStalledOnJumpEngine) {
  // The jump engine detects silence immediately; the trial must be
  // distinguishable from budget exhaustion (both flags false used to mean
  // either).
  Counts stuck(protocol_.num_states(), 0);
  stuck[protocol_.g(1)] = 12;
  MonteCarloOptions options;
  options.trials = 1;
  options.max_interactions = 100'000;
  options.engine = Engine::kJump;
  const auto plain = run_monte_carlo(table_, stuck, oracle_factory(12), options);
  ASSERT_EQ(plain.trials.size(), 1u);
  EXPECT_FALSE(plain.trials[0].stabilized);
  EXPECT_FALSE(plain.trials[0].timed_out);
  EXPECT_TRUE(plain.trials[0].stalled);
  EXPECT_LT(plain.trials[0].interactions, 100'000u);

  // Same through the wall-clock chunked path.
  options.wall_clock_limit_seconds = 3600.0;
  const auto chunked =
      run_monte_carlo(table_, stuck, oracle_factory(12), options);
  ASSERT_EQ(chunked.trials.size(), 1u);
  EXPECT_FALSE(chunked.trials[0].stabilized);
  EXPECT_FALSE(chunked.trials[0].timed_out);
  EXPECT_TRUE(chunked.trials[0].stalled);
}

TEST_F(MonteCarloTest, WallClockLimitStopsNonConvergentRun) {
  Counts stuck(protocol_.num_states(), 0);
  stuck[protocol_.g(1)] = 12;
  MonteCarloOptions options;
  options.trials = 1;
  options.max_interactions = UINT64_MAX;  // only the clock can end this
  options.wall_clock_limit_seconds = 0.0;  // expires at the first check
  const auto result =
      run_monte_carlo(table_, stuck, oracle_factory(12), options);
  ASSERT_EQ(result.trials.size(), 1u);
  EXPECT_TRUE(result.trials[0].timed_out);
  EXPECT_FALSE(result.trials[0].stabilized);
  // Exactly one ~4M-interaction grant ran before the clock was consulted.
  EXPECT_EQ(result.trials[0].interactions, 1ULL << 22);
}

TEST_F(MonteCarloTest, WallClockLimitDoesNotAffectConvergentRuns) {
  MonteCarloOptions options;
  options.trials = 5;
  options.wall_clock_limit_seconds = 3600.0;
  const auto result =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), options);
  for (const auto& trial : result.trials) {
    EXPECT_TRUE(trial.stabilized);
    EXPECT_FALSE(trial.timed_out);
  }
}

TEST_F(MonteCarloTest, GraphEnginesStabilizeOnCompleteTopology) {
  // Both graph engines (and kAuto, which resolves to the live-edge engine
  // when a topology is set) must stabilize like the complete-graph engines
  // when the topology *is* the complete graph.
  for (const Engine engine :
       {Engine::kGraph, Engine::kGraphJump, Engine::kAuto}) {
    MonteCarloOptions options;
    options.trials = 6;
    options.engine = engine;
    options.graph = [](std::uint64_t) { return InteractionGraph::complete(12); };
    const auto result =
        run_monte_carlo(protocol_, table_, 12, oracle_factory(12), options);
    EXPECT_EQ(result.stabilized_count(), 6u)
        << "engine=" << static_cast<int>(engine);
  }
}

TEST_F(MonteCarloTest, RandomizedTopologyTrialsAreThreadInvariant) {
  // Per-trial randomized topologies draw their seed from the trial stream,
  // so results are a pure function of (master_seed, trial) regardless of
  // the thread count.
  MonteCarloOptions serial;
  serial.trials = 8;
  serial.master_seed = 2026;
  serial.engine = Engine::kGraphJump;
  // On sparse topologies a trial may cycle forever (free agents keep
  // flipping while walled-in builders block the pattern), so bound the
  // budget: invariance is about equal outcomes, not stabilization.
  serial.max_interactions = 500'000;
  serial.graph = [](std::uint64_t seed) {
    return InteractionGraph::erdos_renyi(12, 0.5, seed);
  };
  MonteCarloOptions parallel = serial;
  parallel.threads = 4;
  const auto a =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), serial);
  const auto b =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), parallel);
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    EXPECT_EQ(a.trials[t].interactions, b.trials[t].interactions);
    EXPECT_EQ(a.trials[t].effective, b.trials[t].effective);
    EXPECT_EQ(a.trials[t].stabilized, b.trials[t].stabilized);
  }
}

TEST_F(MonteCarloTest, AutoWithTopologyResolvesToLiveEdge) {
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100, false, true),
            Engine::kGraphJump);
  EXPECT_EQ(resolve_engine(Engine::kAuto, 1'000'000, true, true),
            Engine::kGraphJump);
  EXPECT_EQ(resolve_engine(Engine::kGraph, 100, false, true), Engine::kGraph);
}

TEST_F(MonteCarloTest, GraphEngineTopologyMismatchFailsFast) {
  // A graph engine with no topology, or a topology feeding a non-graph
  // engine, is a configuration error -- not a silently different
  // experiment.
  MonteCarloOptions no_graph;
  no_graph.trials = 1;
  no_graph.engine = Engine::kGraphJump;
  EXPECT_DEATH(
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), no_graph),
      "precondition");

  MonteCarloOptions stray_graph;
  stray_graph.trials = 1;
  stray_graph.engine = Engine::kAgentArray;
  stray_graph.graph = [](std::uint64_t) {
    return InteractionGraph::complete(12);
  };
  EXPECT_DEATH(
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), stray_graph),
      "precondition");
}

TEST_F(MonteCarloTest, WrongSizeTopologyFailsFast) {
  MonteCarloOptions options;
  options.trials = 1;
  options.engine = Engine::kGraphJump;
  options.graph = [](std::uint64_t) { return InteractionGraph::complete(13); };
  EXPECT_DEATH(
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), options),
      "precondition");
}

TEST_F(MonteCarloTest, WatchOnPerDrawGraphEngineFailsFast) {
  // GraphSimulator has no watch hook; the live-edge engine does.  Forcing
  // the per-draw engine with a watch set must fail fast.
  MonteCarloOptions options;
  options.trials = 1;
  options.engine = Engine::kGraph;
  options.watch_state = protocol_.g(4);
  options.graph = [](std::uint64_t) { return InteractionGraph::complete(14); };
  EXPECT_DEATH(
      run_monte_carlo(protocol_, table_, 14, oracle_factory(14), options),
      "precondition");
}

TEST_F(MonteCarloTest, WatchMarksOnLiveEdgeTopologyEngine) {
  MonteCarloOptions options;
  options.trials = 6;
  options.engine = Engine::kGraphJump;
  options.watch_state = protocol_.g(4);
  options.graph = [](std::uint64_t) { return InteractionGraph::complete(14); };
  const std::uint32_t n = 14;  // floor(14/4) = 3 groupings
  const auto result =
      run_monte_carlo(protocol_, table_, n, oracle_factory(n), options);
  for (const auto& trial : result.trials) {
    ASSERT_TRUE(trial.stabilized);
    ASSERT_EQ(trial.watch_marks.size(), 3u);
    for (std::size_t i = 1; i < trial.watch_marks.size(); ++i) {
      EXPECT_GT(trial.watch_marks[i], trial.watch_marks[i - 1]);
    }
    EXPECT_LE(trial.watch_marks.back(), trial.interactions);
  }
}

TEST_F(MonteCarloTest, DeadTopologyReportsStalledOnLiveEdgeEngine) {
  // All-g1 is silent under Algorithm 1 (every ordered pair is null), so a
  // ring carries zero live edges.  The live-edge engine proves the wedge at
  // interaction zero and reports a stall; the per-draw engine cannot see it
  // and exhausts the budget like the agent engine does on the complete
  // graph.
  Counts stuck(protocol_.num_states(), 0);
  stuck[protocol_.g(1)] = 12;

  MonteCarloOptions options;
  options.trials = 1;
  options.max_interactions = 100'000;
  options.engine = Engine::kGraphJump;
  options.graph = [](std::uint64_t) { return InteractionGraph::ring(12); };
  const auto live = run_monte_carlo(table_, stuck, oracle_factory(12), options);
  ASSERT_EQ(live.trials.size(), 1u);
  EXPECT_TRUE(live.trials[0].stalled);
  EXPECT_FALSE(live.trials[0].stabilized);
  EXPECT_EQ(live.trials[0].interactions, 0u);

  options.engine = Engine::kGraph;
  const auto draw = run_monte_carlo(table_, stuck, oracle_factory(12), options);
  ASSERT_EQ(draw.trials.size(), 1u);
  EXPECT_FALSE(draw.trials[0].stalled);
  EXPECT_FALSE(draw.trials[0].stabilized);
  EXPECT_EQ(draw.trials[0].interactions, 100'000u);
  EXPECT_EQ(draw.trials[0].effective, 0u);
}

TEST_F(MonteCarloTest, SummaryStatisticsAreConsistent) {
  MonteCarloOptions options;
  options.trials = 20;
  const auto result =
      run_monte_carlo(protocol_, table_, 12, oracle_factory(12), options);
  const double mean = result.mean_interactions();
  EXPECT_GT(mean, 0.0);
  double manual = 0.0;
  for (const auto& trial : result.trials) {
    manual += static_cast<double>(trial.interactions);
  }
  manual /= static_cast<double>(result.trials.size());
  EXPECT_DOUBLE_EQ(mean, manual);
  EXPECT_GE(result.stddev_interactions(), 0.0);
}

}  // namespace
}  // namespace ppk::pp
