#include "pp/stability.hpp"

#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "pp/agent_simulator.hpp"
#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"
#include "protocols/leader_election.hpp"
#include "util/rng.hpp"

namespace ppk::pp {
namespace {

TEST(CountPatternOracle, DetectsExactMatchAfterReset) {
  // Two classes: states {0,1} -> class 0, state 2 -> class 1.
  CountPatternOracle oracle({0, 0, 1}, {3, 2});
  oracle.reset({1, 2, 2});
  EXPECT_TRUE(oracle.stable());
  oracle.reset({3, 0, 2});
  EXPECT_TRUE(oracle.stable());
  oracle.reset({2, 2, 1});
  EXPECT_FALSE(oracle.stable());
}

TEST(CountPatternOracle, IncrementalUpdatesTrackResets) {
  CountPatternOracle oracle({0, 1, 2}, {1, 1, 1});
  oracle.reset({3, 0, 0});
  EXPECT_FALSE(oracle.stable());
  // (0,0) -> (1,2): moves one agent to state 1 and one to state 2.
  oracle.on_transition(0, 0, 1, 2);
  EXPECT_TRUE(oracle.stable());
  // (1,2) -> (0,0): undo.
  oracle.on_transition(1, 2, 0, 0);
  EXPECT_FALSE(oracle.stable());
}

TEST(CountPatternOracle, AgreesWithFreshResetUnderRandomTransitions) {
  // Fuzz: apply random "transitions" and verify incremental state matches a
  // recomputed oracle at every step.
  const core::KPartitionProtocol protocol(4);
  const std::uint32_t n = 13;
  auto incremental = core::stable_pattern_oracle(protocol, n);

  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  incremental->reset(counts);

  Xoshiro256 rng(2024);
  const auto num_states = protocol.num_states();
  for (int step = 0; step < 2000; ++step) {
    // Pick two occupied states and two arbitrary successors.
    StateId p;
    StateId q;
    do {
      p = static_cast<StateId>(rng.below(num_states));
    } while (counts[p] == 0);
    --counts[p];
    do {
      q = static_cast<StateId>(rng.below(num_states));
    } while (counts[q] == 0);
    ++counts[p];
    const auto pn = static_cast<StateId>(rng.below(num_states));
    const auto qn = static_cast<StateId>(rng.below(num_states));
    --counts[p];
    --counts[q];
    ++counts[pn];
    ++counts[qn];
    incremental->on_transition(p, q, pn, qn);

    auto fresh = core::stable_pattern_oracle(protocol, n);
    fresh->reset(counts);
    ASSERT_EQ(incremental->stable(), fresh->stable()) << "step " << step;
    ASSERT_EQ(incremental->stable(),
              core::matches_stable_pattern(protocol, n, counts));
  }
}

TEST(SilenceOracle, LeaderElectionSilentIffAtMostOneLeader) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  SilenceOracle oracle(table);

  oracle.reset({2, 3});  // two leaders: (L,L) enabled
  EXPECT_FALSE(oracle.stable());
  oracle.reset({1, 4});  // one leader: silent
  EXPECT_TRUE(oracle.stable());
  oracle.reset({0, 5});  // zero leaders (unreachable, still silent)
  EXPECT_TRUE(oracle.stable());
}

TEST(SilenceOracle, TracksTransitions) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  SilenceOracle oracle(table);
  oracle.reset({2, 0});
  EXPECT_FALSE(oracle.stable());
  oracle.on_transition(0, 0, 0, 1);  // (L,L) -> (L,F)
  EXPECT_TRUE(oracle.stable());
}

TEST(SilenceOracle, DiagonalNeedsTwoAgents) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  SilenceOracle oracle(table);
  // One leader: the (L,L) rule needs two agents in L, so config is silent.
  oracle.reset({1, 1});
  EXPECT_TRUE(oracle.stable());
}


TEST(QuiescenceOracle, FiresAfterWindowOfUnmovedOutputs) {
  const core::KPartitionProtocol protocol(3);
  auto oracle = make_quiescence_oracle(protocol, 3);
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = 5;
  oracle.reset(counts);
  EXPECT_FALSE(oracle.stable());

  // Flips keep outputs constant: three of them satisfy the window.
  oracle.on_transition(0, 0, 1, 1);
  oracle.on_transition(1, 1, 0, 0);
  EXPECT_FALSE(oracle.stable());
  oracle.on_transition(0, 0, 1, 1);
  EXPECT_TRUE(oracle.stable());
}

TEST(QuiescenceOracle, OutputChangeResetsTheWindow) {
  const core::KPartitionProtocol protocol(3);
  auto oracle = make_quiescence_oracle(protocol, 2);
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = 4;
  oracle.reset(counts);
  oracle.on_transition(0, 0, 1, 1);
  EXPECT_FALSE(oracle.stable());
  // Rule 5: (initial, initial') -> (g1, m2): m2 is in group 2 -> moved.
  oracle.on_transition(0, 1, protocol.g(1), protocol.m(2));
  EXPECT_FALSE(oracle.stable());
  oracle.on_transition(0, 0, 1, 1);
  oracle.on_transition(1, 1, 0, 0);
  EXPECT_TRUE(oracle.stable());
  // Sizes were tracked through the move: f(g1) = 1, f(m2) = 2, so the
  // pair left one agent in group 1 and moved one to group 2 (0-based
  // indices 0 and 1).
  EXPECT_EQ(oracle.group_sizes(), (std::vector<std::uint32_t>{3, 1, 0}));
}

TEST(QuiescenceOracle, IsAHeuristicNotAProof) {
  // Demonstrate the documented false positive: a small window declares a
  // transient lull "stable" even though the protocol later progresses.
  // (This is exactly why the pattern/silence oracles exist.)
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  Population population(12, protocol.num_states(), protocol.initial_state());
  AgentSimulator sim(table, std::move(population), 7);
  auto oracle = make_quiescence_oracle(protocol, 2);  // absurdly small
  const SimResult result = sim.run(oracle, 10'000'000ULL);
  ASSERT_TRUE(result.stabilized);  // the heuristic fired...
  // ...but the true stable pattern is typically not yet reached.
  // (Not asserted: with some seeds it could be; the point is it fired
  // after only 2 unmoved effective interactions.)
  EXPECT_LT(result.interactions, 10'000'000ULL);
}

TEST(NeverStableOracle, NeverStable) {
  NeverStableOracle oracle;
  oracle.reset({5});
  EXPECT_FALSE(oracle.stable());
  oracle.on_transition(0, 0, 0, 0);
  EXPECT_FALSE(oracle.stable());
}

TEST(CountPatternOracle, OnBatchRebuildsFromTheEndpointCounts) {
  // The default on_batch resets from the new configuration, which is exact
  // for any oracle whose verdict is a function of the counts alone.
  CountPatternOracle oracle({0, 0, 1}, {3, 2});
  oracle.reset({2, 2, 1});
  EXPECT_FALSE(oracle.stable());
  oracle.on_batch({1, 2, 2}, 1000, 40);  // batch lands on the pattern
  EXPECT_TRUE(oracle.stable());
  oracle.on_batch({0, 1, 4}, 500, 3);  // ...and off it again
  EXPECT_FALSE(oracle.stable());
}

TEST(SilenceOracle, OnBatchRebuildsFromTheEndpointCounts) {
  const protocols::LeaderElectionProtocol protocol;
  const TransitionTable table(protocol);
  SilenceOracle oracle(table);
  oracle.reset({3, 0});
  EXPECT_FALSE(oracle.stable());
  oracle.on_batch({1, 2}, 7, 2);  // one leader left: silent
  EXPECT_TRUE(oracle.stable());
}

TEST(QuiescenceOracle, OnBatchCreditsEffectiveWhenEndpointsAgree) {
  // Group map: state 0 -> group 0, state 1 -> group 1.  Window of 10
  // unmoved effective interactions.
  QuiescenceOracle oracle({0, 1}, 10);
  oracle.reset({4, 4});
  EXPECT_FALSE(oracle.stable());
  // Batch whose endpoints leave the group sizes unchanged: all its
  // effective interactions count toward the window.
  oracle.on_batch({4, 4}, 100, 6);
  EXPECT_FALSE(oracle.stable());  // 6 < 10
  oracle.on_batch({4, 4}, 50, 4);
  EXPECT_TRUE(oracle.stable());  // 10 >= 10
}

TEST(QuiescenceOracle, OnBatchRestartsWhenTheOutputMoved) {
  QuiescenceOracle oracle({0, 1}, 10);
  oracle.reset({4, 4});
  oracle.on_batch({4, 4}, 100, 9);  // one short of the window
  EXPECT_FALSE(oracle.stable());
  oracle.on_batch({5, 3}, 10, 9);  // group sizes moved: window restarts
  EXPECT_FALSE(oracle.stable());
  oracle.on_batch({5, 3}, 40, 10);  // unmoved again, full window
  EXPECT_TRUE(oracle.stable());
}

}  // namespace
}  // namespace ppk::pp
