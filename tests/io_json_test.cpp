// JSON reader (io/json_reader.hpp) and atomic file plumbing
// (io/atomic_file.hpp): writer -> reader round trips, exact 64-bit number
// handling, soft parse failures, and the write-temp-then-rename contract
// that checkpoints and bench reports rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "io/atomic_file.hpp"
#include "io/json.hpp"
#include "io/json_reader.hpp"

namespace {

using ppk::io::JsonValue;
using ppk::io::parse_json;

TEST(JsonReader, ParsesScalarsAndStructure) {
  std::string error;
  const auto v = parse_json(
      R"({"name":"x","on":true,"off":false,"none":null,)"
      R"("list":[1,2,3],"nested":{"deep":"yes"}})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("name")->as_string(), "x");
  EXPECT_TRUE(v->find("on")->as_bool());
  EXPECT_FALSE(v->find("off")->as_bool());
  EXPECT_EQ(v->find("none")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(v->find("list")->is_array());
  EXPECT_EQ(v->find("list")->items.size(), 3u);
  EXPECT_EQ(v->find("nested")->find("deep")->as_string(), "yes");
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonReader, U64RoundTripsExactlyFromNumbersAndStrings) {
  // 2^64 - 1 is not representable in a double; the reader must keep the
  // raw token so checkpoint counters survive.
  std::string error;
  const auto v = parse_json(
      R"({"num":18446744073709551615,"str":"18446744073709551615",)"
      R"("hex":"0xFFFFFFFFFFFFFFFF"})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("num")->as_u64(), UINT64_MAX);
  EXPECT_EQ(v->find("str")->as_u64(), UINT64_MAX);
  EXPECT_EQ(v->find("hex")->as_u64(), UINT64_MAX);
}

TEST(JsonReader, U64RejectsSignsFractionsAndOverflow) {
  std::string error;
  const auto v = parse_json(
      R"({"neg":-1,"frac":1.5,"exp":1e3,"over":"18446744073709551616",)"
      R"("junk":"12abc","flag":true})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_FALSE(v->find("neg")->as_u64().has_value());
  EXPECT_FALSE(v->find("frac")->as_u64().has_value());
  EXPECT_FALSE(v->find("exp")->as_u64().has_value());
  EXPECT_FALSE(v->find("over")->as_u64().has_value());
  EXPECT_FALSE(v->find("junk")->as_u64().has_value());
  EXPECT_FALSE(v->find("flag")->as_u64().has_value());
}

TEST(JsonReader, I64HandlesTheFullSignedRange) {
  std::string error;
  const auto v = parse_json(
      R"({"min":-9223372036854775808,"max":9223372036854775807,)"
      R"("under":"-9223372036854775809"})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("min")->as_i64(), INT64_MIN);
  EXPECT_EQ(v->find("max")->as_i64(), INT64_MAX);
  EXPECT_FALSE(v->find("under")->as_i64().has_value());
}

TEST(JsonReader, DecodesEscapes) {
  std::string error;
  const auto v = parse_json(R"({"s":"a\"b\\c\ndAé"})", &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("s")->as_string(), "a\"b\\c\nd"
                                       "A\xC3\xA9");
}

TEST(JsonReader, SoftFailsWithAReason) {
  for (const char* bad :
       {"", "{", "[1,", R"({"a" 1})", "tru", "{\"a\":1}x", R"({"a":})"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonReader, RoundTripsTheWriterOutput) {
  std::ostringstream out;
  {
    ppk::io::JsonWriter json(out);
    json.begin_object();
    json.member("schema", "test-v1");
    json.member("count", std::uint64_t{1234567890123456789ULL});
    json.key("rows");
    json.begin_array();
    json.value(std::uint64_t{1});
    json.value(std::uint64_t{2});
    json.end_array();
    json.end_object();
  }
  std::string error;
  const auto v = parse_json(out.str(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("schema")->as_string(), "test-v1");
  EXPECT_EQ(v->find("count")->as_u64(), 1234567890123456789ULL);
  EXPECT_EQ(v->find("rows")->items.size(), 2u);
}

// --- Hostile inputs at the server boundary (ppkd parses client-supplied
// documents with this reader; none of these may crash or hang) -------------

TEST(JsonReader, RejectsNestingPastTheDepthCap) {
  // 200 levels of arrays: past kMaxDepth (128) the parser must soft-fail
  // instead of recursing to a stack overflow.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep.push_back('[');
  for (int i = 0; i < 200; ++i) deep.push_back(']');
  std::string error;
  EXPECT_FALSE(ppk::io::parse_json(deep, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  // Exactly at the cap still parses.
  std::string ok;
  for (int i = 0; i < 128; ++i) ok.push_back('[');
  for (int i = 0; i < 128; ++i) ok.push_back(']');
  EXPECT_TRUE(ppk::io::parse_json(ok, &error).has_value()) << error;
}

TEST(JsonReader, U64OverflowByOneIsRejectedNotWrapped) {
  const auto doc =
      ppk::io::parse_json("{\"v\": 18446744073709551616}");  // 2^64
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->find("v")->as_u64().has_value());
  const auto max = ppk::io::parse_json("{\"v\": 18446744073709551615}");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->find("v")->as_u64(), UINT64_MAX);
}

TEST(JsonReader, TruncatedDocumentsNameWhatIsUnterminated) {
  const struct {
    const char* text;
    const char* reason;
  } cases[] = {
      {"{\"a\": 1", "unterminated object"},
      {"[1, 2", "unterminated array"},
      {"\"abc", "unterminated string"},
      {"{\"a\": ", "unexpected end of input"},
      {"", "unexpected end of input"},
      {"{\"a\": 1} trailing", "trailing characters"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(ppk::io::parse_json(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.reason), std::string::npos)
        << c.text << " -> " << error;
  }
}

TEST(JsonReader, DuplicateKeysResolveToTheFirstOccurrence) {
  // find() is first-match: a client repeating a member cannot override the
  // value the validator saw (the duplicate-key smuggling pattern).
  const auto doc = ppk::io::parse_json("{\"n\": 5, \"n\": 99}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("n")->as_u64(), 5u);
  EXPECT_EQ(doc->keys.size(), 2u);  // both retained, lookup is what's pinned
}

TEST(AtomicFile, WriteReplacesTheTargetCompletely) {
  const auto path =
      std::filesystem::temp_directory_path() / "ppk_atomic_file_test.txt";
  std::string error;
  ASSERT_TRUE(ppk::io::write_file_atomic(path.string(), "first\n", &error))
      << error;
  ASSERT_TRUE(ppk::io::write_file_atomic(path.string(), "second\n", &error))
      << error;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second\n");
  std::filesystem::remove(path);
}

TEST(AtomicFile, CommitFailsIntoTheErrorString) {
  ppk::io::AtomicFileWriter writer("/nonexistent-dir/nope/file.json");
  writer.stream() << "data";
  std::string error;
  EXPECT_FALSE(writer.commit(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
