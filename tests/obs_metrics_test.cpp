// Tests for the observability metrics layer (obs/metrics.hpp, obs/sink.hpp)
// and its monte-carlo wiring: merge semantics are commutative so threaded
// trial aggregation is deterministic, and the sink's counters agree with
// the engines' own bookkeeping.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "pp/adversarial.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"

namespace {

using ppk::core::KPartitionProtocol;
using ppk::obs::Gauge;
using ppk::obs::Histogram;
using ppk::obs::MetricsRegistry;
using ppk::obs::ObsSink;

std::string registry_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  ppk::io::JsonWriter json(out);
  registry.write_json(json);
  return out.str();
}

TEST(ObsMetrics, CounterAccumulatesAndMerges) {
  MetricsRegistry a;
  a.counter("x").inc();
  a.counter("x").inc(41);
  EXPECT_EQ(a.counter("x").value(), 42u);

  MetricsRegistry b;
  b.counter("x").inc(8);
  b.counter("y").inc(1);
  a.merge(b);
  EXPECT_EQ(a.counter("x").value(), 50u);
  EXPECT_EQ(a.counter("y").value(), 1u);
}

TEST(ObsMetrics, GaugeMergeTakesMaxAndTracksPresence) {
  Gauge g;
  EXPECT_FALSE(g.present());
  g.set(-5);
  EXPECT_TRUE(g.present());
  EXPECT_EQ(g.value(), -5);

  Gauge other;
  other.set(-9);
  g.merge(other);
  EXPECT_EQ(g.value(), -5);  // max is commutative: merge order cannot matter
  other.merge(g);
  EXPECT_EQ(other.value(), -5);

  Gauge empty;
  g.merge(empty);  // merging an unset gauge is a no-op
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsMetrics, Log2HistogramBucketsContainTheirValues) {
  Histogram h = Histogram::log2();
  const std::vector<std::uint64_t> values = {0,  1,   2,   3,    15,  16,
                                             17, 100, 999, 4096, 4097};
  for (auto v : values) h.record(v);
  EXPECT_EQ(h.total(), values.size());

  // Every recorded value must land in a bucket whose [lo, hi) contains it,
  // and for values past the exact range the bucket must be narrow: relative
  // width <= 1/16 with the default sub-bucket resolution.
  for (auto v : values) {
    bool found = false;
    for (std::size_t b = 0; b < h.counts().size(); ++b) {
      if (h.counts()[b] == 0) continue;
      const double lo = h.bucket_lo(b);
      const double hi = h.bucket_hi(b);
      if (static_cast<double>(v) >= lo && static_cast<double>(v) < hi) {
        found = true;
        if (v >= 16) {
          EXPECT_LE(hi - lo, static_cast<double>(v) / 16.0 + 1.0);
        }
      }
    }
    EXPECT_TRUE(found) << "value " << v << " not covered by any bucket";
  }
}

TEST(ObsMetrics, Log2HistogramMergeAddsAndQuantileIsMonotone) {
  Histogram a = Histogram::log2();
  Histogram b = Histogram::log2();
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 1000; v < 1100; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.total(), 200u);
  EXPECT_LE(a.quantile(0.25), a.quantile(0.5));
  EXPECT_LE(a.quantile(0.5), a.quantile(0.99));
  EXPECT_LT(a.quantile(0.25), 128.0);  // the low half lives below 100
  EXPECT_GE(a.quantile(0.9), 512.0);   // the top half lives near 1000
}

TEST(ObsMetrics, RegistryMergeIsCommutative) {
  auto build = [](std::uint64_t salt) {
    MetricsRegistry r;
    r.counter("alpha").inc(salt);
    r.gauge("level").set(static_cast<std::int64_t>(salt));
    auto& h = r.histogram("sizes");
    for (std::uint64_t v = 0; v < 32; ++v) h.record(v * salt);
    return r;
  };
  MetricsRegistry ab = build(3);
  ab.merge(build(7));
  MetricsRegistry ba = build(7);
  ba.merge(build(3));
  EXPECT_EQ(registry_json(ab), registry_json(ba));
}

// Tests below exercise the engines' instrumentation points, which
// -DPPK_OBSERVABILITY=OFF compiles out entirely; skip them there.
#if PPK_OBS_ENABLED
constexpr bool kHooksCompiled = true;
#else
constexpr bool kHooksCompiled = false;
#endif

TEST(ObsMetrics, SinkCountersMatchEngineTotals) {
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 90;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  auto check = [&](auto&& make_and_run, const char* engine) {
    MetricsRegistry registry;
    ObsSink sink(registry);
    const ppk::pp::SimResult result = make_and_run(sink);
    EXPECT_TRUE(result.stabilized) << engine;
    EXPECT_EQ(registry.counter("sim.interactions").value(),
              result.interactions)
        << engine;
    EXPECT_EQ(registry.counter("sim.effective").value(), result.effective)
        << engine;
  };

  check(
      [&](ObsSink& sink) {
        ppk::pp::AgentSimulator sim(table, ppk::pp::Population(initial), 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "agent");
  check(
      [&](ObsSink& sink) {
        ppk::pp::CountSimulator sim(table, initial, 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "count");
  check(
      [&](ObsSink& sink) {
        ppk::pp::JumpSimulator sim(table, initial, 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "jump");
  check(
      [&](ObsSink& sink) {
        ppk::pp::BatchSimulator sim(table, initial, 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "batch");
  // The restricted-scheduler engines gained obs hooks in this PR.
  check(
      [&](ObsSink& sink) {
        ppk::pp::GraphSimulator sim(table,
                                    ppk::pp::InteractionGraph::complete(n),
                                    ppk::pp::Population(initial), 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "graph");
  check(
      [&](ObsSink& sink) {
        ppk::pp::AdversarialSimulator sim(
            protocol, table, ppk::pp::Population(initial), 0.5, 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "adversarial");
  check(
      [&](ObsSink& sink) {
        ppk::pp::GraphJumpSimulator sim(
            table, ppk::pp::InteractionGraph::complete(n),
            ppk::pp::Population(initial), 11);
        sim.set_obs_sink(&sink);
        auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
        return sim.run(*oracle);
      },
      "live-edge");
}

TEST(ObsMetrics, LiveEdgeSinkSeesBudgetClampAndNullSkips) {
  // The live-edge engine advances by geometric null-skips; both the skip
  // path and the budget-clamp path (a truncated null run parked at the
  // boundary) must account every drawn interaction to the sink.  A sparse
  // ring makes nulls plentiful.
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 24;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  MetricsRegistry registry;
  ObsSink sink(registry);
  ppk::pp::GraphJumpSimulator sim(table, ppk::pp::InteractionGraph::ring(n),
                                  ppk::pp::Population(initial), 5);
  sim.set_obs_sink(&sink);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const auto result = sim.run(*oracle, 777);
  EXPECT_LE(result.interactions, 777u);
  EXPECT_GT(result.interactions, result.effective);  // nulls were skipped
  EXPECT_EQ(registry.counter("sim.interactions").value(),
            result.interactions);
  EXPECT_EQ(registry.counter("sim.effective").value(), result.effective);
}

TEST(ObsMetrics, JumpSinkSeesBudgetClampExactly) {
  // A budget that truncates mid-null-run must still account every drawn
  // interaction to the sink (the clamp path calls on_skip with no apply).
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = 60;

  MetricsRegistry registry;
  ObsSink sink(registry);
  ppk::pp::JumpSimulator sim(table, initial, 5);
  sim.set_obs_sink(&sink);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, 60);
  const auto result = sim.run(*oracle, 777);
  EXPECT_LE(result.interactions, 777u);
  EXPECT_EQ(registry.counter("sim.interactions").value(),
            result.interactions);
  EXPECT_EQ(registry.counter("sim.effective").value(), result.effective);
}

TEST(ObsMetrics, MonteCarloAggregateIsThreadCountInvariant) {
  // The per-trial registries merge with commutative operations only, so the
  // aggregate must be byte-identical no matter how trials are scheduled.
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 48;

  auto aggregate = [&](std::size_t threads) {
    ppk::pp::MonteCarloOptions options;
    options.trials = 12;
    options.master_seed = 0xFEED;
    options.engine = ppk::pp::Engine::kCountVector;
    options.threads = threads;
    MetricsRegistry registry;
    options.metrics = &registry;
    const auto result = ppk::pp::run_monte_carlo(
        protocol, table, n,
        [&] { return ppk::core::stable_pattern_oracle(protocol, n); },
        options);
    EXPECT_EQ(result.stabilized_count(), 12u);
    return registry_json(registry);
  };

  const std::string single = aggregate(1);
  const std::string quad = aggregate(4);
  EXPECT_EQ(single, quad);
  EXPECT_NE(single.find("\"trials\""), std::string::npos);
  EXPECT_NE(single.find("\"trial.interactions\""), std::string::npos);
  EXPECT_NE(single.find("\"sim.interactions\""), std::string::npos);
}

TEST(ObsMetrics, MonteCarloTrialCountersAddUp) {
  if (!kHooksCompiled) GTEST_SKIP() << "observability compiled out";
  const KPartitionProtocol protocol(4);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 40;

  ppk::pp::MonteCarloOptions options;
  options.trials = 6;
  options.master_seed = 0xABCD;
  options.engine = ppk::pp::Engine::kJump;
  MetricsRegistry registry;
  options.metrics = &registry;
  const auto result = ppk::pp::run_monte_carlo(
      protocol, table, n,
      [&] { return ppk::core::stable_pattern_oracle(protocol, n); }, options);

  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  for (const auto& trial : result.trials) {
    interactions += trial.interactions;
    effective += trial.effective;
  }
  EXPECT_EQ(registry.counter("trials").value(), 6u);
  EXPECT_EQ(registry.counter("trials.stabilized").value(), 6u);
  EXPECT_EQ(registry.counter("sim.interactions").value(), interactions);
  EXPECT_EQ(registry.counter("sim.effective").value(), effective);
  EXPECT_EQ(registry.histogram("trial.interactions").total(), 6u);
}

TEST(ObsMetrics, CampaignRuntimeMetricsCoverCheckpointsAndSupervision) {
  // The campaign layer splits its instrumentation in two: deterministic
  // per-trial metrics merge into CampaignResult::metrics (thread-count
  // invariant, checkpoint-persisted), while operational ones -- checkpoint
  // write durations, retries, final verdict gauges -- land in the caller's
  // runtime registry and deliberately stay out of the merged aggregate.
  const KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 40;

  ppk::core::CampaignOptions options;
  options.mc.trials = 6;
  options.mc.master_seed = 0xFEED;
  options.mc.max_interactions = 60;  // forces retries at n = 40
  options.chunk_interactions = 512;
  options.checkpoint_every_chunks = 1;
  options.max_retries = 12;
  options.retry_backoff = 2.0;
  options.checkpoint_path =
      (std::filesystem::temp_directory_path() / "ppk_obs_campaign.json")
          .string();
  std::filesystem::remove(options.checkpoint_path);
  MetricsRegistry runtime;
  options.runtime_metrics = &runtime;
  const auto result = ppk::core::run_campaign(
      protocol, table, n,
      [&] { return ppk::core::stable_pattern_oracle(protocol, n); }, options);
  std::filesystem::remove(options.checkpoint_path);

  ASSERT_TRUE(result.complete);
  EXPECT_GT(runtime.counter("campaign.checkpoints").value(), 0u);
  EXPECT_EQ(runtime.histogram("campaign.checkpoint.write_us").total(),
            runtime.counter("campaign.checkpoints").value());
  EXPECT_GT(runtime.counter("campaign.retries").value(), 0u);
  EXPECT_EQ(runtime.gauge("campaign.trials.censored").value(), 0);
  EXPECT_EQ(runtime.gauge("campaign.trials.failed").value(), 0);

  // The deterministic aggregate carries the trial-facing views instead.
  const std::string merged = registry_json(result.metrics);
  EXPECT_NE(merged.find("\"trials.retried\""), std::string::npos);
  EXPECT_NE(merged.find("\"trial.retries\""), std::string::npos);
  EXPECT_EQ(merged.find("\"campaign."), std::string::npos);
}

}  // namespace
