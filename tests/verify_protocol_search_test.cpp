// Machine confirmation of the space lower bound the paper builds on
// (Yasumi et al. [25]): no symmetric protocol with fewer than 4 states
// solves uniform bipartition with designated initial states under global
// fairness.  The candidate spaces are finite and each candidate is decided
// *exactly* by the bottom-SCC verifier, so a clean sweep is a proof for
// the tested population sizes -- and failing at some n disproves a
// protocol outright.

#include "verify/protocol_search.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ppk::verify {
namespace {

TEST(ProtocolSearch, NoTwoStateSymmetricProtocolSolvesBipartition) {
  const SearchResult result = search_symmetric_bipartition(2);
  EXPECT_EQ(result.candidates, 64u);  // 4 diag x 4 pair x 2 s0 x 2 outputs
  EXPECT_EQ(result.survivors, 0u);
}

TEST(ProtocolSearch, NoThreeStateSymmetricProtocolSolvesBipartition) {
  // The full 354,294-candidate sweep (the [25] lower bound at 3 states).
  const SearchResult result = search_symmetric_bipartition(3);
  EXPECT_EQ(result.candidates, 354'294u);  // 19683 deltas x 3 s0 x 6 outputs
  EXPECT_EQ(result.survivors, 0u)
      << (result.survivor_descriptions.empty()
              ? std::string("no descriptions")
              : result.survivor_descriptions[0]);
  // Every candidate dies somewhere; the kill counts account for all.
  const std::uint64_t killed = std::accumulate(
      result.killed_by_size.begin(), result.killed_by_size.end(), 0ull);
  EXPECT_EQ(killed + result.survivors, result.candidates);
}

TEST(ProtocolSearch, SmallPopulationsAloneAreNotEnough) {
  // With only n = 3 tested, thousands of candidates survive -- the sweep
  // genuinely needs several population sizes, i.e. the bound is not an
  // artifact of one degenerate n.
  SearchOptions options;
  options.population_sizes = {3};
  const SearchResult result = search_symmetric_bipartition(3, options);
  EXPECT_GT(result.survivors, 0u);

  options.population_sizes = {3, 4, 5, 6};
  const SearchResult full = search_symmetric_bipartition(3, options);
  EXPECT_EQ(full.survivors, 0u);
}

TEST(ProtocolSearch, RejectsUnsearchableSpaces) {
  EXPECT_DEATH(search_symmetric_bipartition(4), "precondition");
  EXPECT_DEATH(search_symmetric_bipartition(1), "precondition");
}

}  // namespace
}  // namespace ppk::verify
