#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ppk::io {
namespace {

TEST(CsvWriter, WritesHeaderImmediately) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_EQ(out.str(), "a,b\n");
}

TEST(CsvWriter, WritesMixedTypedRow) {
  std::ostringstream out;
  CsvWriter csv(out, {"k", "n", "mean"});
  csv.row(4, 120u, 2.5);
  EXPECT_EQ(out.str(), "k,n,mean\n4,120,2.5\n");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out, {"name"});
  csv.row(std::string("a,b"));
  csv.row(std::string("say \"hi\""));
  EXPECT_EQ(out.str(), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, EscapesEmbeddedNewline) {
  std::ostringstream out;
  CsvWriter csv(out, {"name"});
  csv.row(std::string("two\nlines"));
  EXPECT_EQ(out.str(), "name\n\"two\nlines\"\n");
}

TEST(CsvWriter, CountsRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"x"});
  EXPECT_EQ(csv.rows_written(), 1u);  // header
  csv.row(1);
  csv.row(2);
  EXPECT_EQ(csv.rows_written(), 3u);
}

TEST(CsvFile, RoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "ppk_csv_test.csv";
  {
    CsvFile csv(path, {"k", "n"});
    csv.row(3, 120);
    csv.row(4, 240);
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "k,n\n3,120\n4,240\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppk::io
