// BatchShardedSimulator (pp/batch_sharded_simulator.hpp): the sharded SoA
// batch engine's headline guarantees.
//
//  - Determinism across worker-thread counts: 1 == 2 == 4 == 8, with pool
//    dispatch forced (parallel grain 0) so the parallel path is what runs.
//  - Determinism across SIMD dispatch: the trajectory under AVX2 equals the
//    trajectory under the forced-scalar kernels, bit for bit.
//  - The snapshot contract: restore into a freshly constructed engine and
//    resume bit-identically (the conformance snapshot net round-trips the
//    serialized form on top of this).
//  - Budget exactness, batch-mode forcing, and the kAuto crossover that
//    hands populations past the log-factorial table bound to this engine.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "util/simd.hpp"

namespace ppk::pp {
namespace {

Counts all_initial(const Protocol& protocol, std::uint32_t n) {
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

struct Trace {
  SimResult result;
  Counts final_counts;
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
};

Trace run_once(const TransitionTable& table, const Counts& initial,
               const core::KPartitionProtocol& protocol, std::uint32_t n,
               std::uint64_t seed, std::size_t threads, bool force_pool,
               std::uint64_t budget) {
  BatchShardedSimulator sim(table, initial, seed, threads);
  if (force_pool) sim.set_parallel_grain(0);
  auto oracle = core::stable_pattern_oracle(protocol, n);
  Trace t;
  t.result = sim.run(*oracle, budget);
  t.final_counts = sim.counts();
  t.interactions = sim.interactions();
  t.effective = t.result.effective;
  return t;
}

TEST(BatchShardedSimulator, BitIdenticalAcrossThreadCounts) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 5000;
  const Counts initial = all_initial(protocol, n);
  for (const std::uint64_t seed : {1ULL, 42ULL, 977ULL}) {
    const Trace base = run_once(table, initial, protocol, n, seed,
                                /*threads=*/1, /*force_pool=*/false,
                                20'000'000);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const Trace t = run_once(table, initial, protocol, n, seed, threads,
                               /*force_pool=*/true, 20'000'000);
      EXPECT_EQ(base.result.interactions, t.result.interactions)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(base.result.effective, t.result.effective)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(base.result.stabilized, t.result.stabilized)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(base.final_counts, t.final_counts)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(BatchShardedSimulator, BitIdenticalAcrossSimdDispatch) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "machine lacks AVX2";
  const core::KPartitionProtocol protocol(4);
  const TransitionTable table(protocol);
  const std::uint32_t n = 4000;
  const Counts initial = all_initial(protocol, n);
  for (const std::uint64_t seed : {3ULL, 88ULL}) {
    simd::set_enabled(true);
    const Trace avx2 = run_once(table, initial, protocol, n, seed, 2, true,
                                20'000'000);
    simd::set_enabled(false);
    const Trace scalar = run_once(table, initial, protocol, n, seed, 2, true,
                                  20'000'000);
    simd::set_enabled(true);
    EXPECT_EQ(avx2.result.interactions, scalar.result.interactions)
        << "seed=" << seed;
    EXPECT_EQ(avx2.result.effective, scalar.result.effective)
        << "seed=" << seed;
    EXPECT_EQ(avx2.final_counts, scalar.final_counts) << "seed=" << seed;
  }
}

TEST(BatchShardedSimulator, SameSeedReproducesBitForBit) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 3000;
  const Counts initial = all_initial(protocol, n);
  const Trace a =
      run_once(table, initial, protocol, n, 7, 1, false, 30'000'000);
  const Trace b =
      run_once(table, initial, protocol, n, 7, 1, false, 30'000'000);
  EXPECT_EQ(a.result.interactions, b.result.interactions);
  EXPECT_EQ(a.result.effective, b.result.effective);
  EXPECT_EQ(a.final_counts, b.final_counts);
}

TEST(BatchShardedSimulator, BudgetIsExact) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 2000;
  const Counts initial = all_initial(protocol, n);
  BatchShardedSimulator sim(table, initial, 5);
  auto oracle = core::stable_pattern_oracle(protocol, n);
  // A budget far below stabilization: the engine must stop on the nose
  // even when it lands mid-batch (truncated batches re-condition on the
  // draws actually used).
  const SimResult r = sim.run(*oracle, 12'345);
  EXPECT_EQ(r.interactions, 12'345u);
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(sim.interactions(), 12'345u);
  std::uint64_t total = 0;
  for (const std::uint32_t c : sim.counts()) total += c;
  EXPECT_EQ(total, n);
}

TEST(BatchShardedSimulator, ForcedModesStabilize) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 600;
  const Counts initial = all_initial(protocol, n);
  for (const BatchMode mode :
       {BatchMode::kAuto, BatchMode::kForceBatch, BatchMode::kForceThin}) {
    BatchShardedSimulator sim(table, initial, 11);
    sim.set_batch_mode(mode);
    auto oracle = core::stable_pattern_oracle(protocol, n);
    const SimResult r = sim.run(*oracle, 500'000'000);
    EXPECT_TRUE(r.stabilized) << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(sim.batch_mode(), mode);
  }
}

TEST(BatchShardedSimulator, SnapshotRestoresIntoFreshEngineBitIdentically) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 4000;
  const Counts initial = all_initial(protocol, n);

  // Reference: one engine driven with grants [cut, tail].
  BatchShardedSimulator reference(table, initial, 1234, 2);
  reference.set_parallel_grain(0);
  auto oracle_ref = core::stable_pattern_oracle(protocol, n);
  (void)reference.run(*oracle_ref, 100'000);
  const SimResult ref_tail = reference.resume(*oracle_ref, 400'000);

  // Snapshot at the cut, restore into a *fresh* engine (different thread
  // count on purpose: execution policy must not affect the trajectory),
  // drive the identical tail grant.
  BatchShardedSimulator original(table, initial, 1234, 2);
  original.set_parallel_grain(0);
  auto oracle_a = core::stable_pattern_oracle(protocol, n);
  (void)original.run(*oracle_a, 100'000);
  const Snapshot snap = original.snapshot();
  EXPECT_EQ(snap.engine, "batch-sharded");

  BatchShardedSimulator restored(table, initial, 999, 4);
  restored.set_parallel_grain(0);
  restored.restore(snap);
  EXPECT_EQ(restored.interactions(), original.interactions());
  EXPECT_EQ(restored.counts(), original.counts());
  auto oracle_b = core::stable_pattern_oracle(protocol, n);
  oracle_b->reset(restored.counts());
  const SimResult restored_tail = restored.resume(*oracle_b, 400'000);

  EXPECT_EQ(ref_tail.interactions, restored_tail.interactions);
  EXPECT_EQ(ref_tail.effective, restored_tail.effective);
  EXPECT_EQ(reference.counts(), restored.counts());
}

TEST(BatchShardedSimulator, EffectiveWeightZeroIffSilent) {
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 900;
  const Counts initial = all_initial(protocol, n);
  BatchShardedSimulator sim(table, initial, 21);
  EXPECT_GT(sim.effective_weight(), 0u);
  auto oracle = core::stable_pattern_oracle(protocol, n);
  const SimResult r = sim.run(*oracle, 500'000'000);
  ASSERT_TRUE(r.stabilized);
  // The k-partition protocol keeps interacting after stabilization
  // (group-balancing transitions stay enabled), so the weight is still
  // positive; the invariant under test is only weight == 0 <=> silent.
  if (sim.effective_weight() == 0) {
    EXPECT_FALSE(sim.step(*oracle));
  }
}

TEST(ResolveEngine, AutoHandsLargePopulationsToTheShardedEngine) {
  EXPECT_EQ(resolve_engine(Engine::kAuto, 2048, false), Engine::kBatch);
  EXPECT_EQ(resolve_engine(Engine::kAuto, kShardedCrossover, false),
            Engine::kBatch);
  EXPECT_EQ(resolve_engine(Engine::kAuto, kShardedCrossover + 1, false),
            Engine::kBatchSharded);
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100'000'000, false),
            Engine::kBatchSharded);
  // A watch request never resolves to an aggregated engine.
  EXPECT_EQ(resolve_engine(Engine::kAuto, 100'000'000, true),
            Engine::kCountVector);
  // Explicit choices pass through untouched.
  EXPECT_EQ(resolve_engine(Engine::kBatchSharded, 100, false),
            Engine::kBatchSharded);
}

TEST(BatchShardedSimulator, MatchesPlainBatchInLawAtModeratePopulations) {
  // Cheap distribution sanity on top of the conformance KS net: the two
  // engines' mean stabilization times over a handful of seeds agree within
  // a loose factor.  Catches gross composition bugs in seconds.
  const core::KPartitionProtocol protocol(3);
  const TransitionTable table(protocol);
  const std::uint32_t n = 1500;
  const Counts initial = all_initial(protocol, n);
  double sum_batch = 0.0;
  double sum_sharded = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t);
    BatchSimulator a(table, initial, seed);
    BatchShardedSimulator b(table, initial, seed);
    auto oa = core::stable_pattern_oracle(protocol, n);
    auto ob = core::stable_pattern_oracle(protocol, n);
    const SimResult ra = a.run(*oa, 2'000'000'000);
    const SimResult rb = b.run(*ob, 2'000'000'000);
    ASSERT_TRUE(ra.stabilized);
    ASSERT_TRUE(rb.stabilized);
    sum_batch += static_cast<double>(ra.interactions);
    sum_sharded += static_cast<double>(rb.interactions);
  }
  EXPECT_LT(sum_sharded / sum_batch, 2.0);
  EXPECT_GT(sum_sharded / sum_batch, 0.5);
}

}  // namespace
}  // namespace ppk::pp
