// ppkd: the scenario server (ROADMAP item 4; docs/ppkd.md).
//
// Two layers, split so tests can drive the protocol without sockets:
//
//  * ScenarioService -- the transport-independent request handler.  One
//    line-delimited JSON request in, zero or more single-line JSON frames
//    out through the caller's emit callback.  Thread-safe: connections on
//    different threads submit/cancel concurrently; job execution itself is
//    serialized (one campaign at a time owns the machine's cores).
//
//  * run_socket_server -- the AF_UNIX stream front end: accept loop, one
//    thread per connection, line framing, write-serialized frame fan-out.
//    tests/ppkd_main.cpp wraps it in a CLI with signal handling.
//
// Requests ({"op": ...} objects, one per line):
//
//   {"op":"ping"}                          -> {"event":"pong"}
//   {"op":"submit","id":ID,"scenario":{}}  -> accepted, then the job's
//                                             frames (below), on this
//                                             connection, in order
//   {"op":"cancel","id":ID}                -> {"event":"cancelled",...}
//                                             (stop-flag path: the job
//                                             checkpoints and reports
//                                             incomplete on its own
//                                             connection)
//   {"op":"status"}                        -> {"event":"status","jobs":[..]}
//   {"op":"shutdown"}                      -> {"event":"bye"}, daemon exits
//
// Submit frames: `accepted` (echoes the scenario hash, says whether the
// result is a cache replay), per-trial `trial` frames as verdicts land
// (simulate mode; the campaign streaming hook), one `job` frame with the
// checkpoint-resume flag, then exactly one of `result` (complete; cached
// from now on), `incomplete` (cancelled; checkpoint retained, resubmit to
// resume) or `error`.  The `result` frame is a pure function of the spec
// -- no job id, no timing -- so a cache hit, a fresh run and a
// kill/resume run emit byte-identical result lines.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/cache.hpp"
#include "serve/scenario.hpp"

namespace ppk::serve {

/// Daemon configuration.
struct ServiceOptions {
  /// Root for job checkpoints (ckpt-<hash>-<seed>.json) and the result
  /// cache (ResultCache); created on demand.  Empty disables both, which
  /// also disables crash recovery -- meant for tests only.
  std::string state_dir;
  /// Worker threads per simulate job (campaign mc.threads; 0 = cores).
  std::size_t job_threads = 1;
  /// Campaign chunk size.  Part of a job's deterministic identity: a
  /// checkpoint written under one chunk size refuses another.
  std::uint64_t chunk_interactions = 1ULL << 16;
  /// Checkpoint cadence in progress events (see core/campaign.hpp).
  std::uint32_t checkpoint_every_chunks = 4;
  /// Orbit cap for markov jobs (the lumped chain's memory bound).  A job
  /// whose reachable orbit space exceeds it gets an `error` frame -- the
  /// daemon itself must never die on a too-large exact request.
  std::size_t markov_max_orbits = 1'000'000;
};

/// Transport-independent request handler (header comment).
class ScenarioService {
 public:
  /// Frame sink: called once per emitted single-line JSON frame.
  using Emit = std::function<void(const std::string& frame)>;

  /// Builds the service (and its result cache) over `options.state_dir`.
  explicit ScenarioService(ServiceOptions options);

  /// Handles one request line, emitting zero or more frames.  Returns
  /// false iff the request was a shutdown -- the transport should stop
  /// accepting and tear down.  Malformed requests emit an `error` frame
  /// and return true (a bad client must not kill the daemon).
  bool handle_line(const std::string& line, const Emit& emit);

  /// Requests cancellation of a running job (the campaign stop-flag
  /// path).  Returns true iff the id named a running job.
  bool cancel(const std::string& id);

  /// Flips every running job's stop flag (shutdown / SIGTERM path).
  void cancel_all();

  /// The configuration the service was built with.
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// The result cache (tests inspect entry paths through it).
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }

 private:
  struct Job {
    std::string id;
    std::string hash_hex;
    std::atomic<bool> stop{false};
  };

  void handle_submit(const io::JsonValue& request, const Emit& emit);
  void run_simulate(const ScenarioSpec& spec, const std::string& id,
                    const std::string& hash_hex,
                    const std::shared_ptr<Job>& job, const Emit& emit);
  void run_exact(const ScenarioSpec& spec, const std::string& id,
                 const std::string& hash_hex, const Emit& emit);
  void run_conformance(const ScenarioSpec& spec, const std::string& hash_hex,
                       const Emit& emit);

  ServiceOptions options_;
  ResultCache cache_;
  /// Running jobs by client id (registry only; entries are removed when
  /// their submit returns).
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::mutex jobs_mutex_;
  /// One campaign at a time owns the cores; submits queue here.
  std::mutex run_mutex_;
};

/// Collapses a JsonWriter document to one line (frames are line-delimited;
/// JsonWriter pretty-prints).  Structural newlines and their indentation
/// only -- newlines inside strings are escaped and survive.
[[nodiscard]] std::string single_line_json(const std::string& pretty);

/// Runs the AF_UNIX stream front end on `socket_path` until `stop` goes
/// true or a client sends shutdown.  Blocks; returns 0 on clean exit, 1 on
/// socket setup failure (reason on stderr).  Prints one "ppkd: listening"
/// line to stdout once accepting (the smoke test's readiness signal).
int run_socket_server(const std::string& socket_path, ScenarioService& service,
                      std::atomic<bool>* stop);

}  // namespace ppk::serve
