#include "serve/cache.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/atomic_file.hpp"

namespace ppk::serve {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::entry_path(const std::string& hash_hex,
                                    std::uint64_t seed) const {
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "%" PRIu64, seed);
  return dir_ + "/sim-" + hash_hex + "-" + suffix + ".json";
}

std::string ResultCache::exact_entry_path(const std::string& hash_hex) const {
  return dir_ + "/exact-" + hash_hex + ".json";
}

std::optional<std::string> ResultCache::find(const std::string& hash_hex,
                                             std::uint64_t seed) const {
  if (!enabled()) return std::nullopt;
  return read_file(entry_path(hash_hex, seed));
}

std::optional<std::string> ResultCache::find_exact(
    const std::string& hash_hex) const {
  if (!enabled()) return std::nullopt;
  std::optional<std::string> entry = read_file(exact_entry_path(hash_hex));
  if (!entry) return std::nullopt;
  // Untagged (pre-v2) or differently-tagged entries are misses: the caller
  // recomputes and overwrites them with a current frame.
  const std::string tag =
      "\"exact_schema\": \"" + std::string(kExactResultSchema) + "\"";
  if (entry->find(tag) == std::string::npos) return std::nullopt;
  return entry;
}

bool ResultCache::store(const std::string& hash_hex, std::uint64_t seed,
                        const std::string& frame) {
  if (!enabled()) return false;
  ::mkdir(dir_.c_str(), 0755);  // best effort; write reports real failures
  return io::write_file_atomic(entry_path(hash_hex, seed), frame);
}

bool ResultCache::store_exact(const std::string& hash_hex,
                              const std::string& frame) {
  if (!enabled()) return false;
  ::mkdir(dir_.c_str(), 0755);
  return io::write_file_atomic(exact_entry_path(hash_hex), frame);
}

}  // namespace ppk::serve
