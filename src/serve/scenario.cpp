#include "serve/scenario.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "io/json.hpp"
#include "io/json_reader.hpp"
#include "util/assert.hpp"

namespace ppk::serve {

namespace {

/// %.17g round-trips every finite double through strtod, which is what
/// keeps serialize(parse(serialize(s))) byte-identical for er_p/epsilon.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

}  // namespace

const char* to_string(ScenarioFamily family) noexcept {
  switch (family) {
    case ScenarioFamily::kKPartition: return "kpartition";
    case ScenarioFamily::kWeakKPartition: return "weak-kpartition";
    case ScenarioFamily::kGraphBipartition: return "graph-bipartition";
  }
  return "?";
}

const char* to_string(ScenarioTopology topology) noexcept {
  switch (topology) {
    case ScenarioTopology::kComplete: return "complete";
    case ScenarioTopology::kRing: return "ring";
    case ScenarioTopology::kStar: return "star";
    case ScenarioTopology::kPath: return "path";
    case ScenarioTopology::kErdosRenyi: return "erdos-renyi";
  }
  return "?";
}

const char* to_string(ScenarioOracle oracle) noexcept {
  switch (oracle) {
    case ScenarioOracle::kStablePattern: return "stable-pattern";
    case ScenarioOracle::kSilence: return "silence";
    case ScenarioOracle::kQuiescence: return "quiescence";
  }
  return "?";
}

const char* to_string(ScenarioMode mode) noexcept {
  switch (mode) {
    case ScenarioMode::kSimulate: return "simulate";
    case ScenarioMode::kVerify: return "verify";
    case ScenarioMode::kMarkov: return "markov";
    case ScenarioMode::kConformance: return "conformance";
  }
  return "?";
}

const char* engine_name(pp::Engine engine) noexcept {
  switch (engine) {
    case pp::Engine::kAgentArray: return "agent";
    case pp::Engine::kCountVector: return "count";
    case pp::Engine::kJump: return "jump";
    case pp::Engine::kBatch: return "batch";
    case pp::Engine::kBatchSharded: return "batch-sharded";
    case pp::Engine::kGraph: return "graph";
    case pp::Engine::kGraphJump: return "graph-jump";
    case pp::Engine::kAuto: return "auto";
  }
  return "?";
}

std::optional<ScenarioFamily> family_from_name(std::string_view name) noexcept {
  if (name == "kpartition") return ScenarioFamily::kKPartition;
  if (name == "weak-kpartition") return ScenarioFamily::kWeakKPartition;
  if (name == "graph-bipartition") return ScenarioFamily::kGraphBipartition;
  return std::nullopt;
}

std::optional<ScenarioTopology> topology_from_name(
    std::string_view name) noexcept {
  if (name == "complete") return ScenarioTopology::kComplete;
  if (name == "ring") return ScenarioTopology::kRing;
  if (name == "star") return ScenarioTopology::kStar;
  if (name == "path") return ScenarioTopology::kPath;
  if (name == "erdos-renyi") return ScenarioTopology::kErdosRenyi;
  return std::nullopt;
}

std::optional<ScenarioOracle> oracle_from_name(std::string_view name) noexcept {
  if (name == "stable-pattern") return ScenarioOracle::kStablePattern;
  if (name == "silence") return ScenarioOracle::kSilence;
  if (name == "quiescence") return ScenarioOracle::kQuiescence;
  return std::nullopt;
}

std::optional<ScenarioMode> mode_from_name(std::string_view name) noexcept {
  if (name == "simulate") return ScenarioMode::kSimulate;
  if (name == "verify") return ScenarioMode::kVerify;
  if (name == "markov") return ScenarioMode::kMarkov;
  if (name == "conformance") return ScenarioMode::kConformance;
  return std::nullopt;
}

std::optional<pp::Engine> engine_from_name(std::string_view name) noexcept {
  if (name == "agent") return pp::Engine::kAgentArray;
  if (name == "count") return pp::Engine::kCountVector;
  if (name == "jump") return pp::Engine::kJump;
  if (name == "batch") return pp::Engine::kBatch;
  if (name == "batch-sharded") return pp::Engine::kBatchSharded;
  if (name == "graph") return pp::Engine::kGraph;
  if (name == "graph-jump") return pp::Engine::kGraphJump;
  if (name == "auto") return pp::Engine::kAuto;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Serialization

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  io::JsonWriter w(out);
  w.begin_object();
  w.member("schema", kScenarioSchema);
  w.member("protocol", to_string(spec.family));
  w.member("k", static_cast<std::uint64_t>(spec.k));
  w.member("n", static_cast<std::uint64_t>(spec.n));
  w.key("topology");
  w.begin_object();
  w.member("kind", to_string(spec.topology));
  w.member("p", spec.er_p);
  w.end_object();
  w.key("fairness");
  w.begin_object();
  w.member("policy", pp::to_string(spec.fairness.policy));
  w.member("epsilon", spec.fairness.epsilon);
  w.end_object();
  w.key("oracle");
  w.begin_object();
  w.member("kind", to_string(spec.oracle));
  w.member("window", spec.quiescence_window);
  w.end_object();
  w.member("engine", engine_name(spec.engine));
  w.member("mode", to_string(spec.mode));
  w.member("trials", static_cast<std::uint64_t>(spec.trials));
  w.member("seed", spec.seed);
  w.member("budget", spec.budget);
  w.key("faults");
  w.begin_array();
  for (const pp::FaultEvent& f : spec.faults) {
    w.begin_object();
    w.member("at", f.at);
    w.member("kind", pp::fault_kind_name(f.kind));
    if (f.agent) w.member("agent", static_cast<std::uint64_t>(*f.agent));
    if (f.state) w.member("state", static_cast<std::uint64_t>(*f.state));
    if (f.kind == pp::FaultKind::kSleep) w.member("duration", f.duration);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

// ---------------------------------------------------------------------------
// Validation

namespace {

/// States per agent of the spec's protocol family (the fault grammar needs
/// it to range-check corrupt/join target states without building the
/// protocol).
std::uint32_t family_num_states(const ScenarioSpec& spec) {
  switch (spec.family) {
    case ScenarioFamily::kKPartition: return 3u * spec.k - 2u;
    case ScenarioFamily::kWeakKPartition: return 3u * spec.k + 1u;
    case ScenarioFamily::kGraphBipartition: return 5u;
  }
  return 0;
}

/// Ordered scheduling slots the adversarial engine must enumerate for this
/// spec (its hard UINT32_MAX precondition; weak round-robin additionally
/// walks a full round per lap, so it gets a tighter operational bound).
std::uint64_t adversarial_ordered_pairs(const ScenarioSpec& spec) {
  const std::uint64_t n = spec.n;
  switch (spec.topology) {
    case ScenarioTopology::kComplete:
    case ScenarioTopology::kErdosRenyi:  // worst case: every edge sampled in
      return n * (n - 1);                // -- bound by the complete graph
    case ScenarioTopology::kRing: return 2 * n;
    case ScenarioTopology::kStar:
    case ScenarioTopology::kPath: return 2 * (n - 1);
  }
  return 0;
}

std::string field_error(const char* field, const std::string& what) {
  return std::string("scenario: ") + field + ": " + what;
}

}  // namespace

std::string validate_scenario(const ScenarioSpec& spec) {
  if (spec.k < 2) return field_error("k", "need k >= 2");
  if (spec.family == ScenarioFamily::kGraphBipartition && spec.k != 2) {
    return field_error("k", "graph-bipartition fixes k = 2");
  }
  if (spec.n < 3) return field_error("n", "need n >= 3");
  if (spec.n < spec.k) return field_error("n", "need n >= k groups");
  if (spec.topology == ScenarioTopology::kErdosRenyi &&
      !(spec.er_p > 0.0 && spec.er_p <= 1.0)) {
    return field_error("topology.p", "need 0 < p <= 1");
  }
  if (spec.fairness.policy == pp::FairnessPolicy::kEpsilonFair &&
      !(spec.fairness.epsilon > 0.0 && spec.fairness.epsilon <= 1.0)) {
    return field_error("fairness.epsilon", "need 0 < epsilon <= 1");
  }

  // Oracle x family: which stopping rules are sound for which protocol.
  switch (spec.oracle) {
    case ScenarioOracle::kStablePattern:
      if (spec.family == ScenarioFamily::kWeakKPartition) {
        return field_error("oracle.kind",
                           "weak-kpartition has no count-pattern oracle; its "
                           "exact stopping rule is silence");
      }
      break;
    case ScenarioOracle::kSilence:
      if (spec.family != ScenarioFamily::kWeakKPartition) {
        return field_error("oracle.kind",
                           "only weak-kpartition goes silent (kpartition "
                           "free pairs and bipartition signals flip forever)");
      }
      break;
    case ScenarioOracle::kQuiescence:
      if (spec.quiescence_window == 0) {
        return field_error("oracle.window", "need window >= 1");
      }
      break;
  }

  // Engine x topology x fairness.
  const bool adversarial = spec.fairness.needs_adversarial_engine();
  if (adversarial) {
    if (spec.engine != pp::Engine::kAuto &&
        spec.engine != pp::Engine::kAgentArray) {
      return field_error("engine",
                         "non-uniform fairness runs on the adversarial "
                         "engine; use engine auto or agent");
    }
    if (adversarial_ordered_pairs(spec) > UINT32_MAX) {
      return field_error("n",
                         "too large for the adversarial engine (ordered "
                         "scheduling pairs exceed 2^32)");
    }
    if (spec.fairness.policy == pp::FairnessPolicy::kWeakRoundRobin &&
        adversarial_ordered_pairs(spec) > (1ULL << 22)) {
      return field_error("n",
                         "weak-round-robin walks a full ordered round per "
                         "lap; need at most 2^22 scheduling pairs");
    }
  } else if (spec.topology == ScenarioTopology::kComplete) {
    if (spec.engine == pp::Engine::kGraph ||
        spec.engine == pp::Engine::kGraphJump) {
      return field_error("engine",
                         "graph engines need a non-complete topology");
    }
  } else {
    if (spec.engine != pp::Engine::kAuto &&
        spec.engine != pp::Engine::kGraph &&
        spec.engine != pp::Engine::kGraphJump) {
      return field_error("engine",
                         "a non-complete topology needs engine auto, graph "
                         "or graph-jump (or adversarial fairness)");
    }
  }

  // Mode preconditions.
  const bool exact =
      spec.mode == ScenarioMode::kVerify || spec.mode == ScenarioMode::kMarkov;
  if (exact) {
    if (spec.engine != pp::Engine::kAuto) {
      return field_error("engine", "exact modes take engine auto");
    }
    if (!spec.faults.empty()) {
      return field_error("faults", "exact modes take no fault schedule");
    }
    if (adversarial) {
      return field_error(
          "fairness.policy",
          "exact modes pick their own scheduling semantics (verify explores "
          "all of them; markov is the uniform-random chain)");
    }
  }
  switch (spec.mode) {
    case ScenarioMode::kSimulate:
      if (spec.trials == 0) return field_error("trials", "need trials >= 1");
      if (spec.budget == 0) return field_error("budget", "need budget >= 1");
      break;
    case ScenarioMode::kVerify:
      if (spec.family == ScenarioFamily::kKPartition) {
        if (spec.topology != ScenarioTopology::kComplete) {
          return field_error("topology.kind",
                             "verify(kpartition) is the complete-graph "
                             "config-graph checker");
        }
        if (spec.n > 10) {
          return field_error("n", "verify(kpartition) explores counts "
                                  "exhaustively; need n <= 10");
        }
      } else {
        // The per-agent checkers (weak fairness; arbitrary topology).
        if (spec.family == ScenarioFamily::kWeakKPartition &&
            spec.topology != ScenarioTopology::kComplete) {
          return field_error("topology.kind",
                             "verify(weak-kpartition) models the complete "
                             "interaction graph");
        }
        if (spec.topology == ScenarioTopology::kErdosRenyi) {
          return field_error("topology.kind",
                             "verify needs a deterministic topology");
        }
        if (spec.n > 8) {
          return field_error("n", "per-agent verification explores state "
                                  "tuples exhaustively; need n <= 8");
        }
      }
      break;
    case ScenarioMode::kMarkov:
      if (spec.family != ScenarioFamily::kKPartition) {
        return field_error("protocol",
                           "markov analysis targets the kpartition stable "
                           "pattern");
      }
      if (spec.topology != ScenarioTopology::kComplete) {
        return field_error("topology.kind",
                           "markov is the complete-graph uniform chain");
      }
      // The real guard is the server's --markov-max-orbits exploration cap
      // (a recoverable error frame); this bound only rejects requests no
      // configuration could serve.  The lumped back end solves k = 2 at
      // n = 352 (BENCH_EXACT.json); k >= 3 has no state symmetry and hits
      // the orbit cap much earlier.
      if (spec.n > 512) {
        return field_error("n", "markov solves the reachable chain exactly "
                                "(symmetry-lumped sparse solver); need "
                                "n <= 512");
      }
      break;
    case ScenarioMode::kConformance: {
      std::string why;
      if (!scenario_to_conformance(spec, &why)) return why;
      if (spec.n > 64) {
        return field_error("n", "conformance ground-truths small cases; "
                                "need n <= 64");
      }
      if (spec.trials == 0 || spec.trials > 1000) {
        return field_error("trials", "need 1 <= trials <= 1000");
      }
      if (spec.budget == 0) return field_error("budget", "need budget >= 1");
      break;
    }
  }

  // Fault grammar (the schedule itself; whether an executor can honour it
  // is the server's decision -- docs/ppkd.md).
  if (!spec.faults.empty() && spec.mode != ScenarioMode::kSimulate) {
    return field_error("faults", "only mode simulate takes a fault schedule");
  }
  const std::uint32_t num_states = family_num_states(spec);
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const pp::FaultEvent& f = spec.faults[i];
    if (i > 0 && f.at < spec.faults[i - 1].at) {
      return field_error("faults", "events must be sorted by `at`");
    }
    if (f.agent && *f.agent >= spec.n) {
      return field_error("faults", "agent index out of range");
    }
    if (f.state && *f.state >= num_states) {
      return field_error("faults", "state id out of range for the protocol");
    }
    if (f.kind == pp::FaultKind::kSleep && f.duration == 0) {
      return field_error("faults", "sleep needs duration >= 1");
    }
  }

  return {};
}

// ---------------------------------------------------------------------------
// Parsing

namespace {

/// Reads one u64 member with a field-named diagnostic.
bool read_u64(const io::JsonValue& obj, const char* field, std::uint64_t* out,
              std::string* error) {
  const io::JsonValue* v = obj.find(field);
  if (v == nullptr) {
    *error = field_error(field, "missing");
    return false;
  }
  if (!v->is_number()) {
    *error = field_error(field, "expected a number");
    return false;
  }
  const std::optional<std::uint64_t> parsed = v->as_u64();
  if (!parsed) {
    *error = field_error(field, "not an unsigned 64-bit integer");
    return false;
  }
  *out = *parsed;
  return true;
}

bool read_string(const io::JsonValue& obj, const char* field,
                 std::string* out, std::string* error) {
  const io::JsonValue* v = obj.find(field);
  if (v == nullptr) {
    *error = field_error(field, "missing");
    return false;
  }
  if (!v->is_string()) {
    *error = field_error(field, "expected a string");
    return false;
  }
  *out = v->scalar;
  return true;
}

/// Rejects members outside `allowed` -- submit typos fail loudly instead
/// of silently running the defaulted axis.
bool check_members(const io::JsonValue& obj, const char* where,
                   std::initializer_list<std::string_view> allowed,
                   std::string* error) {
  for (const std::string& key : obj.keys) {
    bool known = false;
    for (std::string_view a : allowed) known = known || key == a;
    if (!known) {
      *error = std::string("scenario: ") + where + ": unknown member '" +
               key + "'";
      return false;
    }
  }
  return true;
}

std::optional<pp::FairnessPolicy> policy_from_name(
    std::string_view name) noexcept {
  if (name == "uniform-random") return pp::FairnessPolicy::kUniformRandom;
  if (name == "epsilon-fair") return pp::FairnessPolicy::kEpsilonFair;
  if (name == "weak-round-robin") return pp::FairnessPolicy::kWeakRoundRobin;
  return std::nullopt;
}

std::optional<pp::FaultKind> fault_kind_from_name(
    std::string_view name) noexcept {
  for (pp::FaultKind kind :
       {pp::FaultKind::kCrash, pp::FaultKind::kJoin, pp::FaultKind::kCorrupt,
        pp::FaultKind::kSleep, pp::FaultKind::kReset}) {
    if (name == pp::fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario_value(const io::JsonValue& value,
                                                 std::string* error) {
  std::string local;
  std::string* err = error != nullptr ? error : &local;

  if (!value.is_object()) {
    *err = "scenario: expected a JSON object";
    return std::nullopt;
  }
  if (!check_members(value, "document",
                     {"schema", "protocol", "k", "n", "topology", "fairness",
                      "oracle", "engine", "mode", "trials", "seed", "budget",
                      "faults"},
                     err)) {
    return std::nullopt;
  }

  ScenarioSpec spec;
  std::string text;
  std::uint64_t num = 0;

  if (!read_string(value, "schema", &text, err)) return std::nullopt;
  if (text != kScenarioSchema) {
    *err = field_error("schema", "expected \"" + std::string(kScenarioSchema) +
                                     "\", got \"" + text + "\"");
    return std::nullopt;
  }

  if (!read_string(value, "protocol", &text, err)) return std::nullopt;
  if (const auto family = family_from_name(text)) {
    spec.family = *family;
  } else {
    *err = field_error("protocol", "unknown family \"" + text + "\"");
    return std::nullopt;
  }

  if (!read_u64(value, "k", &num, err)) return std::nullopt;
  if (num < 2 || num > 1000) {
    *err = field_error("k", "need 2 <= k <= 1000");
    return std::nullopt;
  }
  spec.k = static_cast<pp::GroupId>(num);

  if (!read_u64(value, "n", &num, err)) return std::nullopt;
  if (num < 3 || num > UINT32_MAX) {
    *err = field_error("n", "need 3 <= n <= 2^32-1");
    return std::nullopt;
  }
  spec.n = static_cast<std::uint32_t>(num);

  const io::JsonValue* topology = value.find("topology");
  if (topology == nullptr || !topology->is_object()) {
    *err = field_error("topology", "expected an object {kind, p}");
    return std::nullopt;
  }
  if (!check_members(*topology, "topology", {"kind", "p"}, err)) {
    return std::nullopt;
  }
  if (!read_string(*topology, "kind", &text, err)) return std::nullopt;
  if (const auto kind = topology_from_name(text)) {
    spec.topology = *kind;
  } else {
    *err = field_error("topology.kind", "unknown topology \"" + text + "\"");
    return std::nullopt;
  }
  if (const io::JsonValue* p = topology->find("p")) {
    const std::optional<double> parsed = p->is_number()
                                             ? p->as_double()
                                             : std::nullopt;
    if (!parsed) {
      *err = field_error("topology.p", "expected a number");
      return std::nullopt;
    }
    spec.er_p = *parsed;
  }

  const io::JsonValue* fairness = value.find("fairness");
  if (fairness == nullptr || !fairness->is_object()) {
    *err = field_error("fairness", "expected an object {policy, epsilon}");
    return std::nullopt;
  }
  if (!check_members(*fairness, "fairness", {"policy", "epsilon"}, err)) {
    return std::nullopt;
  }
  if (!read_string(*fairness, "policy", &text, err)) return std::nullopt;
  if (const auto policy = policy_from_name(text)) {
    spec.fairness.policy = *policy;
  } else {
    *err = field_error("fairness.policy", "unknown policy \"" + text + "\"");
    return std::nullopt;
  }
  if (const io::JsonValue* eps = fairness->find("epsilon")) {
    const std::optional<double> parsed = eps->is_number()
                                             ? eps->as_double()
                                             : std::nullopt;
    if (!parsed) {
      *err = field_error("fairness.epsilon", "expected a number");
      return std::nullopt;
    }
    spec.fairness.epsilon = *parsed;
  }

  const io::JsonValue* oracle = value.find("oracle");
  if (oracle == nullptr || !oracle->is_object()) {
    *err = field_error("oracle", "expected an object {kind, window}");
    return std::nullopt;
  }
  if (!check_members(*oracle, "oracle", {"kind", "window"}, err)) {
    return std::nullopt;
  }
  if (!read_string(*oracle, "kind", &text, err)) return std::nullopt;
  if (const auto kind = oracle_from_name(text)) {
    spec.oracle = *kind;
  } else {
    *err = field_error("oracle.kind", "unknown oracle \"" + text + "\"");
    return std::nullopt;
  }
  if (oracle->find("window") != nullptr) {
    if (!read_u64(*oracle, "window", &spec.quiescence_window, err)) {
      return std::nullopt;
    }
  }

  if (!read_string(value, "engine", &text, err)) return std::nullopt;
  if (const auto engine = engine_from_name(text)) {
    spec.engine = *engine;
  } else {
    *err = field_error("engine", "unknown engine \"" + text + "\"");
    return std::nullopt;
  }

  if (!read_string(value, "mode", &text, err)) return std::nullopt;
  if (const auto mode = mode_from_name(text)) {
    spec.mode = *mode;
  } else {
    *err = field_error("mode", "unknown mode \"" + text + "\"");
    return std::nullopt;
  }

  if (!read_u64(value, "trials", &num, err)) return std::nullopt;
  if (num > UINT32_MAX) {
    *err = field_error("trials", "need trials <= 2^32-1");
    return std::nullopt;
  }
  spec.trials = static_cast<std::uint32_t>(num);
  if (!read_u64(value, "seed", &spec.seed, err)) return std::nullopt;
  if (!read_u64(value, "budget", &spec.budget, err)) return std::nullopt;

  if (const io::JsonValue* faults = value.find("faults")) {
    if (!faults->is_array()) {
      *err = field_error("faults", "expected an array");
      return std::nullopt;
    }
    for (const io::JsonValue& item : faults->items) {
      if (!item.is_object()) {
        *err = field_error("faults", "expected fault objects");
        return std::nullopt;
      }
      if (!check_members(item, "faults[]",
                         {"at", "kind", "agent", "state", "duration"}, err)) {
        return std::nullopt;
      }
      pp::FaultEvent f;
      if (!read_u64(item, "at", &f.at, err)) return std::nullopt;
      if (!read_string(item, "kind", &text, err)) return std::nullopt;
      if (const auto kind = fault_kind_from_name(text)) {
        f.kind = *kind;
      } else {
        *err = field_error("faults", "unknown fault kind \"" + text + "\"");
        return std::nullopt;
      }
      if (item.find("agent") != nullptr) {
        if (!read_u64(item, "agent", &num, err)) return std::nullopt;
        if (num > UINT32_MAX) {
          *err = field_error("faults", "agent index out of range");
          return std::nullopt;
        }
        f.agent = static_cast<std::uint32_t>(num);
      }
      if (item.find("state") != nullptr) {
        if (!read_u64(item, "state", &num, err)) return std::nullopt;
        if (num > UINT16_MAX) {
          *err = field_error("faults", "state id out of range");
          return std::nullopt;
        }
        f.state = static_cast<pp::StateId>(num);
      }
      if (item.find("duration") != nullptr) {
        if (!read_u64(item, "duration", &f.duration, err)) return std::nullopt;
      }
      spec.faults.push_back(f);
    }
  }

  std::string invalid = validate_scenario(spec);
  if (!invalid.empty()) {
    *err = std::move(invalid);
    return std::nullopt;
  }
  return spec;
}

std::optional<ScenarioSpec> parse_scenario(std::string_view text,
                                           std::string* error) {
  std::string local;
  std::string* err = error != nullptr ? error : &local;
  std::string parse_error;
  const std::optional<io::JsonValue> doc = io::parse_json(text, &parse_error);
  if (!doc) {
    *err = "scenario: " + parse_error;
    return std::nullopt;
  }
  return parse_scenario_value(*doc, error);
}

// ---------------------------------------------------------------------------
// Hashing

std::uint64_t scenario_hash(const ScenarioSpec& spec) {
  ScenarioSpec masked = spec;
  masked.seed = 0;  // specs differing only in seed share a hash (cache key)
  const std::string canonical = serialize_scenario(masked);
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
  for (char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string scenario_hash_hex(const ScenarioSpec& spec) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, scenario_hash(spec));
  return buffer;
}

// ---------------------------------------------------------------------------
// Conformance bridge

std::optional<verify::ConformanceCase> scenario_to_conformance(
    const ScenarioSpec& spec, std::string* why) {
  const auto fail = [&](const char* reason) -> std::optional<verify::ConformanceCase> {
    if (why != nullptr) *why = std::string("scenario: ") + reason;
    return std::nullopt;
  };
  if (spec.topology != ScenarioTopology::kComplete) {
    return fail("topology.kind: conformance cases carry their own per-engine "
                "topology rows; the scenario must say complete");
  }
  if (spec.fairness.policy != pp::FairnessPolicy::kUniformRandom) {
    return fail("fairness.policy: conformance pins the uniform-random "
                "scheduler (the adversarial row runs epsilon = 1)");
  }
  if (!spec.faults.empty()) {
    return fail("faults: conformance cases take no fault schedule (the "
                "churn row runs an empty one)");
  }
  verify::ConformanceCase c;
  switch (spec.family) {
    case ScenarioFamily::kKPartition:
      c.protocol.family = verify::ConformanceProtocol::Family::kKPartition;
      break;
    case ScenarioFamily::kWeakKPartition:
      c.protocol.family = verify::ConformanceProtocol::Family::kWeakKPartition;
      break;
    case ScenarioFamily::kGraphBipartition:
      c.protocol.family =
          verify::ConformanceProtocol::Family::kGraphBipartition;
      break;
  }
  c.protocol.k = spec.k;
  c.n = spec.n;
  c.seed = spec.seed;
  c.trials = static_cast<int>(spec.trials);
  c.budget = spec.budget;
  return c;
}

std::optional<ScenarioSpec> scenario_from_conformance(
    const verify::ConformanceCase& c) {
  if (c.mutation.has_value()) return std::nullopt;
  ScenarioSpec spec;
  switch (c.protocol.family) {
    case verify::ConformanceProtocol::Family::kKPartition:
      spec.family = ScenarioFamily::kKPartition;
      spec.oracle = ScenarioOracle::kStablePattern;
      break;
    case verify::ConformanceProtocol::Family::kWeakKPartition:
      spec.family = ScenarioFamily::kWeakKPartition;
      spec.oracle = ScenarioOracle::kSilence;
      break;
    case verify::ConformanceProtocol::Family::kGraphBipartition:
      spec.family = ScenarioFamily::kGraphBipartition;
      spec.oracle = ScenarioOracle::kStablePattern;
      break;
    case verify::ConformanceProtocol::Family::kCandidate:
      return std::nullopt;  // the randomized space has no declarative form
  }
  spec.k = c.protocol.family ==
                   verify::ConformanceProtocol::Family::kGraphBipartition
               ? 2
               : c.protocol.k;
  spec.n = c.n;
  spec.seed = c.seed;
  if (c.trials <= 0) return std::nullopt;
  spec.trials = static_cast<std::uint32_t>(c.trials);
  spec.budget = c.budget;
  spec.mode = ScenarioMode::kConformance;
  if (!validate_scenario(spec).empty()) return std::nullopt;
  return spec;
}

// ---------------------------------------------------------------------------
// Runtime

ScenarioRuntime::ScenarioRuntime(const ScenarioSpec& spec) : spec_(spec) {
  PPK_EXPECTS(validate_scenario(spec).empty());
  switch (spec_.family) {
    case ScenarioFamily::kKPartition:
      protocol_ = std::make_unique<core::KPartitionProtocol>(spec_.k);
      break;
    case ScenarioFamily::kWeakKPartition:
      protocol_ = std::make_unique<core::WeakKPartitionProtocol>(spec_.k);
      break;
    case ScenarioFamily::kGraphBipartition:
      protocol_ = std::make_unique<core::GraphBipartitionProtocol>();
      break;
  }
  table_ = std::make_unique<pp::TransitionTable>(*protocol_);
}

pp::OracleFactory ScenarioRuntime::oracle_factory() const {
  switch (spec_.oracle) {
    case ScenarioOracle::kStablePattern:
      if (spec_.family == ScenarioFamily::kGraphBipartition) {
        const auto* gb =
            static_cast<const core::GraphBipartitionProtocol*>(protocol_.get());
        const std::uint64_t n = spec_.n;
        return [gb, n] { return core::graph_bipartition_stable_oracle(*gb, n); };
      } else {
        const auto* kp =
            static_cast<const core::KPartitionProtocol*>(protocol_.get());
        const std::uint32_t n = spec_.n;
        return [kp, n] { return core::stable_pattern_oracle(*kp, n); };
      }
    case ScenarioOracle::kSilence: {
      const pp::TransitionTable* table = table_.get();
      return [table] { return std::make_unique<pp::SilenceOracle>(*table); };
    }
    case ScenarioOracle::kQuiescence: {
      const pp::Protocol* protocol = protocol_.get();
      const std::uint64_t window = spec_.quiescence_window;
      return [protocol, window] {
        return std::make_unique<pp::QuiescenceOracle>(
            pp::make_quiescence_oracle(*protocol, window));
      };
    }
  }
  PPK_ASSERT(false);
  return {};
}

pp::InteractionGraph ScenarioRuntime::build_topology() const {
  PPK_EXPECTS(spec_.topology != ScenarioTopology::kErdosRenyi);
  switch (spec_.topology) {
    case ScenarioTopology::kComplete:
      return pp::InteractionGraph::complete(spec_.n);
    case ScenarioTopology::kRing: return pp::InteractionGraph::ring(spec_.n);
    case ScenarioTopology::kStar: return pp::InteractionGraph::star(spec_.n);
    case ScenarioTopology::kPath: return pp::InteractionGraph::path(spec_.n);
    case ScenarioTopology::kErdosRenyi: break;
  }
  PPK_ASSERT(false);
  return pp::InteractionGraph::complete(spec_.n);
}

core::CampaignOptions ScenarioRuntime::campaign_options() const {
  core::CampaignOptions options;
  options.mc.trials = spec_.trials;
  options.mc.master_seed = spec_.seed;
  options.mc.max_interactions = spec_.budget;
  options.mc.engine = spec_.engine;
  options.mc.fairness = spec_.fairness;
  if (spec_.topology != ScenarioTopology::kComplete) {
    const ScenarioTopology kind = spec_.topology;
    const std::uint32_t n = spec_.n;
    const double p = spec_.er_p;
    options.mc.graph = [kind, n, p](std::uint64_t seed) {
      switch (kind) {
        case ScenarioTopology::kRing: return pp::InteractionGraph::ring(n);
        case ScenarioTopology::kStar: return pp::InteractionGraph::star(n);
        case ScenarioTopology::kPath: return pp::InteractionGraph::path(n);
        case ScenarioTopology::kErdosRenyi:
          return pp::InteractionGraph::erdos_renyi(n, p, seed);
        case ScenarioTopology::kComplete: break;
      }
      PPK_ASSERT(false);
      return pp::InteractionGraph::complete(n);
    };
    options.topology_tag = std::string(to_string(kind));
    if (kind == ScenarioTopology::kErdosRenyi) {
      options.topology_tag += ":p=" + format_double(p);
    }
  } else {
    options.topology_tag = "complete";
  }
  return options;
}

}  // namespace ppk::serve
