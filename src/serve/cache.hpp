// Directory-backed result cache of the ppkd daemon (docs/ppkd.md).
//
// A scenario result is a pure function of the spec: simulate and
// conformance results additionally depend on the master seed (it names the
// trial streams), while verify and markov answers are exact and
// seed-independent.  The cache key mirrors that split:
//
//   sim-<hash16>-<seed>.json     simulate / conformance results
//   exact-<hash16>.json          verify / markov results
//
// where <hash16> is scenario_hash_hex() -- FNV-1a over the canonical spec
// serialization with the seed masked -- so resubmitting a spec that
// differs only in irrelevant formatting (or, for exact modes, in seed)
// hits the same entry.  Entries store the daemon's single-line result
// frame verbatim; a cache hit replays it byte-identically, which is what
// the smoke test asserts.  Writes go through io/atomic_file.hpp so a
// daemon killed mid-store never leaves a torn entry.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ppk::serve {

/// Schema tag every exact result frame must carry (as member
/// "exact_schema") to be served from the cache.  Bump it whenever the
/// meaning or fields of an exact answer change -- v2 introduced the
/// solver-tagged frames of the lumped Markov back end; v1 frames carried
/// no tag at all and are therefore recognized (and invalidated) by the
/// tag's absence.
inline constexpr std::string_view kExactResultSchema = "ppkd-exact-v2";

/// The (scenario-hash, seed) result cache.  Thread-compatible: the daemon
/// serializes access through its job lock.
class ResultCache {
 public:
  /// Entries live under `dir` (created on first store if missing).  An
  /// empty dir disables the cache: lookups miss, stores drop.
  explicit ResultCache(std::string dir);

  /// Seed-dependent lookup (simulate / conformance).
  [[nodiscard]] std::optional<std::string> find(const std::string& hash_hex,
                                                std::uint64_t seed) const;
  /// Seed-independent lookup (verify / markov).  Only entries tagged with
  /// the current kExactResultSchema are hits: an exact answer's meaning
  /// depends on the solver generation that produced it, so untagged
  /// entries written by an older daemon are treated as misses and
  /// recomputed (then re-stored with the tag) instead of being replayed
  /// as if current.
  [[nodiscard]] std::optional<std::string> find_exact(
      const std::string& hash_hex) const;

  /// Stores a result frame (overwrites; atomic).  Returns false when the
  /// cache is disabled or the write failed -- callers treat a failed
  /// store as a miss, never as an error.
  bool store(const std::string& hash_hex, std::uint64_t seed,
             const std::string& frame);
  /// store() for the seed-independent entries (verify / markov).
  bool store_exact(const std::string& hash_hex, const std::string& frame);

  /// The cache directory ("" when disabled).
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// False when constructed with an empty dir (cache off).
  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

  /// Entry file path (exposed so tests and the smoke driver can inspect
  /// the cache without duplicating the naming scheme).
  [[nodiscard]] std::string entry_path(const std::string& hash_hex,
                                       std::uint64_t seed) const;
  /// entry_path() for the seed-independent entries.
  [[nodiscard]] std::string exact_entry_path(
      const std::string& hash_hex) const;

 private:
  std::string dir_;
};

}  // namespace ppk::serve
