#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "io/json.hpp"
#include "io/json_reader.hpp"
#include "util/assert.hpp"
#include "verify/global_fairness.hpp"
#include "verify/markov.hpp"
#include "verify/weak_fairness.hpp"

namespace ppk::serve {

std::string single_line_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] != '\n') {
      out.push_back(pretty[i]);
      continue;
    }
    while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
  }
  return out;
}

namespace {

/// Builds one single-line frame through a writer callback.
template <typename Fill>
std::string frame(Fill&& fill) {
  std::ostringstream out;
  {
    io::JsonWriter w(out);
    w.begin_object();
    fill(w);
    w.end_object();
  }
  return single_line_json(out.str());
}

std::string error_frame(const std::string& id, const std::string& what) {
  return frame([&](io::JsonWriter& w) {
    w.member("event", "error");
    if (!id.empty()) w.member("id", id);
    w.member("error", what);
  });
}

std::string trial_frame(const std::string& id, std::uint32_t trial,
                        const core::CampaignTrial& t) {
  return frame([&](io::JsonWriter& w) {
    w.member("event", "trial");
    w.member("id", id);
    w.member("trial", static_cast<std::uint64_t>(trial));
    w.member("interactions", t.result.interactions);
    w.member("effective", t.result.effective);
    w.member("stabilized", t.result.stabilized);
    w.member("timed_out", t.result.timed_out);
    w.member("stalled", t.result.stalled);
    w.member("retries", static_cast<std::uint64_t>(t.retries));
    w.member("failed", t.failed);
    w.member("censored", t.censored);
  });
}

}  // namespace

ScenarioService::ScenarioService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.state_dir) {
  if (!options_.state_dir.empty()) {
    ::mkdir(options_.state_dir.c_str(), 0755);  // best effort; writers report
  }
}

bool ScenarioService::cancel(const std::string& id) {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second->stop.store(true, std::memory_order_relaxed);
  return true;
}

void ScenarioService::cancel_all() {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (auto& [id, job] : jobs_) {
    job->stop.store(true, std::memory_order_relaxed);
  }
}

bool ScenarioService::handle_line(const std::string& line, const Emit& emit) {
  std::string parse_error;
  const std::optional<io::JsonValue> request =
      io::parse_json(line, &parse_error);
  if (!request || !request->is_object()) {
    emit(error_frame(
        {}, !request ? "request: " + parse_error
                     : std::string("request: expected a JSON object")));
    return true;
  }
  const io::JsonValue* op = request->find("op");
  if (op == nullptr || !op->is_string()) {
    emit(error_frame({}, "request: missing string member 'op'"));
    return true;
  }

  if (op->scalar == "ping") {
    emit(frame([](io::JsonWriter& w) { w.member("event", "pong"); }));
    return true;
  }
  if (op->scalar == "submit") {
    handle_submit(*request, emit);
    return true;
  }
  if (op->scalar == "cancel") {
    const io::JsonValue* id = request->find("id");
    if (id == nullptr || !id->is_string()) {
      emit(error_frame({}, "cancel: missing string member 'id'"));
      return true;
    }
    const bool found = cancel(id->scalar);
    emit(frame([&](io::JsonWriter& w) {
      w.member("event", "cancelled");
      w.member("id", id->scalar);
      w.member("found", found);
    }));
    return true;
  }
  if (op->scalar == "status") {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    emit(frame([&](io::JsonWriter& w) {
      w.member("event", "status");
      w.key("jobs");
      w.begin_array();
      for (const auto& [id, job] : jobs_) {
        w.begin_object();
        w.member("id", id);
        w.member("scenario", job->hash_hex);
        w.end_object();
      }
      w.end_array();
    }));
    return true;
  }
  if (op->scalar == "shutdown") {
    cancel_all();
    emit(frame([](io::JsonWriter& w) { w.member("event", "bye"); }));
    return false;
  }
  emit(error_frame({}, "request: unknown op '" + op->scalar + "'"));
  return true;
}

void ScenarioService::handle_submit(const io::JsonValue& request,
                                    const Emit& emit) {
  const io::JsonValue* id_value = request.find("id");
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->scalar.empty()) {
    emit(error_frame({}, "submit: missing string member 'id'"));
    return;
  }
  const std::string id = id_value->scalar;
  const io::JsonValue* scenario = request.find("scenario");
  if (scenario == nullptr) {
    emit(error_frame(id, "submit: missing member 'scenario'"));
    return;
  }
  std::string error;
  const std::optional<ScenarioSpec> spec =
      parse_scenario_value(*scenario, &error);
  if (!spec) {
    emit(error_frame(id, error));
    return;
  }
  if (!spec->faults.empty()) {
    // The schedule parsed and validated; honour it honestly or not at all
    // (the campaign layer cannot drive the churn engine yet -- docs/ppkd.md
    // tracks this as the open fault-injection item).
    emit(error_frame(id,
                     "scenario: faults: fault schedules are not yet "
                     "schedulable through the campaign layer"));
    return;
  }

  const std::string hash_hex = scenario_hash_hex(*spec);
  const bool seed_dependent = spec->mode == ScenarioMode::kSimulate ||
                              spec->mode == ScenarioMode::kConformance;
  std::optional<std::string> cached =
      seed_dependent ? cache_.find(hash_hex, spec->seed)
                     : cache_.find_exact(hash_hex);

  emit(frame([&](io::JsonWriter& w) {
    w.member("event", "accepted");
    w.member("id", id);
    w.member("scenario", hash_hex);
    w.member("seed", spec->seed);
    w.member("mode", to_string(spec->mode));
    w.member("cached", cached.has_value());
  }));
  if (cached) {
    emit(*cached);
    return;
  }

  auto job = std::make_shared<Job>();
  job->id = id;
  job->hash_hex = hash_hex;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (!jobs_.emplace(id, job).second) {
      emit(error_frame(id, "submit: job id already running"));
      return;
    }
  }

  {
    // One campaign at a time owns the cores; a queued submit re-checks the
    // cache once it gets the lock (an identical spec may just have landed).
    const std::lock_guard<std::mutex> run(run_mutex_);
    cached = seed_dependent ? cache_.find(hash_hex, spec->seed)
                            : cache_.find_exact(hash_hex);
    if (cached) {
      emit(*cached);
    } else {
      switch (spec->mode) {
        case ScenarioMode::kSimulate:
          run_simulate(*spec, id, hash_hex, job, emit);
          break;
        case ScenarioMode::kVerify:
        case ScenarioMode::kMarkov:
          run_exact(*spec, id, hash_hex, emit);
          break;
        case ScenarioMode::kConformance:
          run_conformance(*spec, hash_hex, emit);
          break;
      }
    }
  }

  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  jobs_.erase(id);
}

void ScenarioService::run_simulate(const ScenarioSpec& spec,
                                   const std::string& id,
                                   const std::string& hash_hex,
                                   const std::shared_ptr<Job>& job,
                                   const Emit& emit) {
  ScenarioRuntime runtime(spec);
  core::CampaignOptions options = runtime.campaign_options();
  options.mc.threads = options_.job_threads;
  options.chunk_interactions = options_.chunk_interactions;
  options.checkpoint_every_chunks = options_.checkpoint_every_chunks;
  options.stop = &job->stop;
  if (!options_.state_dir.empty()) {
    options.checkpoint_path = options_.state_dir + "/ckpt-" + hash_hex + "-" +
                              std::to_string(spec.seed) + ".json";
  }
  options.on_trial = [&](std::uint32_t trial, const core::CampaignTrial& t) {
    emit(trial_frame(id, trial, t));
  };

  const core::CampaignResult result = core::run_campaign(
      runtime.protocol(), runtime.table(), spec.n, runtime.oracle_factory(),
      options);

  if (!result.error.empty()) {
    emit(error_frame(id, "campaign: " + result.error));
    return;
  }
  emit(frame([&](io::JsonWriter& w) {
    w.member("event", "job");
    w.member("id", id);
    w.member("resumed", result.resumed);
  }));
  if (!result.complete) {
    emit(frame([&](io::JsonWriter& w) {
      w.member("event", "incomplete");
      w.member("id", id);
      w.member("completed", static_cast<std::uint64_t>(
                                result.completed_count()));
      w.member("trials", static_cast<std::uint64_t>(spec.trials));
    }));
    return;  // the checkpoint stays; resubmitting the spec resumes it
  }

  const std::string result_line = frame([&](io::JsonWriter& w) {
    w.member("event", "result");
    w.member("scenario", hash_hex);
    w.member("seed", spec.seed);
    w.member("mode", "simulate");
    w.key("trials");
    w.begin_array();
    for (const core::CampaignTrial& t : result.trials) {
      w.begin_object();
      w.member("interactions", t.result.interactions);
      w.member("effective", t.result.effective);
      w.member("stabilized", t.result.stabilized);
      w.member("timed_out", t.result.timed_out);
      w.member("stalled", t.result.stalled);
      w.member("retries", static_cast<std::uint64_t>(t.retries));
      w.member("failed", t.failed);
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    result.metrics.write_json(w);
  });
  cache_.store(hash_hex, spec.seed, result_line);
  if (!options.checkpoint_path.empty()) {
    std::remove(options.checkpoint_path.c_str());
  }
  emit(result_line);
}

void ScenarioService::run_exact(const ScenarioSpec& spec,
                                const std::string& id,
                                const std::string& hash_hex,
                                const Emit& emit) {
  ScenarioRuntime runtime(spec);
  std::string result_line;
  if (spec.mode == ScenarioMode::kVerify) {
    verify::Verdict verdict;
    switch (spec.family) {
      case ScenarioFamily::kKPartition:
        verdict = verify::verify_uniform_partition(runtime.protocol(),
                                                   runtime.table(), spec.n);
        break;
      case ScenarioFamily::kWeakKPartition:
        verdict = verify::verify_weak_uniform_partition(
            runtime.protocol(), runtime.table(), spec.n);
        break;
      case ScenarioFamily::kGraphBipartition: {
        const pp::InteractionGraph topology = runtime.build_topology();
        verdict = verify::verify_graph_uniform_partition(
            runtime.protocol(), runtime.table(), topology);
        break;
      }
    }
    result_line = frame([&](io::JsonWriter& w) {
      w.member("event", "result");
      w.member("scenario", hash_hex);
      w.member("mode", "verify");
      w.member("exact_schema", std::string(kExactResultSchema));
      w.member("solves", verdict.solves);
      w.member("exploration_complete", verdict.exploration_complete);
      w.member("reachable_configs",
               static_cast<std::uint64_t>(verdict.reachable_configs));
      w.member("num_sccs", static_cast<std::uint64_t>(verdict.num_sccs));
      w.member("bottom_sccs", static_cast<std::uint64_t>(verdict.bottom_sccs));
      w.member("failure", verdict.failure);
    });
  } else {
    PPK_ASSERT(spec.mode == ScenarioMode::kMarkov);
    const auto& kp =
        static_cast<const core::KPartitionProtocol&>(runtime.protocol());
    pp::Counts initial(runtime.table().num_states(), 0);
    initial[runtime.protocol().initial_state()] = spec.n;
    verify::MarkovOptions options;
    options.symmetry = runtime.protocol().symmetry();
    options.lumped.max_orbits = options_.markov_max_orbits;
    options.explore.max_configs = options_.markov_max_orbits;
    std::string why;
    const std::optional<verify::MarkovAnalysis> analysis =
        verify::MarkovAnalysis::try_create(runtime.table(), initial,
                                           std::move(options), &why);
    if (!analysis.has_value()) {
      // A too-large chain is a recoverable job failure, never daemon death.
      emit(error_frame(id, why));
      return;
    }
    std::optional<double> expected;
    std::vector<verify::MarkovAnalysis::Absorption> absorptions;
    try {
      expected = analysis->expected_hitting_time([&](const pp::Counts& counts) {
        return core::matches_stable_pattern(kp, spec.n, counts);
      });
      absorptions = analysis->absorption_probabilities();
    } catch (const std::exception& e) {
      emit(error_frame(id, std::string("markov: ") + e.what()));
      return;
    }
    result_line = frame([&](io::JsonWriter& w) {
      w.member("event", "result");
      w.member("scenario", hash_hex);
      w.member("mode", "markov");
      w.member("exact_schema", std::string(kExactResultSchema));
      w.member("solver", analysis->method_name());
      w.member("reachable_configs", analysis->reachable_configs());
      // nullopt (target not a.s. reached) serializes as null, the writer's
      // non-finite convention.
      w.member("expected_interactions",
               expected ? *expected : std::numeric_limits<double>::quiet_NaN());
      w.key("absorptions");
      w.begin_array();
      for (const verify::MarkovAnalysis::Absorption& a : absorptions) {
        w.begin_object();
        w.member("scc", static_cast<std::uint64_t>(a.scc));
        w.key("representative");
        w.begin_array();
        for (const std::uint32_t c : a.representative) {
          w.value(static_cast<std::uint64_t>(c));
        }
        w.end_array();
        w.member("probability", a.probability);
        w.end_object();
      }
      w.end_array();
    });
  }
  cache_.store_exact(hash_hex, result_line);
  emit(result_line);
}

void ScenarioService::run_conformance(const ScenarioSpec& spec,
                                      const std::string& hash_hex,
                                      const Emit& emit) {
  const std::optional<verify::ConformanceCase> c = scenario_to_conformance(spec);
  PPK_ASSERT(c.has_value());  // validate_scenario checked convertibility
  const verify::ConformanceReport report = verify::check_conformance(*c);
  const std::string result_line = frame([&](io::JsonWriter& w) {
    w.member("event", "result");
    w.member("scenario", hash_hex);
    w.member("seed", spec.seed);
    w.member("mode", "conformance");
    w.member("ok", report.ok());
    w.member("checks_run", static_cast<std::int64_t>(report.checks_run));
    w.key("divergences");
    w.begin_array();
    for (const verify::Divergence& d : report.divergences) {
      w.begin_object();
      w.member("check", verify::conformance_check_name(d.check));
      w.member("engine", verify::conformance_engine_name(d.engine));
      w.member("event", d.event);
      w.member("detail", d.detail);
      w.end_object();
    }
    w.end_array();
  });
  cache_.store(hash_hex, spec.seed, result_line);
  emit(result_line);
}

// ---------------------------------------------------------------------------
// AF_UNIX front end

namespace {

/// One client connection: line framing in, mutex-serialized frames out.
/// Returns true if the client requested daemon shutdown.
bool serve_connection(int fd, ScenarioService& service,
                      std::atomic<bool>* stop) {
  std::mutex write_mutex;
  const ScenarioService::Emit emit = [&](const std::string& body) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    std::string line = body;
    line.push_back('\n');
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ::ssize_t wrote = ::send(fd, data, left, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return;  // client went away; drop remaining frames
      }
      data += wrote;
      left -= static_cast<std::size_t>(wrote);
    }
  };

  std::string pending;
  bool shutdown_requested = false;
  while (!shutdown_requested &&
         !(stop != nullptr && stop->load(std::memory_order_relaxed))) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    char buffer[4096];
    const ::ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
    if (got <= 0) break;  // disconnect (or error): the connection is done
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t eol;
    while ((eol = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, eol);
      pending.erase(0, eol + 1);
      if (line.empty()) continue;
      if (!service.handle_line(line, emit)) {
        shutdown_requested = true;
        break;
      }
    }
  }
  ::close(fd);
  return shutdown_requested;
}

}  // namespace

int run_socket_server(const std::string& socket_path, ScenarioService& service,
                      std::atomic<bool>* stop) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "ppkd: socket: %s\n", std::strerror(errno));
    return 1;
  }
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "ppkd: socket path too long: %s\n",
                 socket_path.c_str());
    ::close(listen_fd);
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // stale socket from a killed daemon
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    std::fprintf(stderr, "ppkd: bind %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  std::printf("ppkd: listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  std::atomic<bool> local_stop{false};
  std::atomic<bool>* effective_stop = stop != nullptr ? stop : &local_stop;
  std::vector<std::thread> connections;
  while (!effective_stop->load(std::memory_order_relaxed)) {
    struct pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    connections.emplace_back([client, &service, effective_stop] {
      if (serve_connection(client, service, effective_stop)) {
        effective_stop->store(true, std::memory_order_relaxed);
      }
    });
  }
  // Winding down: flip every running job's stop flag so in-flight submits
  // checkpoint and return, then collect the connection threads (they watch
  // the same stop flag).
  service.cancel_all();
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace ppk::serve
