// Declarative scenario specs: the `ppkd` daemon's request format and the
// conformance fuzzer's case format (docs/ppkd.md has the full schema).
//
// A scenario names one experiment on the axes the repo has grown since
// PR 1 -- protocol family x n x k x topology x fault schedule x fairness
// x oracle x engine -- plus an execution mode:
//
//   simulate     Monte-Carlo trials through the checkpointed campaign
//                layer (core/campaign.hpp): budget-chunked, cancellable,
//                crash-resumable, streamed per trial.
//   verify       the exhaustive model checkers (verify/global_fairness,
//                verify/weak_fairness): exact, seed-independent.
//   markov       exact expected stabilization time via the absorbing
//                -chain analysis (verify/markov.hpp); seed-independent.
//   conformance  the differential cross-engine harness
//                (verify/conformance.hpp) on the equivalent case -- every
//                fuzz case is a replayable server request and vice versa
//                (scenario_to_conformance / scenario_from_conformance).
//
// Specs are JSON (schema "ppk-scenario-v1") parsed with io/json_reader
// and validated fail-fast: parse_scenario returns either a spec that the
// executors accept by construction or a one-line diagnostic naming the
// offending field.  serialize_scenario emits the canonical form -- fixed
// member order, normalized values -- so serialize(parse(serialize(s)))
// is byte-identical to serialize(s), which is what makes scenario_hash
// (FNV-1a over the canonical form with the seed masked) a stable cache
// key: results are cached by (scenario-hash, seed), with the
// seed-independent verify/markov answers cached by hash alone.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"
#include "io/json_reader.hpp"
#include "pp/fairness.hpp"
#include "pp/faults.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/protocol.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "verify/conformance.hpp"

namespace ppk::serve {

/// Schema tag of the scenario-spec format.
inline constexpr std::string_view kScenarioSchema = "ppk-scenario-v1";

/// Protocol families a scenario can run (the repo's named families; the
/// conformance harness's randomized candidate space has no scenario form).
enum class ScenarioFamily : std::uint8_t {
  kKPartition,        // the paper's 3k-2-state protocol (global fairness)
  kWeakKPartition,    // 3k+1 states, correct under weak fairness
  kGraphBipartition,  // 5 states, arbitrary connected graphs
};

/// Interaction topologies (pp/interaction_graph.hpp factories).
enum class ScenarioTopology : std::uint8_t {
  kComplete,
  kRing,
  kStar,
  kPath,
  kErdosRenyi,
};

/// Stopping rules (pp/stability.hpp, core/invariants.hpp).
enum class ScenarioOracle : std::uint8_t {
  kStablePattern,  // the family's exact count pattern
  kSilence,        // no effective pair left (weak family goes silent)
  kQuiescence,     // heuristic: outputs unchanged for `window` interactions
};

/// Execution modes (header comment).
enum class ScenarioMode : std::uint8_t {
  kSimulate,
  kVerify,
  kMarkov,
  kConformance,
};

/// Stable serialization name of a protocol family.
[[nodiscard]] const char* to_string(ScenarioFamily family) noexcept;
/// Stable serialization name of a topology.
[[nodiscard]] const char* to_string(ScenarioTopology topology) noexcept;
/// Stable serialization name of an oracle kind.
[[nodiscard]] const char* to_string(ScenarioOracle oracle) noexcept;
/// Stable serialization name of an execution mode.
[[nodiscard]] const char* to_string(ScenarioMode mode) noexcept;
/// Stable serialization name of an engine ("auto", "agent", ...).
[[nodiscard]] const char* engine_name(pp::Engine engine) noexcept;
/// Inverse of to_string(ScenarioFamily); nullopt on unknown names.
[[nodiscard]] std::optional<ScenarioFamily> family_from_name(
    std::string_view name) noexcept;
/// Inverse of to_string(ScenarioTopology); nullopt on unknown names.
[[nodiscard]] std::optional<ScenarioTopology> topology_from_name(
    std::string_view name) noexcept;
/// Inverse of to_string(ScenarioOracle); nullopt on unknown names.
[[nodiscard]] std::optional<ScenarioOracle> oracle_from_name(
    std::string_view name) noexcept;
/// Inverse of to_string(ScenarioMode); nullopt on unknown names.
[[nodiscard]] std::optional<ScenarioMode> mode_from_name(
    std::string_view name) noexcept;
/// Inverse of engine_name; nullopt on unknown names.
[[nodiscard]] std::optional<pp::Engine> engine_from_name(
    std::string_view name) noexcept;

/// One declarative scenario.  Default-constructed, it is a valid simulate
/// spec (k-partition, k = 3, n = 12, complete graph, uniform fairness).
struct ScenarioSpec {
  ScenarioFamily family = ScenarioFamily::kKPartition;
  /// Number of groups (>= 2).  kGraphBipartition fixes k = 2.
  pp::GroupId k = 3;
  /// Population size.
  std::uint32_t n = 12;
  ScenarioTopology topology = ScenarioTopology::kComplete;
  /// Edge probability of kErdosRenyi (ignored by the other topologies).
  double er_p = 0.5;
  pp::FairnessSpec fairness{};
  ScenarioOracle oracle = ScenarioOracle::kStablePattern;
  /// Effective-interaction lull of kQuiescence (ignored otherwise).
  std::uint64_t quiescence_window = 1ULL << 18;
  pp::Engine engine = pp::Engine::kAuto;
  ScenarioMode mode = ScenarioMode::kSimulate;
  std::uint32_t trials = 8;
  /// Master seed of the simulate/conformance trial streams; the exact
  /// modes (verify, markov) are seed-independent and ignore it.
  std::uint64_t seed = 1;
  /// Per-trial interaction budget.
  std::uint64_t budget = 10'000'000ULL;
  /// Declarative fault schedule (pp/faults.hpp grammar).  Parsed and
  /// validated; the campaign layer cannot yet schedule churn, so the
  /// server fails fast on non-empty schedules (docs/ppkd.md).
  std::vector<pp::FaultEvent> faults;
};

/// Canonical serialization: fixed member order, every field present,
/// normalized values.  serialize(parse(serialize(s))) == serialize(s).
[[nodiscard]] std::string serialize_scenario(const ScenarioSpec& spec);

/// Validates a spec the parser (or a caller) produced: empty string when
/// every executor precondition holds, else a one-line diagnostic naming
/// the offending field.  parse_scenario already calls this.
[[nodiscard]] std::string validate_scenario(const ScenarioSpec& spec);

/// Parses and validates one scenario document (or the value under
/// `scenario` in a submit request).  nullopt and a one-line reason in
/// `error` on malformed or invalid input.
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario(
    std::string_view text, std::string* error = nullptr);

/// Parses a scenario from an already-parsed JSON value (the daemon embeds
/// specs inside request envelopes).
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario_value(
    const io::JsonValue& value, std::string* error = nullptr);

/// FNV-1a 64 over the canonical serialization with the seed masked to 0:
/// specs that differ only in seed share a hash, which is exactly the
/// cache-key split -- results are cached by (scenario_hash, seed).
[[nodiscard]] std::uint64_t scenario_hash(const ScenarioSpec& spec);

/// scenario_hash as 16 lowercase hex digits (cache file names, frames).
[[nodiscard]] std::string scenario_hash_hex(const ScenarioSpec& spec);

/// The equivalent conformance case, making every scenario a fuzz case.
/// nullopt (reason in `why` when non-null) for scenarios the harness
/// cannot represent: non-complete topology, non-uniform fairness, or a
/// fault schedule (conformance cases carry their own topology rows).
[[nodiscard]] std::optional<verify::ConformanceCase> scenario_to_conformance(
    const ScenarioSpec& spec, std::string* why = nullptr);

/// The inverse: a replayable scenario from a conformance case, making
/// every fuzz case a server request.  nullopt for cases with no scenario
/// form (the randomized candidate family, table mutations).
[[nodiscard]] std::optional<ScenarioSpec> scenario_from_conformance(
    const verify::ConformanceCase& c);

/// Everything needed to execute a validated spec: the protocol objects
/// (owned), the oracle factory, and the campaign configuration.  Keep the
/// runtime alive for as long as anything runs on it -- the factory and
/// options capture the owned objects by reference.
class ScenarioRuntime {
 public:
  /// Precondition: validate_scenario(spec).empty().
  explicit ScenarioRuntime(const ScenarioSpec& spec);

  /// The validated spec this runtime was built from.
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  /// The family's protocol object (owned by this runtime).
  [[nodiscard]] const pp::Protocol& protocol() const noexcept {
    return *protocol_;
  }
  /// The compiled transition table (owned by this runtime).
  [[nodiscard]] const pp::TransitionTable& table() const noexcept {
    return *table_;
  }

  /// Fresh stopping oracle per trial (bound to this runtime's objects).
  [[nodiscard]] pp::OracleFactory oracle_factory() const;

  /// The deterministic interaction topology of exact modes (verify on
  /// graph-bipartition).  Precondition: topology is not kErdosRenyi.
  [[nodiscard]] pp::InteractionGraph build_topology() const;

  /// Campaign configuration for mode kSimulate: trials, seed, budget,
  /// engine, fairness, topology factory + tag all filled from the spec.
  /// Checkpointing, cancellation and streaming stay with the caller.
  [[nodiscard]] core::CampaignOptions campaign_options() const;

 private:
  ScenarioSpec spec_;
  std::unique_ptr<pp::Protocol> protocol_;
  std::unique_ptr<pp::TransitionTable> table_;
};

}  // namespace ppk::serve
