// Decision procedure for protocol correctness under global fairness.
//
// Theory (why bottom SCCs are the right object):  Let InfSet be the set of
// configurations occurring infinitely often in a globally fair execution.
// Global fairness makes InfSet closed under the step relation, and any two
// of its members are mutually reachable (the execution itself provides the
// paths), so InfSet is exactly one bottom SCC of the reachable configuration
// graph.  Conversely, every bottom SCC supports a globally fair execution
// that round-robins through all of its configurations.  Hence:
//
//   P solves a stabilization problem from initial configuration C0 under
//   global fairness  <=>  every bottom SCC reachable from C0 is "good".
//
// For the uniform k-partition problem, "good" means (Section 2.2 of the
// paper): (i) no transition enabled anywhere in the SCC changes either
// participant's output group -- so each agent's group membership is fixed
// forever, which is the per-agent stability condition expressed at count
// level -- and (ii) the group sizes differ pairwise by at most one.
//
// The same skeleton verifies any eventually-output-stable property: pass a
// predicate over the (constant) output of the bottom SCC.

#pragma once

#include <functional>
#include <string>

#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "verify/config_graph.hpp"

namespace ppk::verify {

struct Verdict {
  bool solves = false;
  bool exploration_complete = true;
  std::size_t reachable_configs = 0;
  std::size_t num_sccs = 0;
  std::size_t bottom_sccs = 0;
  /// Empty when solves; otherwise a description of the failing bottom SCC
  /// with a witness configuration.
  std::string failure;
};

/// Predicate judging the stabilized output of a bottom SCC: receives one
/// configuration of the SCC (outputs are constant across it once
/// preservation holds) and its group-size vector.
using OutputPredicate = std::function<bool(
    const pp::Counts& config, const std::vector<std::uint32_t>& group_sizes)>;

/// Generic check: every bottom SCC is output-preserving and its stabilized
/// output satisfies `good_output`.
Verdict verify_stabilization(const pp::Protocol& protocol,
                             const pp::TransitionTable& table,
                             const pp::Counts& initial,
                             const OutputPredicate& good_output,
                             ConfigGraph::Options options = {});

/// The paper's Theorem 1 statement for one (n, k): starting from n agents in
/// the designated initial state, every globally fair execution stabilizes to
/// a uniform k-partition.
Verdict verify_uniform_partition(const pp::Protocol& protocol,
                                 const pp::TransitionTable& table,
                                 std::uint32_t n,
                                 ConfigGraph::Options options = {});

/// Same property from an arbitrary initial configuration -- used to probe
/// the designated-initial-states assumption (the protocol is not
/// self-stabilizing, so this fails for adversarial starts).
Verdict verify_uniform_partition_from(const pp::Protocol& protocol,
                                      const pp::TransitionTable& table,
                                      const pp::Counts& initial,
                                      ConfigGraph::Options options = {});

/// Runs `check` on every reachable configuration (for exhaustive invariant
/// verification, e.g. the paper's Lemma 1).  Returns the number of
/// configurations visited; `check` should gtest-assert internally or record
/// failures.
std::size_t for_each_reachable(const pp::TransitionTable& table,
                               const pp::Counts& initial,
                               const std::function<void(const pp::Counts&)>& check,
                               ConfigGraph::Options options = {});

}  // namespace ppk::verify
