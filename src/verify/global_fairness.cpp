#include "verify/global_fairness.hpp"

#include <sstream>

#include "pp/population.hpp"
#include "util/assert.hpp"

namespace ppk::verify {

namespace {

std::vector<std::uint32_t> group_sizes_of(const pp::Protocol& protocol,
                                          const pp::Counts& config) {
  std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
  for (pp::StateId s = 0; s < config.size(); ++s) {
    if (config[s] > 0) sizes[protocol.group(s)] += config[s];
  }
  return sizes;
}

std::string describe_config(const pp::Protocol& protocol,
                            const pp::Counts& config) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (pp::StateId s = 0; s < config.size(); ++s) {
    if (config[s] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << protocol.state_name(s) << ':' << config[s];
  }
  out << '}';
  return out.str();
}

}  // namespace

Verdict verify_stabilization(const pp::Protocol& protocol,
                             const pp::TransitionTable& table,
                             const pp::Counts& initial,
                             const OutputPredicate& good_output,
                             ConfigGraph::Options options) {
  ConfigGraph graph(table, initial, options);
  Verdict verdict;
  verdict.reachable_configs = graph.num_configs();
  verdict.exploration_complete = graph.complete();
  if (!graph.complete()) {
    verdict.failure = "exploration exceeded max_configs; verdict unknown";
    return verdict;
  }
  verdict.num_sccs = graph.num_sccs();

  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    if (!graph.is_bottom_scc(scc)) continue;
    ++verdict.bottom_sccs;

    const auto members = graph.members_of_scc(scc);
    PPK_ASSERT(!members.empty());

    // (i) Output preservation: every transition enabled anywhere in the SCC
    // must keep both participants' groups.  (All such transitions stay in
    // the SCC because it is bottom.)
    for (std::uint32_t c : members) {
      for (const Edge& e : graph.edges(c)) {
        const pp::Transition& t = table.apply(e.p, e.q);
        if (protocol.group(e.p) != protocol.group(t.initiator) ||
            protocol.group(e.q) != protocol.group(t.responder)) {
          std::ostringstream out;
          out << "bottom SCC is not output-stable: in configuration "
              << describe_config(protocol, graph.config(c)) << " rule ("
              << protocol.state_name(e.p) << ',' << protocol.state_name(e.q)
              << ")->(" << protocol.state_name(t.initiator) << ','
              << protocol.state_name(t.responder)
              << ") changes a participant's group";
          verdict.failure = out.str();
          return verdict;
        }
      }
    }

    // (ii) The stabilized output satisfies the problem's predicate.  Check
    // every member: group sizes are constant across an output-preserving
    // SCC, so this is belt-and-braces at negligible cost.
    for (std::uint32_t c : members) {
      const auto sizes = group_sizes_of(protocol, graph.config(c));
      if (!good_output(graph.config(c), sizes)) {
        std::ostringstream out;
        out << "bottom SCC stabilizes to a bad output: configuration "
            << describe_config(protocol, graph.config(c)) << ", group sizes (";
        for (std::size_t g = 0; g < sizes.size(); ++g) {
          if (g > 0) out << ',';
          out << sizes[g];
        }
        out << ')';
        verdict.failure = out.str();
        return verdict;
      }
    }
  }

  verdict.solves = true;
  return verdict;
}

Verdict verify_uniform_partition(const pp::Protocol& protocol,
                                 const pp::TransitionTable& table,
                                 std::uint32_t n,
                                 ConfigGraph::Options options) {
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  return verify_uniform_partition_from(protocol, table, initial, options);
}

Verdict verify_uniform_partition_from(const pp::Protocol& protocol,
                                      const pp::TransitionTable& table,
                                      const pp::Counts& initial,
                                      ConfigGraph::Options options) {
  return verify_stabilization(
      protocol, table, initial,
      [](const pp::Counts&, const std::vector<std::uint32_t>& sizes) {
        return pp::is_uniform_partition(sizes);
      },
      options);
}

std::size_t for_each_reachable(
    const pp::TransitionTable& table, const pp::Counts& initial,
    const std::function<void(const pp::Counts&)>& check,
    ConfigGraph::Options options) {
  ConfigGraph graph(table, initial, options);
  PPK_EXPECTS(graph.complete());
  for (std::size_t c = 0; c < graph.num_configs(); ++c) {
    check(graph.config(c));
  }
  return graph.num_configs();
}

}  // namespace ppk::verify
