#include "verify/markov.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ppk::verify {

namespace {

// Largest linear system we are willing to eliminate densely.  O(size^3)
// work: 3000 unknowns ~ a few seconds, which matches the small-(n, k)
// regime this module is documented for.
constexpr std::size_t kMaxDenseSystem = 3000;

/// Solves A x = b in place by Gaussian elimination with partial pivoting.
std::vector<double> solve_dense(std::vector<std::vector<double>>& a,
                                std::vector<double>& b) {
  const std::size_t m = b.size();
  for (std::size_t col = 0; col < m; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    PPK_ASSERT(std::abs(a[pivot][col]) > 1e-12);
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate below.
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  // Back-substitute.
  std::vector<double> x(m, 0.0);
  for (std::size_t row = m; row-- > 0;) {
    double acc = b[row];
    for (std::size_t j = row + 1; j < m; ++j) acc -= a[row][j] * x[j];
    x[row] = acc / a[row][row];
  }
  return x;
}

}  // namespace

MarkovAnalysis::MarkovAnalysis(const pp::TransitionTable& table,
                               const pp::Counts& initial,
                               ExploreOptions options)
    : graph_(table, initial, options), n_(0) {
  PPK_EXPECTS(graph_.complete());
  for (auto c : initial) n_ += c;
  PPK_EXPECTS(n_ >= 2);
}

double MarkovAnalysis::pair_probability(const pp::Counts& config,
                                        pp::StateId p, pp::StateId q) const {
  const double cp = static_cast<double>(config[p]);
  const double cq = static_cast<double>(config[q]) - (p == q ? 1.0 : 0.0);
  return cp * cq /
         (static_cast<double>(n_) * static_cast<double>(n_ - 1));
}

std::optional<double> MarkovAnalysis::expected_hitting_time(
    const ConfigPredicate& target) const {
  const std::size_t num_configs = graph_.num_configs();

  std::vector<char> is_target(num_configs, 0);
  for (std::size_t c = 0; c < num_configs; ++c) {
    is_target[c] = target(graph_.config(c)) ? 1 : 0;
  }
  if (is_target[0]) return 0.0;  // config 0 is the initial configuration

  // The target is hit with probability 1 iff every bottom SCC contains a
  // target configuration (fair executions are absorbed into bottom SCCs
  // and then visit all of their configurations).
  std::vector<char> scc_has_target(graph_.num_sccs(), 0);
  for (std::size_t c = 0; c < num_configs; ++c) {
    if (is_target[c]) scc_has_target[graph_.scc_of()[c]] = 1;
  }
  for (std::uint32_t scc = 0; scc < graph_.num_sccs(); ++scc) {
    if (graph_.is_bottom_scc(scc) && !scc_has_target[scc]) {
      return std::nullopt;  // positive probability of never hitting
    }
  }

  // Unknowns: non-target configurations.
  std::vector<std::uint32_t> unknown_index(num_configs, UINT32_MAX);
  std::vector<std::uint32_t> unknown_configs;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    if (!is_target[c]) {
      unknown_index[c] = static_cast<std::uint32_t>(unknown_configs.size());
      unknown_configs.push_back(c);
    }
  }
  const std::size_t m = unknown_configs.size();
  PPK_EXPECTS(m <= kMaxDenseSystem);
  if (m == 0) return 0.0;

  // (I - Q) E = 1, where Q is the sub-stochastic transition matrix
  // restricted to non-target configurations.  Null interactions and
  // effective transitions that reproduce the same configuration both land
  // on the diagonal.
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  std::vector<double> b(m, 1.0);
  for (std::size_t row = 0; row < m; ++row) {
    const std::uint32_t c = unknown_configs[row];
    const pp::Counts& config = graph_.config(c);
    a[row][row] = 1.0;
    double effective_prob = 0.0;
    for (const Edge& e : graph_.edges(c)) {
      const double prob = pair_probability(config, e.p, e.q);
      effective_prob += prob;
      if (is_target[e.target]) continue;  // E = 0 there
      a[row][unknown_index[e.target]] -= prob;
    }
    // Self-loop mass from null interactions.
    const double self_prob = 1.0 - effective_prob;
    PPK_ASSERT(self_prob > -1e-9);
    a[row][row] -= std::max(0.0, self_prob);
  }
  const std::vector<double> expectation = solve_dense(a, b);
  return expectation[unknown_index[0]];
}

std::vector<MarkovAnalysis::Absorption>
MarkovAnalysis::absorption_probabilities() const {
  const std::size_t num_configs = graph_.num_configs();

  // Transient = not in a bottom SCC.
  std::vector<std::uint32_t> unknown_index(num_configs, UINT32_MAX);
  std::vector<std::uint32_t> unknown_configs;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    if (!graph_.is_bottom_scc(graph_.scc_of()[c])) {
      unknown_index[c] = static_cast<std::uint32_t>(unknown_configs.size());
      unknown_configs.push_back(c);
    }
  }
  const std::size_t m = unknown_configs.size();
  PPK_EXPECTS(m <= kMaxDenseSystem);

  // Representative config per bottom SCC.
  std::vector<std::uint32_t> representative(graph_.num_sccs(), UINT32_MAX);
  std::vector<std::uint32_t> bottoms;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    const std::uint32_t scc = graph_.scc_of()[c];
    if (graph_.is_bottom_scc(scc) && representative[scc] == UINT32_MAX) {
      representative[scc] = c;
      bottoms.push_back(scc);
    }
  }

  std::vector<Absorption> result;
  const std::uint32_t initial_scc = graph_.scc_of()[0];
  for (std::uint32_t scc : bottoms) {
    if (m == 0 || graph_.is_bottom_scc(initial_scc)) {
      // Initial configuration already absorbed.
      result.push_back(Absorption{scc, representative[scc],
                                  scc == initial_scc ? 1.0 : 0.0});
      continue;
    }
    // Solve (I - Q) x = r, where r[c] = P(one step from c into this SCC).
    std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
    std::vector<double> b(m, 0.0);
    for (std::size_t row = 0; row < m; ++row) {
      const std::uint32_t c = unknown_configs[row];
      const pp::Counts& config = graph_.config(c);
      a[row][row] = 1.0;
      double effective_prob = 0.0;
      for (const Edge& e : graph_.edges(c)) {
        const double prob = pair_probability(config, e.p, e.q);
        effective_prob += prob;
        if (unknown_index[e.target] != UINT32_MAX) {
          a[row][unknown_index[e.target]] -= prob;
        } else if (graph_.scc_of()[e.target] == scc) {
          b[row] += prob;
        }
      }
      const double self_prob = 1.0 - effective_prob;
      PPK_ASSERT(self_prob > -1e-9);
      a[row][row] -= std::max(0.0, self_prob);
    }
    const std::vector<double> x = solve_dense(a, b);
    result.push_back(Absorption{scc, representative[scc],
                                x[unknown_index[0]]});
  }
  return result;
}

}  // namespace ppk::verify
