#include "verify/markov.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "pp/symmetry.hpp"
#include "util/assert.hpp"

namespace ppk::verify {

namespace {

// Largest linear system we are willing to eliminate densely.  O(size^3)
// work: 3000 unknowns ~ a few seconds, which matches the small-(n, k)
// regime the dense back end is documented for.  Exceeding it throws (the
// lumped back end has no such cap).
constexpr std::size_t kMaxDenseSystem = 3000;

/// Solves A x = b in place by Gaussian elimination with partial pivoting.
/// Returns nullopt if a pivot is negligible *relative to the matrix scale*
/// (the system is numerically singular) instead of dividing by noise or
/// aborting: near-absorbing chains produce legitimately tiny entries, and
/// only the relative test distinguishes "ill-conditioned but solvable"
/// from "rank-deficient".
std::optional<std::vector<double>> solve_dense(
    std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const std::size_t m = b.size();
  double scale = 0.0;
  for (const auto& row : a) {
    for (const double v : row) scale = std::max(scale, std::abs(v));
  }
  if (scale == 0.0) scale = 1.0;
  for (std::size_t col = 0; col < m; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) <= 1e-12 * scale) return std::nullopt;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate below.
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  // Back-substitute.
  std::vector<double> x(m, 0.0);
  for (std::size_t row = m; row-- > 0;) {
    double acc = b[row];
    for (std::size_t j = row + 1; j < m; ++j) acc -= a[row][j] * x[j];
    x[row] = acc / a[row][row];
  }
  return x;
}

[[noreturn]] void throw_dense_cap(std::size_t unknowns) {
  throw std::runtime_error(
      "markov: dense linear system has " + std::to_string(unknowns) +
      " unknowns, exceeding the dense cap of " +
      std::to_string(kMaxDenseSystem) +
      "; declare a protocol symmetry to route through the lumped solver");
}

[[noreturn]] void throw_singular() {
  throw std::runtime_error(
      "markov: dense elimination hit a numerically singular pivot");
}

/// Exact integer out-rate row of a raw configuration: per-target
/// numerators over n*(n-1), accumulated in integers so the assembled
/// matrix entries are each a single rounding away from the rational truth
/// (the old per-edge double accumulation drifted on near-absorbing chains
/// and then had to clamp a negative self-loop mass).
struct DenseRow {
  std::map<std::uint32_t, std::uint64_t> rates;  // target config -> numerator
  std::uint64_t self = 0;  // nulls + transitions reproducing the config
};

DenseRow dense_row(const ConfigGraph& graph, std::uint32_t c,
                   std::uint64_t denom) {
  DenseRow row;
  const pp::Counts& config = graph.config(c);
  std::uint64_t effective = 0;
  for (const Edge& e : graph.edges(c)) {
    const std::uint64_t numerator =
        std::uint64_t{config[e.p]} *
        (config[e.q] - (e.p == e.q ? 1u : 0u));
    effective += numerator;
    if (e.target == c) {
      row.self += numerator;
    } else {
      row.rates[e.target] += numerator;
    }
  }
  PPK_ASSERT(effective <= denom);
  row.self += denom - effective;  // null-interaction mass
  return row;
}

}  // namespace

std::optional<MarkovAnalysis> MarkovAnalysis::try_create(
    const pp::TransitionTable& table, const pp::Counts& initial,
    MarkovOptions options, std::string* why) {
  const auto fail = [&](std::string reason) -> std::optional<MarkovAnalysis> {
    if (why != nullptr) *why = std::move(reason);
    return std::nullopt;
  };

  if (initial.size() != table.num_states()) {
    return fail("markov: initial configuration has " +
                std::to_string(initial.size()) + " state counts, table has " +
                std::to_string(table.num_states()));
  }
  MarkovAnalysis out;
  for (const std::uint32_t c : initial) out.n_ += c;
  if (out.n_ < 2) return fail("markov: population size must be >= 2");

  const bool want_lumped =
      options.method == MarkovMethod::kLumped ||
      (options.method == MarkovMethod::kAuto && options.symmetry.has_value());
  std::string lumped_why;
  if (want_lumped) {
    const pp::SymmetrySpec spec = options.symmetry.has_value()
                                      ? *options.symmetry
                                      : pp::trivial_symmetry(table.num_states());
    auto lumped = LumpedMarkovAnalysis::try_build(table, spec, initial,
                                                  options.lumped, &lumped_why);
    if (lumped.has_value()) {
      out.lumped_ = std::move(lumped);
      out.method_ = MarkovMethod::kLumped;
      return out;
    }
    if (options.method == MarkovMethod::kLumped) return fail(lumped_why);
  }

  ConfigGraph graph(table, initial, options.explore);
  if (!graph.complete()) {
    std::string reason =
        "markov: configuration-space exploration exceeded max_configs (" +
        std::to_string(options.explore.max_configs) + ")";
    if (!lumped_why.empty()) reason += "; lumped fallback: " + lumped_why;
    return fail(std::move(reason));
  }
  out.graph_ = std::move(graph);
  out.method_ = MarkovMethod::kDense;
  return out;
}

MarkovAnalysis::MarkovAnalysis(const pp::TransitionTable& table,
                               const pp::Counts& initial,
                               MarkovOptions options) {
  std::string why;
  auto built = try_create(table, initial, std::move(options), &why);
  if (!built.has_value()) throw std::runtime_error(why);
  *this = std::move(*built);
}

std::uint64_t MarkovAnalysis::reachable_configs() const noexcept {
  return method_ == MarkovMethod::kLumped
             ? lumped_->raw_config_count()
             : static_cast<std::uint64_t>(graph_->num_configs());
}

const ConfigGraph& MarkovAnalysis::graph() const {
  PPK_EXPECTS(graph_.has_value());
  return *graph_;
}

const LumpedMarkovAnalysis& MarkovAnalysis::lumped() const {
  PPK_EXPECTS(lumped_.has_value());
  return *lumped_;
}

std::optional<double> MarkovAnalysis::expected_hitting_time(
    const ConfigPredicate& target) const {
  if (method_ == MarkovMethod::kLumped) {
    return lumped_->expected_hitting_time(target);
  }

  const ConfigGraph& graph = *graph_;
  const std::size_t num_configs = graph.num_configs();
  const std::uint64_t denom = n_ * (n_ - 1);

  std::vector<char> is_target(num_configs, 0);
  for (std::size_t c = 0; c < num_configs; ++c) {
    is_target[c] = target(graph.config(c)) ? 1 : 0;
  }
  if (is_target[0]) return 0.0;  // config 0 is the initial configuration

  // The target is hit with probability 1 iff every bottom SCC contains a
  // target configuration (fair executions are absorbed into bottom SCCs
  // and then visit all of their configurations).
  std::vector<char> scc_has_target(graph.num_sccs(), 0);
  for (std::size_t c = 0; c < num_configs; ++c) {
    if (is_target[c]) scc_has_target[graph.scc_of()[c]] = 1;
  }
  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    if (graph.is_bottom_scc(scc) && !scc_has_target[scc]) {
      return std::nullopt;  // positive probability of never hitting
    }
  }

  // Unknowns: non-target configurations.
  std::vector<std::uint32_t> unknown_index(num_configs, UINT32_MAX);
  std::vector<std::uint32_t> unknown_configs;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    if (!is_target[c]) {
      unknown_index[c] = static_cast<std::uint32_t>(unknown_configs.size());
      unknown_configs.push_back(c);
    }
  }
  const std::size_t m = unknown_configs.size();
  if (m > kMaxDenseSystem) throw_dense_cap(m);
  if (m == 0) return 0.0;

  // (I - Q) E = 1, where Q is the sub-stochastic transition matrix
  // restricted to non-target configurations.  Rows are assembled from
  // exact integer numerators over n*(n-1).
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  std::vector<double> b(m, 1.0);
  const auto d = static_cast<double>(denom);
  for (std::size_t row = 0; row < m; ++row) {
    const DenseRow rates = dense_row(graph, unknown_configs[row], denom);
    a[row][row] = static_cast<double>(denom - rates.self) / d;
    for (const auto& [target_config, numerator] : rates.rates) {
      if (is_target[target_config]) continue;  // E = 0 there
      a[row][unknown_index[target_config]] -=
          static_cast<double>(numerator) / d;
    }
  }
  const auto expectation = solve_dense(a, b);
  if (!expectation.has_value()) throw_singular();
  return (*expectation)[unknown_index[0]];
}

std::vector<MarkovAnalysis::Absorption>
MarkovAnalysis::absorption_probabilities() const {
  if (method_ == MarkovMethod::kLumped) {
    std::vector<Absorption> result;
    for (auto& a : lumped_->absorption_probabilities()) {
      result.push_back(
          Absorption{a.scc, std::move(a.representative), a.probability});
    }
    return result;
  }

  const ConfigGraph& graph = *graph_;
  const std::size_t num_configs = graph.num_configs();
  const std::uint64_t denom = n_ * (n_ - 1);

  // Transient = not in a bottom SCC.
  std::vector<std::uint32_t> unknown_index(num_configs, UINT32_MAX);
  std::vector<std::uint32_t> unknown_configs;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    if (!graph.is_bottom_scc(graph.scc_of()[c])) {
      unknown_index[c] = static_cast<std::uint32_t>(unknown_configs.size());
      unknown_configs.push_back(c);
    }
  }
  const std::size_t m = unknown_configs.size();
  if (m > kMaxDenseSystem) throw_dense_cap(m);

  // Representative config per bottom SCC.
  std::vector<std::uint32_t> representative(graph.num_sccs(), UINT32_MAX);
  std::vector<std::uint32_t> bottoms;
  for (std::uint32_t c = 0; c < num_configs; ++c) {
    const std::uint32_t scc = graph.scc_of()[c];
    if (graph.is_bottom_scc(scc) && representative[scc] == UINT32_MAX) {
      representative[scc] = c;
      bottoms.push_back(scc);
    }
  }

  std::vector<Absorption> result;
  const std::uint32_t initial_scc = graph.scc_of()[0];
  const auto d = static_cast<double>(denom);
  for (std::uint32_t scc : bottoms) {
    if (m == 0 || graph.is_bottom_scc(initial_scc)) {
      // Initial configuration already absorbed.
      result.push_back(Absorption{scc, graph.config(representative[scc]),
                                  scc == initial_scc ? 1.0 : 0.0});
      continue;
    }
    // Solve (I - Q) x = r, where r[c] = P(one step from c into this SCC).
    std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
    std::vector<double> b(m, 0.0);
    for (std::size_t row = 0; row < m; ++row) {
      const DenseRow rates = dense_row(graph, unknown_configs[row], denom);
      a[row][row] = static_cast<double>(denom - rates.self) / d;
      for (const auto& [target_config, numerator] : rates.rates) {
        if (unknown_index[target_config] != UINT32_MAX) {
          a[row][unknown_index[target_config]] -=
              static_cast<double>(numerator) / d;
        } else if (graph.scc_of()[target_config] == scc) {
          b[row] += static_cast<double>(numerator) / d;
        }
      }
    }
    const auto x = solve_dense(a, b);
    if (!x.has_value()) throw_singular();
    result.push_back(Absorption{scc, graph.config(representative[scc]),
                                (*x)[unknown_index[0]]});
  }
  return result;
}

}  // namespace ppk::verify
