// Symmetry-lumped exact Markov-chain analysis under the uniform-random
// scheduler.
//
// The raw chain of markov.hpp lives on count-vector configurations.  When
// the protocol declares a state-permutation symmetry group (SymmetrySpec,
// machine-checked by pp::check_symmetry), the group's action on count
// vectors commutes with the scheduler, so the orbit partition of the
// configuration space is *strongly lumpable* (Kemeny-Snell): the process
// watched on orbits is itself a Markov chain, and every orbit-invariant
// quantity -- hitting times of symmetric target sets, absorption
// probabilities, the full hitting-time distribution -- is preserved
// exactly.  This module explores only canonical orbit representatives
// (lex-min over group images), accumulates transition rates as exact
// integer numerators over the common denominator n*(n-1), certifies
// lumpability programmatically (an exact per-orbit-pair rate-sum check
// against every group element, not a trust-the-declaration shortcut), and
// solves the resulting linear systems with the residual-certified sparse
// Gauss-Seidel of util/csr.hpp instead of dense elimination.
//
// The win is twofold: the orbit quotient shrinks the state space by up to
// the group order, and the sparse solver removes the few-thousand-unknown
// ceiling of dense elimination -- together they push exact analysis an
// order of magnitude past where markov.hpp's dense path gives up
// (bench/exact_vs_monte_carlo measures the ceilings).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "util/csr.hpp"

namespace ppk::verify {

/// Predicate selecting target (absorbing) configurations.
using ConfigPredicate = std::function<bool(const pp::Counts&)>;

/// Limits and solver configuration for the lumped analysis.
struct LumpedOptions {
  /// Exploration aborts (recoverably: try_build returns nullopt) past this
  /// many orbits.
  std::size_t max_orbits = 5'000'000;
  /// Cap on the expanded symmetry-group order (guards bogus specs; the
  /// groups this repo declares have order <= 4).
  std::size_t max_group_order = 4096;
  /// Run the exact integer rate-sum lumpability certificate per orbit.
  /// Default on; the check is O(group order) per orbit and is the module's
  /// defence against a declared symmetry that is not one.
  bool check_lumpability = true;
  /// Sparse-solver configuration (tolerance, sweep cap, method).
  util::SolveOptions solver = {};
};

/// Exact analysis of the orbit-quotient chain.  Construct via try_build();
/// all failure modes of construction (bad spec, group blow-up, orbit-count
/// blow-up, lumpability violation) are recoverable and reported through the
/// `why` out-parameter rather than aborting the process.
class LumpedMarkovAnalysis {
 public:
  /// Builds the lumped chain reachable from `initial`.  Returns nullopt --
  /// with a one-line reason in `*why` when non-null -- if the spec fails
  /// pp::check_symmetry, the group exceeds max_group_order, exploration
  /// exceeds max_orbits, or the exact rate-sum lumpability check fails.
  [[nodiscard]] static std::optional<LumpedMarkovAnalysis> try_build(
      const pp::TransitionTable& table, const pp::SymmetrySpec& symmetry,
      const pp::Counts& initial, LumpedOptions options = {},
      std::string* why = nullptr);

  /// Number of orbits explored (orbit 0 is the initial configuration's).
  [[nodiscard]] std::size_t num_orbits() const noexcept {
    return reps_.size();
  }

  /// Canonical (lex-min) representative configuration of an orbit.
  [[nodiscard]] const pp::Counts& representative(std::size_t orbit) const {
    return reps_[orbit];
  }

  /// Number of raw configurations in an orbit (1 .. group order).
  [[nodiscard]] std::uint64_t orbit_size(std::size_t orbit) const {
    return sizes_[orbit];
  }

  /// Total raw configurations covered: the sum of orbit sizes.  This is
  /// the number the raw chain would have had to explore and is the basis
  /// for ceiling comparisons against the dense path.
  [[nodiscard]] std::uint64_t raw_config_count() const noexcept {
    return raw_config_count_;
  }

  /// Order of the expanded symmetry group (1 = trivial).
  [[nodiscard]] std::size_t group_order() const noexcept {
    return group_.size();
  }

  /// Population size n (derived from the initial configuration).
  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

  /// Exact expected number of interactions (including nulls) from the
  /// initial configuration until `target` is entered; same contract as
  /// MarkovAnalysis::expected_hitting_time (nullopt when the target is not
  /// reached with probability 1).  The predicate must be constant on each
  /// orbit -- this is verified against every group image and violation
  /// throws std::invalid_argument.  Throws std::runtime_error if the
  /// sparse solve fails to certify convergence.
  [[nodiscard]] std::optional<double> expected_hitting_time(
      const ConfigPredicate& target) const;

  /// Probability of eventual absorption in one bottom SCC of the orbit
  /// graph, keyed by the canonical representative of one of its orbits.
  struct Absorption {
    /// Orbit-graph SCC id (reverse topological order).
    std::uint32_t scc;
    /// Canonical representative configuration of the SCC's first orbit.
    pp::Counts representative;
    /// Probability of ending in this SCC; probabilities sum to 1.
    double probability;
  };

  /// Exact absorption probabilities from the initial configuration; same
  /// contract as MarkovAnalysis::absorption_probabilities.  Throws
  /// std::runtime_error if a sparse solve fails to certify convergence.
  [[nodiscard]] std::vector<Absorption> absorption_probabilities() const;

  /// Exact distribution of the hitting time of `target`: returns F with
  /// F[t] = P(target entered within the first t interactions), for
  /// t = 0..horizon (F[0] is 1 iff the initial configuration is a target).
  /// Computed by stepping the full lumped chain (self-loops included) with
  /// targets made absorbing; the predicate must be orbit-invariant
  /// (std::invalid_argument otherwise).  This is what the
  /// exact-distribution conformance net KS-tests engines against.
  [[nodiscard]] std::vector<double> hitting_time_cdf(
      const ConfigPredicate& target, std::size_t horizon) const;

 private:
  /// Exact out-rates of one orbit: integer numerators over denom_.
  struct OrbitRow {
    /// (target orbit, numerator) sorted by target; may include the orbit
    /// itself (an effective transition to another member of the same
    /// orbit).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> rates;
    /// Null-interaction numerator: denom_ minus the effective total.
    std::uint64_t stay = 0;
  };

  LumpedMarkovAnalysis() = default;

  /// Evaluates `target` on every group image of each representative,
  /// throwing std::invalid_argument on an orbit-inconsistent predicate.
  [[nodiscard]] std::vector<char> target_orbits(
      const ConfigPredicate& target) const;

  /// Total self-loop numerator of an orbit (nulls + within-orbit rates).
  [[nodiscard]] std::uint64_t self_numerator(std::size_t orbit) const;

  void compute_sccs();

  std::uint64_t n_ = 0;
  std::uint64_t denom_ = 0;  // n * (n - 1), the common rate denominator
  std::vector<std::vector<pp::StateId>> group_;
  std::vector<pp::Counts> reps_;
  std::vector<std::uint64_t> sizes_;
  std::vector<OrbitRow> rows_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<char> bottom_;
  std::uint32_t num_sccs_ = 0;
  std::uint64_t raw_config_count_ = 0;
  util::SolveOptions solver_;
};

}  // namespace ppk::verify
