#include "verify/protocol_search.hpp"

#include <sstream>

#include "pp/transition_table.hpp"
#include "util/assert.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::verify {

namespace {

/// A candidate protocol materialized from enumeration indices.
class CandidateProtocol final : public pp::Protocol {
 public:
  CandidateProtocol(pp::StateId num_states, std::vector<pp::Transition> table,
                    pp::StateId initial, std::vector<pp::GroupId> output)
      : num_states_(num_states),
        table_(std::move(table)),
        initial_(initial),
        output_(std::move(output)) {}

  [[nodiscard]] std::string name() const override { return "candidate"; }
  [[nodiscard]] pp::StateId num_states() const override { return num_states_; }
  [[nodiscard]] pp::StateId initial_state() const override { return initial_; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    return table_[static_cast<std::size_t>(p) * num_states_ + q];
  }
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return output_[s];
  }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

 private:
  pp::StateId num_states_;
  std::vector<pp::Transition> table_;
  pp::StateId initial_;
  std::vector<pp::GroupId> output_;
};

std::string describe(const CandidateProtocol& protocol) {
  std::ostringstream out;
  out << "s0=" << protocol.initial_state() << " f=";
  for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
    out << int{protocol.group(s)} + 1;
  }
  out << " delta:";
  for (pp::StateId p = 0; p < protocol.num_states(); ++p) {
    for (pp::StateId q = p; q < protocol.num_states(); ++q) {
      const pp::Transition t = protocol.delta(p, q);
      if (t.initiator == p && t.responder == q) continue;  // null
      out << " (" << int{p} << ',' << int{q} << ")->(" << int{t.initiator}
          << ',' << int{t.responder} << ')';
    }
  }
  return out.str();
}

/// Builds the ordered transition table from the enumeration index:
/// diagonal digits in base S (successor state of (p,p)), off-diagonal
/// digits in base S^2 (ordered outcome of the unordered pair {p, q}),
/// mirrored swap-consistently.
std::vector<pp::Transition> decode_delta(pp::StateId num_states,
                                         std::uint64_t index) {
  const auto s = static_cast<std::uint64_t>(num_states);
  std::vector<pp::Transition> table(s * s);
  for (pp::StateId p = 0; p < num_states; ++p) {
    const auto successor = static_cast<pp::StateId>(index % s);
    index /= s;
    table[static_cast<std::size_t>(p) * num_states + p] =
        pp::Transition{successor, successor};
  }
  for (pp::StateId p = 0; p < num_states; ++p) {
    for (pp::StateId q = static_cast<pp::StateId>(p + 1); q < num_states;
         ++q) {
      const std::uint64_t outcome = index % (s * s);
      index /= s * s;
      const auto a = static_cast<pp::StateId>(outcome / s);
      const auto b = static_cast<pp::StateId>(outcome % s);
      table[static_cast<std::size_t>(p) * num_states + q] =
          pp::Transition{a, b};
      table[static_cast<std::size_t>(q) * num_states + p] =
          pp::Transition{b, a};
    }
  }
  return table;
}

}  // namespace

SearchResult search_symmetric_bipartition(pp::StateId num_states,
                                          const SearchOptions& options) {
  PPK_EXPECTS(num_states >= 2 && num_states <= 3);
  PPK_EXPECTS(!options.population_sizes.empty());

  const auto s = static_cast<std::uint64_t>(num_states);
  std::uint64_t num_deltas = 1;
  for (pp::StateId p = 0; p < num_states; ++p) num_deltas *= s;  // diagonal
  for (std::uint64_t pair = 0; pair < s * (s - 1) / 2; ++pair) {
    num_deltas *= s * s;  // off-diagonal ordered outcomes
  }

  SearchResult result;
  result.killed_by_size.assign(options.population_sizes.size(), 0);

  ExploreOptions explore;
  explore.max_configs = options.max_configs_per_candidate;

  for (std::uint64_t delta_index = 0; delta_index < num_deltas;
       ++delta_index) {
    const std::vector<pp::Transition> delta =
        decode_delta(num_states, delta_index);
    for (pp::StateId initial = 0; initial < num_states; ++initial) {
      // Non-constant output maps onto {0, 1}: skip all-0 and all-1.
      for (std::uint32_t output_bits = 1;
           output_bits + 1 < (1u << num_states); ++output_bits) {
        std::vector<pp::GroupId> output(num_states);
        for (pp::StateId st = 0; st < num_states; ++st) {
          output[st] =
              static_cast<pp::GroupId>((output_bits >> st) & 1u);
        }
        const CandidateProtocol candidate(num_states, delta, initial,
                                          std::move(output));
        ++result.candidates;

        const pp::TransitionTable table(candidate);
        bool solves_all = true;
        for (std::size_t i = 0; i < options.population_sizes.size(); ++i) {
          pp::Counts start(num_states, 0);
          start[initial] = options.population_sizes[i];
          const Verdict verdict = verify_uniform_partition_from(
              candidate, table, start, explore);
          PPK_ASSERT(verdict.exploration_complete);
          if (!verdict.solves) {
            ++result.killed_by_size[i];
            solves_all = false;
            break;
          }
        }
        if (solves_all) {
          ++result.survivors;
          if (result.survivor_descriptions.size() < 16) {
            result.survivor_descriptions.push_back(describe(candidate));
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ppk::verify
