#include "verify/protocol_search.hpp"

#include <sstream>

#include "pp/transition_table.hpp"
#include "util/assert.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::verify {

namespace {

/// Builds the ordered transition table from the enumeration index:
/// diagonal digits in base S (successor state of (p,p)), off-diagonal
/// digits in base S^2 (ordered outcome of the unordered pair {p, q}),
/// mirrored swap-consistently.
std::vector<pp::Transition> decode_delta(pp::StateId num_states,
                                         std::uint64_t index) {
  const auto s = static_cast<std::uint64_t>(num_states);
  std::vector<pp::Transition> table(s * s);
  for (pp::StateId p = 0; p < num_states; ++p) {
    const auto successor = static_cast<pp::StateId>(index % s);
    index /= s;
    table[static_cast<std::size_t>(p) * num_states + p] =
        pp::Transition{successor, successor};
  }
  for (pp::StateId p = 0; p < num_states; ++p) {
    for (pp::StateId q = static_cast<pp::StateId>(p + 1); q < num_states;
         ++q) {
      const std::uint64_t outcome = index % (s * s);
      index /= s * s;
      const auto a = static_cast<pp::StateId>(outcome / s);
      const auto b = static_cast<pp::StateId>(outcome % s);
      table[static_cast<std::size_t>(p) * num_states + q] =
          pp::Transition{a, b};
      table[static_cast<std::size_t>(q) * num_states + p] =
          pp::Transition{b, a};
    }
  }
  return table;
}

}  // namespace

std::uint64_t num_symmetric_deltas(pp::StateId num_states) {
  const auto s = static_cast<std::uint64_t>(num_states);
  std::uint64_t num_deltas = 1;
  for (pp::StateId p = 0; p < num_states; ++p) num_deltas *= s;  // diagonal
  for (std::uint64_t pair = 0; pair < s * (s - 1) / 2; ++pair) {
    num_deltas *= s * s;  // off-diagonal ordered outcomes
  }
  return num_deltas;
}

EnumeratedProtocol::EnumeratedProtocol(const CandidateSpec& spec)
    : spec_(spec), table_(decode_delta(spec.num_states, spec.delta_index)) {
  PPK_EXPECTS(spec.num_states >= 2);
  PPK_EXPECTS(spec.delta_index < num_symmetric_deltas(spec.num_states));
  PPK_EXPECTS(spec.initial < spec.num_states);
  PPK_EXPECTS(spec.output_bits >= 1 &&
              spec.output_bits + 1 < (1u << spec.num_states));
}

std::string EnumeratedProtocol::name() const {
  std::ostringstream out;
  out << "candidate-" << int{spec_.num_states} << 's' << spec_.delta_index;
  return out.str();
}

std::string EnumeratedProtocol::describe() const {
  std::ostringstream out;
  out << "s0=" << spec_.initial << " f=";
  for (pp::StateId s = 0; s < spec_.num_states; ++s) {
    out << int{group(s)} + 1;
  }
  out << " delta:";
  for (pp::StateId p = 0; p < spec_.num_states; ++p) {
    for (pp::StateId q = p; q < spec_.num_states; ++q) {
      const pp::Transition t = delta(p, q);
      if (t.initiator == p && t.responder == q) continue;  // null
      out << " (" << int{p} << ',' << int{q} << ")->(" << int{t.initiator}
          << ',' << int{t.responder} << ')';
    }
  }
  return out.str();
}

SearchResult search_symmetric_bipartition(pp::StateId num_states,
                                          const SearchOptions& options) {
  PPK_EXPECTS(num_states >= 2 && num_states <= 3);
  PPK_EXPECTS(!options.population_sizes.empty());

  const std::uint64_t num_deltas = num_symmetric_deltas(num_states);

  SearchResult result;
  result.killed_by_size.assign(options.population_sizes.size(), 0);

  ExploreOptions explore;
  explore.max_configs = options.max_configs_per_candidate;

  for (std::uint64_t delta_index = 0; delta_index < num_deltas;
       ++delta_index) {
    for (pp::StateId initial = 0; initial < num_states; ++initial) {
      // Non-constant output maps onto {0, 1}: skip all-0 and all-1.
      for (std::uint32_t output_bits = 1;
           output_bits + 1 < (1u << num_states); ++output_bits) {
        const EnumeratedProtocol candidate(
            CandidateSpec{num_states, delta_index, initial, output_bits});
        ++result.candidates;

        const pp::TransitionTable table(candidate);
        bool solves_all = true;
        for (std::size_t i = 0; i < options.population_sizes.size(); ++i) {
          pp::Counts start(num_states, 0);
          start[initial] = options.population_sizes[i];
          const Verdict verdict = verify_uniform_partition_from(
              candidate, table, start, explore);
          PPK_ASSERT(verdict.exploration_complete);
          if (!verdict.solves) {
            ++result.killed_by_size[i];
            solves_all = false;
            break;
          }
        }
        if (solves_all) {
          ++result.survivors;
          if (result.survivor_descriptions.size() < 16) {
            result.survivor_descriptions.push_back(candidate.describe());
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ppk::verify
