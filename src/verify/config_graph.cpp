#include "verify/config_graph.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace ppk::verify {

namespace {

struct CountsHash {
  std::size_t operator()(const pp::Counts& counts) const noexcept {
    // FNV-1a over the raw words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t c : counts) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

ConfigGraph::ConfigGraph(const pp::TransitionTable& table,
                         const pp::Counts& initial, Options options) {
  PPK_EXPECTS(initial.size() == table.num_states());
  explore(table, initial, options);
  if (complete_) compute_sccs();
}

void ConfigGraph::explore(const pp::TransitionTable& table,
                          const pp::Counts& initial, const Options& options) {
  std::unordered_map<pp::Counts, std::uint32_t, CountsHash> index;
  std::deque<std::uint32_t> frontier;

  auto intern = [&](const pp::Counts& config) -> std::uint32_t {
    auto [it, inserted] =
        index.try_emplace(config, static_cast<std::uint32_t>(configs_.size()));
    if (inserted) {
      configs_.push_back(config);
      edges_.emplace_back();
      frontier.push_back(it->second);
    }
    return it->second;
  };

  intern(initial);
  const pp::StateId num_states = table.num_states();

  while (!frontier.empty()) {
    if (configs_.size() > options.max_configs) {
      complete_ = false;
      return;
    }
    const std::uint32_t current = frontier.front();
    frontier.pop_front();

    // Copy: intern() may reallocate configs_ while we iterate.
    const pp::Counts config = configs_[current];
    std::vector<Edge> out;
    for (pp::StateId p = 0; p < num_states; ++p) {
      if (config[p] == 0) continue;
      for (pp::StateId q = 0; q < num_states; ++q) {
        if (config[q] == 0) continue;
        if (p == q && config[p] < 2) continue;
        if (!table.effective(p, q)) continue;
        const pp::Transition& t = table.apply(p, q);
        pp::Counts next = config;
        --next[p];
        --next[q];
        ++next[t.initiator];
        ++next[t.responder];
        out.push_back(Edge{intern(next), p, q});
      }
    }
    edges_[current] = std::move(out);
  }
}

void ConfigGraph::compute_sccs() {
  // Iterative Tarjan.  Component ids come out in reverse topological order:
  // every edge (u -> v) has scc_of[u] >= scc_of[v].
  const std::uint32_t n = static_cast<std::uint32_t>(configs_.size());
  constexpr std::uint32_t kUnvisited = UINT32_MAX;

  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  scc_of_.assign(n, kUnvisited);
  std::uint32_t timer = 0;
  num_sccs_ = 0;

  struct Frame {
    std::uint32_t node;
    std::uint32_t edge_index;
  };
  std::vector<Frame> call_stack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t u = frame.node;
      if (frame.edge_index == 0) {
        disc[u] = low[u] = timer++;
        stack.push_back(u);
        on_stack[u] = 1;
      }
      bool descended = false;
      while (frame.edge_index < edges_[u].size()) {
        const std::uint32_t v = edges_[u][frame.edge_index].target;
        ++frame.edge_index;
        if (disc[v] == kUnvisited) {
          call_stack.push_back(Frame{v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], disc[v]);
      }
      if (descended) continue;
      if (low[u] == disc[u]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_of_[w] = num_sccs_;
          if (w == u) break;
        }
        ++num_sccs_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::uint32_t parent = call_stack.back().node;
        low[parent] = std::min(low[parent], low[u]);
      }
    }
  }

  bottom_.assign(num_sccs_, 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const Edge& e : edges_[u]) {
      if (scc_of_[e.target] != scc_of_[u]) bottom_[scc_of_[u]] = 0;
    }
  }
}

std::vector<std::uint32_t> ConfigGraph::members_of_scc(
    std::uint32_t scc) const {
  std::vector<std::uint32_t> members;
  for (std::uint32_t c = 0; c < configs_.size(); ++c) {
    if (scc_of_[c] == scc) members.push_back(c);
  }
  return members;
}

}  // namespace ppk::verify
