#include "verify/weak_fairness.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace ppk::verify {

namespace {

std::vector<std::uint32_t> group_sizes_of(const pp::Protocol& protocol,
                                          const AgentConfigGraph& graph,
                                          std::uint32_t config) {
  std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
  for (std::uint32_t a = 0; a < graph.num_agents(); ++a) {
    ++sizes[protocol.group(graph.state_of(config, a))];
  }
  return sizes;
}

bool uniform(const std::vector<std::uint32_t>& sizes) {
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  return *hi - *lo <= 1;
}

std::string describe_config(const pp::Protocol& protocol,
                            const AgentConfigGraph& graph,
                            std::uint32_t config) {
  std::ostringstream out;
  out << "(";
  for (std::uint32_t a = 0; a < graph.num_agents(); ++a) {
    if (a > 0) out << ", ";
    out << protocol.state_name(graph.state_of(config, a));
  }
  out << ")";
  return out.str();
}

/// Outputs constant across `members` and uniform?  On failure, fills
/// `failure` with a witness description prefixed by `context`.
bool scc_good(const pp::Protocol& protocol, const AgentConfigGraph& graph,
              const std::vector<std::uint32_t>& members,
              const std::string& context, std::string* failure) {
  const std::uint32_t first = members.front();
  for (const std::uint32_t c : members) {
    for (std::uint32_t a = 0; a < graph.num_agents(); ++a) {
      if (protocol.group(graph.state_of(c, a)) !=
          protocol.group(graph.state_of(first, a))) {
        std::ostringstream out;
        out << context << ": agent " << a << "'s output differs between "
            << describe_config(protocol, graph, first) << " and "
            << describe_config(protocol, graph, c)
            << " -- outputs never stabilize";
        *failure = out.str();
        return false;
      }
    }
  }
  const auto sizes = group_sizes_of(protocol, graph, first);
  if (!uniform(sizes)) {
    std::ostringstream out;
    out << context << ": stabilizes to non-uniform group sizes (";
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      if (g > 0) out << ", ";
      out << sizes[g];
    }
    out << ") in " << describe_config(protocol, graph, first);
    *failure = out.str();
    return false;
  }
  return true;
}

/// Can a weakly fair adversary trap an execution in this SCC?  True iff for
/// every scheduled pair some member admits an orientation whose application
/// stays in the SCC (null interactions stay by definition).
bool weakly_closable(const AgentConfigGraph& graph, std::uint32_t scc,
                     const std::vector<std::uint32_t>& members) {
  for (const auto& [a, b] : graph.pairs()) {
    bool pair_ok = false;
    for (const std::uint32_t c : members) {
      if (graph.scc_of(graph.apply(c, a, b)) == scc ||
          graph.scc_of(graph.apply(c, b, a)) == scc) {
        pair_ok = true;
        break;
      }
    }
    if (!pair_ok) return false;
  }
  return true;
}

Verdict explore_failed(const AgentConfigGraph& graph) {
  Verdict verdict;
  verdict.solves = false;
  verdict.exploration_complete = false;
  verdict.reachable_configs = graph.num_configs();
  verdict.failure = "exploration aborted at max_configs";
  return verdict;
}

}  // namespace

Verdict verify_weak_uniform_partition(const pp::Protocol& protocol,
                                      const pp::TransitionTable& table,
                                      std::uint32_t n,
                                      AgentConfigGraph::Options options) {
  PPK_EXPECTS(options.topology == nullptr);
  AgentConfigGraph graph(protocol, table, n, options);
  if (!graph.complete()) return explore_failed(graph);

  Verdict verdict;
  verdict.solves = true;
  verdict.reachable_configs = graph.num_configs();
  verdict.num_sccs = graph.num_sccs();
  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    const auto members = graph.members_of_scc(scc);
    if (!weakly_closable(graph, scc, members)) continue;
    ++verdict.bottom_sccs;  // = weakly closable SCCs (see header)
    std::ostringstream context;
    context << "weakly closable SCC #" << scc << " (" << members.size()
            << " configs)";
    std::string failure;
    if (!scc_good(protocol, graph, members, context.str(), &failure)) {
      verdict.solves = false;
      if (verdict.failure.empty()) verdict.failure = failure;
    }
  }
  return verdict;
}

Verdict verify_graph_uniform_partition(const pp::Protocol& protocol,
                                       const pp::TransitionTable& table,
                                       const pp::InteractionGraph& topology,
                                       AgentConfigGraph::Options options) {
  options.topology = &topology;
  AgentConfigGraph graph(protocol, table, topology.num_agents(), options);
  if (!graph.complete()) return explore_failed(graph);

  Verdict verdict;
  verdict.solves = true;
  verdict.reachable_configs = graph.num_configs();
  verdict.num_sccs = graph.num_sccs();
  for (std::uint32_t scc = 0; scc < graph.num_sccs(); ++scc) {
    if (!graph.is_bottom_scc(scc)) continue;
    ++verdict.bottom_sccs;
    const auto members = graph.members_of_scc(scc);
    std::ostringstream context;
    context << "bottom SCC #" << scc << " (" << members.size() << " configs)";
    std::string failure;
    if (!scc_good(protocol, graph, members, context.str(), &failure)) {
      verdict.solves = false;
      if (verdict.failure.empty()) verdict.failure = failure;
    }
  }
  return verdict;
}

}  // namespace ppk::verify
