// Exact Markov-chain analysis of a protocol under the uniform-random
// scheduler.
//
// The uniform-random scheduler turns the configuration space into a finite
// Markov chain: from configuration C, the ordered state pair (p, q) is
// drawn with probability c[p] * (c[q] - [p==q]) / (n * (n-1)); null
// interactions are self-loops.  On the reachable graph this module
// computes, by sparse Gaussian elimination in reverse topological order:
//
//  * expected_hitting_time(): the exact expected number of interactions
//    (including nulls) from the initial configuration until a target set
//    is first entered.  With the Lemma 6 stable pattern as the target this
//    is the *analytic* version of the paper's Section 5 measurements, and
//    the test suite checks that the Monte-Carlo estimates converge to it.
//
//  * absorption_probabilities(): the probability of ending in each bottom
//    SCC.  For the paper's protocol every fair execution reaches the
//    stable pattern (probability 1); for the basic strategy this yields
//    the exact wedge probability that the ablation bench estimates
//    empirically.
//
// Cost: O(configs * edges) time in the worst case -- intended for the same
// small (n, k) regime as the verifier.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "verify/config_graph.hpp"

namespace ppk::verify {

/// Predicate selecting target (absorbing) configurations.
using ConfigPredicate = std::function<bool(const pp::Counts&)>;

class MarkovAnalysis {
 public:
  /// Builds the chain on the reachable graph of `table` from `initial`.
  /// The graph must explore completely within `options`.
  MarkovAnalysis(const pp::TransitionTable& table, const pp::Counts& initial,
                 ExploreOptions options = {});

  /// Exact expected number of interactions from the initial configuration
  /// until a configuration satisfying `target` is entered (0 if the
  /// initial configuration already satisfies it).  Returns nullopt if the
  /// target is not reached with probability 1 (some execution can get
  /// absorbed elsewhere).
  [[nodiscard]] std::optional<double> expected_hitting_time(
      const ConfigPredicate& target) const;

  /// Probability, starting from the initial configuration, of eventually
  /// being absorbed in each bottom SCC.  Returned as pairs of
  /// (a representative configuration index of the SCC, probability);
  /// probabilities sum to 1.
  struct Absorption {
    std::uint32_t scc;
    std::uint32_t representative_config;
    double probability;
  };
  [[nodiscard]] std::vector<Absorption> absorption_probabilities() const;

  [[nodiscard]] const ConfigGraph& graph() const noexcept { return graph_; }

  /// Population size n (derived from the initial configuration).
  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

 private:
  /// One-step transition probability of applying rule (p, q) in `config`.
  [[nodiscard]] double pair_probability(const pp::Counts& config,
                                        pp::StateId p, pp::StateId q) const;

  ConfigGraph graph_;
  std::uint64_t n_;
};

}  // namespace ppk::verify
