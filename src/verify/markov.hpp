// Exact Markov-chain analysis of a protocol under the uniform-random
// scheduler.
//
// The uniform-random scheduler turns the configuration space into a finite
// Markov chain: from configuration C, the ordered state pair (p, q) is
// drawn with probability c[p] * (c[q] - [p==q]) / (n * (n-1)); null
// interactions are self-loops.  This module computes, exactly:
//
//  * expected_hitting_time(): the exact expected number of interactions
//    (including nulls) from the initial configuration until a target set
//    is first entered.  With the Lemma 6 stable pattern as the target this
//    is the *analytic* version of the paper's Section 5 measurements, and
//    the test suite checks that the Monte-Carlo estimates converge to it.
//
//  * absorption_probabilities(): the probability of ending in each bottom
//    SCC.  For the paper's protocol every fair execution reaches the
//    stable pattern (probability 1); for the basic strategy this yields
//    the exact wedge probability that the ablation bench estimates
//    empirically.
//
// Two back ends, selected by MarkovOptions::method:
//
//  * kDense -- the raw reachable configuration graph with dense Gaussian
//    elimination; simple, battle-tested, capped at a few thousand
//    unknowns.
//  * kLumped -- the symmetry-lumped quotient chain with the sparse
//    residual-certified solver (verify/lumped_markov.hpp); reaches an
//    order of magnitude further when a SymmetrySpec is supplied.
//  * kAuto (default) -- lumped when a symmetry is declared in the options,
//    dense otherwise; falls back to dense if the lumped build fails.
//
// Every resource limit is a *recoverable* error: construction is by
// try_create() returning nullopt with a reason (the convenience
// constructor throws std::runtime_error instead), and a query whose
// linear system exceeds the dense cap throws rather than aborting the
// process -- a too-large analysis request must never take down a server
// that embeds this module.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "verify/config_graph.hpp"
#include "verify/lumped_markov.hpp"

namespace ppk::verify {

/// Back-end selection for MarkovAnalysis.
enum class MarkovMethod : std::uint8_t {
  kAuto,    // lumped when MarkovOptions::symmetry is set, else dense
  kDense,   // raw configuration chain + dense elimination
  kLumped,  // orbit-quotient chain + sparse solver (requires symmetry)
};

/// Construction options for MarkovAnalysis.
struct MarkovOptions {
  /// Back end (see MarkovMethod).
  MarkovMethod method = MarkovMethod::kAuto;
  /// Exploration limits for the dense back end.
  ExploreOptions explore = {};
  /// The protocol's declared symmetry (pp::Protocol::symmetry()); enables
  /// the lumped back end.  A trivial spec still routes kAuto/kLumped
  /// through the sparse solver -- only an absent one forces dense.
  std::optional<pp::SymmetrySpec> symmetry;
  /// Limits and solver configuration for the lumped back end.
  LumpedOptions lumped = {};
};

class MarkovAnalysis {
 public:
  /// Builds the chain reachable from `initial` under `table`.  Returns
  /// nullopt -- with a one-line reason in `*why` when non-null -- if
  /// exploration exceeds the configured limits or the requested back end
  /// cannot be built.  Never aborts the process.
  [[nodiscard]] static std::optional<MarkovAnalysis> try_create(
      const pp::TransitionTable& table, const pp::Counts& initial,
      MarkovOptions options = {}, std::string* why = nullptr);

  /// Convenience constructor: as try_create(), but throws
  /// std::runtime_error with the reason on failure.
  MarkovAnalysis(const pp::TransitionTable& table, const pp::Counts& initial,
                 MarkovOptions options = {});

  /// Exact expected number of interactions from the initial configuration
  /// until a configuration satisfying `target` is entered (0 if the
  /// initial configuration already satisfies it).  Returns nullopt if the
  /// target is not reached with probability 1 (some execution can get
  /// absorbed elsewhere).  Throws std::runtime_error if the linear system
  /// exceeds the dense back end's cap or a sparse solve fails to certify.
  [[nodiscard]] std::optional<double> expected_hitting_time(
      const ConfigPredicate& target) const;

  /// One bottom SCC of the chain and the probability of being absorbed
  /// into it.
  struct Absorption {
    /// SCC id (reverse topological order, per back end).
    std::uint32_t scc;
    /// A representative configuration of the SCC (the canonical orbit
    /// representative under the lumped back end).
    pp::Counts representative;
    /// Probability of ending in this SCC; probabilities sum to 1.
    double probability;
  };

  /// Probability, starting from the initial configuration, of eventually
  /// being absorbed in each bottom SCC.  Throws std::runtime_error under
  /// the same conditions as expected_hitting_time().
  [[nodiscard]] std::vector<Absorption> absorption_probabilities() const;

  /// The back end actually built (kDense or kLumped, never kAuto).
  [[nodiscard]] MarkovMethod method() const noexcept { return method_; }

  /// Stable name of the built back end: "dense" or "lumped".  Used to tag
  /// cached exact results so answers from different solvers are never
  /// conflated.
  [[nodiscard]] const char* method_name() const noexcept {
    return method_ == MarkovMethod::kLumped ? "lumped" : "dense";
  }

  /// Number of raw reachable configurations covered by the analysis (the
  /// sum of orbit sizes under the lumped back end).
  [[nodiscard]] std::uint64_t reachable_configs() const noexcept;

  /// True iff the dense back end was built (graph() is then available).
  [[nodiscard]] bool has_graph() const noexcept { return graph_.has_value(); }

  /// The raw configuration graph; dense back end only.
  [[nodiscard]] const ConfigGraph& graph() const;

  /// The orbit-quotient analysis; lumped back end only (see has_graph()).
  [[nodiscard]] const LumpedMarkovAnalysis& lumped() const;

  /// Population size n (derived from the initial configuration).
  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

 private:
  MarkovAnalysis() = default;

  std::optional<ConfigGraph> graph_;
  std::optional<LumpedMarkovAnalysis> lumped_;
  MarkovMethod method_ = MarkovMethod::kDense;
  std::uint64_t n_ = 0;
};

}  // namespace ppk::verify
