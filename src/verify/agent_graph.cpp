#include "verify/agent_graph.hpp"

#include <algorithm>
#include <bit>
#include <deque>

#include "util/assert.hpp"

namespace ppk::verify {

AgentConfigGraph::AgentConfigGraph(const pp::Protocol& protocol,
                                   const pp::TransitionTable& table,
                                   std::uint32_t n, Options options)
    : n_(n), table_(&table) {
  PPK_EXPECTS(n >= 2);
  PPK_EXPECTS(table.num_states() == protocol.num_states());
  const auto num_states = static_cast<std::uint32_t>(table.num_states());
  bits_ = std::max(1U, static_cast<std::uint32_t>(
                           std::bit_width(num_states - 1)));
  PPK_EXPECTS(static_cast<std::uint64_t>(n) * bits_ <= 64);
  mask_ = (bits_ == 64) ? ~0ULL : ((1ULL << bits_) - 1);

  if (options.topology != nullptr) {
    PPK_EXPECTS(options.topology->num_agents() == n);
    pairs_ = options.topology->edges();
  } else {
    pairs_.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) pairs_.emplace_back(a, b);
    }
  }

  std::uint64_t initial_key = 0;
  const auto s0 = static_cast<std::uint64_t>(protocol.initial_state());
  for (std::uint32_t a = 0; a < n; ++a) initial_key |= s0 << (a * bits_);

  keys_.push_back(initial_key);
  index_.emplace(initial_key, 0);
  explore(table, options);
  if (complete_) compute_sccs();
}

std::vector<pp::StateId> AgentConfigGraph::config(std::size_t index) const {
  std::vector<pp::StateId> states(n_);
  for (std::uint32_t a = 0; a < n_; ++a) states[a] = state_of(index, a);
  return states;
}

std::uint32_t AgentConfigGraph::apply(std::size_t config, std::uint32_t i,
                                      std::uint32_t j) const {
  PPK_EXPECTS(i < n_ && j < n_ && i != j);
  const pp::StateId p = state_of(config, i);
  const pp::StateId q = state_of(config, j);
  if (!table_->effective(p, q)) return static_cast<std::uint32_t>(config);
  const pp::Transition& t = table_->apply(p, q);
  std::uint64_t key = keys_[config];
  key &= ~(mask_ << (i * bits_));
  key &= ~(mask_ << (j * bits_));
  key |= static_cast<std::uint64_t>(t.initiator) << (i * bits_);
  key |= static_cast<std::uint64_t>(t.responder) << (j * bits_);
  const auto it = index_.find(key);
  PPK_ASSERT(it != index_.end());  // the graph is transition-closed
  return it->second;
}

void AgentConfigGraph::explore(const pp::TransitionTable& table,
                               const Options& options) {
  std::deque<std::uint32_t> frontier;
  frontier.push_back(0);

  auto intern = [&](std::uint64_t key) -> std::uint32_t {
    auto [it, inserted] =
        index_.try_emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (inserted) {
      keys_.push_back(key);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  while (!frontier.empty()) {
    if (keys_.size() > options.max_configs) {
      complete_ = false;
      return;
    }
    const std::uint32_t current = frontier.front();
    frontier.pop_front();
    const std::uint64_t key = keys_[current];

    std::vector<std::uint32_t> out;
    for (const auto& [a, b] : pairs_) {
      const auto pa = static_cast<pp::StateId>((key >> (a * bits_)) & mask_);
      const auto pb = static_cast<pp::StateId>((key >> (b * bits_)) & mask_);
      // Both orientations of the meeting are schedulable.
      for (int orient = 0; orient < 2; ++orient) {
        const std::uint32_t i = orient == 0 ? a : b;
        const std::uint32_t j = orient == 0 ? b : a;
        const pp::StateId p = orient == 0 ? pa : pb;
        const pp::StateId q = orient == 0 ? pb : pa;
        if (!table.effective(p, q)) continue;
        const pp::Transition& t = table.apply(p, q);
        std::uint64_t next = key;
        next &= ~(mask_ << (i * bits_));
        next &= ~(mask_ << (j * bits_));
        next |= static_cast<std::uint64_t>(t.initiator) << (i * bits_);
        next |= static_cast<std::uint64_t>(t.responder) << (j * bits_);
        out.push_back(intern(next));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (succ_.size() <= current) succ_.resize(current + 1);
    succ_[current] = std::move(out);
  }
  succ_.resize(keys_.size());
}

void AgentConfigGraph::compute_sccs() {
  // Iterative Tarjan, identical in shape to ConfigGraph::compute_sccs();
  // component ids come out in reverse topological order.
  const auto n = static_cast<std::uint32_t>(keys_.size());
  constexpr std::uint32_t kUnvisited = UINT32_MAX;

  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  scc_of_.assign(n, kUnvisited);
  std::uint32_t timer = 0;
  num_sccs_ = 0;

  struct Frame {
    std::uint32_t node;
    std::uint32_t edge_index;
  };
  std::vector<Frame> call_stack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t u = frame.node;
      if (frame.edge_index == 0) {
        disc[u] = low[u] = timer++;
        stack.push_back(u);
        on_stack[u] = 1;
      }
      bool descended = false;
      while (frame.edge_index < succ_[u].size()) {
        const std::uint32_t v = succ_[u][frame.edge_index];
        ++frame.edge_index;
        if (disc[v] == kUnvisited) {
          call_stack.push_back(Frame{v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], disc[v]);
      }
      if (descended) continue;
      if (low[u] == disc[u]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_of_[w] = num_sccs_;
          if (w == u) break;
        }
        ++num_sccs_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::uint32_t parent = call_stack.back().node;
        low[parent] = std::min(low[parent], low[u]);
      }
    }
  }

  bottom_.assign(num_sccs_, 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : succ_[u]) {
      if (scc_of_[v] != scc_of_[u]) bottom_[scc_of_[u]] = 0;
    }
  }
}

std::vector<std::uint32_t> AgentConfigGraph::members_of_scc(
    std::uint32_t scc) const {
  std::vector<std::uint32_t> members;
  for (std::uint32_t c = 0; c < keys_.size(); ++c) {
    if (scc_of_[c] == scc) members.push_back(c);
  }
  return members;
}

}  // namespace ppk::verify
