// Exhaustive exploration of the reachable configuration space.
//
// A configuration of n anonymous agents is fully described by its state
// count vector, so the reachable space is explored over count vectors (a
// massive reduction versus per-agent states: configurations are multisets).
// The graph's edges carry the ordered state pair whose rule produced them,
// which the global-fairness verifier needs to decide output preservation.
//
// Intended for small (n, k): the space is at most C(n+|Q|-1, |Q|-1) but the
// *reachable* subset is far smaller; exploration aborts cleanly at
// max_configs rather than exhausting memory.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pp/population.hpp"
#include "pp/transition_table.hpp"

namespace ppk::verify {

struct Edge {
  std::uint32_t target;  // index of the successor configuration
  pp::StateId p, q;      // the ordered state pair whose rule was applied
};

/// Exploration limits.
struct ExploreOptions {
  std::size_t max_configs = 5'000'000;
};

class ConfigGraph {
 public:
  using Options = ExploreOptions;

  /// Explores everything reachable from `initial` under `table`.
  ConfigGraph(const pp::TransitionTable& table, const pp::Counts& initial,
              Options options = {});

  /// False iff exploration hit max_configs (results are then partial and
  /// must not be used for verification).
  [[nodiscard]] bool complete() const noexcept { return complete_; }

  [[nodiscard]] std::size_t num_configs() const noexcept {
    return configs_.size();
  }

  [[nodiscard]] const pp::Counts& config(std::size_t index) const {
    return configs_[index];
  }

  /// Outgoing effective-transition edges of a configuration.
  [[nodiscard]] const std::vector<Edge>& edges(std::size_t index) const {
    return edges_[index];
  }

  /// Strongly connected components in *reverse topological order* (Tarjan:
  /// component 0 has no successors outside itself... more precisely, every
  /// edge goes from a higher-or-equal component id to a lower-or-equal one).
  /// scc_of()[c] is the component id of configuration c.
  [[nodiscard]] const std::vector<std::uint32_t>& scc_of() const noexcept {
    return scc_of_;
  }

  [[nodiscard]] std::uint32_t num_sccs() const noexcept { return num_sccs_; }

  /// True iff no edge leaves the component (a "bottom" / terminal SCC --
  /// exactly the sets in which globally fair executions are eventually
  /// trapped).
  [[nodiscard]] bool is_bottom_scc(std::uint32_t scc) const {
    return bottom_[scc];
  }

  /// Configuration indices belonging to a component.
  [[nodiscard]] std::vector<std::uint32_t> members_of_scc(
      std::uint32_t scc) const;

 private:
  void explore(const pp::TransitionTable& table, const pp::Counts& initial,
               const Options& options);
  void compute_sccs();

  std::vector<pp::Counts> configs_;
  std::vector<std::vector<Edge>> edges_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<char> bottom_;
  std::uint32_t num_sccs_ = 0;
  bool complete_ = true;
};

}  // namespace ppk::verify
