// Cross-engine conformance harness: differential fuzzing of every
// simulator in the tree against the repo's reference models, with
// auto-shrinking, replayable repro files.
//
// The repo carries many realizations of the *same* stochastic process (the
// uniform-random pairwise scheduler): the agent array, the count vector,
// the jump and batch aggregators, the restricted-scheduler simulators
// specialized to unrestricted parameters (GraphSimulator on the complete
// graph, AdversarialSimulator with epsilon = 1, ChurnSimulator with an
// empty fault schedule).  Any future sharding or parallelism PR adds more.
// Sparse topologies are covered too: the per-draw GraphSimulator and the
// live-edge GraphJumpSimulator each run on the ring, star, path and a
// seeded G(n, 0.5), and every live-edge row is pinned against its per-draw
// counterpart by a dedicated distribution net (the two engines realize the
// same conditional law on the same graph; neither matches the complete
// -graph agent reference, so sparse rows are excluded from that net).
// Each engine is pinned by five independent nets:
//
//  1. kTrajectory     same seed => bit-identical oracle-visible trajectory
//                     (rerun determinism), and the oracle-tracked counts
//                     must agree with the engine's own final configuration
//                     (oracle-callback discipline).
//  2. kChunkedResume  a run split into budget chunks via run()+resume()
//                     must equal the unchunked run bit-for-bit (pairwise
//                     engines; the aggregated engines legitimately consume
//                     their RNG streams differently under truncation and
//                     are covered in distribution instead).  This is the
//                     oracle-reset bug class fixed in PR 1.
//  3. kSnapshotResume a run interrupted at a deterministic cut, its
//                     snapshot round-tripped through the text serialization
//                     (io/snapshot_io.hpp) and restored into a *freshly
//                     constructed* engine, must resume to a bit-identical
//                     trajectory, final configuration and totals versus an
//                     uninterrupted run driven with the same grant
//                     sequence.  Applies to every engine (the aggregated
//                     engines re-draw at grant boundaries, but both sides
//                     see identical boundaries); this is the crash-safe
//                     -campaign contract of core/campaign.hpp.
//  4. kDistribution   engines that only agree in law are compared by
//                     two-sample Kolmogorov-Smirnov tests on stabilization
//                     times and effective-interaction counts, with a
//                     confirm-on-fail rerun so a fuzz session's many tests
//                     do not trip over the significance level.
//  5. kLemma1 / kGroundTruth
//                     protocol-semantics references that do not depend on
//                     any engine: the paper's Lemma 1 counting invariant is
//                     checked at every oracle callback, and for small n the
//                     exact reachable set + the config_graph/global_fairness
//                     model checker ground-truth every configuration an
//                     engine visits.
//
// On divergence the harness shrinks the failing case deterministically
// (minimize n, then k, then the interaction-schedule prefix) and emits a
// replayable repro; `tests/corpus/` holds the committed corpus replayed by
// the regular test suite, and `conformance_fuzz` (tests/) is the time-boxed
// driver CI runs nightly.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "verify/protocol_search.hpp"

namespace ppk::verify {

// ---------------------------------------------------------------------------
// Case description

/// Engines the harness can drive.  kModel is not an engine: it tags
/// divergences where the *reference model* itself refutes the expected
/// property (e.g. the Theorem 1 verdict fails on a mutated table).
enum class ConformanceEngine : std::uint8_t {
  kAgent,
  kCount,
  kJump,
  kBatchAuto,
  kBatchForced,
  kThinForced,
  // The sharded SoA batch engine (pp/batch_sharded_simulator.hpp), run with
  // pool dispatch forced (grain 0, 2 workers) so conformance exercises the
  // parallel path: sharding must be invisible to every net.  Like the batch
  // rows it is excluded from the pairwise chunked-resume net (budget
  // truncation legitimately moves RNG consumption) and covered by the
  // distribution net instead.
  kBatchSharded,
  kGraphComplete,
  kAdversarialEps1,
  kChurnNoFaults,
  // Sparse-topology rows.  graph-X is the per-draw GraphSimulator on
  // topology X; live-edge-X is GraphJumpSimulator on the same graph
  // (G(n, 0.5) rows share one seeded graph derived from the case seed, so
  // a pair sees the identical topology).  live-edge-complete runs against
  // the agent reference like graph-complete does; the sparse rows are
  // checked pairwise against their per-draw counterpart instead.
  kGraphRing,
  kGraphStar,
  kGraphPath,
  kGraphEr,
  kLiveEdgeComplete,
  kLiveEdgeRing,
  kLiveEdgeStar,
  kLiveEdgePath,
  kLiveEdgeEr,
  kModel,
};

/// Stable identifier used in logs and repro files ("agent", "graph-complete",
/// ...).
[[nodiscard]] const char* conformance_engine_name(ConformanceEngine engine);

/// Inverse of conformance_engine_name; nullopt for unknown names.
[[nodiscard]] std::optional<ConformanceEngine> conformance_engine_from_name(
    const std::string& name);

/// Every drivable engine (excludes kModel).
[[nodiscard]] const std::vector<ConformanceEngine>& all_conformance_engines();

/// Which protocol a conformance case runs.
struct ConformanceProtocol {
  /// kKPartition is the paper's 3k-2-state protocol; kWeakKPartition the
  /// 3k+1-state weak-fairness variant (core/weak_kpartition.hpp);
  /// kGraphBipartition the 5-state arbitrary-graph bipartition
  /// (core/graph_bipartition.hpp); kCandidate a randomized symmetric
  /// protocol from the protocol_search enumeration space.
  enum class Family : std::uint8_t {
    kKPartition,
    kCandidate,
    kWeakKPartition,
    kGraphBipartition,
  };
  Family family = Family::kKPartition;
  /// kKPartition / kWeakKPartition: the number of groups (k >= 2).
  pp::GroupId k = 3;
  /// kCandidate: a randomized symmetric protocol from the protocol_search
  /// enumeration space.
  CandidateSpec candidate{};
};

/// A single flipped ordered transition, applied swap-consistently to the
/// table the *engines* run while every reference model keeps the true
/// semantics -- the mutation-testing hook that proves the harness can see.
struct TableMutation {
  pp::StateId p = 0;
  pp::StateId q = 0;
  pp::Transition out{0, 0};
};

/// One fuzz point: a protocol, a population size, and a master seed from
/// which every engine/trial stream is derived (so the whole check is a pure
/// function of this struct -- rerunning it reproduces the verdict bit for
/// bit, which is what makes shrinking and repro files possible).
struct ConformanceCase {
  ConformanceProtocol protocol{};
  std::optional<TableMutation> mutation{};
  std::uint32_t n = 12;
  std::uint64_t seed = 1;
  /// Per-engine sample size of the KS distribution net.
  int trials = 40;
  /// Per-trial interaction budget (drawn pairs).
  std::uint64_t budget = 250'000;
  /// Engines to drive; empty = all_conformance_engines().
  std::vector<ConformanceEngine> engines{};
};

// ---------------------------------------------------------------------------
// Verdicts

enum class ConformanceCheck : std::uint8_t {
  kTrajectory,
  kChunkedResume,
  kSnapshotResume,
  kDistribution,
  kLemma1,
  kGroundTruth,
  /// One-sample KS of each engine's empirical stabilization-time sample
  /// against the *exact* first-passage law of the true protocol's chain,
  /// computed by the symmetry-lumped Markov analysis
  /// (verify/lumped_markov.hpp).  Unlike kDistribution -- which can only
  /// say two engines agree with each other -- this net has an absolute
  /// reference, so a bias shared by every engine still fails it.
  kExactDistribution,
};

/// Stable identifier used in logs and repro files ("trajectory", ...).
[[nodiscard]] const char* conformance_check_name(ConformanceCheck check);

/// Inverse of conformance_check_name; nullopt for unknown names.
[[nodiscard]] std::optional<ConformanceCheck> conformance_check_from_name(
    const std::string& name);

/// One observed divergence.
struct Divergence {
  ConformanceCheck check = ConformanceCheck::kTrajectory;
  ConformanceEngine engine = ConformanceEngine::kModel;
  /// For trajectory-local failures: the 1-based oracle-callback ordinal at
  /// which the violation was first observed (0 when not applicable).
  std::uint64_t event = 0;
  std::string detail;
};

struct ConformanceReport {
  std::vector<Divergence> divergences;
  /// Engines x checks actually executed (for coverage accounting).
  int checks_run = 0;

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
  /// One line per divergence, for logs and assertion messages.
  [[nodiscard]] std::string summary() const;
};

struct ConformanceOptions {
  /// Reachable-set + model-checker ground truth is built only when the
  /// population is at most this large (the exact check is exponential).
  std::uint32_t ground_truth_max_n = 10;
  /// Exploration cap; incomplete explorations disable ground truth for the
  /// case instead of failing it.
  std::size_t ground_truth_max_configs = 200'000;
  /// Stop collecting divergences after this many.
  std::size_t max_divergences = 8;
  /// The exact-distribution net runs only when the population is at most
  /// this large (the lumped chain must be enumerable and the CDF stepped).
  std::uint32_t exact_max_n = 10;
  /// Orbit cap for the lumped analysis backing the exact-distribution net;
  /// a case whose symmetry-lumped configuration space exceeds it skips the
  /// net (like an incomplete ground-truth exploration) instead of failing.
  std::size_t exact_max_orbits = 10'000;
  /// Stabilization-time samples (and the exact CDF they are tested
  /// against) are censored at min(budget, exact_max_horizon): the censored
  /// laws still match exactly, and the cap bounds the CDF stepping work.
  std::uint64_t exact_max_horizon = 20'000;
};

/// Runs every conformance net on one case.  Deterministic: the verdict is a
/// pure function of (c, options).
[[nodiscard]] ConformanceReport check_conformance(
    const ConformanceCase& c, const ConformanceOptions& options = {});

// ---------------------------------------------------------------------------
// Shrinking and repro files

/// A shrunken, replayable failure.
struct ConformanceRepro {
  ConformanceCase shrunk{};
  ConformanceCheck check = ConformanceCheck::kTrajectory;
  ConformanceEngine engine = ConformanceEngine::kModel;
  /// For trajectory-local checks (kLemma1 / kGroundTruth): a minimized
  /// explicit interaction schedule (initiator, responder agent indices)
  /// that reproduces the violation through the reference interpreter.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> schedule{};
  std::string detail;
  /// Corpus semantics: true = replay must pass (a fixed bug's regression
  /// guard), false = replay must still diverge (a detector-sensitivity pin,
  /// e.g. the committed mutation repro).
  bool expect_pass = false;
};

/// Deterministically shrinks a failing case: minimize n, then k, then -- for
/// trajectory-local checks -- derive and minimize an explicit interaction
/// schedule.  Reruns the checks at every step; the result still fails.
[[nodiscard]] ConformanceRepro shrink_failure(
    const ConformanceCase& failing, const Divergence& divergence,
    const ConformanceOptions& options = {});

/// Repro file text (ppk-conformance-repro-v1, line oriented, `#` comments).
[[nodiscard]] std::string serialize_repro(const ConformanceRepro& repro);

/// Parses serialize_repro output; on failure returns nullopt and, when
/// `error` is non-null, a one-line reason.
[[nodiscard]] std::optional<ConformanceRepro> parse_repro(
    const std::string& text, std::string* error = nullptr);

/// Replays a repro: schedule repros run the reference interpreter over the
/// recorded pairs; case repros rerun check_conformance restricted to the
/// recorded engine (plus the agent reference).  The caller compares
/// report.ok() against repro.expect_pass.
[[nodiscard]] ConformanceReport replay_repro(
    const ConformanceRepro& repro, const ConformanceOptions& options = {});

// ---------------------------------------------------------------------------
// Fuzzing

struct FuzzOptions {
  std::uint64_t seed = 0;
  /// Number of random cases (ignored while `deadline_seconds` > 0 still has
  /// budget left; whichever limit is hit first stops the session).
  int num_cases = 16;
  /// Wall-clock bound in seconds; 0 = no time bound.
  double deadline_seconds = 0.0;
  /// Case-size knobs.
  std::uint32_t max_n = 36;
  pp::GroupId max_k = 6;
  int trials = 30;
  std::uint64_t kpartition_budget = 250'000;
  std::uint64_t candidate_budget = 30'000;
  /// Fraction of cases drawn from the 3-state symmetric candidate space
  /// (the protocol_search generators) instead of the named families
  /// (k-partition, weak k-partition, graph bipartition -- which share
  /// kpartition_budget).
  double candidate_fraction = 0.35;
  /// Optional cooperative-stop latch, polled between cases: when the
  /// pointee becomes true the in-flight case finishes normally and the
  /// session returns with whatever it has (conformance_fuzz wires SIGINT
  /// here so Ctrl-C flushes partial results instead of dying mid-case).
  const std::atomic<bool>* stop = nullptr;
  ConformanceOptions check{};
};

struct FuzzResult {
  int cases_run = 0;
  /// First divergence found, already shrunk; nullopt = session clean.
  std::optional<ConformanceRepro> failure{};
};

/// Runs random conformance cases until the case or time budget is spent or
/// a divergence is found (which is then shrunk).  Deterministic for a fixed
/// seed when deadline_seconds = 0.
[[nodiscard]] FuzzResult fuzz_conformance(const FuzzOptions& options);

// ---------------------------------------------------------------------------
// Mutation helper

/// Wraps a protocol with one flipped ordered transition (mirrored
/// swap-consistently), leaving states, groups and everything else intact.
/// The base protocol must outlive the wrapper.
class MutantProtocol final : public pp::Protocol {
 public:
  MutantProtocol(const pp::Protocol& base, const TableMutation& mutation)
      : base_(&base), mutation_(mutation) {}

  [[nodiscard]] std::string name() const override {
    return base_->name() + "+mutant";
  }
  [[nodiscard]] pp::StateId num_states() const override {
    return base_->num_states();
  }
  [[nodiscard]] pp::StateId initial_state() const override {
    return base_->initial_state();
  }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    if (p == mutation_.p && q == mutation_.q) return mutation_.out;
    if (p == mutation_.q && q == mutation_.p) {
      return pp::Transition{mutation_.out.responder, mutation_.out.initiator};
    }
    return base_->delta(p, q);
  }
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return base_->group(s);
  }
  [[nodiscard]] pp::GroupId num_groups() const override {
    return base_->num_groups();
  }
  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return base_->state_name(s);
  }

 private:
  const pp::Protocol* base_;
  TableMutation mutation_;
};

}  // namespace ppk::verify
