// Exhaustive exploration of the PER-AGENT configuration space.
//
// The count-vector graph (config_graph.hpp) is the right object under
// global fairness on the complete graph, where agents are interchangeable.
// Two verification questions break that symmetry:
//
//  - WEAK fairness quantifies over agent *pairs* ("every pair interacts
//    infinitely often"), so the adversary's obligations are per-pair and
//    configurations with equal counts but different agent placements are
//    not equivalent.
//  - Arbitrary interaction graphs make agents distinguishable by position:
//    a state on the hub of a star is not a state on a leaf.
//
// This graph therefore keys configurations by the full state *tuple*
// (one state per agent), restricted to an optional topology.  The space is
// |Q|^n, so this is strictly a small-(n, k) ground-truth tool -- the same
// role config_graph plays for the complete-graph/global case, one
// symmetry-reduction rung down.  Tuples are packed into a single 64-bit
// key (n * ceil(log2 |Q|) <= 64, checked), which keeps exploration at
// hash-map speed.
//
// SCCs come out of the same iterative Tarjan as config_graph, in reverse
// topological order; bottom SCCs decide global fairness on the given
// topology (verify/weak_fairness.hpp), and *maximal* SCCs plus a per-pair
// closure test decide weak fairness.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pp/interaction_graph.hpp"
#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"

namespace ppk::verify {

/// Exploration limits and topology for AgentConfigGraph.  (Namespace scope
/// like ExploreOptions: a nested struct with default member initializers
/// cannot be a `= {}` default argument inside its own enclosing class.)
struct AgentExploreOptions {
  /// Abort threshold on distinct reachable state tuples.
  std::size_t max_configs = 2'000'000;
  /// Interaction topology; nullptr means the complete graph on n agents.
  /// Both orientations of every edge are schedulable.
  const pp::InteractionGraph* topology = nullptr;
};

/// The reachable per-agent configuration graph of one (protocol, n,
/// topology) instance, with its SCC decomposition.
class AgentConfigGraph {
 public:
  /// Exploration limits and topology (see AgentExploreOptions).
  using Options = AgentExploreOptions;

  /// Explores everything reachable from the all-`initial_state` tuple of
  /// `n` agents.  Requires n * ceil(log2 num_states) <= 64.
  AgentConfigGraph(const pp::Protocol& protocol,
                   const pp::TransitionTable& table, std::uint32_t n,
                   Options options = {});

  /// False iff exploration hit max_configs (results are then partial and
  /// must not be used for verification).
  [[nodiscard]] bool complete() const noexcept { return complete_; }

  /// Number of agents n the graph was explored for.
  [[nodiscard]] std::uint32_t num_agents() const noexcept { return n_; }
  /// Number of distinct reachable state tuples.
  [[nodiscard]] std::size_t num_configs() const noexcept {
    return keys_.size();
  }

  /// The unordered agent pairs the scheduler may fire (topology edges, or
  /// all n(n-1)/2 pairs on the complete graph).
  [[nodiscard]] const std::vector<pp::InteractionGraph::Edge>& pairs()
      const noexcept {
    return pairs_;
  }

  /// State of one agent in one configuration.
  [[nodiscard]] pp::StateId state_of(std::size_t config,
                                     std::uint32_t agent) const {
    return static_cast<pp::StateId>((keys_[config] >> (agent * bits_)) &
                                    mask_);
  }

  /// The full state tuple of a configuration (unpacked copy).
  [[nodiscard]] std::vector<pp::StateId> config(std::size_t index) const;

  /// Index of the configuration reached from `config` by firing agent `i`
  /// as initiator against responder `j`.  The graph is transition-closed,
  /// so the successor always exists; a null interaction returns `config`.
  [[nodiscard]] std::uint32_t apply(std::size_t config, std::uint32_t i,
                                    std::uint32_t j) const;

  /// Component ids in reverse topological order (every edge goes from a
  /// higher-or-equal id to a lower-or-equal one).
  [[nodiscard]] std::uint32_t scc_of(std::size_t config) const {
    return scc_of_[config];
  }
  /// Number of strongly connected components of the reachable graph.
  [[nodiscard]] std::uint32_t num_sccs() const noexcept { return num_sccs_; }

  /// True iff no edge leaves the component -- where globally fair
  /// executions on this topology are eventually trapped.
  [[nodiscard]] bool is_bottom_scc(std::uint32_t scc) const {
    return bottom_[scc];
  }

  /// Configuration indices belonging to a component.
  [[nodiscard]] std::vector<std::uint32_t> members_of_scc(
      std::uint32_t scc) const;

 private:
  void explore(const pp::TransitionTable& table, const Options& options);
  void compute_sccs();

  std::uint32_t n_;
  std::uint32_t bits_;      // bits per agent in the packed key
  std::uint64_t mask_;      // (1 << bits_) - 1
  const pp::TransitionTable* table_;
  std::vector<pp::InteractionGraph::Edge> pairs_;
  std::vector<std::uint64_t> keys_;  // packed tuple per config index
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::vector<std::vector<std::uint32_t>> succ_;  // deduped successors
  std::vector<std::uint32_t> scc_of_;
  std::vector<char> bottom_;
  std::uint32_t num_sccs_ = 0;
  bool complete_ = true;
};

}  // namespace ppk::verify
