#include "verify/conformance.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "io/snapshot_io.hpp"
#include "pp/adversarial.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/faults.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/stability.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "verify/config_graph.hpp"
#include "verify/global_fairness.hpp"
#include "verify/lumped_markov.hpp"

namespace ppk::verify {

namespace {

// ---------------------------------------------------------------------------
// Names

struct EngineName {
  ConformanceEngine engine;
  const char* name;
};

constexpr EngineName kEngineNames[] = {
    {ConformanceEngine::kAgent, "agent"},
    {ConformanceEngine::kCount, "count"},
    {ConformanceEngine::kJump, "jump"},
    {ConformanceEngine::kBatchAuto, "batch-auto"},
    {ConformanceEngine::kBatchForced, "batch-forced"},
    {ConformanceEngine::kThinForced, "thin-forced"},
    {ConformanceEngine::kBatchSharded, "batch-sharded"},
    {ConformanceEngine::kGraphComplete, "graph-complete"},
    {ConformanceEngine::kAdversarialEps1, "adversarial-eps1"},
    {ConformanceEngine::kChurnNoFaults, "churn-nofaults"},
    {ConformanceEngine::kGraphRing, "graph-ring"},
    {ConformanceEngine::kGraphStar, "graph-star"},
    {ConformanceEngine::kGraphPath, "graph-path"},
    {ConformanceEngine::kGraphEr, "graph-er"},
    {ConformanceEngine::kLiveEdgeComplete, "live-edge-complete"},
    {ConformanceEngine::kLiveEdgeRing, "live-edge-ring"},
    {ConformanceEngine::kLiveEdgeStar, "live-edge-star"},
    {ConformanceEngine::kLiveEdgePath, "live-edge-path"},
    {ConformanceEngine::kLiveEdgeEr, "live-edge-er"},
    {ConformanceEngine::kModel, "model"},
};

struct CheckName {
  ConformanceCheck check;
  const char* name;
};

constexpr CheckName kCheckNames[] = {
    {ConformanceCheck::kTrajectory, "trajectory"},
    {ConformanceCheck::kChunkedResume, "chunked-resume"},
    {ConformanceCheck::kSnapshotResume, "snapshot-resume"},
    {ConformanceCheck::kDistribution, "distribution"},
    {ConformanceCheck::kLemma1, "lemma1"},
    {ConformanceCheck::kGroundTruth, "ground-truth"},
    {ConformanceCheck::kExactDistribution, "exact-distribution"},
};

// ---------------------------------------------------------------------------
// Reference models

/// Engine-independent semantics the trajectories are checked against.
struct Reference {
  /// Non-null for the k-partition family: enables the Lemma 1 invariant.
  const core::KPartitionProtocol* kpartition = nullptr;
  /// Non-null when the exact reachable set was built (small n): every
  /// oracle-visible configuration must be a member.
  const std::set<pp::Counts>* reachable = nullptr;
};

struct Violation {
  ConformanceCheck check;
  std::uint64_t event;
  std::string detail;
};

std::string counts_to_string(const pp::Counts& counts) {
  std::ostringstream out;
  out << '[';
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (s > 0) out << ' ';
    out << counts[s];
  }
  out << ']';
  return out.str();
}

/// Forwarding oracle that fingerprints the oracle-visible trajectory and
/// checks the reference models at every callback.  A violation forces
/// stable() so the run stops at the first bad event (which localizes the
/// failure for shrinking); the caller reads violation() afterwards.
class CheckingOracle final : public pp::StabilityOracle {
 public:
  CheckingOracle(pp::StabilityOracle& inner, const Reference& ref)
      : inner_(&inner), ref_(ref) {}

  void reset(const pp::Counts& counts) override {
    counts_ = counts;
    inner_->reset(counts);
    check_counts();
  }

  void on_transition(pp::StateId p, pp::StateId q, pp::StateId p_next,
                     pp::StateId q_next) override {
    --counts_[p];
    --counts_[q];
    ++counts_[p_next];
    ++counts_[q_next];
    ++events_;
    mix(1);
    mix(p);
    mix(q);
    mix(p_next);
    mix(q_next);
    inner_->on_transition(p, q, p_next, q_next);
    check_counts();
  }

  void on_batch(const pp::Counts& counts, std::uint64_t interactions,
                std::uint64_t effective) override {
    counts_ = counts;
    ++events_;
    mix(2);
    mix(interactions);
    mix(effective);
    for (auto c : counts) mix(c);
    inner_->on_batch(counts, interactions, effective);
    check_counts();
  }

  void on_external_change(const pp::Counts& counts) override {
    counts_ = counts;
    inner_->on_external_change(counts);
  }

  [[nodiscard]] bool stable() const override {
    return violation_.has_value() || inner_->stable();
  }

  /// FNV-1a accumulator over every oracle-visible event.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return hash_; }

  /// 1-based ordinal of the last callback.
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  /// Oracle-tracked configuration (must equal the engine's own).
  [[nodiscard]] const pp::Counts& tracked_counts() const noexcept {
    return counts_;
  }

  [[nodiscard]] const std::optional<Violation>& violation() const noexcept {
    return violation_;
  }

  /// Continues a fingerprint stream across a snapshot/restore boundary:
  /// seeds the accumulator, event ordinal and tracked configuration from
  /// the pre-snapshot oracle so the resumed half's fingerprint is directly
  /// comparable against an uninterrupted run's.
  void adopt(std::uint64_t hash, std::uint64_t events, pp::Counts counts) {
    hash_ = hash;
    events_ = events;
    counts_ = std::move(counts);
  }

 private:
  void mix(std::uint64_t v) noexcept {
    hash_ ^= v + 0x9e3779b97f4a7c15ULL;
    hash_ *= 0x100000001b3ULL;
  }

  void check_counts() {
    if (violation_.has_value()) return;
    if (ref_.kpartition != nullptr &&
        !core::lemma1_holds(*ref_.kpartition, counts_)) {
      violation_ = Violation{ConformanceCheck::kLemma1, events_,
                             "Lemma 1 counting invariant violated at " +
                                 counts_to_string(counts_)};
      return;
    }
    if (ref_.reachable != nullptr && !ref_.reachable->contains(counts_)) {
      violation_ = Violation{
          ConformanceCheck::kGroundTruth, events_,
          "configuration " + counts_to_string(counts_) +
              " is not reachable under the reference transition function"};
    }
  }

  pp::StabilityOracle* inner_;
  Reference ref_;
  pp::Counts counts_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t events_ = 0;
  std::optional<Violation> violation_;
};

// ---------------------------------------------------------------------------
// Materialized case context

struct CaseContext {
  std::unique_ptr<core::KPartitionProtocol> kpartition;  // family-dependent
  std::unique_ptr<core::WeakKPartitionProtocol> weak;
  std::unique_ptr<core::GraphBipartitionProtocol> graphbip;
  std::unique_ptr<EnumeratedProtocol> candidate;
  const pp::Protocol* true_protocol = nullptr;
  std::unique_ptr<MutantProtocol> mutant;       // set iff case has mutation
  const pp::Protocol* engine_protocol = nullptr;  // what engines execute
  std::unique_ptr<pp::TransitionTable> engine_table;
  pp::Counts initial;
  std::uint32_t n = 0;
  /// Seed for the G(n, p) topology rows, derived from the case seed only --
  /// never from an engine or trial stream -- so a live-edge row and its
  /// per-draw counterpart run the *same* sampled graph.
  std::uint64_t topology_seed = 0;
};

CaseContext materialize(const ConformanceCase& c) {
  CaseContext ctx;
  switch (c.protocol.family) {
    case ConformanceProtocol::Family::kKPartition:
      ctx.kpartition =
          std::make_unique<core::KPartitionProtocol>(c.protocol.k);
      ctx.true_protocol = ctx.kpartition.get();
      break;
    case ConformanceProtocol::Family::kWeakKPartition:
      ctx.weak = std::make_unique<core::WeakKPartitionProtocol>(c.protocol.k);
      ctx.true_protocol = ctx.weak.get();
      break;
    case ConformanceProtocol::Family::kGraphBipartition:
      ctx.graphbip = std::make_unique<core::GraphBipartitionProtocol>();
      ctx.true_protocol = ctx.graphbip.get();
      break;
    case ConformanceProtocol::Family::kCandidate:
      ctx.candidate =
          std::make_unique<EnumeratedProtocol>(c.protocol.candidate);
      ctx.true_protocol = ctx.candidate.get();
      break;
  }
  ctx.engine_protocol = ctx.true_protocol;
  if (c.mutation.has_value()) {
    PPK_EXPECTS(c.mutation->p < ctx.true_protocol->num_states() &&
                c.mutation->q < ctx.true_protocol->num_states() &&
                c.mutation->out.initiator < ctx.true_protocol->num_states() &&
                c.mutation->out.responder < ctx.true_protocol->num_states());
    ctx.mutant =
        std::make_unique<MutantProtocol>(*ctx.true_protocol, *c.mutation);
    ctx.engine_protocol = ctx.mutant.get();
  }
  ctx.engine_table = std::make_unique<pp::TransitionTable>(*ctx.engine_protocol);
  ctx.n = c.n;
  ctx.initial.assign(ctx.true_protocol->num_states(), 0);
  ctx.initial[ctx.true_protocol->initial_state()] = c.n;
  ctx.topology_seed = derive_stream_seed(c.seed, 0x746f'706fULL);  // "topo"
  return ctx;
}

/// True for the sparse-topology rows -- the engines whose scheduler is
/// restricted to a non-complete graph and therefore realizes a *different*
/// stochastic process than the agent reference.
bool is_sparse_topology(ConformanceEngine engine) {
  switch (engine) {
    case ConformanceEngine::kGraphRing:
    case ConformanceEngine::kGraphStar:
    case ConformanceEngine::kGraphPath:
    case ConformanceEngine::kGraphEr:
    case ConformanceEngine::kLiveEdgeRing:
    case ConformanceEngine::kLiveEdgeStar:
    case ConformanceEngine::kLiveEdgePath:
    case ConformanceEngine::kLiveEdgeEr:
      return true;
    default:
      return false;
  }
}

/// The per-draw engine a sparse live-edge row is distribution-pinned
/// against (same topology, same conditional law).
std::optional<ConformanceEngine> per_draw_counterpart(
    ConformanceEngine engine) {
  switch (engine) {
    case ConformanceEngine::kLiveEdgeRing:
      return ConformanceEngine::kGraphRing;
    case ConformanceEngine::kLiveEdgeStar:
      return ConformanceEngine::kGraphStar;
    case ConformanceEngine::kLiveEdgePath:
      return ConformanceEngine::kGraphPath;
    case ConformanceEngine::kLiveEdgeEr:
      return ConformanceEngine::kGraphEr;
    default:
      return std::nullopt;
  }
}

pp::InteractionGraph topology_for(ConformanceEngine engine,
                                  const CaseContext& ctx) {
  switch (engine) {
    case ConformanceEngine::kGraphRing:
    case ConformanceEngine::kLiveEdgeRing:
      return pp::InteractionGraph::ring(ctx.n);
    case ConformanceEngine::kGraphStar:
    case ConformanceEngine::kLiveEdgeStar:
      return pp::InteractionGraph::star(ctx.n);
    case ConformanceEngine::kGraphPath:
    case ConformanceEngine::kLiveEdgePath:
      return pp::InteractionGraph::path(ctx.n);
    case ConformanceEngine::kGraphEr:
    case ConformanceEngine::kLiveEdgeEr:
      // Dense enough that every n >= 3 connects within the resample bound.
      return pp::InteractionGraph::erdos_renyi(ctx.n, 0.5, ctx.topology_seed);
    default:
      return pp::InteractionGraph::complete(ctx.n);
  }
}

enum class OracleKind { kStabilization, kQuiescence };

std::unique_ptr<pp::StabilityOracle> make_oracle(const CaseContext& ctx,
                                                 OracleKind kind) {
  if (kind == OracleKind::kQuiescence) {
    return std::make_unique<pp::QuiescenceOracle>(
        make_quiescence_oracle(*ctx.engine_protocol, 200));
  }
  if (ctx.kpartition != nullptr) {
    return core::stable_pattern_oracle(*ctx.kpartition, ctx.n);
  }
  if (ctx.graphbip != nullptr) {
    return core::graph_bipartition_stable_oracle(*ctx.graphbip, ctx.n);
  }
  // Weak k-partition and candidates: silence is the stopping rule.
  return std::make_unique<pp::SilenceOracle>(*ctx.engine_table);
}

/// True for the engines whose per-step RNG consumption is independent of
/// budget boundaries, making chunked run()+resume() bit-identical to one
/// unchunked run.  The aggregated engines (jump, batch) clamp geometric
/// skips / batch lengths at the budget and therefore only agree in law.
bool is_pairwise(ConformanceEngine engine) {
  switch (engine) {
    case ConformanceEngine::kAgent:
    case ConformanceEngine::kCount:
    case ConformanceEngine::kGraphComplete:
    case ConformanceEngine::kAdversarialEps1:
    case ConformanceEngine::kChurnNoFaults:
    case ConformanceEngine::kGraphRing:
    case ConformanceEngine::kGraphStar:
    case ConformanceEngine::kGraphPath:
    case ConformanceEngine::kGraphEr:
    // The live-edge engine skips geometrically like the jump engine but
    // *parks* a truncated run at the budget boundary instead of re-drawing
    // it, so chunking does not perturb its RNG stream: it is held to the
    // stronger bit-identical contract.
    case ConformanceEngine::kLiveEdgeComplete:
    case ConformanceEngine::kLiveEdgeRing:
    case ConformanceEngine::kLiveEdgeStar:
    case ConformanceEngine::kLiveEdgePath:
    case ConformanceEngine::kLiveEdgeEr:
      return true;
    default:
      return false;
  }
}

struct TrialRun {
  pp::SimResult result;
  pp::Counts final_counts;
  std::uint64_t fingerprint = 0;
  std::optional<Violation> violation;
  bool counts_consistent = true;  // engine state == oracle-tracked state
};

/// Constructs the simulator a conformance row denotes (fresh engine, RNG
/// stream from `seed`) and invokes `fn` on it.  Shared by the trial driver
/// and the snapshot net: the latter must rebuild a *new* engine with
/// constructor arguments identical to the snapshotted one's, and routing
/// both through one visitor makes that equality structural.
template <typename Fn>
void with_engine(ConformanceEngine engine, const CaseContext& ctx,
                 std::uint64_t seed, Fn&& fn) {
  const pp::StateId num_states = ctx.true_protocol->num_states();
  const pp::StateId initial_state = ctx.true_protocol->initial_state();
  const pp::TransitionTable& table = *ctx.engine_table;
  switch (engine) {
    case ConformanceEngine::kAgent: {
      pp::AgentSimulator sim(table,
                             pp::Population(ctx.n, num_states, initial_state),
                             seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kCount: {
      pp::CountSimulator sim(table, ctx.initial, seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kJump: {
      pp::JumpSimulator sim(table, ctx.initial, seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kBatchAuto:
    case ConformanceEngine::kBatchForced:
    case ConformanceEngine::kThinForced: {
      pp::BatchSimulator sim(table, ctx.initial, seed);
      sim.set_batch_mode(engine == ConformanceEngine::kBatchAuto
                             ? pp::BatchMode::kAuto
                             : (engine == ConformanceEngine::kBatchForced
                                    ? pp::BatchMode::kForceBatch
                                    : pp::BatchMode::kForceThin));
      fn(sim);
      return;
    }
    case ConformanceEngine::kBatchSharded: {
      // Two workers with the parallel grain forced to zero: every batch
      // takes the pool-dispatched sharded path, so the conformance nets
      // exercise exactly the machinery whose determinism the engine claims.
      pp::BatchShardedSimulator sim(table, ctx.initial, seed,
                                    /*threads=*/2);
      sim.set_parallel_grain(0);
      fn(sim);
      return;
    }
    case ConformanceEngine::kGraphComplete:
    case ConformanceEngine::kGraphRing:
    case ConformanceEngine::kGraphStar:
    case ConformanceEngine::kGraphPath:
    case ConformanceEngine::kGraphEr: {
      pp::GraphSimulator sim(table, topology_for(engine, ctx),
                             pp::Population(ctx.n, num_states, initial_state),
                             seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kLiveEdgeComplete:
    case ConformanceEngine::kLiveEdgeRing:
    case ConformanceEngine::kLiveEdgeStar:
    case ConformanceEngine::kLiveEdgePath:
    case ConformanceEngine::kLiveEdgeEr: {
      pp::GraphJumpSimulator sim(
          table, topology_for(engine, ctx),
          pp::Population(ctx.n, num_states, initial_state), seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kAdversarialEps1: {
      pp::AdversarialSimulator sim(
          *ctx.engine_protocol, table,
          pp::Population(ctx.n, num_states, initial_state), 1.0, seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kChurnNoFaults: {
      pp::ChurnSimulator sim(table,
                             pp::Population(ctx.n, num_states, initial_state),
                             seed);
      fn(sim);
      return;
    }
    case ConformanceEngine::kModel:
      PPK_ASSERT(false);  // not an engine
      return;
  }
  PPK_ASSERT(false);  // unreachable: all enumerators handled above
}

/// Final configuration, whichever of the two engine surfaces exposes it.
template <typename Sim>
[[nodiscard]] pp::Counts final_counts_of(const Sim& sim) {
  if constexpr (requires { sim.population(); }) {
    return sim.population().counts();
  } else {
    return sim.counts();
  }
}

/// Runs one trial of `engine` with the given seed; chunk = 0 runs the whole
/// budget in one grant, otherwise the budget is granted `chunk` pairs at a
/// time through run()+resume().
TrialRun run_engine_trial(ConformanceEngine engine, const CaseContext& ctx,
                          const Reference& ref, std::uint64_t seed,
                          OracleKind oracle_kind, std::uint64_t budget,
                          std::uint64_t chunk) {
  auto base_oracle = make_oracle(ctx, oracle_kind);
  CheckingOracle oracle(*base_oracle, ref);

  auto drive = [&](auto& sim) {
    pp::SimResult total;
    if (chunk == 0) {
      total = sim.run(oracle, budget);
      return total;
    }
    bool first = true;
    while (true) {
      const std::uint64_t remaining = budget - total.interactions;
      const std::uint64_t grant = std::min(chunk, remaining);
      const pp::SimResult r =
          first ? sim.run(oracle, grant) : sim.resume(oracle, grant);
      first = false;
      total.interactions += r.interactions;
      total.effective += r.effective;
      total.stabilized = r.stabilized;
      if (r.stabilized || total.interactions >= budget) return total;
      // An engine that returns short of its grant without stabilizing has
      // stalled (zero live edges / silence): granting more budget would
      // loop forever.
      if (r.interactions < grant) return total;
    }
  };

  TrialRun run;
  with_engine(engine, ctx, seed, [&](auto& sim) {
    run.result = drive(sim);
    run.final_counts = final_counts_of(sim);
  });
  run.fingerprint = oracle.fingerprint();
  run.violation = oracle.violation();
  run.counts_consistent = run.final_counts == oracle.tracked_counts();
  return run;
}

std::uint64_t trial_seed(const ConformanceCase& c, ConformanceEngine engine,
                         std::uint64_t purpose, std::uint64_t trial) {
  const std::uint64_t stream =
      (purpose << 8) | static_cast<std::uint64_t>(engine);
  return derive_stream_seed(derive_stream_seed(c.seed, stream), trial);
}

// Purpose tags for trial_seed (distinct RNG stream families).
constexpr std::uint64_t kPurposeTrajectory = 1;
constexpr std::uint64_t kPurposeChunked = 2;
constexpr std::uint64_t kPurposeDistribution = 3;
constexpr std::uint64_t kPurposeConfirm = 4;
constexpr std::uint64_t kPurposeSnapshot = 5;
constexpr std::uint64_t kPurposeExact = 6;
constexpr std::uint64_t kPurposeExactConfirm = 7;

// ---------------------------------------------------------------------------
// Kolmogorov-Smirnov machinery (two-sample, tie-aware)

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

/// Critical value at alpha = 0.001: c(alpha) * sqrt((m+n)/(mn)) with
/// c(0.001) = sqrt(-ln(0.0005) / 2) ~= 1.949.  The strict level plus the
/// confirm-on-fail rerun keeps a long fuzz session's family-wise false
/// positive rate negligible while a genuinely shifted distribution still
/// fails both rounds.
double ks_threshold(std::size_t m, std::size_t n) {
  const auto md = static_cast<double>(m);
  const auto nd = static_cast<double>(n);
  return 1.949 * std::sqrt((md + nd) / (md * nd));
}

/// One-sample KS distance between an integer-valued empirical sample
/// (censored at `censor`) and the exact discrete CDF `cdf` (cdf[t] =
/// P(T <= t); values at or beyond `censor` count as 1, matching the
/// censored law min(T, censor)).  `cdf` must cover every uncensored sample
/// value.  The sup of |F_emp - F| over two step functions is attained at
/// the sample's jump points, so only those are evaluated.
double ks_one_sample(std::vector<double> samples,
                     const std::vector<double>& cdf, std::uint64_t censor) {
  std::sort(samples.begin(), samples.end());
  const auto m = static_cast<double>(samples.size());
  const auto exact_at = [&](std::int64_t t) {
    if (t < 0) return 0.0;
    if (static_cast<std::uint64_t>(t) >= censor) return 1.0;
    return cdf[static_cast<std::size_t>(t)];
  };
  double d = 0.0;
  std::size_t i = 0;
  while (i < samples.size()) {
    const double x = samples[i];
    std::size_t j = i;
    while (j < samples.size() && samples[j] == x) ++j;
    const auto t = static_cast<std::int64_t>(x);
    d = std::max(d, std::abs(static_cast<double>(i) / m - exact_at(t - 1)));
    d = std::max(d, std::abs(static_cast<double>(j) / m - exact_at(t)));
    i = j;
  }
  return d;
}

/// One-sample critical value at alpha = 0.001: c(alpha) / sqrt(m) with the
/// same c(0.001) ~= 1.949 as the two-sample net (and the same
/// confirm-on-fail discipline keeping the family-wise rate negligible).
double ks_one_sample_threshold(std::size_t m) {
  return 1.949 / std::sqrt(static_cast<double>(m));
}

/// The count-level target predicate behind the engines' stabilization
/// oracles (make_oracle, OracleKind::kStabilization), evaluated against the
/// TRUE protocol: the exact net's reference must keep true semantics even
/// when the engines execute a mutated table.  Families only -- candidates
/// stop at silence of a table with no symmetry declared, which the exact
/// net does not model.
ConfigPredicate exact_target(const CaseContext& ctx,
                             const pp::TransitionTable& true_table) {
  if (ctx.kpartition != nullptr) {
    const core::KPartitionProtocol* protocol = ctx.kpartition.get();
    const std::uint32_t n = ctx.n;
    return [protocol, n](const pp::Counts& counts) {
      return core::matches_stable_pattern(*protocol, n, counts);
    };
  }
  if (ctx.graphbip != nullptr) {
    const std::uint32_t n = ctx.n;
    return [n](const pp::Counts& counts) {
      using P = core::GraphBipartitionProtocol;
      return counts[P::kInitial] == 0 &&
             counts[P::kRSig] + counts[P::kBSig] == n % 2u;
    };
  }
  // Weak k-partition: the stopping rule is silence; its count-level form
  // is "no present ordered pair is effective".
  const pp::TransitionTable* table = &true_table;
  return [table](const pp::Counts& counts) {
    for (std::size_t p = 0; p < counts.size(); ++p) {
      if (counts[p] == 0) continue;
      for (std::size_t q = 0; q < counts.size(); ++q) {
        if (counts[q] == 0) continue;
        if (p == q && counts[p] < 2) continue;
        if (table->effective(static_cast<pp::StateId>(p),
                             static_cast<pp::StateId>(q))) {
          return false;
        }
      }
    }
    return true;
  };
}

// ---------------------------------------------------------------------------
// check_conformance

void add_divergence(ConformanceReport* report,
                    const ConformanceOptions& options, Divergence d) {
  if (report->divergences.size() < options.max_divergences) {
    report->divergences.push_back(std::move(d));
  }
}

void add_violation(ConformanceReport* report,
                   const ConformanceOptions& options, ConformanceEngine engine,
                   const Violation& v) {
  add_divergence(report, options, Divergence{v.check, engine, v.event,
                                             v.detail});
}

/// Snapshot/restore net.  Drives the engine to a deterministic cut, round
/// -trips its snapshot through the text serialization, restores it into a
/// freshly constructed engine (same constructor arguments, via the shared
/// with_engine visitor) with a freshly constructed oracle rebuilt through
/// reset() + restore_state(), and resumes.  The resumed run must be bit
/// -identical -- trajectory fingerprint, final configuration, totals -- to
/// an uninterrupted engine driven with the same grant sequence (run(cut) +
/// resume(budget - cut)).  This holds for *every* engine, aggregated ones
/// included, because both sides see the same grant boundaries; it is the
/// contract the crash-safe campaign runner (core/campaign.hpp) rests on.
void check_snapshot_resume(const ConformanceCase& c, const CaseContext& ctx,
                           const Reference& ref, ConformanceEngine engine,
                           const ConformanceOptions& options,
                           ConformanceReport* report) {
  if (c.budget < 2) return;  // no interior cut exists
  const std::uint64_t seed = trial_seed(c, engine, kPurposeSnapshot, 0);
  // The cut is a pure function of the case seed, interior to the budget.
  const std::uint64_t cut =
      1 + derive_stream_seed(c.seed, 0x736e'6170ULL) % (c.budget - 1);

  // --- Uninterrupted baseline, same grant sequence as the restored run.
  // The quiescence oracle is deliberate: it carries mutable state (the
  // unchanged-streak counter) across the cut, so a save_state()/
  // restore_state() hole shows up as a divergence too.
  auto base_inner = make_oracle(ctx, OracleKind::kQuiescence);
  CheckingOracle base(*base_inner, ref);
  pp::SimResult base_total;
  pp::Counts base_counts;
  with_engine(engine, ctx, seed, [&](auto& sim) {
    base_total = sim.run(base, cut);
    if (!base_total.stabilized && base_total.interactions == cut) {
      const pp::SimResult r2 = sim.resume(base, c.budget - cut);
      base_total.interactions += r2.interactions;
      base_total.effective += r2.effective;
      base_total.stabilized = r2.stabilized;
    }
    base_counts = final_counts_of(sim);
  });

  // --- Interrupted run: identical first phase, then snapshot -> bytes ->
  // parse -> restore into a fresh engine -> resume.
  auto inner_a = make_oracle(ctx, OracleKind::kQuiescence);
  CheckingOracle oracle_a(*inner_a, ref);
  pp::SimResult first_phase;
  std::optional<pp::Snapshot> restored;
  std::string roundtrip_error;
  with_engine(engine, ctx, seed, [&](auto& sim) {
    first_phase = sim.run(oracle_a, cut);
    const std::string bytes = io::serialize_snapshot(sim.snapshot());
    restored = io::parse_snapshot(bytes, &roundtrip_error);
  });
  ++report->checks_run;
  if (!restored.has_value()) {
    add_divergence(
        report, options,
        Divergence{ConformanceCheck::kSnapshotResume, engine,
                   first_phase.interactions,
                   "snapshot failed to round-trip through its text "
                   "serialization: " +
                       roundtrip_error});
    return;
  }

  pp::SimResult total = first_phase;
  pp::Counts final_counts;
  std::uint64_t fingerprint = 0;
  with_engine(engine, ctx, seed, [&](auto& sim) {
    sim.restore(*restored);
    auto inner_b = make_oracle(ctx, OracleKind::kQuiescence);
    inner_b->reset(oracle_a.tracked_counts());
    inner_b->restore_state(inner_a->save_state());
    CheckingOracle oracle_b(*inner_b, ref);
    oracle_b.adopt(oracle_a.fingerprint(), oracle_a.events(),
                   oracle_a.tracked_counts());
    if (!first_phase.stabilized && first_phase.interactions == cut) {
      const pp::SimResult r2 = sim.resume(oracle_b, c.budget - cut);
      total.interactions += r2.interactions;
      total.effective += r2.effective;
      total.stabilized = r2.stabilized;
    }
    final_counts = final_counts_of(sim);
    fingerprint = oracle_b.fingerprint();
  });

  if (base.violation().has_value()) {
    add_violation(report, options, engine, *base.violation());
  }
  if (fingerprint != base.fingerprint() || final_counts != base_counts ||
      total.interactions != base_total.interactions ||
      total.effective != base_total.effective ||
      total.stabilized != base_total.stabilized) {
    std::ostringstream detail;
    detail << "restore()+resume() diverges from the uninterrupted run after "
           << "a snapshot at pair " << cut << " (baseline: "
           << base_total.interactions << " pairs, "
           << (base_total.stabilized ? "stable" : "unstable")
           << ", fingerprint " << base.fingerprint() << "; restored: "
           << total.interactions << " pairs, "
           << (total.stabilized ? "stable" : "unstable") << ", fingerprint "
           << fingerprint << ") -- snapshot() or restore() is losing engine "
           << "or oracle state";
    add_divergence(report, options,
                   Divergence{ConformanceCheck::kSnapshotResume, engine, cut,
                              detail.str()});
  }
}

struct DistributionSample {
  /// Stabilization time, censored at the budget: a trial that did not
  /// stabilize contributes `budget` whether the engine burned it drawing
  /// null pairs (agent, graph) or proved the dead end early and stopped
  /// (jump, live-edge) -- stall detection is an efficiency property, not a
  /// distributional one, and must not register as a KS shift.
  std::vector<double> interactions;
  std::vector<double> effective;
  std::optional<Violation> violation;  // first semantic violation seen
};

DistributionSample sample_engine(const ConformanceCase& c,
                                 const CaseContext& ctx, const Reference& ref,
                                 ConformanceEngine engine,
                                 std::uint64_t purpose, int trials) {
  DistributionSample sample;
  sample.interactions.reserve(static_cast<std::size_t>(trials));
  sample.effective.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const TrialRun run = run_engine_trial(
        engine, ctx, ref,
        trial_seed(c, engine, purpose, static_cast<std::uint64_t>(t)),
        OracleKind::kStabilization, c.budget, 0);
    if (run.violation.has_value() && !sample.violation.has_value()) {
      sample.violation = run.violation;
    }
    sample.interactions.push_back(static_cast<double>(
        run.result.stabilized ? run.result.interactions : c.budget));
    sample.effective.push_back(static_cast<double>(run.result.effective));
  }
  return sample;
}

/// KS-compares two engines' samples on both axes, with the confirm-on-fail
/// rerun; appends a kDistribution divergence attributed to `blamed` when a
/// shift survives confirmation.  `what` names the reference in the detail
/// line ("the agent reference", "the per-draw counterpart").
void compare_distributions(const ConformanceCase& c, const CaseContext& ctx,
                           const Reference& ref, ConformanceEngine reference,
                           ConformanceEngine blamed,
                           const DistributionSample& ref_sample,
                           const DistributionSample& blamed_sample,
                           const char* what, const ConformanceOptions& options,
                           ConformanceReport* report) {
  struct Axis {
    const char* name;
    std::vector<double> DistributionSample::* field;
  };
  constexpr Axis kAxes[] = {
      {"stabilization-time", &DistributionSample::interactions},
      {"effective-count", &DistributionSample::effective},
  };
  for (const Axis& axis : kAxes) {
    const std::vector<double>& a = ref_sample.*axis.field;
    const std::vector<double>& b = blamed_sample.*axis.field;
    const double d = ks_statistic(a, b);
    if (d < ks_threshold(a.size(), b.size())) continue;
    // Confirm on an independent stream with twice the trials before
    // declaring: a single KS exceedance at alpha = 0.001 can still be
    // sampling noise across a long fuzz campaign.
    const DistributionSample ref2 = sample_engine(
        c, ctx, ref, reference, kPurposeConfirm, 2 * c.trials);
    const DistributionSample blamed2 =
        sample_engine(c, ctx, ref, blamed, kPurposeConfirm, 2 * c.trials);
    const std::vector<double>& a2 = ref2.*axis.field;
    const std::vector<double>& b2 = blamed2.*axis.field;
    const double d2 = ks_statistic(a2, b2);
    const double threshold2 = ks_threshold(a2.size(), b2.size());
    if (d2 < threshold2) continue;
    std::ostringstream detail;
    detail << axis.name << " distribution diverges from " << what << ": KS D="
           << d << " (confirm D=" << d2 << " > " << threshold2
           << " at alpha=0.001, " << 2 * c.trials << " trials/side)";
    add_divergence(report, options,
                   Divergence{ConformanceCheck::kDistribution, blamed, 0,
                              detail.str()});
  }
}

}  // namespace

const char* conformance_engine_name(ConformanceEngine engine) {
  for (const auto& e : kEngineNames) {
    if (e.engine == engine) return e.name;
  }
  return "?";
}

std::optional<ConformanceEngine> conformance_engine_from_name(
    const std::string& name) {
  for (const auto& e : kEngineNames) {
    if (name == e.name) return e.engine;
  }
  return std::nullopt;
}

const std::vector<ConformanceEngine>& all_conformance_engines() {
  static const std::vector<ConformanceEngine> kAll = {
      ConformanceEngine::kAgent,          ConformanceEngine::kCount,
      ConformanceEngine::kJump,           ConformanceEngine::kBatchAuto,
      ConformanceEngine::kBatchForced,    ConformanceEngine::kThinForced,
      ConformanceEngine::kBatchSharded,   ConformanceEngine::kGraphComplete,
      ConformanceEngine::kAdversarialEps1,
      ConformanceEngine::kChurnNoFaults,  ConformanceEngine::kGraphRing,
      ConformanceEngine::kGraphStar,      ConformanceEngine::kGraphPath,
      ConformanceEngine::kGraphEr,        ConformanceEngine::kLiveEdgeComplete,
      ConformanceEngine::kLiveEdgeRing,   ConformanceEngine::kLiveEdgeStar,
      ConformanceEngine::kLiveEdgePath,   ConformanceEngine::kLiveEdgeEr,
  };
  return kAll;
}

const char* conformance_check_name(ConformanceCheck check) {
  for (const auto& e : kCheckNames) {
    if (e.check == check) return e.name;
  }
  return "?";
}

std::optional<ConformanceCheck> conformance_check_from_name(
    const std::string& name) {
  for (const auto& e : kCheckNames) {
    if (name == e.name) return e.check;
  }
  return std::nullopt;
}

std::string ConformanceReport::summary() const {
  if (divergences.empty()) return "conformant";
  std::ostringstream out;
  for (const auto& d : divergences) {
    out << conformance_check_name(d.check) << '/'
        << conformance_engine_name(d.engine);
    if (d.event != 0) out << " @event " << d.event;
    out << ": " << d.detail << '\n';
  }
  return out.str();
}

ConformanceReport check_conformance(const ConformanceCase& c,
                                    const ConformanceOptions& options) {
  PPK_EXPECTS(c.n >= 3);
  PPK_EXPECTS(c.trials >= 4);
  PPK_EXPECTS(c.budget >= 1);

  const CaseContext ctx = materialize(c);
  ConformanceReport report;

  // --- Reference models --------------------------------------------------
  Reference ref;
  ref.kpartition = ctx.kpartition.get();

  std::set<pp::Counts> reachable;
  std::unique_ptr<pp::TransitionTable> true_table;
  if (c.n <= options.ground_truth_max_n) {
    true_table = std::make_unique<pp::TransitionTable>(*ctx.true_protocol);
    ConfigGraph::Options explore;
    explore.max_configs = options.ground_truth_max_configs;
    const ConfigGraph graph(*true_table, ctx.initial, explore);
    if (graph.complete()) {
      for (std::size_t i = 0; i < graph.num_configs(); ++i) {
        reachable.insert(graph.config(i));
      }
      ref.reachable = &reachable;

      // Model checker ground truth.  Every named family promises uniform
      // partition under global fairness on the complete graph (the paper's
      // Theorem 1 for kpartition; the silence argument for the weak
      // variant; the signal-conservation argument for the graph
      // bipartition): a refutation means the protocol (or a mutation the
      // caller injected into the *reference*) is broken.  Candidates make
      // no such promise and are exempt.
      if (ctx.candidate == nullptr) {
        const Verdict verdict = verify_uniform_partition(
            *ctx.true_protocol, *true_table, c.n, explore);
        ++report.checks_run;
        if (!verdict.solves) {
          add_divergence(
              &report, options,
              Divergence{ConformanceCheck::kGroundTruth,
                         ConformanceEngine::kModel, 0,
                         "model checker refutes the family's correctness "
                         "theorem at n=" +
                             std::to_string(c.n) + ": " + verdict.failure});
        }
      }
    }
  }

  const std::vector<ConformanceEngine>& engines =
      c.engines.empty() ? all_conformance_engines() : c.engines;

  // --- Per-engine trajectory nets -----------------------------------------
  for (const ConformanceEngine engine : engines) {
    const std::uint64_t seed = trial_seed(c, engine, kPurposeTrajectory, 0);

    const TrialRun first =
        run_engine_trial(engine, ctx, ref, seed, OracleKind::kStabilization,
                         c.budget, 0);
    const TrialRun second =
        run_engine_trial(engine, ctx, ref, seed, OracleKind::kStabilization,
                         c.budget, 0);
    ++report.checks_run;
    if (first.fingerprint != second.fingerprint ||
        first.final_counts != second.final_counts ||
        first.result.interactions != second.result.interactions) {
      add_divergence(&report, options,
                     Divergence{ConformanceCheck::kTrajectory, engine, 0,
                                "same seed produced different trajectories "
                                "(engine is not deterministic)"});
    }
    if (!first.counts_consistent) {
      add_divergence(
          &report, options,
          Divergence{ConformanceCheck::kTrajectory, engine, first.result.effective,
                     "oracle-visible transitions do not reproduce the "
                     "engine's final configuration " +
                         counts_to_string(first.final_counts) +
                         " (oracle callback discipline broken)"});
    }
    if (first.violation.has_value()) {
      add_violation(&report, options, engine, *first.violation);
    }
    // Stabilized k-partition runs must land exactly on the Lemma 4-6
    // pattern of the *true* protocol.
    if (ctx.kpartition != nullptr && first.result.stabilized &&
        !first.violation.has_value() &&
        !core::matches_stable_pattern(*ctx.kpartition, c.n,
                                      first.final_counts)) {
      add_divergence(&report, options,
                     Divergence{ConformanceCheck::kGroundTruth, engine,
                                first.result.effective,
                                "stabilized on " +
                                    counts_to_string(first.final_counts) +
                                    ", which is not the Lemma 4-6 pattern"});
    }
    // The weak and graph-bipartition families promise a *uniform* output
    // partition at every stabilized configuration (silence resp. the
    // count-pattern), judged by the true protocol's output map.
    if ((ctx.weak != nullptr || ctx.graphbip != nullptr) &&
        first.result.stabilized && !first.violation.has_value()) {
      std::vector<std::uint32_t> sizes(ctx.true_protocol->num_groups(), 0);
      for (pp::StateId s = 0; s < ctx.true_protocol->num_states(); ++s) {
        sizes[ctx.true_protocol->group(s)] += first.final_counts[s];
      }
      if (!pp::is_uniform_partition(sizes)) {
        add_divergence(
            &report, options,
            Divergence{ConformanceCheck::kGroundTruth, engine,
                       first.result.effective,
                       "stabilized on " +
                           counts_to_string(first.final_counts) +
                           ", whose output partition is not uniform"});
      }
    }

    // Chunked run()+resume() must be bit-identical for pairwise engines.
    if (is_pairwise(engine)) {
      const std::uint64_t chunk_seed =
          trial_seed(c, engine, kPurposeChunked, 0);
      const TrialRun whole =
          run_engine_trial(engine, ctx, ref, chunk_seed,
                           OracleKind::kQuiescence, c.budget, 0);
      const TrialRun chunked =
          run_engine_trial(engine, ctx, ref, chunk_seed,
                           OracleKind::kQuiescence, c.budget, 64);
      ++report.checks_run;
      if (whole.fingerprint != chunked.fingerprint ||
          whole.result.interactions != chunked.result.interactions ||
          whole.result.stabilized != chunked.result.stabilized ||
          whole.final_counts != chunked.final_counts) {
        std::ostringstream detail;
        detail << "chunked run()+resume() diverges from the unchunked run "
               << "(whole: " << whole.result.interactions << " pairs, "
               << (whole.result.stabilized ? "stable" : "unstable")
               << "; chunked: " << chunked.result.interactions << " pairs, "
               << (chunked.result.stabilized ? "stable" : "unstable")
               << ") -- resume() is losing oracle or RNG state";
        add_divergence(&report, options,
                       Divergence{ConformanceCheck::kChunkedResume, engine, 0,
                                  detail.str()});
      }
    }

    // Snapshot -> serialize -> restore -> resume must be bit-identical to
    // the uninterrupted run for every engine (same grant boundaries on
    // both sides, so even the aggregated engines are held to it).
    check_snapshot_resume(c, ctx, ref, engine, options, &report);
    if (report.divergences.size() >= options.max_divergences) return report;
  }

  // --- Distribution net ----------------------------------------------------
  // Complete-graph engines against the agent reference.  Sparse-topology
  // rows realize a different stochastic process (the scheduler is
  // restricted to the graph) and are excluded here; they are pinned by the
  // sparse-pair net below instead.
  const bool has_agent =
      std::find(engines.begin(), engines.end(), ConformanceEngine::kAgent) !=
      engines.end();
  if (has_agent && engines.size() > 1) {
    const DistributionSample agent = sample_engine(
        c, ctx, ref, ConformanceEngine::kAgent, kPurposeDistribution,
        c.trials);
    if (agent.violation.has_value()) {
      add_violation(&report, options, ConformanceEngine::kAgent,
                    *agent.violation);
    }
    for (const ConformanceEngine engine : engines) {
      if (engine == ConformanceEngine::kAgent) continue;
      if (is_sparse_topology(engine)) continue;
      const DistributionSample xs = sample_engine(
          c, ctx, ref, engine, kPurposeDistribution, c.trials);
      ++report.checks_run;
      if (xs.violation.has_value()) {
        add_violation(&report, options, engine, *xs.violation);
        continue;
      }
      compare_distributions(c, ctx, ref, ConformanceEngine::kAgent, engine,
                            agent, xs, "the agent reference", options,
                            &report);
      if (report.divergences.size() >= options.max_divergences) return report;
    }
  }

  // --- Sparse-pair distribution net ----------------------------------------
  // Each live-edge row against the per-draw GraphSimulator on the *same*
  // graph: the exact geometric null-skip must realize the identical
  // conditional law, so stabilization times (censored at the budget) and
  // effective counts are KS-compared engine-to-engine.  The counterpart is
  // sampled directly -- it need not be in the case's engine list, which
  // keeps shrunken repros (restricted to agent + the diverging engine)
  // replayable.
  for (const ConformanceEngine engine : engines) {
    const auto counterpart = per_draw_counterpart(engine);
    if (!counterpart.has_value()) continue;
    const DistributionSample per_draw = sample_engine(
        c, ctx, ref, *counterpart, kPurposeDistribution, c.trials);
    const DistributionSample live_edge =
        sample_engine(c, ctx, ref, engine, kPurposeDistribution, c.trials);
    ++report.checks_run;
    if (per_draw.violation.has_value()) {
      add_violation(&report, options, *counterpart, *per_draw.violation);
      continue;
    }
    if (live_edge.violation.has_value()) {
      add_violation(&report, options, engine, *live_edge.violation);
      continue;
    }
    compare_distributions(c, ctx, ref, *counterpart, engine, per_draw,
                          live_edge, "the per-draw counterpart", options,
                          &report);
    if (report.divergences.size() >= options.max_divergences) return report;
  }

  // --- Exact-distribution net ----------------------------------------------
  // Every complete-topology engine's stabilization-time sample against the
  // exact first-passage law of the true protocol's chain, computed by the
  // symmetry-lumped Markov analysis.  The reference is absolute -- not
  // another engine -- so a bias shared by every engine, or a mutation the
  // engines execute while the reference keeps true semantics, fails here
  // even when the engines agree with each other.  Both sides are censored
  // at min(budget, exact_max_horizon); a case whose lumped orbit space
  // exceeds exact_max_orbits skips the net (like an incomplete ground-truth
  // exploration) rather than failing.
  if (ctx.candidate == nullptr && c.n <= options.exact_max_n) {
    if (true_table == nullptr) {
      true_table = std::make_unique<pp::TransitionTable>(*ctx.true_protocol);
    }
    const ConfigPredicate target = exact_target(ctx, *true_table);
    LumpedOptions lumped_options;
    lumped_options.max_orbits = options.exact_max_orbits;
    const std::optional<LumpedMarkovAnalysis> lumped =
        LumpedMarkovAnalysis::try_build(*true_table,
                                        ctx.true_protocol->symmetry(),
                                        ctx.initial, lumped_options);
    if (lumped.has_value()) {
      const std::uint64_t censor =
          std::min(c.budget, options.exact_max_horizon);
      // The CDF is stepped lazily, only as far as the largest sample seen:
      // stabilization times at these n are usually far below the censor
      // point, and re-stepping on the rare extension is cheaper than
      // always paying the full horizon.
      std::vector<double> cdf;
      std::uint64_t cdf_horizon = 0;
      const auto ensure_horizon = [&](std::uint64_t h) {
        if (!cdf.empty() && h <= cdf_horizon) return;
        cdf_horizon = h;
        cdf = lumped->hitting_time_cdf(target, h);
      };
      const auto censor_samples = [&](std::vector<double>* samples) {
        std::uint64_t max_sample = 0;
        for (double& s : *samples) {
          s = std::min(s, static_cast<double>(censor));
          max_sample = std::max(max_sample, static_cast<std::uint64_t>(s));
        }
        // A censored sample evaluates the exact CDF just below the censor
        // point; an uncensored one exactly at its value.
        ensure_horizon(std::min(max_sample, censor - 1));
      };
      for (const ConformanceEngine engine : engines) {
        if (is_sparse_topology(engine)) continue;
        DistributionSample sample =
            sample_engine(c, ctx, ref, engine, kPurposeExact, c.trials);
        ++report.checks_run;
        if (sample.violation.has_value()) {
          add_violation(&report, options, engine, *sample.violation);
          continue;
        }
        censor_samples(&sample.interactions);
        const double d = ks_one_sample(sample.interactions, cdf, censor);
        if (d < ks_one_sample_threshold(sample.interactions.size())) continue;
        // Confirm on an independent stream with twice the trials, exactly
        // like the engine-to-engine net.
        DistributionSample confirm = sample_engine(
            c, ctx, ref, engine, kPurposeExactConfirm, 2 * c.trials);
        if (confirm.violation.has_value()) {
          add_violation(&report, options, engine, *confirm.violation);
          continue;
        }
        censor_samples(&confirm.interactions);
        const double d2 = ks_one_sample(confirm.interactions, cdf, censor);
        const double threshold2 =
            ks_one_sample_threshold(confirm.interactions.size());
        if (d2 < threshold2) continue;
        std::ostringstream detail;
        detail << "stabilization-time sample diverges from the exact "
               << "first-passage law of the true protocol: KS D=" << d
               << " (confirm D=" << d2 << " > " << threshold2
               << " at alpha=0.001, " << 2 * c.trials
               << " trials; lumped chain: " << lumped->num_orbits()
               << " orbits over " << lumped->raw_config_count()
               << " configurations, censored at " << censor << " pairs)";
        add_divergence(&report, options,
                       Divergence{ConformanceCheck::kExactDistribution,
                                  engine, 0, detail.str()});
        if (report.divergences.size() >= options.max_divergences) {
          return report;
        }
      }
    }
  }

  return report;
}

// ---------------------------------------------------------------------------
// Reference interpreter (schedule derivation + replay)

namespace {

struct InterpreterResult {
  /// 0-based index of the first pair whose application (or whose resulting
  /// configuration) violates the reference; nullopt = clean.
  std::optional<std::uint64_t> violating_index;
  std::string detail;
  /// Pairs actually drawn (sampling mode only; capped).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> drawn;
  /// effective[i] = pair i changed some agent (replay/sampling alike).
  std::vector<bool> effective;
};

/// Drives the engine table over an explicit schedule (or, when `schedule`
/// is null, pairs sampled from `seed`), checking the reference after every
/// effective application.  This is deliberately the dumbest possible
/// executor -- no engine code on this path, so a repro's verdict cannot
/// depend on the engine under suspicion.
InterpreterResult interpret(
    const CaseContext& ctx, const Reference& ref,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* schedule,
    std::uint64_t seed, std::uint64_t budget, std::uint64_t capture_cap) {
  InterpreterResult out;
  pp::Population population(ctx.n, ctx.true_protocol->num_states(),
                            ctx.true_protocol->initial_state());
  Xoshiro256 rng(seed);
  const std::uint64_t limit =
      schedule != nullptr ? schedule->size() : budget;
  for (std::uint64_t index = 0; index < limit; ++index) {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    if (schedule != nullptr) {
      i = (*schedule)[index].first;
      j = (*schedule)[index].second;
      if (i >= ctx.n || j >= ctx.n || i == j) {
        out.violating_index = index;
        out.detail = "malformed schedule pair";
        return out;
      }
    } else {
      i = static_cast<std::uint32_t>(rng.below(ctx.n));
      j = static_cast<std::uint32_t>(rng.below(ctx.n - 1));
      if (j >= i) ++j;
      if (out.drawn.size() < capture_cap) out.drawn.emplace_back(i, j);
    }
    const pp::StateId p = population.state_of(i);
    const pp::StateId q = population.state_of(j);
    const bool effective = ctx.engine_table->effective(p, q);
    out.effective.push_back(effective);
    if (!effective) continue;
    population.apply(i, j, ctx.engine_table->apply(p, q));
    if (ref.kpartition != nullptr &&
        !core::lemma1_holds(*ref.kpartition, population.counts())) {
      out.violating_index = index;
      out.detail = "Lemma 1 counting invariant violated at " +
                   counts_to_string(population.counts());
      return out;
    }
    if (ref.reachable != nullptr &&
        !ref.reachable->contains(population.counts())) {
      out.violating_index = index;
      out.detail = "configuration " + counts_to_string(population.counts()) +
                   " is not reachable under the reference transition function";
      return out;
    }
  }
  return out;
}

/// Builds the Reference (and its backing storage) for the interpreter /
/// shrinker.  `storage` must outlive the returned Reference.
struct ReferenceStorage {
  std::set<pp::Counts> reachable;
  std::unique_ptr<pp::TransitionTable> true_table;
};

Reference build_reference(const CaseContext& ctx,
                          const ConformanceOptions& options,
                          ReferenceStorage* storage) {
  Reference ref;
  ref.kpartition = ctx.kpartition.get();
  if (ctx.n <= options.ground_truth_max_n) {
    storage->true_table =
        std::make_unique<pp::TransitionTable>(*ctx.true_protocol);
    ConfigGraph::Options explore;
    explore.max_configs = options.ground_truth_max_configs;
    const ConfigGraph graph(*storage->true_table, ctx.initial, explore);
    if (graph.complete()) {
      for (std::size_t i = 0; i < graph.num_configs(); ++i) {
        storage->reachable.insert(graph.config(i));
      }
      ref.reachable = &storage->reachable;
    }
  }
  return ref;
}

bool schedule_still_fails(
    const CaseContext& ctx, const Reference& ref,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& schedule) {
  const InterpreterResult r = interpret(ctx, ref, &schedule, 0, 0, 0);
  return r.violating_index.has_value();
}

std::uint32_t min_population(const ConformanceCase& c) {
  if (c.protocol.family == ConformanceProtocol::Family::kKPartition) {
    // The paper assumes n >= 3; below k the stable pattern still exists but
    // engines and oracles are exercised far from the intended regime.
    return std::max<std::uint32_t>(3, c.protocol.k);
  }
  return 3;
}

/// Reruns the failing check class on a candidate case (restricted to the
/// originally diverging engine plus the agent reference) and reports
/// whether the same class of divergence persists.
bool case_still_fails(const ConformanceCase& c, ConformanceCheck check,
                      const ConformanceOptions& options) {
  const ConformanceReport report = check_conformance(c, options);
  for (const auto& d : report.divergences) {
    if (d.check == check) return true;
  }
  return false;
}

}  // namespace

ConformanceRepro shrink_failure(const ConformanceCase& failing,
                                const Divergence& divergence,
                                const ConformanceOptions& options) {
  ConformanceRepro repro;
  repro.check = divergence.check;
  repro.engine = divergence.engine;
  repro.detail = divergence.detail;
  repro.shrunk = failing;
  // Restrict to the diverging engine plus the agent reference (the
  // distribution net needs agent; the others only speed up).
  repro.shrunk.engines.clear();
  repro.shrunk.engines.push_back(ConformanceEngine::kAgent);
  if (divergence.engine != ConformanceEngine::kAgent &&
      divergence.engine != ConformanceEngine::kModel) {
    repro.shrunk.engines.push_back(divergence.engine);
  }

  // --- Minimize n ---------------------------------------------------------
  // Halving descent (cheap on big n), then an ascending scan over the last
  // interval pins the true minimum.  Every probe is a deterministic rerun.
  {
    const std::uint32_t lo = min_population(repro.shrunk);
    std::uint32_t best = repro.shrunk.n;
    std::uint32_t floor_known_good = lo;  // nothing known below lo
    while (best > lo) {
      const std::uint32_t half = std::max(lo, floor_known_good +
                                                  (best - floor_known_good) / 2);
      if (half == best) break;
      ConformanceCase probe = repro.shrunk;
      probe.n = half;
      if (case_still_fails(probe, repro.check, options)) {
        best = half;
      } else {
        if (half == floor_known_good) break;
        floor_known_good = half;
      }
      if (best - floor_known_good <= 1) break;
    }
    // Ascending scan between the last known-good and the best failing n.
    for (std::uint32_t n = std::max(lo, floor_known_good); n < best; ++n) {
      ConformanceCase probe = repro.shrunk;
      probe.n = n;
      if (case_still_fails(probe, repro.check, options)) {
        best = n;
        break;
      }
    }
    repro.shrunk.n = best;
  }

  // --- Minimize k (the k-parameterized families) ---------------------------
  if (repro.shrunk.protocol.family ==
          ConformanceProtocol::Family::kKPartition ||
      repro.shrunk.protocol.family ==
          ConformanceProtocol::Family::kWeakKPartition) {
    const bool weak = repro.shrunk.protocol.family ==
                      ConformanceProtocol::Family::kWeakKPartition;
    for (pp::GroupId k = 2; k < repro.shrunk.protocol.k; ++k) {
      const auto num_states =
          static_cast<pp::StateId>(weak ? 3 * k + 1 : 3 * k - 2);
      if (repro.shrunk.mutation.has_value() &&
          (repro.shrunk.mutation->p >= num_states ||
           repro.shrunk.mutation->q >= num_states ||
           repro.shrunk.mutation->out.initiator >= num_states ||
           repro.shrunk.mutation->out.responder >= num_states)) {
        continue;  // mutation references states this k does not have
      }
      ConformanceCase probe = repro.shrunk;
      probe.protocol.k = k;
      probe.n = std::max(probe.n, std::max<std::uint32_t>(3, k));
      if (case_still_fails(probe, repro.check, options)) {
        repro.shrunk.protocol.k = k;
        repro.shrunk.n = probe.n;
        break;
      }
    }
  }

  // --- Minimize the schedule prefix (trajectory-local checks) -------------
  if (repro.check == ConformanceCheck::kLemma1 ||
      repro.check == ConformanceCheck::kGroundTruth) {
    const CaseContext ctx = materialize(repro.shrunk);
    ReferenceStorage storage;
    const Reference ref = build_reference(ctx, options, &storage);
    constexpr std::uint64_t kCaptureCap = 1u << 20;
    const InterpreterResult probe =
        interpret(ctx, ref, nullptr,
                  derive_stream_seed(repro.shrunk.seed, 0xC0FFEE),
                  repro.shrunk.budget, kCaptureCap);
    if (probe.violating_index.has_value() &&
        *probe.violating_index < probe.drawn.size()) {
      // 1. Truncate at the violating pair.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> schedule(
          probe.drawn.begin(),
          probe.drawn.begin() +
              static_cast<std::ptrdiff_t>(*probe.violating_index + 1));
      // 2. Null interactions cannot contribute; drop them.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> dense;
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (probe.effective[i]) dense.push_back(schedule[i]);
      }
      if (schedule_still_fails(ctx, ref, dense)) schedule = std::move(dense);
      // 3. Greedy one-at-a-time removal, newest first (bounded).
      if (schedule.size() <= 256) {
        for (std::size_t i = schedule.size(); i-- > 0;) {
          auto candidate = schedule;
          candidate.erase(candidate.begin() +
                          static_cast<std::ptrdiff_t>(i));
          if (schedule_still_fails(ctx, ref, candidate)) {
            schedule = std::move(candidate);
          }
        }
      }
      if (schedule_still_fails(ctx, ref, schedule)) {
        repro.schedule = std::move(schedule);
        const InterpreterResult final_run =
            interpret(ctx, ref, &repro.schedule, 0, 0, 0);
        repro.detail = final_run.detail;
      }
    }
  }

  return repro;
}

// ---------------------------------------------------------------------------
// Repro file IO

std::string serialize_repro(const ConformanceRepro& repro) {
  std::ostringstream out;
  out << "ppk-conformance-repro-v1\n";
  const ConformanceCase& c = repro.shrunk;
  switch (c.protocol.family) {
    case ConformanceProtocol::Family::kKPartition:
      out << "protocol kpartition " << c.protocol.k << '\n';
      break;
    case ConformanceProtocol::Family::kWeakKPartition:
      out << "protocol weak-kpartition " << c.protocol.k << '\n';
      break;
    case ConformanceProtocol::Family::kGraphBipartition:
      out << "protocol graph-bipartition\n";
      break;
    case ConformanceProtocol::Family::kCandidate:
      out << "protocol candidate " << int{c.protocol.candidate.num_states}
          << ' ' << c.protocol.candidate.delta_index << ' '
          << int{c.protocol.candidate.initial} << ' '
          << c.protocol.candidate.output_bits << '\n';
      break;
  }
  if (c.mutation.has_value()) {
    out << "mutation " << int{c.mutation->p} << ' ' << int{c.mutation->q}
        << ' ' << int{c.mutation->out.initiator} << ' '
        << int{c.mutation->out.responder} << '\n';
  }
  out << "n " << c.n << '\n';
  out << "seed " << c.seed << '\n';
  out << "trials " << c.trials << '\n';
  out << "budget " << c.budget << '\n';
  out << "engine " << conformance_engine_name(repro.engine) << '\n';
  out << "check " << conformance_check_name(repro.check) << '\n';
  if (!repro.schedule.empty()) {
    out << "schedule";
    for (const auto& [i, j] : repro.schedule) out << ' ' << i << '-' << j;
    out << '\n';
  }
  if (!repro.detail.empty()) {
    std::string one_line = repro.detail;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    out << "detail " << one_line << '\n';
  }
  out << "expect " << (repro.expect_pass ? "pass" : "fail") << '\n';
  return out.str();
}

std::optional<ConformanceRepro> parse_repro(const std::string& text,
                                            std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<ConformanceRepro> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "ppk-conformance-repro-v1") {
    return fail("missing ppk-conformance-repro-v1 header");
  }
  ConformanceRepro repro;
  bool saw_protocol = false;
  bool saw_engine = false;
  bool saw_check = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "protocol") {
      std::string family;
      fields >> family;
      if (family == "kpartition" || family == "weak-kpartition") {
        repro.shrunk.protocol.family =
            family == "kpartition"
                ? ConformanceProtocol::Family::kKPartition
                : ConformanceProtocol::Family::kWeakKPartition;
        unsigned k = 0;
        if (!(fields >> k) || k < 2) return fail("bad kpartition k");
        repro.shrunk.protocol.k = static_cast<pp::GroupId>(k);
      } else if (family == "graph-bipartition") {
        repro.shrunk.protocol.family =
            ConformanceProtocol::Family::kGraphBipartition;
      } else if (family == "candidate") {
        repro.shrunk.protocol.family = ConformanceProtocol::Family::kCandidate;
        unsigned states = 0;
        unsigned initial = 0;
        CandidateSpec spec;
        if (!(fields >> states >> spec.delta_index >> initial >>
              spec.output_bits)) {
          return fail("bad candidate spec");
        }
        spec.num_states = static_cast<pp::StateId>(states);
        spec.initial = static_cast<pp::StateId>(initial);
        if (states < 2 || initial >= states ||
            spec.delta_index >= num_symmetric_deltas(spec.num_states) ||
            spec.output_bits < 1 || spec.output_bits + 1 >= (1u << states)) {
          return fail("candidate spec out of range");
        }
        repro.shrunk.protocol.candidate = spec;
      } else {
        return fail("unknown protocol family '" + family + "'");
      }
      saw_protocol = true;
    } else if (key == "mutation") {
      unsigned p = 0;
      unsigned q = 0;
      unsigned a = 0;
      unsigned b = 0;
      if (!(fields >> p >> q >> a >> b)) return fail("bad mutation");
      repro.shrunk.mutation =
          TableMutation{static_cast<pp::StateId>(p),
                        static_cast<pp::StateId>(q),
                        pp::Transition{static_cast<pp::StateId>(a),
                                       static_cast<pp::StateId>(b)}};
    } else if (key == "n") {
      if (!(fields >> repro.shrunk.n) || repro.shrunk.n < 3) {
        return fail("bad n");
      }
    } else if (key == "seed") {
      if (!(fields >> repro.shrunk.seed)) return fail("bad seed");
    } else if (key == "trials") {
      if (!(fields >> repro.shrunk.trials) || repro.shrunk.trials < 4) {
        return fail("bad trials");
      }
    } else if (key == "budget") {
      if (!(fields >> repro.shrunk.budget) || repro.shrunk.budget == 0) {
        return fail("bad budget");
      }
    } else if (key == "engine") {
      std::string name;
      fields >> name;
      const auto engine = conformance_engine_from_name(name);
      if (!engine.has_value()) return fail("unknown engine '" + name + "'");
      repro.engine = *engine;
      saw_engine = true;
    } else if (key == "check") {
      std::string name;
      fields >> name;
      const auto check = conformance_check_from_name(name);
      if (!check.has_value()) return fail("unknown check '" + name + "'");
      repro.check = *check;
      saw_check = true;
    } else if (key == "schedule") {
      std::string pair;
      while (fields >> pair) {
        const auto dash = pair.find('-');
        if (dash == std::string::npos) return fail("bad schedule pair");
        try {
          const unsigned long i = std::stoul(pair.substr(0, dash));
          const unsigned long j = std::stoul(pair.substr(dash + 1));
          repro.schedule.emplace_back(static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(j));
        } catch (...) {
          return fail("bad schedule pair");
        }
      }
    } else if (key == "detail") {
      std::string rest;
      std::getline(fields, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      repro.detail = rest;
    } else if (key == "expect") {
      std::string what;
      fields >> what;
      if (what == "pass") {
        repro.expect_pass = true;
      } else if (what == "fail") {
        repro.expect_pass = false;
      } else {
        return fail("expect must be pass or fail");
      }
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_protocol) return fail("missing protocol line");
  if (!saw_engine) return fail("missing engine line");
  if (!saw_check) return fail("missing check line");
  return repro;
}

ConformanceReport replay_repro(const ConformanceRepro& repro,
                               const ConformanceOptions& options) {
  if (!repro.schedule.empty()) {
    const CaseContext ctx = materialize(repro.shrunk);
    ReferenceStorage storage;
    const Reference ref = build_reference(ctx, options, &storage);
    const InterpreterResult r =
        interpret(ctx, ref, &repro.schedule, 0, 0, 0);
    ConformanceReport report;
    report.checks_run = 1;
    if (r.violating_index.has_value()) {
      report.divergences.push_back(Divergence{
          repro.check, repro.engine, *r.violating_index + 1, r.detail});
    }
    return report;
  }
  ConformanceCase c = repro.shrunk;
  if (c.engines.empty()) {
    c.engines.push_back(ConformanceEngine::kAgent);
    if (repro.engine != ConformanceEngine::kAgent &&
        repro.engine != ConformanceEngine::kModel) {
      c.engines.push_back(repro.engine);
    }
  }
  return check_conformance(c, options);
}

// ---------------------------------------------------------------------------
// Fuzzing

FuzzResult fuzz_conformance(const FuzzOptions& options) {
  Xoshiro256 rng(options.seed);
  FuzzResult result;
  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (options.deadline_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.deadline_seconds;
  };
  auto stop_requested = [&] {
    return options.stop != nullptr && options.stop->load();
  };

  for (int i = 0;
       (options.deadline_seconds > 0.0 || i < options.num_cases) &&
       !out_of_time() && !stop_requested();
       ++i) {
    ConformanceCase c;
    c.seed = rng();
    c.trials = options.trials;
    if (rng.uniform01() < options.candidate_fraction) {
      c.protocol.family = ConformanceProtocol::Family::kCandidate;
      CandidateSpec spec;
      spec.num_states = 3;
      spec.delta_index = rng.below(num_symmetric_deltas(3));
      spec.initial = static_cast<pp::StateId>(rng.below(3));
      spec.output_bits = static_cast<std::uint32_t>(1 + rng.below(6));
      c.protocol.candidate = spec;
      c.n = static_cast<std::uint32_t>(
          3 + rng.below(std::max<std::uint32_t>(1, options.max_n / 2 - 2)));
      c.budget = options.candidate_budget;
    } else {
      // Split the named-family mass: half the paper's protocol, a quarter
      // each for the weak-fairness and arbitrary-graph variants.
      const double which = rng.uniform01();
      if (which < 0.5) {
        c.protocol.family = ConformanceProtocol::Family::kKPartition;
      } else if (which < 0.75) {
        c.protocol.family = ConformanceProtocol::Family::kWeakKPartition;
      } else {
        c.protocol.family = ConformanceProtocol::Family::kGraphBipartition;
      }
      c.protocol.k = static_cast<pp::GroupId>(
          2 + rng.below(std::max<pp::GroupId>(1, options.max_k - 1)));
      const std::uint32_t lo = std::max<std::uint32_t>(3, c.protocol.k);
      c.n = static_cast<std::uint32_t>(
          lo + rng.below(std::max<std::uint32_t>(1, options.max_n - lo)));
      c.budget = options.kpartition_budget;
    }
    const ConformanceReport report = check_conformance(c, options.check);
    ++result.cases_run;
    if (!report.ok()) {
      result.failure =
          shrink_failure(c, report.divergences.front(), options.check);
      break;
    }
  }
  return result;
}

}  // namespace ppk::verify
