// Exhaustive search over ALL symmetric deterministic protocols with a
// given number of states, testing each against the uniform bipartition
// problem with designated initial states under global fairness.
//
// Why this exists: the paper's space-optimality argument leans on the
// lower bound of Yasumi et al. [25] -- four states are *necessary* for a
// symmetric protocol to solve uniform bipartition in this setting.  The
// protocol space for 3 states is finite (19,683 symmetric transition
// functions x 3 initial states x 6 non-constant output maps = 354,294
// candidates), so the lower bound can be confirmed by machine: every
// candidate provably fails on some small population, decided exactly by
// the bottom-SCC verifier.  A candidate that failed only on large n would
// survive; none does -- the search reports the concrete n that kills each.
//
// Enumeration respects the paper's symmetry definition: diagonal rules
// map (p, p) to (q, q); off-diagonal unordered pairs {p, q} get an
// arbitrary ordered outcome, realized swap-consistently.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pp/protocol.hpp"

namespace ppk::verify {

/// One point in the symmetric-protocol enumeration space.  The exhaustive
/// search iterates over all of them; the conformance fuzzer samples them at
/// random, so the encoding is public: `delta_index` picks the transition
/// function (diagonal digits in base S, off-diagonal digits in base S^2,
/// mirrored swap-consistently), `output_bits` the output map onto {0, 1}
/// (bit s = group of state s; constant maps are degenerate and skipped by
/// both users).
struct CandidateSpec {
  pp::StateId num_states = 3;
  std::uint64_t delta_index = 0;  ///< in [0, num_symmetric_deltas(states))
  pp::StateId initial = 0;        ///< designated initial state
  std::uint32_t output_bits = 1;  ///< non-constant: 1 .. 2^num_states - 2
};

/// Size of the symmetric transition-function space for `num_states`:
/// S^S diagonal choices times (S^2)^(S(S-1)/2) unordered-pair outcomes.
[[nodiscard]] std::uint64_t num_symmetric_deltas(pp::StateId num_states);

/// A candidate protocol materialized from enumeration indices.  Symmetric
/// and swap-consistent by construction; output onto 2 groups.
class EnumeratedProtocol final : public pp::Protocol {
 public:
  explicit EnumeratedProtocol(const CandidateSpec& spec);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override {
    return spec_.num_states;
  }
  [[nodiscard]] pp::StateId initial_state() const override {
    return spec_.initial;
  }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    return table_[static_cast<std::size_t>(p) * spec_.num_states + q];
  }
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return static_cast<pp::GroupId>((spec_.output_bits >> s) & 1u);
  }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] const CandidateSpec& spec() const noexcept { return spec_; }

  /// Compact rule listing ("s0=.. f=.. delta: ..") for logs and repro files.
  [[nodiscard]] std::string describe() const;

 private:
  CandidateSpec spec_;
  std::vector<pp::Transition> table_;
};

struct SearchOptions {
  /// Population sizes each candidate must solve (a failure on any one
  /// disqualifies it).  Checked in order, so put the cheapest first.
  std::vector<std::uint32_t> population_sizes{3, 4, 5, 6, 7, 8};
  /// Abort knob for the per-candidate exploration (3-state graphs are
  /// tiny; this is a safety net).
  std::size_t max_configs_per_candidate = 100'000;
};

struct SearchResult {
  std::uint64_t candidates = 0;  // total (delta, s0, f) combinations tested
  std::uint64_t survivors = 0;   // candidates passing every tested n
  /// Human-readable description of each survivor (empty when the
  /// impossibility holds).  Capped at 16 entries.
  std::vector<std::string> survivor_descriptions;
  /// candidates_killed_by_n[i] = candidates whose first failure was at
  /// population_sizes[i].
  std::vector<std::uint64_t> killed_by_size;
};

/// Searches every `num_states`-state symmetric protocol for a uniform
/// bipartition solution.  Practical for num_states <= 3 (the 3-state space
/// takes seconds); rejects num_states > 3.
SearchResult search_symmetric_bipartition(pp::StateId num_states,
                                          const SearchOptions& options = {});

}  // namespace ppk::verify
