// Exhaustive search over ALL symmetric deterministic protocols with a
// given number of states, testing each against the uniform bipartition
// problem with designated initial states under global fairness.
//
// Why this exists: the paper's space-optimality argument leans on the
// lower bound of Yasumi et al. [25] -- four states are *necessary* for a
// symmetric protocol to solve uniform bipartition in this setting.  The
// protocol space for 3 states is finite (19,683 symmetric transition
// functions x 3 initial states x 6 non-constant output maps = 354,294
// candidates), so the lower bound can be confirmed by machine: every
// candidate provably fails on some small population, decided exactly by
// the bottom-SCC verifier.  A candidate that failed only on large n would
// survive; none does -- the search reports the concrete n that kills each.
//
// Enumeration respects the paper's symmetry definition: diagonal rules
// map (p, p) to (q, q); off-diagonal unordered pairs {p, q} get an
// arbitrary ordered outcome, realized swap-consistently.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pp/protocol.hpp"

namespace ppk::verify {

struct SearchOptions {
  /// Population sizes each candidate must solve (a failure on any one
  /// disqualifies it).  Checked in order, so put the cheapest first.
  std::vector<std::uint32_t> population_sizes{3, 4, 5, 6, 7, 8};
  /// Abort knob for the per-candidate exploration (3-state graphs are
  /// tiny; this is a safety net).
  std::size_t max_configs_per_candidate = 100'000;
};

struct SearchResult {
  std::uint64_t candidates = 0;  // total (delta, s0, f) combinations tested
  std::uint64_t survivors = 0;   // candidates passing every tested n
  /// Human-readable description of each survivor (empty when the
  /// impossibility holds).  Capped at 16 entries.
  std::vector<std::string> survivor_descriptions;
  /// candidates_killed_by_n[i] = candidates whose first failure was at
  /// population_sizes[i].
  std::vector<std::uint64_t> killed_by_size;
};

/// Searches every `num_states`-state symmetric protocol for a uniform
/// bipartition solution.  Practical for num_states <= 3 (the 3-state space
/// takes seconds); rejects num_states > 3.
SearchResult search_symmetric_bipartition(pp::StateId num_states,
                                          const SearchOptions& options = {});

}  // namespace ppk::verify
