// Decision procedures on the per-agent configuration graph: correctness
// under WEAK fairness, and under global fairness on ARBITRARY topologies.
//
// Weak fairness: every (unordered) pair of agents interacts infinitely
// often; the adversary chooses the interleaving and the orientation, and
// null interactions count as interactions.  This is much weaker than
// global fairness -- the adversary may schedule each pair only at moments
// where the meeting is harmless.
//
// Theory (why maximal SCCs + a per-pair closure test decide it):  Let S be
// the set of configurations a weakly fair execution visits infinitely
// often.  Eventually the execution stays inside S, so S is strongly
// connected (the execution provides the paths), and every pair {i, j} must
// keep interacting inside S, so for every pair there is some c in S and an
// orientation with apply(c, i, j) in S (null counts, trivially staying).
// Call such a set *weakly closable*.  Conversely every weakly closable
// strongly connected set supports a weakly fair execution trapped in it:
// navigate to each pair's compatible configuration in round-robin.  Hence
//
//   P solves the problem under weak fairness  <=>  every reachable weakly
//   closable strongly connected set is "good" (per-agent outputs constant
//   across the set, and that output is a correct answer).
//
// Enumerating all strongly connected subsets is exponential, but checking
// the MAXIMAL SCCs suffices: if a bad weakly closable S exists, its
// enclosing maximal SCC M is weakly closable (S's witnesses live in M) and
// bad (non-constant outputs in S stay non-constant in M; if M is output-
// constant it agrees with S's non-uniform output).  And any bad weakly
// closable maximal M is its own witness.  So the check is: explore the
// per-agent graph, and fail iff some SCC is weakly closable and bad.
//
// A singleton SCC is weakly closable iff the configuration is silent
// (every scheduled pair is null in both orientations) -- exactly the
// stable-by-silence case.
//
// The same per-agent graph with an edge-restricted pair set decides global
// fairness on an arbitrary topology: a globally fair execution is trapped
// in a bottom SCC of the reachable graph, and every bottom SCC supports
// one, so the protocol is correct iff every bottom SCC is good.  (The
// count-vector verifier cannot answer this: on a star, hub and leaf are
// different agents with equal states.)

#pragma once

#include "pp/interaction_graph.hpp"
#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "verify/agent_graph.hpp"
#include "verify/global_fairness.hpp"

namespace ppk::verify {

/// Weak fairness on the complete interaction graph: starting from n agents
/// in the designated initial state, does every weakly fair execution
/// stabilize to a uniform partition into protocol.num_groups() groups?
/// In the returned Verdict, `bottom_sccs` counts the weakly closable SCCs
/// (the sets weakly fair adversaries can trap an execution in).
Verdict verify_weak_uniform_partition(const pp::Protocol& protocol,
                                      const pp::TransitionTable& table,
                                      std::uint32_t n,
                                      AgentConfigGraph::Options options = {});

/// Global fairness on an arbitrary interaction topology: does every
/// globally fair execution on `topology` stabilize every agent's output,
/// with uniform group sizes?  `bottom_sccs` counts bottom SCCs of the
/// per-agent graph.
Verdict verify_graph_uniform_partition(const pp::Protocol& protocol,
                                       const pp::TransitionTable& table,
                                       const pp::InteractionGraph& topology,
                                       AgentConfigGraph::Options options = {});

}  // namespace ppk::verify
