#include "verify/lumped_markov.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "pp/symmetry.hpp"
#include "util/assert.hpp"

namespace ppk::verify {

namespace {

struct CountsHash {
  std::size_t operator()(const pp::Counts& counts) const noexcept {
    // FNV-1a over the raw words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t c : counts) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Lex-min image of `counts` under the (identity-first) group.
pp::Counts canonicalize(const std::vector<std::vector<pp::StateId>>& group,
                        const pp::Counts& counts) {
  pp::Counts best = counts;
  for (std::size_t g = 1; g < group.size(); ++g) {
    pp::Counts image = pp::permute_counts(group[g], counts);
    if (image < best) best = std::move(image);
  }
  return best;
}

/// The exact out-rate row of one raw configuration, with every target
/// already canonicalized: (canonical successor -> integer numerator over
/// n*(n-1)), plus the null-interaction numerator.  Keyed by Counts so two
/// rows are comparable before orbit indices exist -- the lumpability
/// certificate compares the row of a representative against the rows of
/// its group images with exact integer equality.
struct RawRow {
  std::map<pp::Counts, std::uint64_t> rates;
  std::uint64_t stay = 0;
};

RawRow raw_row(const pp::TransitionTable& table,
               const std::vector<std::vector<pp::StateId>>& group,
               const pp::Counts& config, std::uint64_t denom) {
  RawRow row;
  const pp::StateId num_states = table.num_states();
  std::uint64_t effective = 0;
  for (pp::StateId p = 0; p < num_states; ++p) {
    if (config[p] == 0) continue;
    for (pp::StateId q = 0; q < num_states; ++q) {
      if (config[q] == 0) continue;
      if (p == q && config[p] < 2) continue;
      if (!table.effective(p, q)) continue;
      const std::uint64_t numerator =
          std::uint64_t{config[p]} * (config[q] - (p == q ? 1u : 0u));
      const pp::Transition& t = table.apply(p, q);
      pp::Counts next = config;
      --next[p];
      --next[q];
      ++next[t.initiator];
      ++next[t.responder];
      row.rates[canonicalize(group, next)] += numerator;
      effective += numerator;
    }
  }
  PPK_ASSERT(effective <= denom);
  row.stay = denom - effective;
  return row;
}

}  // namespace

std::optional<LumpedMarkovAnalysis> LumpedMarkovAnalysis::try_build(
    const pp::TransitionTable& table, const pp::SymmetrySpec& symmetry,
    const pp::Counts& initial, LumpedOptions options, std::string* why) {
  const auto fail = [&](std::string reason) -> std::optional<LumpedMarkovAnalysis> {
    if (why != nullptr) *why = std::move(reason);
    return std::nullopt;
  };

  if (initial.size() != table.num_states()) {
    return fail("lumped: initial configuration has " +
                std::to_string(initial.size()) + " state counts, table has " +
                std::to_string(table.num_states()));
  }
  std::uint64_t n = 0;
  for (const std::uint32_t c : initial) n += c;
  if (n < 2) return fail("lumped: population size must be >= 2");

  if (const std::string diag = pp::check_symmetry(table, symmetry);
      !diag.empty()) {
    return fail("lumped: " + diag);
  }
  std::vector<std::vector<pp::StateId>> group =
      pp::expand_symmetry_group(symmetry, options.max_group_order);
  if (group.empty()) {
    return fail("lumped: symmetry group expansion failed (order > " +
                std::to_string(options.max_group_order) +
                " or malformed generator)");
  }

  LumpedMarkovAnalysis out;
  out.n_ = n;
  out.denom_ = n * (n - 1);
  out.group_ = std::move(group);
  out.solver_ = options.solver;

  std::unordered_map<pp::Counts, std::uint32_t, CountsHash> index;
  std::deque<std::uint32_t> frontier;
  auto intern = [&](pp::Counts canonical) -> std::uint32_t {
    auto [it, inserted] = index.try_emplace(
        std::move(canonical), static_cast<std::uint32_t>(out.reps_.size()));
    if (inserted) {
      out.reps_.push_back(it->first);
      out.rows_.emplace_back();
      frontier.push_back(it->second);
    }
    return it->second;
  };

  intern(canonicalize(out.group_, initial));
  while (!frontier.empty()) {
    if (out.reps_.size() > options.max_orbits) {
      return fail("lumped: exploration exceeded max_orbits (" +
                  std::to_string(options.max_orbits) + ")");
    }
    const std::uint32_t current = frontier.front();
    frontier.pop_front();

    // Copy: intern() may grow reps_ while we hold references into it.
    const pp::Counts rep = out.reps_[current];
    const RawRow row = raw_row(table, out.group_, rep, out.denom_);

    if (options.check_lumpability) {
      // The certificate: every raw configuration in the orbit must carry
      // exactly the same canonicalized rate row (integer-for-integer).
      // check_symmetry already implies this; checking it anyway means a
      // wrong declaration can never silently corrupt an exact answer.
      for (std::size_t g = 1; g < out.group_.size(); ++g) {
        const pp::Counts image = pp::permute_counts(out.group_[g], rep);
        if (image == rep) continue;
        const RawRow other = raw_row(table, out.group_, image, out.denom_);
        if (other.rates != row.rates || other.stay != row.stay) {
          return fail(
              "lumped: rate-sum lumpability check failed at orbit " +
              std::to_string(current) + " under group element " +
              std::to_string(g));
        }
      }
    }

    OrbitRow stored;
    stored.stay = row.stay;
    stored.rates.reserve(row.rates.size());
    for (const auto& [target, numerator] : row.rates) {
      stored.rates.emplace_back(intern(target), numerator);
    }
    std::sort(stored.rates.begin(), stored.rates.end());
    out.rows_[current] = std::move(stored);
  }

  out.sizes_.reserve(out.reps_.size());
  for (const pp::Counts& rep : out.reps_) {
    std::set<pp::Counts> images;
    for (const auto& g : out.group_) images.insert(pp::permute_counts(g, rep));
    out.sizes_.push_back(images.size());
    out.raw_config_count_ += images.size();
  }

  out.compute_sccs();
  return out;
}

void LumpedMarkovAnalysis::compute_sccs() {
  // Iterative Tarjan over the orbit graph (self-loops ignored).  Component
  // ids come out in reverse topological order, matching ConfigGraph.
  const auto n = static_cast<std::uint32_t>(reps_.size());
  constexpr std::uint32_t kUnvisited = UINT32_MAX;

  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  scc_of_.assign(n, kUnvisited);
  std::uint32_t timer = 0;
  num_sccs_ = 0;

  struct Frame {
    std::uint32_t node;
    std::size_t edge_index;
  };
  std::vector<Frame> call_stack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t u = frame.node;
      if (frame.edge_index == 0) {
        disc[u] = low[u] = timer++;
        stack.push_back(u);
        on_stack[u] = 1;
      }
      bool descended = false;
      while (frame.edge_index < rows_[u].rates.size()) {
        const std::uint32_t v = rows_[u].rates[frame.edge_index].first;
        ++frame.edge_index;
        if (v == u) continue;
        if (disc[v] == kUnvisited) {
          call_stack.push_back(Frame{v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], disc[v]);
      }
      if (descended) continue;
      if (low[u] == disc[u]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_of_[w] = num_sccs_;
          if (w == u) break;
        }
        ++num_sccs_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::uint32_t parent = call_stack.back().node;
        low[parent] = std::min(low[parent], low[u]);
      }
    }
  }

  bottom_.assign(num_sccs_, 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const auto& [v, numerator] : rows_[u].rates) {
      if (scc_of_[v] != scc_of_[u]) bottom_[scc_of_[u]] = 0;
    }
  }
}

std::vector<char> LumpedMarkovAnalysis::target_orbits(
    const ConfigPredicate& target) const {
  std::vector<char> is_target(reps_.size(), 0);
  for (std::size_t orbit = 0; orbit < reps_.size(); ++orbit) {
    const bool value = target(reps_[orbit]);
    for (std::size_t g = 1; g < group_.size(); ++g) {
      if (target(pp::permute_counts(group_[g], reps_[orbit])) != value) {
        throw std::invalid_argument(
            "lumped: target predicate is not constant on orbit " +
            std::to_string(orbit) + " (not symmetry-invariant)");
      }
    }
    is_target[orbit] = value ? 1 : 0;
  }
  return is_target;
}

std::uint64_t LumpedMarkovAnalysis::self_numerator(std::size_t orbit) const {
  std::uint64_t self = rows_[orbit].stay;
  for (const auto& [target, numerator] : rows_[orbit].rates) {
    if (target == orbit) self += numerator;
  }
  return self;
}

std::optional<double> LumpedMarkovAnalysis::expected_hitting_time(
    const ConfigPredicate& target) const {
  const std::vector<char> is_target = target_orbits(target);
  if (is_target[0]) return 0.0;  // orbit 0 holds the initial configuration

  // Hit with probability 1 iff every bottom SCC contains a target orbit
  // (lumping preserves bottom SCCs: orbits of raw bottom SCCs).
  std::vector<char> scc_has_target(num_sccs_, 0);
  for (std::size_t orbit = 0; orbit < reps_.size(); ++orbit) {
    if (is_target[orbit]) scc_has_target[scc_of_[orbit]] = 1;
  }
  for (std::uint32_t scc = 0; scc < num_sccs_; ++scc) {
    if (bottom_[scc] && !scc_has_target[scc]) return std::nullopt;
  }

  // Unknowns: non-target orbits, ordered by ascending SCC id.  SCC ids are
  // reverse topological, so Gauss-Seidel sweeps update an orbit only after
  // the orbits it feeds into (absorbing side first) -- the sweep then
  // propagates information backward along every path per pass.
  std::vector<std::uint32_t> unknown_index(reps_.size(), UINT32_MAX);
  std::vector<std::uint32_t> unknown_orbits;
  for (std::uint32_t orbit = 0; orbit < reps_.size(); ++orbit) {
    if (!is_target[orbit]) unknown_orbits.push_back(orbit);
  }
  std::stable_sort(unknown_orbits.begin(), unknown_orbits.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return scc_of_[a] < scc_of_[b];
                   });
  for (std::uint32_t row = 0; row < unknown_orbits.size(); ++row) {
    unknown_index[unknown_orbits[row]] = row;
  }
  const auto m = static_cast<std::uint32_t>(unknown_orbits.size());
  if (m == 0) return 0.0;

  // Embedded jump chain: with L = denom - self_numerator (the leave rate),
  // E[orbit] = denom/L + sum_{j != orbit} (w_j / L) E[j].  Nulls and
  // within-orbit transitions both fold into L exactly -- no floating
  // accumulation of per-edge probabilities, so the matrix entries are
  // single exact-integer ratios.
  util::CsrBuilder builder(m, m);
  std::vector<double> b(m, 0.0);
  for (std::uint32_t row = 0; row < m; ++row) {
    const std::uint32_t orbit = unknown_orbits[row];
    const std::uint64_t leave = denom_ - self_numerator(orbit);
    // A zero leave rate would mean an absorbing non-target orbit: its
    // singleton SCC is bottom and target-free, caught above.
    PPK_ASSERT(leave > 0);
    builder.add(row, row, 1.0);
    for (const auto& [target_orbit, numerator] : rows_[orbit].rates) {
      if (target_orbit == orbit || is_target[target_orbit]) continue;
      builder.add(row, unknown_index[target_orbit],
                  -static_cast<double>(numerator) /
                      static_cast<double>(leave));
    }
    b[row] = static_cast<double>(denom_) / static_cast<double>(leave);
  }
  const util::CsrMatrix a = builder.build();
  std::vector<double> x;
  const util::SolveCertificate cert = util::solve_sparse(a, b, x, solver_);
  if (!cert.converged) {
    throw std::runtime_error(
        "lumped: sparse solve failed to certify convergence (residual " +
        std::to_string(cert.residual) + " > bound " +
        std::to_string(cert.residual_bound) + " after " +
        std::to_string(cert.sweeps) + " sweeps)");
  }
  return x[unknown_index[0]];
}

std::vector<LumpedMarkovAnalysis::Absorption>
LumpedMarkovAnalysis::absorption_probabilities() const {
  // Transient = not in a bottom SCC; same reverse-topological ordering as
  // expected_hitting_time.
  std::vector<std::uint32_t> unknown_index(reps_.size(), UINT32_MAX);
  std::vector<std::uint32_t> unknown_orbits;
  for (std::uint32_t orbit = 0; orbit < reps_.size(); ++orbit) {
    if (!bottom_[scc_of_[orbit]]) unknown_orbits.push_back(orbit);
  }
  std::stable_sort(unknown_orbits.begin(), unknown_orbits.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return scc_of_[a] < scc_of_[b];
                   });
  for (std::uint32_t row = 0; row < unknown_orbits.size(); ++row) {
    unknown_index[unknown_orbits[row]] = row;
  }
  const auto m = static_cast<std::uint32_t>(unknown_orbits.size());

  // First orbit per bottom SCC names the absorption outcome.
  std::vector<std::uint32_t> first_orbit(num_sccs_, UINT32_MAX);
  std::vector<std::uint32_t> bottoms;
  for (std::uint32_t orbit = 0; orbit < reps_.size(); ++orbit) {
    const std::uint32_t scc = scc_of_[orbit];
    if (bottom_[scc] && first_orbit[scc] == UINT32_MAX) {
      first_orbit[scc] = orbit;
      bottoms.push_back(scc);
    }
  }

  const std::uint32_t initial_scc = scc_of_[0];
  std::vector<Absorption> result;
  if (m == 0 || bottom_[initial_scc]) {
    for (const std::uint32_t scc : bottoms) {
      result.push_back(Absorption{scc, reps_[first_orbit[scc]],
                                  scc == initial_scc ? 1.0 : 0.0});
    }
    return result;
  }

  // One matrix, one rhs per bottom SCC: (I - Q) x = r with
  // r[orbit] = P(jump from orbit directly into the SCC).
  util::CsrBuilder builder(m, m);
  std::vector<std::uint64_t> leaves(m, 0);
  for (std::uint32_t row = 0; row < m; ++row) {
    const std::uint32_t orbit = unknown_orbits[row];
    const std::uint64_t leave = denom_ - self_numerator(orbit);
    PPK_ASSERT(leave > 0);  // transient orbits always have an exit
    leaves[row] = leave;
    builder.add(row, row, 1.0);
    for (const auto& [target_orbit, numerator] : rows_[orbit].rates) {
      if (target_orbit == orbit) continue;
      if (unknown_index[target_orbit] == UINT32_MAX) continue;
      builder.add(row, unknown_index[target_orbit],
                  -static_cast<double>(numerator) /
                      static_cast<double>(leave));
    }
  }
  const util::CsrMatrix a = builder.build();

  for (const std::uint32_t scc : bottoms) {
    std::vector<double> b(m, 0.0);
    for (std::uint32_t row = 0; row < m; ++row) {
      const std::uint32_t orbit = unknown_orbits[row];
      for (const auto& [target_orbit, numerator] : rows_[orbit].rates) {
        if (unknown_index[target_orbit] == UINT32_MAX &&
            scc_of_[target_orbit] == scc) {
          b[row] += static_cast<double>(numerator) /
                    static_cast<double>(leaves[row]);
        }
      }
    }
    std::vector<double> x;
    const util::SolveCertificate cert = util::solve_sparse(a, b, x, solver_);
    if (!cert.converged) {
      throw std::runtime_error(
          "lumped: sparse solve failed to certify convergence for SCC " +
          std::to_string(scc));
    }
    result.push_back(
        Absorption{scc, reps_[first_orbit[scc]], x[unknown_index[0]]});
  }
  return result;
}

std::vector<double> LumpedMarkovAnalysis::hitting_time_cdf(
    const ConfigPredicate& target, std::size_t horizon) const {
  const std::vector<char> is_target = target_orbits(target);

  // Step the full lumped chain (self-loops as stay mass) with target
  // orbits absorbing; F[t] is then exactly the absorbed mass after t
  // interactions.
  std::vector<double> dist(reps_.size(), 0.0);
  dist[0] = 1.0;
  std::vector<double> next(reps_.size(), 0.0);
  std::vector<double> cdf(horizon + 1, 0.0);

  const auto absorbed = [&](const std::vector<double>& d) {
    util::CompensatedSum acc;
    for (std::size_t orbit = 0; orbit < d.size(); ++orbit) {
      if (is_target[orbit]) acc.add(d[orbit]);
    }
    return acc.value();
  };

  cdf[0] = absorbed(dist);
  const auto denom = static_cast<double>(denom_);
  for (std::size_t t = 1; t <= horizon; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t orbit = 0; orbit < dist.size(); ++orbit) {
      const double mass = dist[orbit];
      if (mass == 0.0) continue;
      if (is_target[orbit]) {
        next[orbit] += mass;  // absorbing
        continue;
      }
      next[orbit] +=
          mass * (static_cast<double>(self_numerator(orbit)) / denom);
      for (const auto& [target_orbit, numerator] : rows_[orbit].rates) {
        if (target_orbit == orbit) continue;
        next[target_orbit] += mass * (static_cast<double>(numerator) / denom);
      }
    }
    dist.swap(next);
    cdf[t] = absorbed(dist);
  }
  return cdf;
}

}  // namespace ppk::verify
