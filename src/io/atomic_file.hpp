// Crash-safe file output: write to a temporary file in the destination
// directory, fsync, then rename over the target.
//
// POSIX rename() is atomic, so a reader (or a process resuming after
// SIGKILL) sees either the previous complete file or the new complete file,
// never a truncated mix -- the failure mode that used to poison committed
// bench baselines when a --json run was interrupted mid-write.  All
// checkpoint and report writers in the tree route through this helper.

#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace ppk::io {

/// Atomically replaces `path` with `content`.  Returns false (and fills
/// `error` when non-null) on any I/O failure; the previous file, if any, is
/// left untouched in that case.
inline bool write_file_atomic(const std::string& path,
                              std::string_view content,
                              std::string* error = nullptr) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = path + ": " + what + ": " + std::strerror(errno);
    }
    return false;
  };
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ::ssize_t wrote = ::write(fd, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      return fail("write");
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  // Flush file data before the rename publishes it: otherwise a crash could
  // atomically install an empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp.c_str());
    return fail("fsync");
  }
  if (::close(fd) != 0) {
    ::unlink(temp.c_str());
    return fail("close");
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return fail("rename");
  }
  return true;
}

/// Buffering adapter for streaming writers (JsonWriter, CSV): stream into
/// memory, then commit() performs one atomic write_file_atomic.  If commit()
/// is never called (e.g. an early error path) nothing touches the target.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path) : path_(std::move(path)) {}

  /// The in-memory stream to write through.
  [[nodiscard]] std::ostream& stream() noexcept { return buffer_; }

  /// Atomically publishes everything streamed so far.  Returns false and
  /// leaves the target untouched on failure.
  [[nodiscard]] bool commit(std::string* error = nullptr) {
    return write_file_atomic(path_, buffer_.str(), error);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ostringstream buffer_;
};

}  // namespace ppk::io
