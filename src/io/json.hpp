// Minimal streaming JSON writer: enough for the benches to emit
// machine-readable reports (BENCH_ENGINES.json and --json modes) without
// pulling in a JSON library the toolchain image does not carry.
//
// The writer is a push API mirroring the document structure -- begin/end
// scopes with automatic comma placement and two-space indentation -- and
// asserts on misuse (a value without a pending key inside an object, or an
// unclosed scope at destruction) instead of emitting malformed output.

#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace ppk::io {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  ~JsonWriter() { PPK_ASSERT(stack_.empty()); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Starts a member inside the current object; follow with exactly one
  /// value (scalar or begin_*).
  void key(std::string_view name) {
    PPK_EXPECTS(!stack_.empty() && stack_.back().is_object);
    PPK_EXPECTS(!key_pending_);
    separate();
    write_string(name);
    *out_ << ": ";
    key_pending_ = true;
  }

  void value(std::string_view s) {
    pre_value();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    pre_value();
    *out_ << (b ? "true" : "false");
  }
  void value(double d) {
    pre_value();
    // JSON has no NaN/Inf; benches report them as null (e.g. a rate from a
    // zero-duration measurement).
    if (!std::isfinite(d)) {
      *out_ << "null";
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    *out_ << buffer;
  }
  void value(std::uint64_t v) {
    pre_value();
    *out_ << v;
  }
  void value(std::int64_t v) {
    pre_value();
    *out_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  void member(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

 private:
  struct Scope {
    bool is_object;
    bool has_items;
  };

  void open(char bracket) {
    pre_value();
    *out_ << bracket;
    stack_.push_back({bracket == '{', false});
  }

  void close(char bracket) {
    PPK_EXPECTS(!stack_.empty());
    PPK_EXPECTS(!key_pending_);
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) newline_indent();
    *out_ << bracket;
    if (stack_.empty()) *out_ << '\n';
  }

  /// Comma/indent bookkeeping shared by every value start.
  void pre_value() {
    if (stack_.empty()) return;  // the document root value
    if (stack_.back().is_object) {
      PPK_EXPECTS(key_pending_);
      key_pending_ = false;
      return;
    }
    separate();
  }

  void separate() {
    if (stack_.back().has_items) *out_ << ',';
    stack_.back().has_items = true;
    newline_indent();
  }

  void newline_indent() {
    *out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
  }

  void write_string(std::string_view s) {
    *out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': *out_ << "\\\""; break;
        case '\\': *out_ << "\\\\"; break;
        case '\n': *out_ << "\\n"; break;
        case '\t': *out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
            *out_ << buffer;
          } else {
            *out_ << c;
          }
      }
    }
    *out_ << '"';
  }

  std::ostream* out_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
};

}  // namespace ppk::io
