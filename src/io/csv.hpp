// Minimal RFC-4180-ish CSV writer: the benches emit one CSV per figure so
// the paper's plots can be regenerated with any plotting tool.

#pragma once

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace ppk::io {

class CsvWriter {
 public:
  /// Writes to an externally owned stream.
  explicit CsvWriter(std::ostream& out, std::vector<std::string> header)
      : out_(&out), columns_(header.size()) {
    PPK_EXPECTS(!header.empty());
    write_row_of_strings(header);
  }

  /// Appends one row; field count must match the header.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    PPK_EXPECTS(cells.size() == columns_);
    write_row_of_strings(cells);
  }

  /// Appends an already-joined row of `columns` cells.  The caller
  /// guarantees the cells need no quoting (numeric data); used by writers
  /// whose column count is only known at run time.
  void raw_row(const std::string& joined, std::size_t columns) {
    PPK_EXPECTS(columns == columns_);
    *out_ << joined << '\n';
    ++rows_;
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      std::ostringstream cell;
      cell << value;
      return cell.str();
    }
  }

  static std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

  void write_row_of_strings(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) *out_ << ',';
      *out_ << escape(cells[i]);
    }
    *out_ << '\n';
    ++rows_;
  }

  std::ostream* out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// CSV writer that owns its file; creates/truncates `path`.
class CsvFile {
 public:
  CsvFile(const std::string& path, std::vector<std::string> header)
      : file_(path) {
    PPK_EXPECTS(file_.is_open());
    writer_.emplace(file_, std::move(header));
  }

  template <typename... Fields>
  void row(const Fields&... fields) {
    writer_->row(fields...);
  }

 private:
  std::ofstream file_;
  std::optional<CsvWriter> writer_;
};

}  // namespace ppk::io
