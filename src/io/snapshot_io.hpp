// Text serialization of engine snapshots (pp/snapshot.hpp).
//
// Format (one line, space separated, hex payload):
//
//   ppk-snapshot-v1 <engine> <nwords> <word0> <word1> ...
//
// The format is deliberately trivial: a snapshot is an opaque word vector
// plus an engine tag, and the conformance snapshot net round-trips every
// snapshot through this encoding to prove serialization loses nothing.
// Campaign checkpoints embed the line verbatim as a JSON string.

#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "pp/snapshot.hpp"

namespace ppk::io {

inline constexpr std::string_view kSnapshotSchema = "ppk-snapshot-v1";

/// One-line text form of a snapshot.
[[nodiscard]] inline std::string serialize_snapshot(const pp::Snapshot& snap) {
  std::ostringstream out;
  out << kSnapshotSchema << ' ' << snap.engine << ' ' << snap.words.size();
  char buffer[20];
  for (const std::uint64_t word : snap.words) {
    std::snprintf(buffer, sizeof buffer, "%" PRIx64, word);
    out << ' ' << buffer;
  }
  return out.str();
}

/// Parses serialize_snapshot output.  nullopt (and a one-line reason in
/// `error` when non-null) on malformed input; the engine tag is not
/// validated here -- restore() checks it against the receiving engine.
[[nodiscard]] inline std::optional<pp::Snapshot> parse_snapshot(
    std::string_view text, std::string* error = nullptr) {
  const auto fail = [&](const char* reason) {
    if (error != nullptr) *error = std::string("snapshot: ") + reason;
    return std::nullopt;
  };
  std::istringstream in{std::string(text)};
  std::string schema;
  pp::Snapshot snap;
  std::uint64_t nwords = 0;
  if (!(in >> schema >> snap.engine >> nwords)) return fail("short header");
  if (schema != kSnapshotSchema) return fail("unknown schema");
  if (nwords > (1ULL << 32)) return fail("implausible word count");
  snap.words.reserve(nwords);
  std::string token;
  for (std::uint64_t i = 0; i < nwords; ++i) {
    if (!(in >> token)) return fail("truncated payload");
    std::uint64_t word = 0;
    const auto parsed =
        std::sscanf(token.c_str(), "%" SCNx64, &word);
    if (parsed != 1) return fail("bad payload word");
    snap.words.push_back(word);
  }
  if (in >> token) return fail("trailing payload");
  return snap;
}

}  // namespace ppk::io
