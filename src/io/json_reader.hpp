// Minimal recursive-descent JSON reader: the load-side counterpart of
// json.hpp's JsonWriter, added for campaign checkpoint resume (there is
// still no JSON library in the toolchain image).
//
// Two deliberate deviations from a general-purpose parser:
//  - numbers keep their raw source token instead of being folded to double,
//    so 64-bit counters written as decimal strings or number tokens round
//    -trip exactly (a double only carries 53 bits);
//  - parse failures are soft (nullopt + one-line reason) because checkpoint
//    files come from disk, but *accessor* misuse on a parsed value is a
//    contract violation like everywhere else in the tree.

#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ppk::io {

/// One parsed JSON value.  Objects keep member order; lookup is linear,
/// which is fine for the small documents (checkpoints, bench reports) this
/// reader exists for.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// kString: the decoded string.  kNumber: the raw source token.
  std::string scalar;
  /// kArray: the elements.  kObject: the member values (parallel to keys).
  std::vector<JsonValue> items;
  std::vector<std::string> keys;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }

  /// Object member lookup; nullptr when absent (or not an object -- callers
  /// validating foreign files chain find() without pre-checking the kind).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) return &items[i];
    }
    return nullptr;
  }

  [[nodiscard]] const std::string& as_string() const {
    PPK_EXPECTS(kind == Kind::kString);
    return scalar;
  }

  [[nodiscard]] bool as_bool() const {
    PPK_EXPECTS(kind == Kind::kBool);
    return bool_value;
  }

  /// Exact unsigned 64-bit read from a number token or a decimal/0x-hex
  /// string (checkpoints write u64 counters as strings).  nullopt on sign,
  /// fraction, exponent, overflow or garbage.
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const {
    if (kind != Kind::kNumber && kind != Kind::kString) return std::nullopt;
    const std::string& token = scalar;
    if (token.empty() || token[0] == '-') return std::nullopt;
    int base = 10;
    const char* begin = token.c_str();
    if (token.size() > 2 && token[0] == '0' &&
        (token[1] == 'x' || token[1] == 'X')) {
      base = 16;
      begin += 2;
      if (*begin == '\0') return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(begin, &end, base);
    if (errno != 0 || end == begin || *end != '\0') return std::nullopt;
    return static_cast<std::uint64_t>(v);
  }

  /// Exact signed 64-bit read from a decimal number token or string.
  /// nullopt on fraction, exponent, overflow or garbage.
  [[nodiscard]] std::optional<std::int64_t> as_i64() const {
    if (kind != Kind::kNumber && kind != Kind::kString) return std::nullopt;
    if (scalar.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(scalar.c_str(), &end, 10);
    if (errno != 0 || end == scalar.c_str() || *end != '\0') {
      return std::nullopt;
    }
    return static_cast<std::int64_t>(v);
  }

  [[nodiscard]] std::optional<double> as_double() const {
    if (kind != Kind::kNumber && kind != Kind::kString) return std::nullopt;
    if (scalar.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(scalar.c_str(), &end);
    if (errno != 0 || end == scalar.c_str() || *end != '\0') {
      return std::nullopt;
    }
    return v;
  }
};

namespace detail {

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue root;
    if (!parse_value(root, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 128;

  std::optional<JsonValue> fail(const std::string& reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "json: " + reason + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  bool fail_bool(const std::string& reason) {
    (void)fail(reason);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  bool expect(char c) {
    if (at_end() || text_[pos_] != c) {
      return fail_bool(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail_bool("nesting too deep");
    if (at_end()) return fail_bool("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.scalar);
      case 't':
      case 'f':
        return parse_bool(out);
      case 'n':
        return parse_literal("null") &&
               (out.kind = JsonValue::Kind::kNull, true);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail_bool("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      out.bool_value = true;
      return parse_literal("true");
    }
    out.bool_value = false;
    return parse_literal("false");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && text_[pos_] == '-') ++pos_;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail_bool("expected a value");
    out.kind = JsonValue::Kind::kNumber;
    out.scalar.assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (at_end()) return fail_bool("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail_bool("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (!parse_unicode_escape(out)) return false;
          break;
        }
        default:
          return fail_bool("unknown escape");
      }
    }
  }

  bool parse_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) return fail_bool("short \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<std::uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<std::uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<std::uint32_t>(h - 'A' + 10);
      } else {
        return fail_bool("bad \\u escape");
      }
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      // Surrogate pairs never occur in the files this reader targets (our
      // own writer only emits \u00XX control escapes).
      return fail_bool("surrogate \\u escape unsupported");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    if (!expect('[')) return false;
    skip_ws();
    if (!at_end() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail_bool("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      return expect(']');
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    if (!expect('{')) return false;
    skip_ws();
    if (!at_end() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.keys.push_back(std::move(key));
      out.items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail_bool("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      return expect('}');
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one JSON document.  nullopt (and a one-line reason in `error`
/// when non-null) on malformed input.
[[nodiscard]] inline std::optional<JsonValue> parse_json(
    std::string_view text, std::string* error = nullptr) {
  if (error != nullptr) error->clear();
  return detail::JsonParser(text, error).run();
}

}  // namespace ppk::io
