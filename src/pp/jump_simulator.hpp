// The skip-ahead ("jump") simulation engine.
//
// In the late phase of a k-partition run -- and throughout the large-k
// regime of the paper's Figure 6 -- the overwhelming majority of drawn
// pairs are null interactions: at k = 24, n = 960 over 97% of the ~2x10^9
// interactions change nothing.  The plain engines pay for each of them.
//
// This engine never draws a null pair.  In a configuration whose effective
// pair probability is p_eff, the number of null draws before the next
// effective one is geometric(p_eff); the engine samples that count in O(1)
// (inverse transform), advances the interaction counter by it, and then
// samples an *effective* ordered pair (p, q) proportional to its exact
// probability c_p * (c_q - [p==q]).  Sampling is two-stage:
//
//   initiator state  p  with weight  w_p = c_p * sum_q eff(p,q) (c_q - [p==q])
//   responder state  q  with weight  eff(p,q) * (c_q - [p==q])
//
// The row weights w_p are maintained incrementally: an effective
// transition changes at most four state counts, and each unit count change
// touches every row's column term once -- O(|Q|) per effective
// interaction, independent of how many nulls were skipped.
//
// Exactness: pair selection uses exact integer weights; only the geometric
// skip length uses floating point (p_eff as a double), whose rounding is
// ~1 ulp -- negligible against Monte-Carlo noise, and validated against
// the exact engines in the test suite.
//
// When it wins: the cost per *effective* interaction is O(|Q|) (the free
// states' columns are dense for the paper's protocol), versus the agent
// engine's O(1) per *drawn* interaction, so the speedup is roughly
// (null ratio) / |Q| x (agent step cost).  For the paper's protocol the
// null ratio plateaus around 25-75 at large k (free-agent flips are
// effective and scale with the total), giving a measured ~2x at k = 20
// and parity elsewhere -- the ablation_engines bench reports the numbers.
// For protocols that approach silence (rare effective pairs, e.g. the
// endgame of leader election on huge n) the ratio, and the win, is
// unbounded.

#pragma once

#include <cstdint>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

class JumpSimulator {
 public:
  JumpSimulator(const TransitionTable& table, Counts initial,
                std::uint64_t seed);

  /// Advances to (and applies) the next effective interaction, adding the
  /// skipped null draws to interactions().  Returns false iff the
  /// configuration has no effective pairs at all (it is silent; calling
  /// step again keeps returning false without advancing).
  bool step(StabilityOracle& oracle);

  /// Runs until the oracle reports stability, the interaction budget is
  /// exhausted, or the configuration goes silent without satisfying the
  /// oracle (in which case stabilized = false).  The budget is exact:
  /// `interactions()` never advances past it.  When a geometric null run
  /// would carry the counter beyond the budget, the run is truncated at the
  /// boundary without applying the effective pair -- which is exactly the
  /// right distribution, because the geometric is memoryless: the first
  /// `remaining` draws of a longer-than-remaining null run are just
  /// `remaining` null draws.  (Earlier versions documented the overshoot as
  /// a known wart; it also made chunked wall-clock runs overdraw their
  /// grants.)
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress (e.g. a quiescence
  /// lull spanning the chunk boundary).
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  /// Records, into `marks`, the interaction index of every increase of
  /// `state`'s count (one entry per unit of increase).  Null skips cannot
  /// change counts, so the indices recorded at effective draws are exact --
  /// identical in distribution to the agent engine's observer-based marks.
  /// Pass nullptr to stop recording.
  void set_watch(StateId state, std::vector<std::uint64_t>* marks) {
    PPK_EXPECTS(marks == nullptr || state < counts_.size());
    watch_state_ = state;
    watch_marks_ = marks;
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink sees each null run (before the concluding pair is applied, so
  /// timeline samples inside the run are exact) and each effective
  /// interaction; it must outlive the simulator.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Serializable mid-run state: counts, RNG position and interaction
  /// counters (contract in pp/snapshot.hpp).  The weight caches are derived
  /// state and rebuilt by restore().  This engine carries no null-run
  /// remainder across advances (truncation relies on the geometric's
  /// memorylessness), so nothing else needs saving.
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.  Watch hooks are not part of a
  /// snapshot -- re-attach them after restoring.
  void restore(const Snapshot& snap);

  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

  /// Exact total weight of effective ordered pairs (out of n(n-1)).
  [[nodiscard]] std::uint64_t effective_weight() const noexcept {
    return total_weight_;
  }

 private:
  /// Column weight of state q against initiator row p (clamped to 0 for
  /// the empty-diagonal case; only used on rows with counts_[p] >= 1,
  /// where it matches the signed row_sum_ terms exactly).
  [[nodiscard]] std::uint64_t column_weight(StateId p, StateId q) const {
    if (!table_->effective(p, q)) return 0;
    const std::uint32_t c = counts_[q];
    if (p == q) return c == 0 ? 0 : c - 1;
    return c;
  }

  void rebuild_weights();
  void apply_count_change(StateId state, std::int64_t delta);

  /// One bounded advance: skips nulls and applies the next effective pair,
  /// but never moves interactions() forward by more than `budget`.  If the
  /// geometric null run reaches the budget, exactly `budget` nulls are
  /// consumed and no pair is applied (exact: the geometric is memoryless).
  /// Returns false iff the configuration is silent (nothing advanced).
  bool step_within(StabilityOracle& oracle, std::uint64_t budget);

  /// Rows p with eff(p, u), per column u -- the protocol's effective-pair
  /// structure is sparse (for the paper's protocol each state reacts with
  /// only a handful of others), so count updates touch few rows.
  std::vector<std::vector<StateId>> rows_of_column_;
  /// Columns q with eff(p, q), per row p (responder scan support).
  std::vector<std::vector<StateId>> columns_of_row_;

  const TransitionTable* table_;
  Counts counts_;
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
  /// row_weight_[p] = c_p * sum_q eff(p,q) * (c_q - [p==q]).
  std::vector<std::uint64_t> row_weight_;
  /// row_sum_[p] = sum_q eff(p,q) * (c_q - [p==q]); signed because the
  /// diagonal term is -1 while c_p == 0 (the weight clamps it to 0).
  std::vector<std::int64_t> row_sum_;
  std::uint64_t total_weight_ = 0;
  StateId watch_state_ = 0;
  std::vector<std::uint64_t>* watch_marks_ = nullptr;
  obs::ObsSink* obs_ = nullptr;
};

}  // namespace ppk::pp
