#include "pp/agent_simulator.hpp"

#include "obs/sink.hpp"

namespace ppk::pp {

void AgentSimulator::apply_pair(std::uint32_t i, std::uint32_t j,
                                StabilityOracle* oracle, bool* effective) {
  const StateId p = population_.state_of(i);
  const StateId q = population_.state_of(j);
  ++interactions_;
  if (!table_->effective(p, q)) {
    *effective = false;
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
    return;
  }
  const Transition& t = table_->apply(p, q);
  population_.apply(i, j, t);
  ++effective_;
  *effective = true;
  if (oracle != nullptr) {
    oracle->on_transition(p, q, t.initiator, t.responder);
  }
  if (observer_) {
    observer_(SimEvent{interactions_, i, j, p, q, t.initiator, t.responder});
  }
  PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
}

bool AgentSimulator::step(StabilityOracle& oracle) {
  const std::uint32_t n = population_.size();
  const auto i = static_cast<std::uint32_t>(rng_.below(n));
  auto j = static_cast<std::uint32_t>(rng_.below(n - 1));
  if (j >= i) ++j;  // uniform over ordered pairs of distinct agents
  bool effective = false;
  apply_pair(i, j, &oracle, &effective);
  return effective;
}

SimResult AgentSimulator::run(StabilityOracle& oracle,
                              std::uint64_t max_interactions) {
  oracle.reset(population_.counts());
  return resume(oracle, max_interactions);
}

SimResult AgentSimulator::resume(StabilityOracle& oracle,
                                 std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    step(oracle);
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

Snapshot AgentSimulator::snapshot() const {
  SnapshotWriter w("agent");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.states(population_.states());
  return std::move(w).take();
}

void AgentSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "agent");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  auto states = r.states(table_->num_states());
  r.finish();
  PPK_EXPECTS(states.size() == population_.size());
  population_.restore_states(std::move(states));
}

std::uint64_t AgentSimulator::replay(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& schedule) {
  std::uint64_t effective_count = 0;
  for (const auto& [i, j] : schedule) {
    PPK_EXPECTS(i != j);
    PPK_EXPECTS(i < population_.size() && j < population_.size());
    bool effective = false;
    apply_pair(i, j, nullptr, &effective);
    if (effective) ++effective_count;
  }
  return effective_count;
}

}  // namespace ppk::pp
