#include "pp/jump_simulator.hpp"

#include <cmath>

#include "obs/sink.hpp"

namespace ppk::pp {

JumpSimulator::JumpSimulator(const TransitionTable& table, Counts initial,
                             std::uint64_t seed)
    : table_(&table), counts_(std::move(initial)), rng_(seed) {
  PPK_EXPECTS(counts_.size() == table.num_states());
  n_ = 0;
  for (auto c : counts_) n_ += c;
  PPK_EXPECTS(n_ >= 2);

  const StateId num_states = table.num_states();
  rows_of_column_.resize(num_states);
  columns_of_row_.resize(num_states);
  for (StateId p = 0; p < num_states; ++p) {
    for (StateId q = 0; q < num_states; ++q) {
      if (!table.effective(p, q)) continue;
      columns_of_row_[p].push_back(q);
      rows_of_column_[q].push_back(p);
    }
  }
  rebuild_weights();
}

void JumpSimulator::rebuild_weights() {
  const StateId num_states = table_->num_states();
  row_sum_.assign(num_states, 0);
  row_weight_.assign(num_states, 0);
  total_weight_ = 0;
  for (StateId p = 0; p < num_states; ++p) {
    // Signed sum: the diagonal term c_p - 1 is -1 when c_p == 0; the
    // incremental updates in apply_count_change() track exactly this
    // signed quantity, and the row weight clamps it via the c_p factor.
    std::int64_t signed_sum = 0;
    for (StateId q : columns_of_row_[p]) {
      signed_sum += static_cast<std::int64_t>(counts_[q]) - (p == q ? 1 : 0);
    }
    row_sum_[p] = signed_sum;
    row_weight_[p] =
        counts_[p] == 0
            ? 0
            : counts_[p] * static_cast<std::uint64_t>(row_sum_[p]);
    total_weight_ += row_weight_[p];
  }
}

void JumpSimulator::apply_count_change(StateId state, std::int64_t delta) {
  counts_[state] =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(counts_[state]) +
                                 delta);
  // Column `state` contributes to every row p with eff(p, state); keep
  // row_weight_ and the total in sync as the sums move.
  for (StateId p : rows_of_column_[state]) {
    row_sum_[p] += delta;
    const std::uint64_t old_weight = row_weight_[p];
    row_weight_[p] =
        counts_[p] == 0
            ? 0
            : counts_[p] * static_cast<std::uint64_t>(row_sum_[p]);
    total_weight_ += row_weight_[p] - old_weight;
  }
  // The c_p factor of row `state` itself changed as well.
  const std::uint64_t old_weight = row_weight_[state];
  row_weight_[state] =
      counts_[state] == 0
          ? 0
          : counts_[state] * static_cast<std::uint64_t>(row_sum_[state]);
  total_weight_ += row_weight_[state] - old_weight;
}

bool JumpSimulator::step(StabilityOracle& oracle) {
  return step_within(oracle, UINT64_MAX);
}

bool JumpSimulator::step_within(StabilityOracle& oracle, std::uint64_t budget) {
  if (total_weight_ == 0) return false;  // silent configuration

  // Skip the geometric run of null interactions.
  const double p_eff = static_cast<double>(total_weight_) /
                       (static_cast<double>(n_) * static_cast<double>(n_ - 1));
  const std::uint64_t nulls = rng_.geometric(p_eff);
  if (nulls >= budget) {
    // The null run carries past the budget: consume exactly `budget` nulls
    // and stop at the boundary without applying a pair.  Memorylessness
    // makes this exact -- the truncated run's first `budget` draws are
    // distributed as `budget` independent null draws, and the next
    // step_within() call re-samples the wait from scratch.
    interactions_ += budget;
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_, budget,
                               obs::AdvanceKind::kJump));
    return true;
  }
  interactions_ += nulls + 1;
  ++effective_;
  // Counts are untouched during the null run, so reporting it before the
  // pair is applied gives the timeline exact configurations at boundaries
  // inside the run.
  if (nulls > 0) {
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_ - 1, nulls,
                               obs::AdvanceKind::kJump));
  }

  // Sample the effective ordered pair with exact integer weights.
  std::uint64_t u = rng_.below(total_weight_);
  StateId p = 0;
  for (;; ++p) {
    if (u < row_weight_[p]) break;
    u -= row_weight_[p];
  }
  // u is uniform on [0, c_p * row_sum_p); reduce to a uniform responder
  // draw (row_weight is an exact multiple of row_sum, so % is unbiased).
  std::uint64_t v = u % static_cast<std::uint64_t>(row_sum_[p]);
  StateId q = 0;
  for (StateId candidate : columns_of_row_[p]) {
    const std::uint64_t w = column_weight(p, candidate);
    if (v < w) {
      q = candidate;
      break;
    }
    v -= w;
  }

  const Transition& t = table_->apply(p, q);
  apply_count_change(p, -1);
  apply_count_change(q, -1);
  apply_count_change(t.initiator, +1);
  apply_count_change(t.responder, +1);

  if (watch_marks_ != nullptr) {
    const int delta = (t.initiator == watch_state_ ? 1 : 0) +
                      (t.responder == watch_state_ ? 1 : 0) -
                      (p == watch_state_ ? 1 : 0) -
                      (q == watch_state_ ? 1 : 0);
    for (int i = 0; i < delta; ++i) watch_marks_->push_back(interactions_);
  }
  oracle.on_transition(p, q, t.initiator, t.responder);
  PPK_OBS_HOOK(obs_,
               on_apply(counts_, interactions_, obs::AdvanceKind::kJump));
  return true;
}

Snapshot JumpSimulator::snapshot() const {
  SnapshotWriter w("jump");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.counts(counts_);
  return std::move(w).take();
}

void JumpSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "jump");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  Counts counts = r.counts();
  r.finish();
  PPK_EXPECTS(counts.size() == counts_.size());
  counts_ = std::move(counts);
  std::uint64_t n = 0;
  for (const std::uint32_t c : counts_) n += c;
  PPK_EXPECTS(n == n_);
  rebuild_weights();
}

SimResult JumpSimulator::run(StabilityOracle& oracle,
                             std::uint64_t max_interactions) {
  oracle.reset(counts_);
  return resume(oracle, max_interactions);
}

SimResult JumpSimulator::resume(StabilityOracle& oracle,
                                std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    const std::uint64_t remaining = max_interactions - (interactions_ - start);
    if (!step_within(oracle, remaining)) break;  // silent, oracle unsatisfied
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

}  // namespace ppk::pp
