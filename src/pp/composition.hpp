// Parallel composition of population protocols: both component protocols
// run on the same interaction sequence, each updating its own component of
// the product state.
//
// This is the standard product construction -- and it is exactly the
// operation the paper's introduction discusses when it explains why
// "repeating the uniform bipartition protocol" does not generalize: the
// *parallel* product of a uniform 2-partition and a uniform 3-partition
// stabilizes both components, but the joint (pair) output is not a uniform
// 6-partition -- the components' group choices are not coordinated.  The
// test suite demonstrates that failure with the exhaustive verifier, which
// is the formal version of the paper's motivating argument.
//
// Output selection: the composite's group map can project to the first
// component, the second, or the pair (first * |groups(second)| + second).

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::pp {

enum class ProductOutput { kFirst, kSecond, kPair };

class ProductProtocol final : public Protocol {
 public:
  /// Both protocols must stay small enough that |Qa| * |Qb| fits StateId
  /// (and, for kPair output, the group product fits GroupId).  The bounds
  /// follow the id types -- widening StateId widens the admissible
  /// compositions with no change here.
  ProductProtocol(const Protocol& a, const Protocol& b, ProductOutput output)
      : a_(&a), b_(&b), output_(output) {
    const std::uint64_t product = static_cast<std::uint64_t>(a.num_states()) *
                                  static_cast<std::uint64_t>(b.num_states());
    PPK_EXPECTS(product <= std::numeric_limits<StateId>::max());
    if (output == ProductOutput::kPair) {
      const std::uint64_t groups =
          static_cast<std::uint64_t>(a.num_groups()) *
          static_cast<std::uint64_t>(b.num_groups());
      PPK_EXPECTS(groups <= std::numeric_limits<GroupId>::max());
    }
  }

  [[nodiscard]] std::string name() const override {
    return a_->name() + " x " + b_->name();
  }

  [[nodiscard]] StateId num_states() const override {
    return static_cast<StateId>(a_->num_states() * b_->num_states());
  }

  [[nodiscard]] StateId initial_state() const override {
    return encode(a_->initial_state(), b_->initial_state());
  }

  [[nodiscard]] Transition delta(StateId p, StateId q) const override {
    const auto [pa, pb] = decode(p);
    const auto [qa, qb] = decode(q);
    const Transition ta = a_->delta(pa, qa);
    const Transition tb = b_->delta(pb, qb);
    return {encode(ta.initiator, tb.initiator),
            encode(ta.responder, tb.responder)};
  }

  [[nodiscard]] GroupId group(StateId s) const override {
    const auto [sa, sb] = decode(s);
    switch (output_) {
      case ProductOutput::kFirst:
        return a_->group(sa);
      case ProductOutput::kSecond:
        return b_->group(sb);
      case ProductOutput::kPair:
        return static_cast<GroupId>(a_->group(sa) * b_->num_groups() +
                                    b_->group(sb));
    }
    PPK_ASSERT(false);
    return 0;
  }

  [[nodiscard]] GroupId num_groups() const override {
    switch (output_) {
      case ProductOutput::kFirst:
        return a_->num_groups();
      case ProductOutput::kSecond:
        return b_->num_groups();
      case ProductOutput::kPair:
        return static_cast<GroupId>(a_->num_groups() * b_->num_groups());
    }
    PPK_ASSERT(false);
    return 0;
  }

  [[nodiscard]] std::string state_name(StateId s) const override {
    const auto [sa, sb] = decode(s);
    return "<" + a_->state_name(sa) + "," + b_->state_name(sb) + ">";
  }

  /// Composes a product state id from component ids.
  [[nodiscard]] StateId encode(StateId sa, StateId sb) const {
    PPK_EXPECTS(sa < a_->num_states() && sb < b_->num_states());
    return static_cast<StateId>(sa * b_->num_states() + sb);
  }

  /// Splits a product state id into component ids.
  [[nodiscard]] std::pair<StateId, StateId> decode(StateId s) const {
    PPK_EXPECTS(s < num_states());
    return {static_cast<StateId>(s / b_->num_states()),
            static_cast<StateId>(s % b_->num_states())};
  }

  [[nodiscard]] const Protocol& first() const noexcept { return *a_; }
  [[nodiscard]] const Protocol& second() const noexcept { return *b_; }

 private:
  const Protocol* a_;
  const Protocol* b_;
  ProductOutput output_;
};

}  // namespace ppk::pp
