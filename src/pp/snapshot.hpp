// Engine snapshots: the serializable mid-run state of a simulator.
//
// Every simulator exposes `snapshot() -> Snapshot` and
// `restore(const Snapshot&)` with one contract: restoring a snapshot into a
// freshly constructed engine (same constructor arguments -- table, initial
// configuration, topology, schedule) and resuming produces a trajectory
// bit-identical to the engine that was snapshotted, provided both are driven
// with the same sequence of resume() grants.  The conformance fuzzer's
// snapshot net (verify/conformance.hpp) enforces this for all engines,
// round-tripping the snapshot through its serialized form.
//
// A snapshot captures *dynamic* state only: per-agent states or counts, the
// RNG stream position(s), interaction counters, pending null-run carry,
// churn bookkeeping.  Everything derivable from constructor arguments
// (transition table, topology, fault schedule, weight caches) is rebuilt by
// restore() instead of serialized, which keeps snapshots small and makes
// them robust against engine-internal cache layout changes.
//
// The payload is a flat vector of 64-bit words with an engine tag; the
// word-level layout is private to each engine and versioned by the tag.
// io/snapshot_io.hpp provides the text serialization used by checkpoints.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

/// A serializable engine state: an engine tag ("agent", "count", ...) plus
/// the engine-defined word payload.
struct Snapshot {
  std::string engine;
  std::vector<std::uint64_t> words;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Append-only builder used by the engines' snapshot() implementations.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string engine) { snap_.engine = std::move(engine); }

  void u64(std::uint64_t value) { snap_.words.push_back(value); }

  /// The full 256-bit RNG state (4 words).
  void rng(const Xoshiro256& rng) {
    for (const std::uint64_t word : rng.state()) u64(word);
  }

  /// Length-prefixed state-count vector.
  void counts(const Counts& counts) {
    u64(counts.size());
    for (const std::uint32_t c : counts) u64(c);
  }

  /// Length-prefixed per-agent state array.
  void states(const std::vector<StateId>& states) {
    u64(states.size());
    for (const StateId s : states) u64(s);
  }

  [[nodiscard]] Snapshot take() && { return std::move(snap_); }

 private:
  Snapshot snap_;
};

/// Cursor over a snapshot payload used by the engines' restore()
/// implementations.  Layout violations are contract violations: a snapshot
/// that reaches restore() has already passed io-level parsing, so a
/// mismatch means the caller paired it with the wrong engine or build.
class SnapshotReader {
 public:
  SnapshotReader(const Snapshot& snap, std::string_view expected_engine)
      : snap_(&snap) {
    PPK_EXPECTS(snap.engine == expected_engine);
  }

  [[nodiscard]] std::uint64_t u64() {
    PPK_EXPECTS(cursor_ < snap_->words.size());
    return snap_->words[cursor_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    const std::uint64_t v = u64();
    PPK_EXPECTS(v <= UINT32_MAX);
    return static_cast<std::uint32_t>(v);
  }

  void rng(Xoshiro256& rng) {
    std::array<std::uint64_t, 4> state{};
    for (auto& word : state) word = u64();
    rng.set_state(state);
  }

  [[nodiscard]] Counts counts() {
    const std::uint64_t len = u64();
    Counts result(len, 0);
    for (auto& c : result) c = u32();
    return result;
  }

  /// In-place variant of counts(): reads the length-prefixed vector into
  /// `out`, whose size must match the stored length (the engine knows its
  /// state-space size from construction, so a mismatch is a wrong-engine
  /// pairing).  Keeps restore() allocation-free.
  void counts_into(Counts& out) {
    const std::uint64_t len = u64();
    PPK_EXPECTS(len == out.size());
    for (auto& c : out) c = u32();
  }

  [[nodiscard]] std::vector<StateId> states(StateId num_states) {
    const std::uint64_t len = u64();
    std::vector<StateId> result(len, 0);
    for (auto& s : result) {
      const std::uint64_t v = u64();
      PPK_EXPECTS(v < num_states);
      result_assign(s, v);
    }
    return result;
  }

  /// Call last: the payload must be fully consumed.
  void finish() const { PPK_EXPECTS(cursor_ == snap_->words.size()); }

 private:
  static void result_assign(StateId& s, std::uint64_t v) {
    s = static_cast<StateId>(v);
  }

  const Snapshot* snap_;
  std::size_t cursor_ = 0;
};

}  // namespace ppk::pp
