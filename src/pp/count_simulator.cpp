#include "pp/count_simulator.hpp"

namespace ppk::pp {

StateId CountSimulator::sample_state(std::uint64_t total,
                                     StateId exclude_one_of) {
  std::uint64_t u = rng_.below(total);
  for (StateId s = 0; s < counts_.size(); ++s) {
    std::uint64_t c = counts_[s];
    if (s == exclude_one_of) --c;  // one agent already chosen from s
    if (u < c) return s;
    u -= c;
  }
  PPK_ASSERT(false);  // unreachable: weights sum to `total`
  return 0;
}

bool CountSimulator::step(StabilityOracle& oracle) {
  ++interactions_;
  const StateId p = sample_state(n_, table_->num_states());
  const StateId q = sample_state(n_ - 1, p);
  if (!table_->effective(p, q)) return false;
  const Transition& t = table_->apply(p, q);
  --counts_[p];
  --counts_[q];
  ++counts_[t.initiator];
  ++counts_[t.responder];
  ++effective_;
  oracle.on_transition(p, q, t.initiator, t.responder);
  return true;
}

SimResult CountSimulator::run(StabilityOracle& oracle,
                              std::uint64_t max_interactions) {
  oracle.reset(counts_);
  return resume(oracle, max_interactions);
}

SimResult CountSimulator::resume(StabilityOracle& oracle,
                                 std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    step(oracle);
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

}  // namespace ppk::pp
