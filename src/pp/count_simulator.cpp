#include "pp/count_simulator.hpp"

#include "obs/sink.hpp"

namespace ppk::pp {

bool CountSimulator::step(StabilityOracle& oracle) {
  ++interactions_;
  // Initiator: weight c[s].  Responder: weight c[s] - [s == p], realized by
  // conceptually removing the initiator from the tree for the second draw.
  const StateId p = static_cast<StateId>(fenwick_.sample(rng_.below(n_)));
  fenwick_.add(p, -1);
  const StateId q = static_cast<StateId>(fenwick_.sample(rng_.below(n_ - 1)));
  fenwick_.add(p, +1);
  if (!table_->effective(p, q)) {
    PPK_OBS_HOOK(obs_, on_step(counts_, interactions_, false));
    return false;
  }
  const Transition& t = table_->apply(p, q);
  --counts_[p];
  --counts_[q];
  ++counts_[t.initiator];
  ++counts_[t.responder];
  fenwick_.add(p, -1);
  fenwick_.add(q, -1);
  fenwick_.add(t.initiator, +1);
  fenwick_.add(t.responder, +1);
  ++effective_;
  if (watch_marks_ != nullptr) {
    const int delta = (t.initiator == watch_state_ ? 1 : 0) +
                      (t.responder == watch_state_ ? 1 : 0) -
                      (p == watch_state_ ? 1 : 0) -
                      (q == watch_state_ ? 1 : 0);
    for (int i = 0; i < delta; ++i) watch_marks_->push_back(interactions_);
  }
  oracle.on_transition(p, q, t.initiator, t.responder);
  PPK_OBS_HOOK(obs_, on_step(counts_, interactions_, true));
  return true;
}

Snapshot CountSimulator::snapshot() const {
  SnapshotWriter w("count");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.counts(counts_);
  return std::move(w).take();
}

void CountSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "count");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  r.counts_into(counts_);
  r.finish();
  fenwick_.rebuild(counts_);
  PPK_EXPECTS(fenwick_.total() == n_);
}

SimResult CountSimulator::run(StabilityOracle& oracle,
                              std::uint64_t max_interactions) {
  oracle.reset(counts_);
  return resume(oracle, max_interactions);
}

SimResult CountSimulator::resume(StabilityOracle& oracle,
                                 std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    step(oracle);
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

}  // namespace ppk::pp
