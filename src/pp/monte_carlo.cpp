#include "pp/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/metrics.hpp"
#include "pp/adversarial.hpp"
#include "obs/sink.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ppk::pp {

double MonteCarloResult::mean_interactions() const {
  if (trials.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& t : trials) sum += static_cast<double>(t.interactions);
  return sum / static_cast<double>(trials.size());
}

double MonteCarloResult::stddev_interactions() const {
  if (trials.size() < 2) return 0.0;
  const double mean = mean_interactions();
  double ss = 0.0;
  for (const auto& t : trials) {
    const double d = static_cast<double>(t.interactions) - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(trials.size() - 1));
}

std::uint32_t MonteCarloResult::stabilized_count() const {
  std::uint32_t count = 0;
  for (const auto& t : trials) count += t.stabilized ? 1u : 0u;
  return count;
}

namespace {

/// Runs one engine to stability under both limits.  Without a wall-clock
/// limit this is a single run() call; with one, the budget is granted in
/// chunks so the clock is consulted without touching the engines' hot
/// loops.  The first chunk uses run() (which resets the oracle from the
/// initial configuration); every later chunk uses resume(), so both the
/// interaction sequence and the oracle's progress -- e.g. a quiescence
/// lull spanning a chunk boundary -- are exactly those of an unchunked run.
template <typename Sim>
void run_bounded(Sim& sim, StabilityOracle& oracle,
                 const MonteCarloOptions& options, TrialResult* out) {
  if (!options.wall_clock_limit_seconds) {
    const SimResult r = sim.run(oracle, options.max_interactions);
    out->interactions = r.interactions;
    out->effective = r.effective;
    out->stabilized = r.stabilized;
    // A run that ended short of the budget without stabilizing went silent
    // with the oracle unsatisfied (jump engine): a dead configuration.
    out->stalled = !r.stabilized && r.interactions < options.max_interactions;
    return;
  }
  const Stopwatch clock;
  constexpr std::uint64_t kChunk = 1ULL << 22;  // ~4M pairs per clock check
  std::uint64_t remaining = options.max_interactions;
  bool first = true;
  while (true) {
    const std::uint64_t grant = std::min<std::uint64_t>(kChunk, remaining);
    const SimResult r =
        first ? sim.run(oracle, grant) : sim.resume(oracle, grant);
    first = false;
    out->interactions += r.interactions;
    out->effective += r.effective;
    if (r.stabilized) {
      out->stabilized = true;
      return;
    }
    remaining -= r.interactions;
    if (remaining == 0) return;               // interaction budget exhausted
    if (r.interactions < grant) {             // engine stalled (silent)
      out->stalled = true;
      return;
    }
    if (clock.seconds() >= *options.wall_clock_limit_seconds) {
      out->timed_out = true;
      return;
    }
  }
}

/// Stamps the per-trial outcome metrics into the trial's registry.
void record_trial_metrics(obs::MetricsRegistry& metrics,
                          const TrialResult& result) {
  metrics.counter("trials").inc();
  if (result.stabilized) metrics.counter("trials.stabilized").inc();
  if (result.timed_out) metrics.counter("trials.timed_out").inc();
  if (result.stalled) metrics.counter("trials.stalled").inc();
  metrics.histogram("trial.interactions").record(result.interactions);
  metrics.histogram("trial.effective").record(result.effective);
}

TrialResult run_one_trial(const TransitionTable& table, const Counts& initial,
                          const OracleFactory& make_oracle,
                          const MonteCarloOptions& options, std::uint64_t seed,
                          obs::MetricsRegistry* trial_metrics,
                          const Protocol* protocol) {
  TrialResult result;
  auto oracle = make_oracle();
  PPK_ASSERT(oracle != nullptr);
  std::optional<obs::ObsSink> sink;
  if (trial_metrics != nullptr) sink.emplace(*trial_metrics);

  std::uint64_t n = 0;
  for (auto c : initial) n += c;

  if (options.fairness.needs_adversarial_engine()) {
    // Only the agent-level scheduler can realize a non-uniform fairness
    // policy; it needs the protocol's group map for its adversary probes.
    PPK_EXPECTS(protocol != nullptr);
    PPK_EXPECTS(!options.watch_state);
    PPK_EXPECTS(options.engine == Engine::kAuto ||
                options.engine == Engine::kAgentArray);
    std::optional<InteractionGraph> graph;
    if (options.graph) {
      graph.emplace(
          options.graph(derive_stream_seed(seed, kGraphTopologyStream)));
      PPK_EXPECTS(graph->num_agents() == n);
    }
    AdversarialSimulator sim(*protocol, table, Population(initial),
                             options.fairness, seed,
                             graph ? &*graph : nullptr);
    if (sink) sim.set_obs_sink(&*sink);
    run_bounded(sim, *oracle, options, &result);
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }

  const Engine engine =
      resolve_engine(options.engine, n, options.watch_state.has_value(),
                     static_cast<bool>(options.graph));
  // The batch engines aggregate draws; they cannot produce per-interaction
  // watch marks, and quietly returning none would corrupt downstream
  // statistics.  kAuto never picks them with a watch set, so reaching this
  // combination means the caller forced it.
  PPK_EXPECTS(!((engine == Engine::kBatch ||
                 engine == Engine::kBatchSharded) &&
                options.watch_state));
  // A topology that no engine consults (or a graph engine with no
  // topology) is a configuration error, not a silently different
  // experiment.
  const bool graph_engine =
      engine == Engine::kGraph || engine == Engine::kGraphJump;
  PPK_EXPECTS(graph_engine == static_cast<bool>(options.graph));

  if (graph_engine) {
    // The topology gets its own derived stream so randomized graphs are
    // independent of the interaction draws (and of each other across
    // trials) while staying a pure function of (master_seed, trial).
    InteractionGraph graph =
        options.graph(derive_stream_seed(seed, kGraphTopologyStream));
    PPK_EXPECTS(graph.num_agents() == n);
    if (engine == Engine::kGraph) {
      // The per-draw engine has no watch hook; the live-edge engine
      // records exact marks, so kAuto (and explicit kGraphJump) covers
      // watched topology runs.
      PPK_EXPECTS(!options.watch_state);
      GraphSimulator sim(table, std::move(graph), Population(initial), seed);
      if (sink) sim.set_obs_sink(&*sink);
      run_bounded(sim, *oracle, options, &result);
    } else {
      GraphJumpSimulator sim(table, std::move(graph), Population(initial),
                             seed);
      if (options.watch_state) {
        sim.set_watch(*options.watch_state, &result.watch_marks);
      }
      if (sink) sim.set_obs_sink(&*sink);
      run_bounded(sim, *oracle, options, &result);
    }
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }

  if (engine == Engine::kCountVector) {
    CountSimulator sim(table, initial, seed);
    if (options.watch_state) {
      sim.set_watch(*options.watch_state, &result.watch_marks);
    }
    if (sink) sim.set_obs_sink(&*sink);
    run_bounded(sim, *oracle, options, &result);
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }
  if (engine == Engine::kJump) {
    JumpSimulator sim(table, initial, seed);
    if (options.watch_state) {
      sim.set_watch(*options.watch_state, &result.watch_marks);
    }
    if (sink) sim.set_obs_sink(&*sink);
    run_bounded(sim, *oracle, options, &result);
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }
  if (engine == Engine::kBatch) {
    BatchSimulator sim(table, initial, seed);
    if (sink) sim.set_obs_sink(&*sink);
    run_bounded(sim, *oracle, options, &result);
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }
  if (engine == Engine::kBatchSharded) {
    BatchShardedSimulator sim(table, initial, seed, options.engine_threads);
    if (sink) sim.set_obs_sink(&*sink);
    run_bounded(sim, *oracle, options, &result);
    if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
    return result;
  }

  AgentSimulator sim(table, Population(initial), seed);
  if (sink) sim.set_obs_sink(&*sink);
  if (options.watch_state) {
    const StateId watched = *options.watch_state;
    sim.set_observer([&result, watched](const SimEvent& event) {
      // The watched state's count increases iff an agent enters it while
      // its partner does not simultaneously leave it (and vice versa).
      const int delta = (event.p_next == watched ? 1 : 0) +
                        (event.q_next == watched ? 1 : 0) -
                        (event.p == watched ? 1 : 0) -
                        (event.q == watched ? 1 : 0);
      for (int i = 0; i < delta; ++i) {
        result.watch_marks.push_back(event.interaction);
      }
    });
  }
  run_bounded(sim, *oracle, options, &result);
  if (trial_metrics != nullptr) record_trial_metrics(*trial_metrics, result);
  return result;
}

}  // namespace

Engine resolve_engine(Engine engine, std::uint64_t n, bool watch,
                      bool graph) {
  if (engine != Engine::kAuto) return engine;
  // With a topology set the choice is between the two graph engines, and
  // the live-edge engine dominates for unattended runs: exact watch marks,
  // identical distribution, and O(1) wedge detection instead of budget
  // exhaustion.  kGraph remains an explicit choice for per-draw
  // observability.
  if (graph) return Engine::kGraphJump;
  if (watch) {
    // Exact marks require pairwise draws; past cache-friendly populations
    // the count engine's O(log |Q|) steps beat chasing n agent slots.
    return n < 4096 ? Engine::kAgentArray : Engine::kCountVector;
  }
  // The agent array's O(1) steps win while the population is small enough
  // that batching overhead (O(|Q|^2) RNG work per ~sqrt(n) interactions)
  // dominates; beyond that the batch engine's amortized cost vanishes.
  // Past the log-factorial table bound the plain batch engine degrades to
  // live lgamma per hypergeometric probe; the sharded SoA engine keeps the
  // shared table + Stirling tail and takes over (docs/engines.md).
  if (n < 1024) return Engine::kAgentArray;
  return n > kShardedCrossover ? Engine::kBatchSharded : Engine::kBatch;
}

namespace {

MonteCarloResult run_monte_carlo_impl(const TransitionTable& table,
                                      const Counts& initial,
                                      const OracleFactory& make_oracle,
                                      const MonteCarloOptions& options,
                                      const Protocol* protocol) {
  PPK_EXPECTS(options.trials > 0);
  MonteCarloResult result;
  result.trials.resize(options.trials);

  std::mutex metrics_mutex;
  auto body = [&](std::size_t trial) {
    const std::uint64_t seed = derive_stream_seed(options.master_seed, trial);
    if (options.metrics == nullptr) {
      result.trials[trial] = run_one_trial(table, initial, make_oracle,
                                           options, seed, nullptr, protocol);
      return;
    }
    // Each trial fills a private registry; folding into the shared one is
    // the only synchronized step.  merge() is commutative, so the aggregate
    // is bit-identical no matter which trial's merge wins a race.
    obs::MetricsRegistry trial_metrics;
    result.trials[trial] = run_one_trial(table, initial, make_oracle, options,
                                         seed, &trial_metrics, protocol);
    const std::lock_guard<std::mutex> lock(metrics_mutex);
    options.metrics->merge(trial_metrics);
  };

  if (options.threads == 1 || options.trials == 1) {
    for (std::size_t t = 0; t < options.trials; ++t) body(t);
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for_index(options.trials, body);
  }
  return result;
}

}  // namespace

MonteCarloResult run_monte_carlo(const TransitionTable& table,
                                 const Counts& initial,
                                 const OracleFactory& make_oracle,
                                 const MonteCarloOptions& options) {
  return run_monte_carlo_impl(table, initial, make_oracle, options, nullptr);
}

MonteCarloResult run_monte_carlo(const Protocol& protocol,
                                 const TransitionTable& table, std::uint32_t n,
                                 const OracleFactory& make_oracle,
                                 const MonteCarloOptions& options) {
  Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  return run_monte_carlo_impl(table, initial, make_oracle, options,
                              &protocol);
}

}  // namespace ppk::pp
