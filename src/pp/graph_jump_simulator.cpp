#include "pp/graph_jump_simulator.hpp"

#include <limits>

#include "obs/sink.hpp"

namespace ppk::pp {

namespace {
constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();
}  // namespace

GraphJumpSimulator::GraphJumpSimulator(const TransitionTable& table,
                                       InteractionGraph graph,
                                       Population population,
                                       std::uint64_t seed)
    : table_(&table),
      graph_(std::move(graph)),
      population_(std::move(population)),
      rng_(seed) {
  PPK_EXPECTS(graph_.num_agents() == population_.size());
  PPK_EXPECTS(!graph_.edges().empty());
  // Directed edge ids are 2 * edge + orientation in a uint32.
  PPK_EXPECTS(graph_.edges().size() <= (kNoPos - 1) / 2);

  const std::uint32_t n = graph_.num_agents();
  const auto& edges = graph_.edges();

  // CSR adjacency, two passes: degree count, then slot fill.
  adj_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : edges) {
    ++adj_offset_[a + 1];
    ++adj_offset_[b + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) adj_offset_[v + 1] += adj_offset_[v];
  adj_edge_.resize(edges.size() * 2);
  std::vector<std::uint64_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    adj_edge_[cursor[edges[e].first]++] = e;
    adj_edge_[cursor[edges[e].second]++] = e;
  }

  live_.reserve(edges.size());
  rebuild_live();
}

void GraphJumpSimulator::rebuild_live() {
  const auto& edges = graph_.edges();
  live_.clear();
  pos_.assign(edges.size() * 2, kNoPos);
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto& [a, b] = edges[e];
    const StateId sa = population_.state_of(a);
    const StateId sb = population_.state_of(b);
    set_live(2 * e, table_->effective(sa, sb));
    set_live(2 * e + 1, table_->effective(sb, sa));
  }
}

Snapshot GraphJumpSimulator::snapshot() const {
  SnapshotWriter w("graph-jump");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.u64(has_pending_ ? 1 : 0);
  w.u64(pending_nulls_);
  w.states(population_.states());
  // The live list's *order* is sampling state, not a derived cache: draws
  // index into it uniformly, and swap-removal makes the order history
  // -dependent, so a canonical rebuild would redirect the next draw and
  // break restore()'s bit-identity contract.  Serialize it verbatim.
  w.u64(live_.size());
  for (const std::uint32_t d : live_) w.u64(d);
  return std::move(w).take();
}

void GraphJumpSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "graph-jump");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  const std::uint64_t pending_flag = r.u64();
  PPK_EXPECTS(pending_flag <= 1);
  has_pending_ = pending_flag == 1;
  pending_nulls_ = r.u64();
  auto states = r.states(table_->num_states());
  const std::uint64_t num_directed = graph_.edges().size() * 2;
  const std::uint64_t num_live = r.u64();
  PPK_EXPECTS(num_live <= num_directed);
  std::vector<std::uint32_t> live(num_live, 0);
  for (auto& d : live) d = r.u32();
  r.finish();
  PPK_EXPECTS(states.size() == population_.size());
  population_.restore_states(std::move(states));
  live_ = std::move(live);
  pos_.assign(num_directed, kNoPos);
  for (std::uint32_t i = 0; i < live_.size(); ++i) {
    const std::uint32_t d = live_[i];
    PPK_EXPECTS(d < num_directed && pos_[d] == kNoPos);
    pos_[d] = i;
  }
  // The serialized order is trusted; the *membership* is not -- it must be
  // exactly the set of effective directed edges under the restored states.
  const auto& edges = graph_.edges();
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto& [a, b] = edges[e];
    const StateId sa = population_.state_of(a);
    const StateId sb = population_.state_of(b);
    PPK_EXPECTS((pos_[2 * e] != kNoPos) == table_->effective(sa, sb));
    PPK_EXPECTS((pos_[2 * e + 1] != kNoPos) == table_->effective(sb, sa));
  }
}

void GraphJumpSimulator::set_live(std::uint32_t d, bool live) {
  const std::uint32_t p = pos_[d];
  if (live) {
    if (p != kNoPos) return;
    pos_[d] = static_cast<std::uint32_t>(live_.size());
    live_.push_back(d);
    return;
  }
  if (p == kNoPos) return;
  const std::uint32_t moved = live_.back();
  live_[p] = moved;
  pos_[moved] = p;
  live_.pop_back();
  pos_[d] = kNoPos;
}

void GraphJumpSimulator::refresh_incident(std::uint32_t v) {
  const auto& edges = graph_.edges();
  const std::uint64_t begin = adj_offset_[v];
  const std::uint64_t end = adj_offset_[v + 1];
  for (std::uint64_t s = begin; s < end; ++s) {
    const std::uint32_t e = adj_edge_[s];
    const auto& [a, b] = edges[e];
    const StateId sa = population_.state_of(a);
    const StateId sb = population_.state_of(b);
    set_live(2 * e, table_->effective(sa, sb));
    set_live(2 * e + 1, table_->effective(sb, sa));
  }
}

bool GraphJumpSimulator::step(StabilityOracle& oracle) {
  return step_within(oracle, UINT64_MAX);
}

bool GraphJumpSimulator::step_within(StabilityOracle& oracle,
                                     std::uint64_t budget) {
  if (live_.empty()) return false;  // dead-silent on this graph (wedged)

  if (!has_pending_) {
    // Each drawn pair is effective with probability L / 2m (uniform
    // directed edge, live iff effective), so the null-run length ahead is
    // geometric(p_eff).  Liveness cannot change during the run, so the
    // draw stays exact even if a budget boundary splits it.
    const double p_eff =
        static_cast<double>(live_.size()) /
        (2.0 * static_cast<double>(graph_.edges().size()));
    pending_nulls_ = rng_.geometric(p_eff);
    has_pending_ = true;
  }
  if (pending_nulls_ >= budget) {
    // Consume exactly `budget` nulls and park the remainder for the next
    // grant; the RNG stream is untouched, so chunked runs stay
    // bit-identical to unchunked ones.
    interactions_ += budget;
    pending_nulls_ -= budget;
    PPK_OBS_HOOK(obs_, on_skip(population_.counts(), interactions_, budget,
                               obs::AdvanceKind::kJump));
    return true;
  }
  const std::uint64_t nulls = pending_nulls_;
  pending_nulls_ = 0;
  has_pending_ = false;
  interactions_ += nulls + 1;
  ++effective_;
  // Counts are untouched during the null run, so reporting it before the
  // pair is applied gives the timeline exact configurations at boundaries
  // inside the run.
  if (nulls > 0) {
    PPK_OBS_HOOK(obs_, on_skip(population_.counts(), interactions_ - 1, nulls,
                               obs::AdvanceKind::kJump));
  }

  const std::uint32_t directed =
      live_[rng_.below(static_cast<std::uint64_t>(live_.size()))];
  const auto& [a, b] = graph_.edges()[directed >> 1];
  const std::uint32_t i = (directed & 1u) == 0 ? a : b;
  const std::uint32_t j = (directed & 1u) == 0 ? b : a;
  const StateId p = population_.state_of(i);
  const StateId q = population_.state_of(j);
  const Transition& t = table_->apply(p, q);
  population_.apply(i, j, t);
  refresh_incident(i);
  refresh_incident(j);

  if (watch_marks_ != nullptr) {
    const int delta = (t.initiator == watch_state_ ? 1 : 0) +
                      (t.responder == watch_state_ ? 1 : 0) -
                      (p == watch_state_ ? 1 : 0) -
                      (q == watch_state_ ? 1 : 0);
    for (int w = 0; w < delta; ++w) watch_marks_->push_back(interactions_);
  }
  oracle.on_transition(p, q, t.initiator, t.responder);
  PPK_OBS_HOOK(obs_, on_apply(population_.counts(), interactions_,
                              obs::AdvanceKind::kJump));
  return true;
}

SimResult GraphJumpSimulator::run(StabilityOracle& oracle,
                                  std::uint64_t max_interactions) {
  oracle.reset(population_.counts());
  return resume(oracle, max_interactions);
}

SimResult GraphJumpSimulator::resume(StabilityOracle& oracle,
                                     std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    const std::uint64_t remaining = max_interactions - (interactions_ - start);
    if (!step_within(oracle, remaining)) break;  // wedged, oracle unsatisfied
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

}  // namespace ppk::pp
