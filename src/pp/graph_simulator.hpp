// Simulation on a restricted interaction graph: each step draws an edge
// uniformly at random and then a uniform orientation (initiator /
// responder).  On the complete graph this is exactly the AgentSimulator
// distribution; on sparse graphs it models spatially constrained
// populations (sensors that only meet their neighbours).
//
// Oracle contract (shared by every engine; see pp/stability.hpp): oracles
// are notified of *effective* interactions only -- null draws cannot
// change the configuration, so `on_transition` is never called for them
// and a QuiescenceOracle window counts effective interactions, not drawn
// ones.  On sparse graphs this has a sharp consequence: a wedged
// configuration (every *adjacent* pair null, while non-adjacent effective
// pairs still exist) produces no oracle callbacks at all, so no oracle --
// quiescence included -- can fire, and this engine draws null edges until
// the budget runs out.  That is the intended behavior for a per-draw
// engine, pinned by the stalled-detection regression tests: detecting the
// dead end exactly requires edge-level bookkeeping, which is what
// GraphJumpSimulator (pp/graph_jump_simulator.hpp) provides -- zero live
// directed edges <=> dead-silent on the graph, detected in O(1) instead
// of via budget exhaustion.  Prefer it for wedge-prone sweeps; prefer
// this engine when per-drawn-pair observability (on_step) matters more
// than wedge detection.  docs/topologies.md discusses the phenomenology.

#pragma once

#include <cstdint>

#include "obs/sink.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

class GraphSimulator {
 public:
  GraphSimulator(const TransitionTable& table, InteractionGraph graph,
                 Population population, std::uint64_t seed)
      : table_(&table),
        graph_(std::move(graph)),
        population_(std::move(population)),
        rng_(seed) {
    PPK_EXPECTS(graph_.num_agents() == population_.size());
    PPK_EXPECTS(!graph_.edges().empty());
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified after every drawn interaction (null or effective)
  /// and must outlive the simulator.  Totals count from attachment.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Draws one edge + orientation and applies the rule.  Returns true iff
  /// the interaction was effective.
  bool step(StabilityOracle& oracle) {
    const auto& edges = graph_.edges();
    const auto& [a, b] = edges[rng_.below(edges.size())];
    const bool forward = (rng_() & 1u) == 0;
    const std::uint32_t i = forward ? a : b;
    const std::uint32_t j = forward ? b : a;
    ++interactions_;
    const StateId p = population_.state_of(i);
    const StateId q = population_.state_of(j);
    if (!table_->effective(p, q)) {
      PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
      return false;
    }
    const Transition& t = table_->apply(p, q);
    population_.apply(i, j, t);
    ++effective_;
    oracle.on_transition(p, q, t.initiator, t.responder);
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
    return true;
  }

  /// Runs until the oracle reports stability or `max_interactions` pairs
  /// have been drawn.  The oracle is reset from the current configuration.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX) {
    oracle.reset(population_.counts());
    return resume(oracle, max_interactions);
  }

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks (e.g. for wall-clock checks) without discarding oracle
  /// progress such as a QuiescenceOracle lull spanning the chunk boundary.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX) {
    SimResult result;
    const std::uint64_t start = interactions_;
    const std::uint64_t start_effective = effective_;
    while (!oracle.stable() && interactions_ - start < max_interactions) {
      step(oracle);
    }
    result.interactions = interactions_ - start;
    result.effective = effective_ - start_effective;
    result.stabilized = oracle.stable();
    return result;
  }

  /// Serializable mid-run state: per-agent states, RNG position and
  /// interaction counters (contract in pp/snapshot.hpp).  The topology is a
  /// constructor argument, not dynamic state, so it is not serialized.
  [[nodiscard]] Snapshot snapshot() const {
    SnapshotWriter w("graph");
    w.rng(rng_);
    w.u64(interactions_);
    w.u64(effective_);
    w.states(population_.states());
    return std::move(w).take();
  }

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments (same graph); resuming afterwards is bit-identical to the
  /// snapshotted engine under the same resume() grants.
  void restore(const Snapshot& snap) {
    SnapshotReader r(snap, "graph");
    r.rng(rng_);
    interactions_ = r.u64();
    effective_ = r.u64();
    auto states = r.states(table_->num_states());
    r.finish();
    PPK_EXPECTS(states.size() == population_.size());
    population_.restore_states(std::move(states));
  }

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

  [[nodiscard]] const InteractionGraph& graph() const noexcept {
    return graph_;
  }

 private:
  const TransitionTable* table_;
  InteractionGraph graph_;
  Population population_;
  Xoshiro256 rng_;
  obs::ObsSink* obs_ = nullptr;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

}  // namespace ppk::pp
