#include "pp/batch_sharded_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "obs/sink.hpp"
#include "util/assert.hpp"
#include "util/block_sampler.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace ppk::pp {

namespace {

constexpr std::size_t round_up8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

}  // namespace

BatchShardedSimulator::BatchShardedSimulator(const TransitionTable& table,
                                             Counts initial,
                                             std::uint64_t seed,
                                             std::size_t threads)
    : table_(&table),
      counts_(std::move(initial)),
      rng_(seed),
      log_fact_(0) {
  PPK_EXPECTS(counts_.size() == table.num_states());
  n_ = 0;
  for (auto c : counts_) n_ += c;
  PPK_EXPECTS(n_ >= 2);
  sqrt_n_ = std::sqrt(static_cast<double>(n_));
  log_fact_ = LogFact(n_);
  threads_ = threads == 0 ? std::max<std::size_t>(
                                1, std::thread::hardware_concurrency())
                          : threads;

  const StateId num_states = table.num_states();
  d_padded_ = round_up8(static_cast<std::size_t>(num_states) + 1);
  counts_soa_.assign(d_padded_, 0);
  fresh_.assign(d_padded_, 0);
  touched_.assign(d_padded_, 0);
  count_delta_.assign(d_padded_, 0);
  sync_soa_counts();

  // Effective cells in row-major order (the reference engine's scan order),
  // padded with sentinel cells of weight zero: index `num_states` is the
  // permanently-zero slot in the padded count mirror.
  for (StateId p = 0; p < num_states; ++p) {
    for (StateId q = 0; q < num_states; ++q) {
      if (!table.effective(p, q)) continue;
      cell_p_.push_back(static_cast<std::int32_t>(p));
      cell_q_.push_back(static_cast<std::int32_t>(q));
      cell_diag_.push_back(p == q ? 1u : 0u);
    }
  }
  e_padded_ = round_up8(cell_p_.size());
  cell_p_.resize(e_padded_, static_cast<std::int32_t>(num_states));
  cell_q_.resize(e_padded_, static_cast<std::int32_t>(num_states));
  cell_diag_.resize(e_padded_, 0);

  initiators_.resize(num_states);
  responders_.resize(num_states);
  v_rem_.resize(num_states);

  // Contiguous initiator-row blocks; with |Q| < kShards the tail shards own
  // empty ranges and never draw (their responder split consumes no RNG).
  shards_.resize(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    shard.row_begin = static_cast<StateId>(
        (static_cast<std::uint64_t>(num_states) * s) / kShards);
    shard.row_end = static_cast<StateId>(
        (static_cast<std::uint64_t>(num_states) * (s + 1)) / kShards);
    shard.v_share.assign(num_states, 0);
    shard.delta.assign(d_padded_, 0);
    shard.touched.assign(d_padded_, 0);
  }
}

BatchShardedSimulator::~BatchShardedSimulator() = default;

void BatchShardedSimulator::sync_soa_counts() {
  std::fill(counts_soa_.begin(), counts_soa_.end(), 0);
  std::copy(counts_.begin(), counts_.end(), counts_soa_.begin());
}

std::uint64_t BatchShardedSimulator::effective_weight() const {
  return simd::pair_weight_total(counts_soa_.data(), cell_p_.data(),
                                 cell_q_.data(), cell_diag_.data(),
                                 e_padded_);
}

bool BatchShardedSimulator::step(StabilityOracle& oracle) {
  return advance(oracle, UINT64_MAX) > 0;
}

Snapshot BatchShardedSimulator::snapshot() const {
  SnapshotWriter w("batch-sharded");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.u64(static_cast<std::uint64_t>(mode_));
  w.counts(counts_);
  return std::move(w).take();
}

void BatchShardedSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "batch-sharded");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  const std::uint64_t mode = r.u64();
  PPK_EXPECTS(mode <= static_cast<std::uint64_t>(BatchMode::kForceThin));
  r.counts_into(counts_);
  r.finish();
  std::uint64_t n = 0;
  for (const std::uint32_t c : counts_) n += c;
  PPK_EXPECTS(n == n_);
  mode_ = static_cast<BatchMode>(mode);
  sync_soa_counts();
}

SimResult BatchShardedSimulator::run(StabilityOracle& oracle,
                                     std::uint64_t max_interactions) {
  oracle.reset(counts_);
  return resume(oracle, max_interactions);
}

SimResult BatchShardedSimulator::resume(StabilityOracle& oracle,
                                        std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    const std::uint64_t remaining = max_interactions - (interactions_ - start);
    if (advance(oracle, remaining) == 0) break;  // silent, oracle unsatisfied
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

std::uint64_t BatchShardedSimulator::advance(StabilityOracle& oracle,
                                             std::uint64_t budget) {
  const std::uint64_t weight = effective_weight();
  if (weight == 0) return 0;  // silent configuration
  bool use_batch = false;
  switch (mode_) {
    case BatchMode::kForceBatch:
      use_batch = true;
      break;
    case BatchMode::kForceThin:
      use_batch = false;
      break;
    case BatchMode::kAuto: {
      // Same crossover as the batch engine (see batch_simulator.cpp): one
      // thin advance outruns a whole batch once p_eff * sqrt(n) drops
      // below the measured batch/thin cost ratio.
      constexpr double kThinCrossover = 8.0;
      use_batch = static_cast<double>(weight) * sqrt_n_ >=
                  kThinCrossover * static_cast<double>(n_) *
                      static_cast<double>(n_ - 1);
      break;
    }
  }
  return use_batch ? batch_advance(oracle, budget)
                   : thin_advance(oracle, budget, weight);
}

void BatchShardedSimulator::apply_pair(StateId p, StateId q) {
  const Transition& t = table_->apply(p, q);
  --counts_[p];
  --counts_[q];
  ++counts_[t.initiator];
  ++counts_[t.responder];
  counts_soa_[p] = counts_[p];
  counts_soa_[q] = counts_[q];
  counts_soa_[t.initiator] = counts_[t.initiator];
  counts_soa_[t.responder] = counts_[t.responder];
  ++effective_;
}

std::uint64_t BatchShardedSimulator::thin_advance(StabilityOracle& oracle,
                                                  std::uint64_t budget,
                                                  std::uint64_t weight) {
  const double p_eff =
      static_cast<double>(weight) /
      (static_cast<double>(n_) * static_cast<double>(n_ - 1));
  const std::uint64_t nulls = rng_.geometric(p_eff);
  if (nulls >= budget) {
    interactions_ += budget;
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_, budget,
                               obs::AdvanceKind::kThin));
    return budget;
  }
  interactions_ += nulls + 1;
  if (nulls > 0) {
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_ - 1, nulls,
                               obs::AdvanceKind::kThin));
  }

  // One effective ordered pair with exact integer weights: the SIMD pick
  // selects the same cell a linear scan over the row-major cell list would.
  const std::uint64_t u = rng_.below(weight);
  const std::size_t cell =
      simd::pair_weight_pick(counts_soa_.data(), cell_p_.data(),
                             cell_q_.data(), cell_diag_.data(), e_padded_, u);
  PPK_ASSERT(cell < e_padded_);
  const auto p = static_cast<StateId>(cell_p_[cell]);
  const auto q = static_cast<StateId>(cell_q_[cell]);
  const Transition& t = table_->apply(p, q);  // fetch before counts move
  apply_pair(p, q);
  oracle.on_transition(p, q, t.initiator, t.responder);
  PPK_OBS_HOOK(obs_,
               on_apply(counts_, interactions_, obs::AdvanceKind::kThin));
  return nulls + 1;
}

std::uint64_t BatchShardedSimulator::sample_run_length() {
  // Identical inversion to the batch engine; log-factorials come from the
  // shared table below 2^20 and the Stirling tail above, so the probe cost
  // no longer scales with live lgamma calls.
  const double u = 1.0 - rng_.uniform01();  // in (0, 1]
  const double target = std::log(u);
  const double nd = static_cast<double>(n_);
  const double lg_n = log_fact_(nd);
  const double log_pairs = std::log(nd) + std::log(nd - 1.0);
  const auto log_survival = [&](std::uint64_t l) {
    return lg_n - log_fact_(nd - 2.0 * static_cast<double>(l)) -
           static_cast<double>(l) * log_pairs;
  };
  std::uint64_t lo = 1;  // always survives
  std::uint64_t hi = n_ / 2;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (log_survival(mid) >= target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void BatchShardedSimulator::run_shard(Shard& shard) {
  if (shard.need == 0) return;
  // All of this shard's randomness comes from its derived stream; the root
  // stream is untouched, so the execution schedule cannot alter draws.
  Xoshiro256 rng(shard.seed);
  const StateId num_states = table_->num_states();
  std::uint64_t unmatched = shard.need;
  for (StateId p = shard.row_begin; p < shard.row_end; ++p) {
    std::uint64_t need = initiators_[p];
    if (need == 0) continue;
    std::uint64_t pool = unmatched;
    unmatched -= need;
    for (StateId q = 0; q < num_states && need > 0; ++q) {
      const std::uint64_t m = hypergeometric_blocked(
          rng, pool, shard.v_share[q], need, log_fact_);
      pool -= shard.v_share[q];
      shard.v_share[q] -= static_cast<std::uint32_t>(m);
      need -= m;
      if (m == 0) continue;
      if (table_->effective(p, q)) {
        const Transition& t = table_->apply(p, q);
        const auto delta = static_cast<std::int64_t>(m);
        shard.delta[p] -= delta;
        shard.delta[q] -= delta;
        shard.delta[t.initiator] += delta;
        shard.delta[t.responder] += delta;
        shard.touched[t.initiator] += static_cast<std::uint32_t>(m);
        shard.touched[t.responder] += static_cast<std::uint32_t>(m);
        shard.effective += m;
      } else {
        shard.touched[p] += static_cast<std::uint32_t>(m);
        shard.touched[q] += static_cast<std::uint32_t>(m);
      }
    }
  }
}

std::uint64_t BatchShardedSimulator::batch_advance(StabilityOracle& oracle,
                                                   std::uint64_t budget) {
  const StateId num_states = table_->num_states();
  const std::uint64_t run = sample_run_length();
  // Budget truncation conditions only on "the first `budget` draws are
  // collision-free", exactly as the batch engine (batch_simulator.cpp).
  const std::uint64_t batch = run < budget ? run : budget;
  const bool collision = run < budget;

  // Initiator multiset U then responder multiset V: sequential multivariate
  // hypergeometric decompositions on the root stream (fixed state order).
  std::uint64_t urn_total = n_;
  std::uint64_t draw = batch;
  for (StateId s = 0; s < num_states; ++s) {
    const std::uint64_t x = hypergeometric_blocked(rng_, urn_total,
                                                   counts_[s], draw,
                                                   log_fact_);
    initiators_[s] = static_cast<std::uint32_t>(x);
    urn_total -= counts_[s];
    draw -= x;
  }
  urn_total = n_ - batch;
  draw = batch;
  for (StateId s = 0; s < num_states; ++s) {
    const std::uint64_t left = counts_[s] - initiators_[s];
    const std::uint64_t x =
        hypergeometric_blocked(rng_, urn_total, left, draw, log_fact_);
    responders_[s] = static_cast<std::uint32_t>(x);
    urn_total -= left;
    draw -= x;
  }

  // Level-1 split of the uniform matching: hand each shard's row block its
  // responder share by the same urn decomposition, on the root stream in
  // fixed shard order.  Conditioning on the per-block share counts is
  // exactly the first step of matching rows sequentially, so the
  // contingency-table law is unchanged (see the header).
  std::copy(responders_.begin(), responders_.end(), v_rem_.begin());
  std::uint64_t v_pool = batch;
  for (Shard& shard : shards_) {
    shard.effective = 0;
    std::fill(shard.delta.begin(), shard.delta.end(), 0);
    std::fill(shard.touched.begin(), shard.touched.end(), 0);
    shard.need = 0;
    for (StateId p = shard.row_begin; p < shard.row_end; ++p) {
      shard.need += initiators_[p];
    }
    std::uint64_t urn = v_pool;
    std::uint64_t want = shard.need;
    for (StateId q = 0; q < num_states; ++q) {
      const std::uint64_t x =
          hypergeometric_blocked(rng_, urn, v_rem_[q], want, log_fact_);
      shard.v_share[q] = static_cast<std::uint32_t>(x);
      urn -= v_rem_[q];
      v_rem_[q] -= static_cast<std::uint32_t>(x);
      want -= x;
    }
    v_pool -= shard.need;
  }

  // Level-2: each shard matches its rows against its private share on an
  // independent derived stream.  One root draw seeds them all; from here
  // to the join, the root stream is silent and threads only schedule work.
  const std::uint64_t batch_seed = rng_();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    shards_[s].seed = derive_stream_seed(batch_seed, s);
  }
  const bool parallel = threads_ > 1 && batch >= parallel_grain_;
  if (parallel) {
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
    pool_->parallel_for_index(
        kShards, [this](std::size_t s) { run_shard(shards_[s]); });
  } else {
    for (Shard& shard : shards_) run_shard(shard);
  }

  // Deterministic commutative reduction in fixed shard order: exact
  // integer tile adds, so the merge is bit-identical no matter which
  // thread produced which tile (the obs layer's merge discipline).
  std::fill(count_delta_.begin(), count_delta_.end(), 0);
  std::fill(touched_.begin(), touched_.end(), 0);
  std::uint64_t batch_effective = 0;
  for (const Shard& shard : shards_) {
    simd::add_i64(count_delta_.data(), shard.delta.data(), d_padded_);
    for (StateId i = 0; i < num_states; ++i) touched_[i] += shard.touched[i];
    batch_effective += shard.effective;
  }
  for (StateId s = 0; s < num_states; ++s) {
    counts_[s] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_[s]) + count_delta_[s]);
    counts_soa_[s] = counts_[s];
  }
  interactions_ += batch;
  effective_ += batch_effective;
  std::uint64_t advanced = batch;

  if (collision) {
    // The exact collision interaction, identical in law to the batch
    // engine's: a uniform ordered pair conditioned on touching the batch.
    // Row totals run through the SIMD kernel; the in-row scalar scan
    // resolves the cell with the same in-order semantics.
    const std::uint64_t fresh_total = n_ - 2 * batch;
    const std::uint64_t total_weight =
        n_ * (n_ - 1) - fresh_total * (fresh_total - 1);
    std::uint64_t u = rng_.below(total_weight);
    for (std::size_t i = 0; i < d_padded_; ++i) {
      fresh_[i] = counts_soa_[i] - touched_[i];
    }
    StateId a = 0;
    StateId b = 0;
    bool found = false;
    for (StateId s1 = 0; s1 < num_states && !found; ++s1) {
      const std::uint64_t row = simd::collision_row_total(
          counts_soa_.data(), fresh_.data(), d_padded_, s1);
      if (u >= row) {
        u -= row;
        continue;
      }
      const std::uint64_t c1 = counts_soa_[s1];
      const std::uint64_t f1 = fresh_[s1];
      for (StateId s2 = 0; s2 < num_states; ++s2) {
        const std::uint64_t c2 = counts_soa_[s2];
        const std::uint64_t f2 = fresh_[s2];
        const std::uint64_t all = s1 == s2 ? c1 * (c1 - 1) : c1 * c2;
        const std::uint64_t fr = s1 == s2 ? f1 * (f1 - 1) : f1 * f2;
        const std::uint64_t w = all - fr;
        if (u < w) {
          a = s1;
          b = s2;
          found = true;
          break;
        }
        u -= w;
      }
    }
    PPK_ASSERT(found);
    if (table_->effective(a, b)) {
      apply_pair(a, b);
      ++batch_effective;
    }
    ++interactions_;
    ++advanced;
  }

  oracle.on_batch(counts_, advanced, batch_effective);
  PPK_OBS_HOOK(obs_, on_advance(counts_, interactions_, advanced,
                                batch_effective, obs::AdvanceKind::kBatch));
  return advanced;
}

}  // namespace ppk::pp
