// A fairness stress-test scheduler.
//
// Global fairness promises only that reachable configurations keep
// occurring -- it says nothing about how long an adversary can stall
// progress.  AdversarialSimulator implements an epsilon-fair adversary:
// with probability 1 - epsilon it tries to pick an interaction that makes
// *no group-output progress* (a null interaction or a pure free-agent
// flip), sampling up to `kProbes` candidate pairs and taking the first
// non-progressing one; with probability epsilon (or when all probes would
// progress) it falls back to a uniform pair.
//
// Because every ordered pair retains at least epsilon / (n(n-1))
// probability in every configuration, an infinite execution of this
// scheduler is globally fair with probability 1 -- so by Theorem 1 the
// protocol still stabilizes, just slower.  The fairness-stress bench
// measures the slowdown as epsilon shrinks.

#pragma once

#include <cstdint>

#include "obs/sink.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

class AdversarialSimulator {
 public:
  /// `protocol` is needed for the group map (what counts as "progress").
  AdversarialSimulator(const Protocol& protocol, const TransitionTable& table,
                       Population population, double epsilon,
                       std::uint64_t seed)
      : protocol_(&protocol),
        table_(&table),
        population_(std::move(population)),
        epsilon_(epsilon),
        rng_(seed) {
    PPK_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
    PPK_EXPECTS(population_.size() >= 2);
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified after every drawn interaction (null or effective)
  /// and must outlive the simulator.  Totals count from attachment.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  bool step(StabilityOracle& oracle) {
    const std::uint32_t n = population_.size();
    auto draw_pair = [&](std::uint32_t* i, std::uint32_t* j) {
      *i = static_cast<std::uint32_t>(rng_.below(n));
      *j = static_cast<std::uint32_t>(rng_.below(n - 1));
      if (*j >= *i) ++*j;
    };

    std::uint32_t i = 0;
    std::uint32_t j = 0;
    draw_pair(&i, &j);
    if (rng_.uniform01() >= epsilon_) {
      // Adversary turn: probe for a non-progressing pair.
      for (int probe = 0; probe < kProbes; ++probe) {
        const StateId p = population_.state_of(i);
        const StateId q = population_.state_of(j);
        const Transition& t = table_->apply(p, q);
        const bool progresses = protocol_->group(p) != protocol_->group(t.initiator) ||
                                protocol_->group(q) != protocol_->group(t.responder);
        if (!progresses) break;
        draw_pair(&i, &j);
      }
    }

    ++interactions_;
    const StateId p = population_.state_of(i);
    const StateId q = population_.state_of(j);
    if (!table_->effective(p, q)) {
      PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
      return false;
    }
    const Transition& t = table_->apply(p, q);
    population_.apply(i, j, t);
    ++effective_;
    oracle.on_transition(p, q, t.initiator, t.responder);
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
    return true;
  }

  /// Runs until the oracle reports stability or `max_interactions` pairs
  /// have been drawn.  The oracle is reset from the current configuration.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX) {
    oracle.reset(population_.counts());
    return resume(oracle, max_interactions);
  }

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks (e.g. for wall-clock checks) without discarding oracle
  /// progress such as a QuiescenceOracle lull spanning the chunk boundary.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX) {
    SimResult result;
    const std::uint64_t start = interactions_;
    const std::uint64_t start_effective = effective_;
    while (!oracle.stable() && interactions_ - start < max_interactions) {
      step(oracle);
    }
    result.interactions = interactions_ - start;
    result.effective = effective_ - start_effective;
    result.stabilized = oracle.stable();
    return result;
  }

  /// Serializable mid-run state: per-agent states, RNG position and
  /// interaction counters (contract in pp/snapshot.hpp).  Epsilon is a
  /// constructor argument, not dynamic state.
  [[nodiscard]] Snapshot snapshot() const {
    SnapshotWriter w("adversarial");
    w.rng(rng_);
    w.u64(interactions_);
    w.u64(effective_);
    w.states(population_.states());
    return std::move(w).take();
  }

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.
  void restore(const Snapshot& snap) {
    SnapshotReader r(snap, "adversarial");
    r.rng(rng_);
    interactions_ = r.u64();
    effective_ = r.u64();
    auto states = r.states(table_->num_states());
    r.finish();
    PPK_EXPECTS(states.size() == population_.size());
    population_.restore_states(std::move(states));
  }

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

 private:
  static constexpr int kProbes = 16;

  const Protocol* protocol_;
  const TransitionTable* table_;
  Population population_;
  double epsilon_;
  Xoshiro256 rng_;
  obs::ObsSink* obs_ = nullptr;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

}  // namespace ppk::pp
