// Fairness-policy scheduler: the agent-level engine behind FairnessSpec.
//
// The count-based engines all implement the uniform-random scheduler; this
// simulator is the one that schedules *agents* and can therefore realize
// other fairness policies (pp/fairness.hpp):
//
//  - kEpsilonFair: with probability 1 - epsilon it tries to pick an
//    interaction that makes *no group-output progress* (a null interaction
//    or a pure free-agent flip), sampling up to `kProbes` candidate pairs
//    and taking the first non-progressing one; with probability epsilon
//    (or when all probes would progress) it falls back to a uniform pair.
//    Every ordered pair retains at least epsilon / (n(n-1)) probability in
//    every configuration, so an infinite execution is globally fair with
//    probability 1 -- the protocol still stabilizes, just slower; the
//    fairness-stress bench measures the slowdown as epsilon shrinks.
//
//  - kWeakRoundRobin: each round schedules every ordered pair exactly
//    once, in an adversarially chosen order (non-progressing pairs are
//    probed first, so harmful meetings happen at harmless moments).  An
//    infinite execution interacts every pair infinitely often and
//    guarantees nothing else: weakly fair by construction, NOT globally
//    fair.  Protocols that need global fairness livelock or mis-stabilize
//    under it (run them with a bounded budget and expect
//    `stabilized == false`); core::WeakKPartitionProtocol stabilizes.
//    Round state costs O(n^2) memory (one 32-bit index per ordered pair),
//    so this policy is for the small/medium n where weak-fairness
//    questions live.
//
//  - kUniformRandom: epsilon-fair with epsilon = 1 (no adversary turn).
//
// An optional InteractionGraph restricts scheduling to its edges (both
// orientations), composing the fairness axis with the topology axis.  With
// no topology and a policy other than kWeakRoundRobin the draw sequence is
// bit-identical to the historical epsilon-fair scheduler, so existing
// seeds, snapshots, and conformance corpus entries replay unchanged.

#pragma once

#include <cstdint>
#include <vector>

#include "obs/sink.hpp"
#include "pp/fairness.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

/// Agent-scheduling engine realizing every FairnessPolicy, optionally
/// restricted to an interaction topology.
class AdversarialSimulator {
 public:
  /// Full-axis constructor.  `topology` (optional) must outlive the
  /// simulator; nullptr schedules on the complete graph.
  AdversarialSimulator(const Protocol& protocol, const TransitionTable& table,
                       Population population, FairnessSpec fairness,
                       std::uint64_t seed,
                       const InteractionGraph* topology = nullptr)
      : protocol_(&protocol),
        table_(&table),
        population_(std::move(population)),
        fairness_(fairness),
        rng_(seed) {
    PPK_EXPECTS(fairness.epsilon > 0.0 && fairness.epsilon <= 1.0);
    PPK_EXPECTS(population_.size() >= 2);
    if (topology != nullptr) {
      PPK_EXPECTS(topology->num_agents() == population_.size());
      edges_ = topology->edges();
      PPK_EXPECTS(!edges_.empty());
    }
    PPK_EXPECTS(num_ordered_pairs() <= UINT32_MAX);
  }

  /// Historical epsilon-fair constructor (complete graph).
  AdversarialSimulator(const Protocol& protocol, const TransitionTable& table,
                       Population population, double epsilon,
                       std::uint64_t seed)
      : AdversarialSimulator(protocol, table, std::move(population),
                             FairnessSpec{FairnessPolicy::kEpsilonFair,
                                          epsilon},
                             seed) {}

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified after every drawn interaction (null or effective)
  /// and must outlive the simulator.  Totals count from attachment.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Draws and applies one scheduled pair; returns true iff it was
  /// effective.  The oracle sees effective transitions only.
  bool step(StabilityOracle& oracle) {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    if (fairness_.policy == FairnessPolicy::kWeakRoundRobin) {
      draw_weak_round_robin(&i, &j);
    } else {
      draw_pair(&i, &j);
      if (rng_.uniform01() >= fairness_.epsilon) {
        // Adversary turn: probe for a non-progressing pair.
        for (int probe = 0; probe < kProbes; ++probe) {
          if (!progresses(i, j)) break;
          draw_pair(&i, &j);
        }
      }
    }

    ++interactions_;
    const StateId p = population_.state_of(i);
    const StateId q = population_.state_of(j);
    if (!table_->effective(p, q)) {
      PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
      return false;
    }
    const Transition& t = table_->apply(p, q);
    population_.apply(i, j, t);
    ++effective_;
    oracle.on_transition(p, q, t.initiator, t.responder);
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
    return true;
  }

  /// Runs until the oracle reports stability or `max_interactions` pairs
  /// have been drawn.  The oracle is reset from the current configuration.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX) {
    oracle.reset(population_.counts());
    return resume(oracle, max_interactions);
  }

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks (e.g. for wall-clock checks) without discarding oracle
  /// progress such as a QuiescenceOracle lull spanning the chunk boundary.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX) {
    SimResult result;
    const std::uint64_t start = interactions_;
    const std::uint64_t start_effective = effective_;
    while (!oracle.stable() && interactions_ - start < max_interactions) {
      step(oracle);
    }
    result.interactions = interactions_ - start;
    result.effective = effective_ - start_effective;
    result.stabilized = oracle.stable();
    return result;
  }

  /// Serializable mid-run state: per-agent states, RNG position,
  /// interaction counters, and (under kWeakRoundRobin) the unscheduled
  /// remainder of the current round (contract in pp/snapshot.hpp).  The
  /// fairness spec and topology are constructor arguments, not dynamic
  /// state, so the legacy format is unchanged for the other policies.
  [[nodiscard]] Snapshot snapshot() const {
    SnapshotWriter w("adversarial");
    w.rng(rng_);
    w.u64(interactions_);
    w.u64(effective_);
    if (fairness_.policy == FairnessPolicy::kWeakRoundRobin) {
      w.u64(round_.size());
      for (const std::uint32_t e : round_) w.u64(e);
    }
    w.states(population_.states());
    return std::move(w).take();
  }

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.
  void restore(const Snapshot& snap) {
    SnapshotReader r(snap, "adversarial");
    r.rng(rng_);
    interactions_ = r.u64();
    effective_ = r.u64();
    if (fairness_.policy == FairnessPolicy::kWeakRoundRobin) {
      const std::uint64_t len = r.u64();
      PPK_EXPECTS(len <= num_ordered_pairs());
      round_.resize(len);
      for (auto& e : round_) {
        const std::uint64_t v = r.u64();
        PPK_EXPECTS(v < num_ordered_pairs());
        e = static_cast<std::uint32_t>(v);
      }
    }
    auto states = r.states(table_->num_states());
    r.finish();
    PPK_EXPECTS(states.size() == population_.size());
    population_.restore_states(std::move(states));
  }

  /// Current per-agent configuration.
  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

  /// The fairness spec the engine was constructed with.
  [[nodiscard]] const FairnessSpec& fairness() const noexcept {
    return fairness_;
  }

 private:
  static constexpr int kProbes = 16;

  [[nodiscard]] std::uint64_t num_ordered_pairs() const noexcept {
    const std::uint64_t n = population_.size();
    return edges_.empty() ? n * (n - 1) : 2 * edges_.size();
  }

  /// Ordered-pair index -> (initiator, responder).  Complete graph packs
  /// i * (n-1) + j', topology packs edge * 2 + orientation.
  void decode_pair(std::uint32_t e, std::uint32_t* i, std::uint32_t* j) const {
    if (edges_.empty()) {
      const std::uint32_t n = population_.size();
      *i = e / (n - 1);
      std::uint32_t jj = e % (n - 1);
      if (jj >= *i) ++jj;
      *j = jj;
    } else {
      const auto& [a, b] = edges_[e / 2];
      *i = (e % 2 == 0) ? a : b;
      *j = (e % 2 == 0) ? b : a;
    }
  }

  void draw_pair(std::uint32_t* i, std::uint32_t* j) {
    if (edges_.empty()) {
      const std::uint32_t n = population_.size();
      *i = static_cast<std::uint32_t>(rng_.below(n));
      *j = static_cast<std::uint32_t>(rng_.below(n - 1));
      if (*j >= *i) ++*j;
    } else {
      decode_pair(static_cast<std::uint32_t>(rng_.below(2 * edges_.size())),
                  i, j);
    }
  }

  [[nodiscard]] bool progresses(std::uint32_t i, std::uint32_t j) const {
    const StateId p = population_.state_of(i);
    const StateId q = population_.state_of(j);
    const Transition& t = table_->apply(p, q);
    return protocol_->group(p) != protocol_->group(t.initiator) ||
           protocol_->group(q) != protocol_->group(t.responder);
  }

  /// One weak-round-robin draw: refill the round if exhausted, then probe
  /// random remaining slots for a non-progressing pair (the adversary's
  /// ordering freedom) and swap-remove the chosen slot.
  void draw_weak_round_robin(std::uint32_t* i, std::uint32_t* j) {
    if (round_.empty()) {
      const auto total = static_cast<std::uint32_t>(num_ordered_pairs());
      round_.resize(total);
      for (std::uint32_t e = 0; e < total; ++e) round_[e] = e;
    }
    std::size_t pos = rng_.below(round_.size());
    for (int probe = 0; probe < kProbes; ++probe) {
      decode_pair(round_[pos], i, j);
      if (!progresses(*i, *j)) break;
      pos = rng_.below(round_.size());
    }
    decode_pair(round_[pos], i, j);
    round_[pos] = round_.back();
    round_.pop_back();
  }

  const Protocol* protocol_;
  const TransitionTable* table_;
  Population population_;
  FairnessSpec fairness_;
  std::vector<InteractionGraph::Edge> edges_;  // empty = complete graph
  std::vector<std::uint32_t> round_;  // unscheduled ordered pairs this round
  Xoshiro256 rng_;
  obs::ObsSink* obs_ = nullptr;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

}  // namespace ppk::pp
