// A configuration of a population: the per-agent state array together with
// the (redundant but always consistent) state-count vector.
//
// The agent array is the ground truth -- it is exactly the paper's model of
// n distinguishable-but-anonymous agents -- and the counts are maintained
// incrementally so predicates over the configuration (stability patterns,
// invariants) are O(1) per interaction instead of O(n).

#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::pp {

/// State-count vector: counts[s] = number of agents currently in state s.
using Counts = std::vector<std::uint32_t>;

class Population {
 public:
  /// All n agents start in `initial`, the designated initial state.
  Population(std::uint32_t n, StateId num_states, StateId initial)
      : states_(n, initial), counts_(num_states, 0) {
    PPK_EXPECTS(n >= 2);
    PPK_EXPECTS(initial < num_states);
    counts_[initial] = n;
  }

  /// Starts from an explicit initial count vector (e.g. majority inputs).
  /// Agents with lower indices receive the lower-numbered states.
  Population(const Counts& initial_counts) : counts_(initial_counts) {
    std::uint64_t n = 0;
    for (auto c : initial_counts) n += c;
    PPK_EXPECTS(n >= 2);
    states_.reserve(n);
    for (StateId s = 0; s < initial_counts.size(); ++s) {
      states_.insert(states_.end(), initial_counts[s], s);
    }
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(states_.size());
  }

  [[nodiscard]] StateId state_of(std::uint32_t agent) const noexcept {
    return states_[agent];
  }

  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

  [[nodiscard]] const std::vector<StateId>& states() const noexcept {
    return states_;
  }

  /// Applies one interaction outcome to agents i (initiator) and j
  /// (responder).  Keeps counts consistent.
  void apply(std::uint32_t i, std::uint32_t j, const Transition& t) noexcept {
    const StateId pi = states_[i];
    const StateId pj = states_[j];
    states_[i] = t.initiator;
    states_[j] = t.responder;
    --counts_[pi];
    --counts_[pj];
    ++counts_[t.initiator];
    ++counts_[t.responder];
  }

  /// Adds one agent in state `s` (churn: join).  Returns the new agent's
  /// index, which is always the current highest.
  std::uint32_t add_agent(StateId s) {
    PPK_EXPECTS(s < counts_.size());
    states_.push_back(s);
    ++counts_[s];
    return static_cast<std::uint32_t>(states_.size() - 1);
  }

  /// Removes an agent (churn: crash) by swapping the last agent into its
  /// slot, and returns the departed agent's state.  Callers tracking
  /// per-agent metadata must mirror the swap.  Pair sampling needs at least
  /// two agents, so the population may not shrink below that.
  StateId remove_agent(std::uint32_t agent) {
    PPK_EXPECTS(states_.size() > 2);
    PPK_EXPECTS(agent < states_.size());
    const StateId s = states_[agent];
    states_[agent] = states_.back();
    states_.pop_back();
    --counts_[s];
    return s;
  }

  /// Overwrites a single agent's state (used by examples that seed custom
  /// configurations).
  void set_state(std::uint32_t agent, StateId s) {
    PPK_EXPECTS(agent < states_.size());
    PPK_EXPECTS(s < counts_.size());
    --counts_[states_[agent]];
    states_[agent] = s;
    ++counts_[s];
  }

  /// Replaces the whole configuration with an explicit per-agent state
  /// array (snapshot restore).  Unlike the Counts constructor, which orders
  /// agents low-state-first, this preserves the given agent order -- churn
  /// swap-removals and graph engines make the order significant.  The
  /// state-count vector keeps its current length; every restored state must
  /// fit it.
  void restore_states(std::vector<StateId> states) {
    PPK_EXPECTS(states.size() >= 2);
    Counts counts(counts_.size(), 0);
    for (const StateId s : states) {
      PPK_EXPECTS(s < counts.size());
      ++counts[s];
    }
    states_ = std::move(states);
    counts_ = std::move(counts);
  }

  /// Group-size vector under a protocol's output map.
  [[nodiscard]] std::vector<std::uint32_t> group_sizes(
      const Protocol& protocol) const {
    std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
    for (StateId s = 0; s < counts_.size(); ++s) {
      if (counts_[s] > 0) sizes[protocol.group(s)] += counts_[s];
    }
    return sizes;
  }

 private:
  std::vector<StateId> states_;
  Counts counts_;
};

/// True iff all entries of `sizes` differ pairwise by at most one -- the
/// uniformity condition of the k-partition problem.
inline bool is_uniform_partition(const std::vector<std::uint32_t>& sizes) {
  if (sizes.empty()) return true;
  std::uint32_t lo = sizes[0];
  std::uint32_t hi = sizes[0];
  for (auto v : sizes) {
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  return hi - lo <= 1;
}

}  // namespace ppk::pp
