#include "pp/interaction_graph.hpp"

namespace ppk::pp {

InteractionGraph InteractionGraph::complete(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::ring(std::uint32_t n) {
  PPK_EXPECTS(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::uint32_t a = 0; a < n; ++a) edges.emplace_back(a, (a + 1) % n);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::star(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t b = 1; b < n; ++b) edges.emplace_back(0u, b);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::path(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t a = 0; a + 1 < n; ++a) edges.emplace_back(a, a + 1);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::erdos_renyi(std::uint32_t n, double p,
                                               std::uint64_t seed) {
  PPK_EXPECTS(n >= 2);
  PPK_EXPECTS(p > 0.0 && p <= 1.0);
  Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<Edge> edges;
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.uniform01() < p) edges.emplace_back(a, b);
      }
    }
    InteractionGraph graph(n, std::move(edges));
    if (graph.is_connected()) return graph;
  }
  PPK_ASSERT(false);  // p far below the connectivity threshold
  return complete(n);
}

bool InteractionGraph::is_connected() const {
  std::vector<std::vector<std::uint32_t>> adjacency(n_);
  for (const auto& [a, b] : edges_) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<char> seen(n_, 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (std::uint32_t v : adjacency[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == n_;
}

}  // namespace ppk::pp
