#include "pp/interaction_graph.hpp"

#include <stdexcept>
#include <string>

namespace ppk::pp {

InteractionGraph InteractionGraph::complete(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::ring(std::uint32_t n) {
  PPK_EXPECTS(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::uint32_t a = 0; a < n; ++a) edges.emplace_back(a, (a + 1) % n);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::star(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t b = 1; b < n; ++b) edges.emplace_back(0u, b);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::path(std::uint32_t n) {
  PPK_EXPECTS(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t a = 0; a + 1 < n; ++a) edges.emplace_back(a, a + 1);
  return InteractionGraph(n, std::move(edges));
}

std::optional<InteractionGraph> InteractionGraph::try_erdos_renyi(
    std::uint32_t n, double p, std::uint64_t seed,
    std::uint32_t max_attempts) {
  PPK_EXPECTS(n >= 2);
  PPK_EXPECTS(p > 0.0 && p <= 1.0);
  PPK_EXPECTS(max_attempts >= 1);
  if (p >= 1.0) return complete(n);
  Xoshiro256 rng(seed);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;  // upper-triangle pairs
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Each pair is present independently with probability p, so the gaps
    // between present pairs (in the linearized upper-triangle order) are
    // i.i.d. geometric(p): skip straight to the next present pair instead
    // of flipping a coin per pair -- expected O(n + m) per attempt.  The
    // (a, b) cursor is advanced row by row; the inner while amortizes to
    // O(n) across the whole scan.
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(
        p * static_cast<double>(total) * 1.1));
    std::uint64_t idx = rng.geometric(p);
    std::uint32_t a = 0;
    std::uint64_t row_base = 0;          // index of pair (a, a + 1)
    std::uint64_t row_len = n - 1;       // pairs remaining in row a
    while (idx < total) {
      while (idx - row_base >= row_len) {
        row_base += row_len;
        ++a;
        row_len = n - 1 - a;
      }
      const auto b =
          static_cast<std::uint32_t>(a + 1 + (idx - row_base));
      edges.emplace_back(a, b);
      idx += 1 + rng.geometric(p);
    }
    InteractionGraph graph(n, std::move(edges));
    if (graph.is_connected()) return graph;
  }
  return std::nullopt;  // p below the connectivity threshold
}

InteractionGraph InteractionGraph::erdos_renyi(std::uint32_t n, double p,
                                               std::uint64_t seed) {
  auto graph = try_erdos_renyi(n, p, seed);
  if (!graph) {
    throw std::runtime_error(
        "InteractionGraph::erdos_renyi: no connected sample of G(n=" +
        std::to_string(n) + ", p=" + std::to_string(p) + ") in " +
        std::to_string(kDefaultConnectivityAttempts) +
        " attempts -- p is below the connectivity threshold ln(n)/n; use "
        "try_erdos_renyi() to handle disconnected regimes");
  }
  return *std::move(graph);
}

bool InteractionGraph::is_connected() const {
  // CSR adjacency (two passes: degree count, then slot fill) + iterative
  // DFS.  The vector-of-vectors this replaces allocated per agent, which
  // dominated the whole erdos_renyi pipeline at n = 10^6.
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [a, b] : edges_) {
    ++offset[a + 1];
    ++offset[b + 1];
  }
  for (std::uint32_t v = 0; v < n_; ++v) offset[v + 1] += offset[v];
  std::vector<std::uint32_t> neighbor(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(offset.begin(), offset.end() - 1);
  for (const auto& [a, b] : edges_) {
    neighbor[cursor[a]++] = b;
    neighbor[cursor[b]++] = a;
  }
  std::vector<char> seen(n_, 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (std::uint64_t s = offset[u]; s < offset[u + 1]; ++s) {
      const std::uint32_t v = neighbor[s];
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == n_;
}

}  // namespace ppk::pp
