// Interaction graphs: which agent pairs are allowed to meet.
//
// The paper (like most population protocol work) assumes the complete
// interaction graph.  This module provides the standard topologies used to
// probe that assumption -- the protocol's reachability lemmas (Lemmas 2-5)
// genuinely rely on completeness, and the topology bench shows it wedging
// on sparse graphs while the complete graph always stabilizes.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

class InteractionGraph {
 public:
  using Edge = std::pair<std::uint32_t, std::uint32_t>;

  /// Every pair of distinct agents is connected: n(n-1)/2 edges.
  static InteractionGraph complete(std::uint32_t n);

  /// Cycle 0-1-...-(n-1)-0.  Requires n >= 3.
  static InteractionGraph ring(std::uint32_t n);

  /// Agent 0 is the hub; all others only talk to it.
  static InteractionGraph star(std::uint32_t n);

  /// Path 0-1-...-(n-1): the sparsest connected topology.
  static InteractionGraph path(std::uint32_t n);

  /// Erdos-Renyi G(n, p), resampled until connected (expected O(1)
  /// resamples for p above the connectivity threshold ln(n)/n).  Edge
  /// generation is geometric-skip over the linearized upper triangle --
  /// expected O(n + m) per attempt, so near-threshold p is feasible at
  /// n = 10^6.  Returns nullopt if `max_attempts` consecutive samples come
  /// out disconnected (p below the threshold): a reportable outcome the
  /// caller decides about, not a process abort.
  static std::optional<InteractionGraph> try_erdos_renyi(
      std::uint32_t n, double p, std::uint64_t seed,
      std::uint32_t max_attempts = kDefaultConnectivityAttempts);

  /// Convenience wrapper over try_erdos_renyi(): throws std::runtime_error
  /// when the bounded resampling fails.  Use the try_ variant where a
  /// disconnected sample is an expected outcome (sweeps probing the
  /// connectivity threshold).
  static InteractionGraph erdos_renyi(std::uint32_t n, double p,
                                      std::uint64_t seed);

  /// Resample budget of erdos_renyi(): generous enough that failing it
  /// means p is genuinely below the connectivity threshold, not bad luck.
  static constexpr std::uint32_t kDefaultConnectivityAttempts = 1000;

  [[nodiscard]] std::uint32_t num_agents() const noexcept { return n_; }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  [[nodiscard]] bool is_connected() const;

  /// Average degree = 2|E| / n.
  [[nodiscard]] double average_degree() const noexcept {
    return 2.0 * static_cast<double>(edges_.size()) /
           static_cast<double>(n_);
  }

 private:
  InteractionGraph(std::uint32_t n, std::vector<Edge> edges)
      : n_(n), edges_(std::move(edges)) {
    PPK_EXPECTS(n_ >= 2);
    for (const auto& [a, b] : edges_) {
      PPK_EXPECTS(a < n_ && b < n_ && a != b);
    }
  }

  std::uint32_t n_;
  std::vector<Edge> edges_;
};

}  // namespace ppk::pp
