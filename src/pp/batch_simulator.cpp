#include "pp/batch_simulator.hpp"

#include <cmath>

#include "obs/sink.hpp"
#include "util/assert.hpp"
#include "util/log_fact.hpp"

namespace ppk::pp {

BatchSimulator::BatchSimulator(const TransitionTable& table, Counts initial,
                               std::uint64_t seed)
    : table_(&table), counts_(std::move(initial)), rng_(seed) {
  PPK_EXPECTS(counts_.size() == table.num_states());
  n_ = 0;
  for (auto c : counts_) n_ += c;
  PPK_EXPECTS(n_ >= 2);
  sqrt_n_ = std::sqrt(static_cast<double>(n_));

  const StateId num_states = table.num_states();
  for (StateId p = 0; p < num_states; ++p) {
    for (StateId q = 0; q < num_states; ++q) {
      if (table.effective(p, q)) effective_cells_.emplace_back(p, q);
    }
  }
  initiators_.resize(num_states);
  responders_.resize(num_states);
  remaining_.resize(num_states);
  touched_.resize(num_states);
  count_delta_.resize(num_states);

  if (n_ <= kLogFactTableMax) log_fact_ = LogFactTable::shared(n_);
}

std::uint64_t BatchSimulator::effective_weight() const {
  std::uint64_t weight = 0;
  for (const auto& [p, q] : effective_cells_) {
    const std::uint64_t cp = counts_[p];
    const std::uint64_t cq = counts_[q];
    weight += p == q ? cp * (cp - 1) : cp * cq;  // cp == 0 makes either 0
  }
  return weight;
}

bool BatchSimulator::step(StabilityOracle& oracle) {
  return advance(oracle, UINT64_MAX) > 0;
}

Snapshot BatchSimulator::snapshot() const {
  SnapshotWriter w("batch");
  w.rng(rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.u64(static_cast<std::uint64_t>(mode_));
  w.counts(counts_);
  return std::move(w).take();
}

void BatchSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "batch");
  r.rng(rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  const std::uint64_t mode = r.u64();
  PPK_EXPECTS(mode <= static_cast<std::uint64_t>(BatchMode::kForceThin));
  Counts counts = r.counts();
  r.finish();
  PPK_EXPECTS(counts.size() == counts_.size());
  std::uint64_t n = 0;
  for (const std::uint32_t c : counts) n += c;
  PPK_EXPECTS(n == n_);
  counts_ = std::move(counts);
  mode_ = static_cast<BatchMode>(mode);
}

SimResult BatchSimulator::run(StabilityOracle& oracle,
                              std::uint64_t max_interactions) {
  oracle.reset(counts_);
  return resume(oracle, max_interactions);
}

SimResult BatchSimulator::resume(StabilityOracle& oracle,
                                 std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (!oracle.stable() && interactions_ - start < max_interactions) {
    const std::uint64_t remaining = max_interactions - (interactions_ - start);
    if (advance(oracle, remaining) == 0) break;  // silent, oracle unsatisfied
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

std::uint64_t BatchSimulator::advance(StabilityOracle& oracle,
                                      std::uint64_t budget) {
  const std::uint64_t weight = effective_weight();
  if (weight == 0) return 0;  // silent configuration
  bool use_batch = false;
  switch (mode_) {
    case BatchMode::kForceBatch:
      use_batch = true;
      break;
    case BatchMode::kForceThin:
      use_batch = false;
      break;
    case BatchMode::kAuto: {
      // Crossover where one thin advance (expected 1/p_eff interactions
      // for one cell scan) outruns a whole collision-free batch
      // (~sqrt(n)/2 interactions for dozens of hypergeometric draws); the
      // constant is the measured cost ratio batch/thin per advance.
      constexpr double kThinCrossover = 8.0;
      use_batch = static_cast<double>(weight) * sqrt_n_ >=
                  kThinCrossover * static_cast<double>(n_) *
                      static_cast<double>(n_ - 1);
      break;
    }
  }
  return use_batch ? batch_advance(oracle, budget)
                   : thin_advance(oracle, budget, weight);
}

void BatchSimulator::apply_pair(StateId p, StateId q) {
  const Transition& t = table_->apply(p, q);
  --counts_[p];
  --counts_[q];
  ++counts_[t.initiator];
  ++counts_[t.responder];
  ++effective_;
}

std::uint64_t BatchSimulator::thin_advance(StabilityOracle& oracle,
                                           std::uint64_t budget,
                                           std::uint64_t weight) {
  const double p_eff =
      static_cast<double>(weight) /
      (static_cast<double>(n_) * static_cast<double>(n_ - 1));
  const std::uint64_t nulls = rng_.geometric(p_eff);
  if (nulls >= budget) {
    // Clamp at the boundary without applying a pair; exact by the
    // memorylessness of the geometric (see jump_simulator.cpp).
    interactions_ += budget;
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_, budget,
                               obs::AdvanceKind::kThin));
    return budget;
  }
  interactions_ += nulls + 1;
  // Counts are untouched during the null run; report it before the pair is
  // applied so timeline boundaries inside the run get exact configurations.
  if (nulls > 0) {
    PPK_OBS_HOOK(obs_, on_skip(counts_, interactions_ - 1, nulls,
                               obs::AdvanceKind::kThin));
  }

  // One effective ordered pair with exact integer weights.
  std::uint64_t u = rng_.below(weight);
  StateId p = 0;
  StateId q = 0;
  for (const auto& [cp_state, cq_state] : effective_cells_) {
    const std::uint64_t cp = counts_[cp_state];
    const std::uint64_t cq = counts_[cq_state];
    const std::uint64_t w =
        cp_state == cq_state ? cp * (cp - 1) : cp * cq;
    if (u < w) {
      p = cp_state;
      q = cq_state;
      break;
    }
    u -= w;
  }
  const Transition& t = table_->apply(p, q);  // fetch before counts move
  apply_pair(p, q);
  oracle.on_transition(p, q, t.initiator, t.responder);
  PPK_OBS_HOOK(obs_,
               on_apply(counts_, interactions_, obs::AdvanceKind::kThin));
  return nulls + 1;
}

std::uint64_t BatchSimulator::sample_run_length() {
  // Invert P(L >= l) = n! / ((n-2l)! * (n(n-1))^l) in log space.  The
  // survival function is strictly decreasing, P(L >= 1) = 1, and L cannot
  // exceed floor(n/2); binary search costs O(log n) lgamma pairs per batch
  // of Theta(sqrt(n)) interactions.
  const double u = 1.0 - rng_.uniform01();  // in (0, 1]
  const double target = std::log(u);
  const double nd = static_cast<double>(n_);
  const double lg_n = log_fact(nd);
  const double log_pairs = std::log(nd) + std::log(nd - 1.0);
  auto log_survival = [&](std::uint64_t l) {
    return lg_n - log_fact(nd - 2.0 * static_cast<double>(l)) -
           static_cast<double>(l) * log_pairs;
  };
  std::uint64_t lo = 1;  // always survives
  std::uint64_t hi = n_ / 2;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (log_survival(mid) >= target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::uint64_t BatchSimulator::batch_advance(StabilityOracle& oracle,
                                            std::uint64_t budget) {
  const StateId num_states = table_->num_states();
  const std::uint64_t run = sample_run_length();
  // Truncating at the budget conditions only on "the first `budget` draws
  // are collision-free" -- the sampled run's exact value beyond the
  // truncation is discarded unused, so the truncated batch stays exact and
  // the budget is never overshot.
  const std::uint64_t batch = run < budget ? run : budget;
  const bool collision = run < budget;  // interaction `run`+1 fits in budget

  const auto lf = [this](double x) { return log_fact(x); };

  // Initiator state multiset U: multivariate hypergeometric over the
  // counts, decomposed sequentially (state order fixed for
  // reproducibility).
  std::uint64_t urn_total = n_;
  std::uint64_t draw = batch;
  for (StateId s = 0; s < num_states; ++s) {
    const std::uint64_t x =
        rng_.hypergeometric(urn_total, counts_[s], draw, lf);
    initiators_[s] = static_cast<std::uint32_t>(x);
    urn_total -= counts_[s];
    draw -= x;
  }
  // Responder state multiset V: same, over the agents U left behind.
  urn_total = n_ - batch;
  draw = batch;
  for (StateId s = 0; s < num_states; ++s) {
    const std::uint64_t left = counts_[s] - initiators_[s];
    const std::uint64_t x = rng_.hypergeometric(urn_total, left, draw, lf);
    responders_[s] = static_cast<std::uint32_t>(x);
    urn_total -= left;
    draw -= x;
  }

  // Ordered state-pair contingency table: pair U against V by a uniform
  // matching, realized as a sequential hypergeometric split of the
  // unmatched responders per initiator row.  Cells are applied in
  // aggregate as they are drawn -- all batch interactions touch distinct
  // agents, so the rule applications commute.
  std::fill(touched_.begin(), touched_.end(), 0);
  std::fill(count_delta_.begin(), count_delta_.end(), 0);
  remaining_ = responders_;
  std::uint64_t unmatched = batch;
  std::uint64_t batch_effective = 0;
  for (StateId p = 0; p < num_states; ++p) {
    std::uint64_t need = initiators_[p];
    if (need == 0) continue;
    std::uint64_t pool = unmatched;
    unmatched -= need;
    for (StateId q = 0; q < num_states && need > 0; ++q) {
      const std::uint64_t m =
          rng_.hypergeometric(pool, remaining_[q], need, lf);
      pool -= remaining_[q];
      remaining_[q] -= static_cast<std::uint32_t>(m);
      need -= m;
      if (m == 0) continue;
      if (table_->effective(p, q)) {
        const Transition& t = table_->apply(p, q);
        const auto delta = static_cast<std::int64_t>(m);
        count_delta_[p] -= delta;
        count_delta_[q] -= delta;
        count_delta_[t.initiator] += delta;
        count_delta_[t.responder] += delta;
        touched_[t.initiator] += static_cast<std::uint32_t>(m);
        touched_[t.responder] += static_cast<std::uint32_t>(m);
        batch_effective += m;
      } else {
        touched_[p] += static_cast<std::uint32_t>(m);
        touched_[q] += static_cast<std::uint32_t>(m);
      }
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    counts_[s] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_[s]) + count_delta_[s]);
  }
  interactions_ += batch;
  effective_ += batch_effective;
  std::uint64_t advanced = batch;

  if (collision) {
    // The (run+1)-th interaction: a uniform ordered pair of distinct
    // agents conditioned on at least one being among the 2*run touched.
    // Weight of an ordered state pair = its unconditional weight in the
    // post-batch configuration minus its fresh-fresh weight; fresh agents
    // carry pre-batch states, and per state fresh = counts - touched.
    const std::uint64_t fresh_total = n_ - 2 * batch;
    const std::uint64_t total_weight =
        n_ * (n_ - 1) - fresh_total * (fresh_total - 1);
    std::uint64_t u = rng_.below(total_weight);
    StateId a = 0;
    StateId b = 0;
    bool found = false;
    for (StateId s1 = 0; s1 < num_states && !found; ++s1) {
      const std::uint64_t c1 = counts_[s1];
      if (c1 == 0) continue;
      const std::uint64_t f1 = c1 - touched_[s1];
      for (StateId s2 = 0; s2 < num_states; ++s2) {
        const std::uint64_t c2 = counts_[s2];
        const std::uint64_t f2 = c2 - touched_[s2];
        const std::uint64_t all =
            s1 == s2 ? c1 * (c1 - 1) : c1 * c2;
        const std::uint64_t fresh =
            s1 == s2 ? f1 * (f1 - 1) : f1 * f2;  // f1 == 0 makes this 0
        const std::uint64_t w = all - fresh;
        if (u < w) {
          a = s1;
          b = s2;
          found = true;
          break;
        }
        u -= w;
      }
    }
    PPK_ASSERT(found);
    if (table_->effective(a, b)) {
      apply_pair(a, b);
      ++batch_effective;
    }
    ++interactions_;
    ++advanced;
  }

  oracle.on_batch(counts_, advanced, batch_effective);
  PPK_OBS_HOOK(obs_, on_advance(counts_, interactions_, advanced,
                                batch_effective, obs::AdvanceKind::kBatch));
  return advanced;
}

}  // namespace ppk::pp
