// Stopping criteria for simulations.
//
// The paper measures "the total number of interactions until a population
// reaches a stable configuration".  Deciding stability in general requires
// reasoning about all reachable futures, but in practice a protocol's stable
// configurations fall into one of two easily checkable shapes:
//
//  - CountPatternOracle: the stable configurations are exactly those whose
//    state counts match a known target pattern, possibly up to merging some
//    states into equivalence classes (e.g. the paper's protocol is stable
//    exactly at the Lemma 6 pattern, with initial and initial' equivalent).
//    O(1) per interaction via an incrementally maintained L1 distance.
//
//  - SilenceOracle: the protocol is eventually *silent* (no effective
//    transition enabled) and silent configurations are the stable ones
//    (leader election, majority, ...).  O(#present states) per change.
//
// Oracles are notified of every effective transition; null interactions
// cannot change stability, so the simulator skips notifying on them.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/transition_table.hpp"
#include "util/assert.hpp"

namespace ppk::pp {

/// Interface for incremental stability detection.
class StabilityOracle {
 public:
  virtual ~StabilityOracle() = default;

  /// (Re)initializes from a full count vector.
  virtual void reset(const Counts& counts) = 0;

  /// Called after every effective interaction with the applied rule.
  virtual void on_transition(StateId p, StateId q, StateId p_next,
                             StateId q_next) = 0;

  /// Called by aggregating engines (see pp/batch_simulator.hpp) that apply
  /// whole groups of interactions at once: the configuration advanced to
  /// `counts` over `interactions` drawn pairs, of which `effective` changed
  /// some agent.  The intra-batch order is not observable, so oracles see
  /// the batch's endpoints only; engines keep batches no coarser than their
  /// exactness argument allows (and fall back to on_transition for the
  /// pairwise draws they interleave).  The default rebuilds from the new
  /// counts, which is exact for any oracle whose verdict is a function of
  /// the current configuration (pattern matching, silence); history-keeping
  /// oracles override to carry their window across the batch.
  virtual void on_batch(const Counts& counts, std::uint64_t interactions,
                        std::uint64_t effective) {
    (void)interactions;
    (void)effective;
    reset(counts);
  }

  /// True iff the current configuration is stable.
  [[nodiscard]] virtual bool stable() const = 0;

  /// Called by churn-capable engines (see pp/faults.hpp) when the
  /// configuration changes by something *other* than a protocol transition:
  /// an agent crashed, joined, or had its state corrupted.  `counts` is the
  /// complete new count vector; the population size may have changed.
  /// Oracles constructed for a fixed population must override this to
  /// rebuild their targets; the default marks the oracle stale, and a stale
  /// oracle fails loudly on the next stable() query instead of silently
  /// measuring against an outdated pattern.
  virtual void on_external_change(const Counts& counts) {
    (void)counts;
    stale_ = true;
  }

  /// True once an external change has invalidated this oracle.
  [[nodiscard]] bool is_stale() const noexcept { return stale_; }

  /// Serializes oracle-internal *history* for engine snapshots (see
  /// pp/snapshot.hpp).  An oracle whose verdict is a pure function of the
  /// current configuration carries none -- restoring it is just
  /// reset(counts) -- so the default returns an empty payload.
  /// History-keeping oracles (QuiescenceOracle's lull counter) override
  /// both hooks.
  [[nodiscard]] virtual std::vector<std::uint64_t> save_state() const {
    return {};
  }

  /// Restores a save_state() payload.  Call reset() with the snapshotted
  /// configuration first, then this; afterwards the oracle continues
  /// exactly where the snapshotted one left off.
  virtual void restore_state(const std::vector<std::uint64_t>& state) {
    PPK_EXPECTS(state.empty());
  }

 protected:
  /// Subclasses whose targets depend on the population call this from
  /// stable(): using a stale oracle is a programming error, not a
  /// recoverable condition.
  void assert_fresh() const { PPK_ASSERT(!stale_); }

  bool stale_ = false;
};

/// Stability = counts match a fixed target pattern over state equivalence
/// classes.  The pattern must characterize stability exactly (both necessary
/// and sufficient); protocol-specific factories (see core/invariants.hpp)
/// construct it from theory.
class CountPatternOracle final : public StabilityOracle {
 public:
  /// `state_class[s]` maps state s to its equivalence class;
  /// `target[c]` is the required number of agents across class c.
  CountPatternOracle(std::vector<std::uint16_t> state_class,
                     std::vector<std::uint32_t> target)
      : state_class_(std::move(state_class)), target_(std::move(target)) {
    for (auto c : state_class_) PPK_EXPECTS(c < target_.size());
    current_.assign(target_.size(), 0);
    target_total_ = 0;
    for (auto t : target_) target_total_ += t;
  }

  void reset(const Counts& counts) override {
    PPK_EXPECTS(counts.size() == state_class_.size());
    // The target pattern is built for one fixed population size; resetting
    // from a configuration of a different size means the caller holds a
    // stale oracle (e.g. after churn) and would never observe stability.
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    PPK_EXPECTS(total == target_total_);
    current_.assign(target_.size(), 0);
    for (StateId s = 0; s < counts.size(); ++s) {
      current_[state_class_[s]] += counts[s];
    }
    mismatch_ = 0;
    for (std::size_t c = 0; c < target_.size(); ++c) {
      if (current_[c] != target_[c]) ++mismatch_;
    }
    stale_ = false;
  }

  void on_transition(StateId p, StateId q, StateId p_next,
                     StateId q_next) override {
    bump(state_class_[p], -1);
    bump(state_class_[q], -1);
    bump(state_class_[p_next], +1);
    bump(state_class_[q_next], +1);
  }

  [[nodiscard]] bool stable() const override {
    assert_fresh();  // churn invalidates the fixed target pattern
    return mismatch_ == 0;
  }

 private:
  void bump(std::uint16_t cls, int delta) {
    const bool was_ok = current_[cls] == target_[cls];
    current_[cls] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(current_[cls]) + delta);
    const bool now_ok = current_[cls] == target_[cls];
    if (was_ok && !now_ok) ++mismatch_;
    if (!was_ok && now_ok) --mismatch_;
  }

  std::vector<std::uint16_t> state_class_;
  std::vector<std::uint32_t> target_;
  std::vector<std::uint32_t> current_;
  std::uint64_t target_total_ = 0;
  std::uint32_t mismatch_ = 0;
};

/// Stability = silence: no ordered pair of *present* states has an effective
/// transition.  Recomputed lazily after count changes; cost is
/// O(present^2) per effective interaction, fine for the small state spaces
/// here (|Q| <= a few dozen for every silent protocol in the repo).
class SilenceOracle final : public StabilityOracle {
 public:
  /// Builds the oracle over `table`'s effective-pair structure; the table
  /// must outlive the oracle.  Call reset() before the first query.
  explicit SilenceOracle(const TransitionTable& table) : table_(&table) {}

  void reset(const Counts& counts) override {
    counts_ = counts;
    stale_ = false;
    recompute();
  }

  void on_transition(StateId p, StateId q, StateId p_next,
                     StateId q_next) override {
    --counts_[p];
    --counts_[q];
    ++counts_[p_next];
    ++counts_[q_next];
    recompute();
  }

  /// Silence is a property of the current counts alone, so churn does not
  /// invalidate this oracle: rebuild from the new configuration.
  void on_external_change(const Counts& counts) override { reset(counts); }

  [[nodiscard]] bool stable() const override { return silent_; }

 private:
  void recompute() {
    present_.clear();
    for (StateId s = 0; s < counts_.size(); ++s) {
      if (counts_[s] > 0) present_.push_back(s);
    }
    silent_ = true;
    for (StateId p : present_) {
      for (StateId q : present_) {
        if (p == q && counts_[p] < 2) continue;
        if (table_->effective(p, q)) {
          silent_ = false;
          return;
        }
      }
    }
  }

  const TransitionTable* table_;
  Counts counts_;
  std::vector<StateId> present_;
  bool silent_ = false;
};

/// Never stops: used to run for a fixed interaction budget.
class NeverStableOracle final : public StabilityOracle {
 public:
  void reset(const Counts&) override {}
  void on_transition(StateId, StateId, StateId, StateId) override {}
  void on_external_change(const Counts&) override {}  // population-independent
  [[nodiscard]] bool stable() const override { return false; }
};

/// Heuristic quiescence detection for protocols with neither a known
/// stable pattern nor eventual silence: reports "stable" once the output
/// (group-size vector) has not changed for `window` *effective*
/// interactions.
///
/// This is NOT a sound stability check -- a long lull is not a proof, and
/// the window trades false positives against detection delay -- but it is
/// the standard practical stopping rule for exploratory simulation, and
/// having it in the library (clearly labeled) beats every caller
/// reinventing it.  Use CountPatternOracle or SilenceOracle whenever the
/// protocol admits one.
class QuiescenceOracle final : public StabilityOracle {
 public:
  /// `group_of[s]` maps each state to its output group.
  QuiescenceOracle(std::vector<GroupId> group_of, std::uint64_t window)
      : group_of_(std::move(group_of)), window_(window) {
    PPK_EXPECTS(window >= 1);
  }

  void reset(const Counts& counts) override {
    PPK_EXPECTS(counts.size() == group_of_.size());
    GroupId num_groups = 0;
    for (auto g : group_of_) {
      num_groups = std::max(num_groups, static_cast<GroupId>(g + 1));
    }
    sizes_.assign(num_groups, 0);
    for (StateId s = 0; s < counts.size(); ++s) {
      sizes_[group_of_[s]] += counts[s];
    }
    unchanged_ = 0;
    stale_ = false;
  }

  /// Churn restarts the quiescence window: the output vector just changed
  /// by fiat, so the lull observed so far is no longer evidence.
  void on_external_change(const Counts& counts) override { reset(counts); }

  /// Batch semantics: the window counts *effective* interactions whose
  /// output vector stayed put.  If the group sizes at the batch's endpoints
  /// match, all of the batch's effective interactions are credited to the
  /// window (an intra-batch wiggle that cancelled out is invisible --
  /// acceptable for a heuristic stopping rule, and the engines keep batches
  /// far smaller than any sensible window).  If the endpoints differ, the
  /// window restarts: a conservative choice (the last movement may have
  /// happened early in the batch), which can only delay the stop, never
  /// fabricate one.
  void on_batch(const Counts& counts, std::uint64_t interactions,
                std::uint64_t effective) override {
    (void)interactions;
    PPK_EXPECTS(counts.size() == group_of_.size());
    bool moved = false;
    std::vector<std::uint32_t> sizes(sizes_.size(), 0);
    for (StateId s = 0; s < counts.size(); ++s) {
      sizes[group_of_[s]] += counts[s];
    }
    if (sizes != sizes_) {
      sizes_ = std::move(sizes);
      moved = true;
    }
    if (moved) {
      unchanged_ = 0;
    } else {
      unchanged_ += effective;
    }
  }

  void on_transition(StateId p, StateId q, StateId p_next,
                     StateId q_next) override {
    const bool moved = group_of_[p] != group_of_[p_next] ||
                       group_of_[q] != group_of_[q_next];
    if (!moved) {
      ++unchanged_;
      return;
    }
    --sizes_[group_of_[p]];
    --sizes_[group_of_[q]];
    ++sizes_[group_of_[p_next]];
    ++sizes_[group_of_[q_next]];
    unchanged_ = 0;
  }

  [[nodiscard]] bool stable() const override {
    return unchanged_ >= window_;
  }

  /// The lull counter is history a reset cannot reconstruct, so it is the
  /// one piece of oracle state engine snapshots must carry.
  [[nodiscard]] std::vector<std::uint64_t> save_state() const override {
    return {unchanged_};
  }

  /// Restores a save_state() payload (after reset() from the snapshotted
  /// counts, which rebuilds the group-size vector).
  void restore_state(const std::vector<std::uint64_t>& state) override {
    PPK_EXPECTS(state.size() == 1);
    unchanged_ = state[0];
  }

  /// The output vector being watched for quiescence: current agents per
  /// group under the `group_of` map given at construction.
  [[nodiscard]] const std::vector<std::uint32_t>& group_sizes()
      const noexcept {
    return sizes_;
  }

 private:
  std::vector<GroupId> group_of_;
  std::uint64_t window_;
  std::vector<std::uint32_t> sizes_;
  std::uint64_t unchanged_ = 0;
};

/// Builds a QuiescenceOracle from a protocol's output map.
inline QuiescenceOracle make_quiescence_oracle(const Protocol& protocol,
                                               std::uint64_t window) {
  std::vector<GroupId> group_of(protocol.num_states());
  for (StateId s = 0; s < protocol.num_states(); ++s) {
    group_of[s] = protocol.group(s);
  }
  return QuiescenceOracle(std::move(group_of), window);
}

}  // namespace ppk::pp
