#include "pp/faults.hpp"

#include <algorithm>
#include <cmath>

#include "obs/sink.hpp"

namespace ppk::pp {

namespace {

/// Metric name of an applied fault ("faults.<kind>"); static literals so
/// the obs hook never allocates.
const char* fault_metric_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return "faults.crash";
    case FaultKind::kJoin:
      return "faults.join";
    case FaultKind::kCorrupt:
      return "faults.corrupt";
    case FaultKind::kSleep:
      return "faults.sleep";
    case FaultKind::kReset:
      return "faults.reset";
  }
  return "faults.unknown";
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kSleep:
      return "sleep";
    case FaultKind::kReset:
      return "reset";
  }
  return "?";
}

std::vector<FaultEvent> make_fault_schedule(const FaultRates& rates,
                                            std::uint64_t horizon,
                                            std::uint64_t seed) {
  struct Channel {
    double rate;
    FaultKind kind;
  };
  const Channel channels[] = {
      {rates.crash, FaultKind::kCrash},
      {rates.join, FaultKind::kJoin},
      {rates.corrupt, FaultKind::kCorrupt},
      {rates.sleep, FaultKind::kSleep},
  };

  Xoshiro256 rng(seed);
  std::vector<FaultEvent> events;
  for (const Channel& channel : channels) {
    if (channel.rate <= 0.0) continue;
    PPK_EXPECTS(channel.rate < 1.0);
    // Successive firing gaps of a per-interaction Bernoulli(p) process are
    // geometric; sample them directly instead of flipping `horizon` coins.
    std::uint64_t position = 0;
    while (true) {
      const double u = 1.0 - rng.uniform01();  // in (0, 1]
      // Compare as double before casting: a tiny rate can produce a gap
      // beyond uint64 range.
      const double gap_fp = std::log(u) / std::log1p(-channel.rate);
      if (gap_fp >= static_cast<double>(horizon - position)) break;
      const auto gap = static_cast<std::uint64_t>(gap_fp);
      position += gap;
      FaultEvent event;
      event.at = position;
      event.kind = channel.kind;
      if (channel.kind == FaultKind::kSleep) {
        event.duration = rates.sleep_duration;
      }
      events.push_back(event);
      if (++position >= horizon) break;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return events;
}

void ChurnSimulator::set_schedule(std::vector<FaultEvent> schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  schedule_ = std::move(schedule);
  next_event_ = 0;
}

std::uint32_t ChurnSimulator::resolve_agent(
    const std::optional<std::uint32_t>& agent) {
  if (agent) {
    PPK_EXPECTS(*agent < population_.size());
    return *agent;
  }
  return static_cast<std::uint32_t>(fault_rng_.below(population_.size()));
}

void ChurnSimulator::record(FaultKind kind, std::uint32_t agent,
                            StateId old_state, StateId new_state,
                            StabilityOracle* oracle) {
  FaultRecord rec;
  rec.at = interactions_;
  rec.kind = kind;
  rec.agent = agent;
  rec.old_state = old_state;
  rec.new_state = new_state;
  rec.population_after = population_.size();
  trace_.push_back(rec);
  PPK_OBS_HOOK(obs_, on_event(fault_metric_name(kind)));
  PPK_OBS_HOOK(obs_, set_gauge("churn.population",
                               static_cast<std::int64_t>(population_.size())));
  if (oracle != nullptr) oracle->on_external_change(population_.counts());
  if (fault_observer_) fault_observer_(rec);
}

std::optional<std::uint32_t> ChurnSimulator::crash(
    std::optional<std::uint32_t> agent, StabilityOracle* oracle) {
  if (population_.size() <= 2) return std::nullopt;  // keep pairs drawable
  const std::uint32_t target = resolve_agent(agent);
  const StateId old_state = population_.remove_agent(target);
  // remove_agent moved the last agent into the hole; mirror in the sleep
  // bookkeeping.
  sleep_until_[target] = sleep_until_.back();
  sleep_until_.pop_back();
  record(FaultKind::kCrash, target, old_state, old_state, oracle);
  return target;
}

std::uint32_t ChurnSimulator::join(std::optional<StateId> state,
                                   StabilityOracle* oracle) {
  const StateId s = state.value_or(default_join_state_);
  PPK_EXPECTS(s < table_->num_states());
  const std::uint32_t agent = population_.add_agent(s);
  sleep_until_.push_back(0);
  record(FaultKind::kJoin, agent, s, s, oracle);
  return agent;
}

void ChurnSimulator::corrupt(std::optional<std::uint32_t> agent,
                             std::optional<StateId> state,
                             StabilityOracle* oracle) {
  const std::uint32_t target = resolve_agent(agent);
  const StateId old_state = population_.state_of(target);
  StateId new_state;
  if (state) {
    PPK_EXPECTS(*state < table_->num_states());
    new_state = *state;
  } else {
    // Uniform among the *other* states: a corruption always corrupts.
    auto draw = static_cast<StateId>(
        fault_rng_.below(static_cast<std::uint64_t>(table_->num_states()) - 1));
    if (draw >= old_state) ++draw;
    new_state = draw;
  }
  population_.set_state(target, new_state);
  record(FaultKind::kCorrupt, target, old_state, new_state, oracle);
}

void ChurnSimulator::sleep(std::optional<std::uint32_t> agent,
                           std::uint64_t duration, StabilityOracle* oracle) {
  const std::uint32_t target = resolve_agent(agent);
  sleep_until_[target] = interactions_ + duration;
  const StateId s = population_.state_of(target);
  record(FaultKind::kSleep, target, s, s, oracle);
}

void ChurnSimulator::overwrite_state(std::uint32_t agent, StateId state,
                                     StabilityOracle* oracle) {
  PPK_EXPECTS(agent < population_.size());
  PPK_EXPECTS(state < table_->num_states());
  const StateId old_state = population_.state_of(agent);
  population_.set_state(agent, state);
  record(FaultKind::kReset, agent, old_state, state, oracle);
}

void ChurnSimulator::apply_due_faults(StabilityOracle& oracle) {
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].at <= interactions_) {
    // Copy: observers may install further schedules in principle, and the
    // surgical calls below can reallocate the trace.
    const FaultEvent event = schedule_[next_event_++];
    switch (event.kind) {
      case FaultKind::kCrash:
        crash(event.agent, &oracle);
        break;
      case FaultKind::kJoin:
        join(event.state, &oracle);
        break;
      case FaultKind::kCorrupt:
        corrupt(event.agent, event.state, &oracle);
        break;
      case FaultKind::kSleep:
        sleep(event.agent, event.duration, &oracle);
        break;
      case FaultKind::kReset:
        PPK_EXPECTS(event.agent.has_value() && event.state.has_value());
        overwrite_state(*event.agent, *event.state, &oracle);
        break;
    }
  }
}

bool ChurnSimulator::step(StabilityOracle& oracle) {
  apply_due_faults(oracle);
  const std::uint32_t n = population_.size();
  const auto i = static_cast<std::uint32_t>(pair_rng_.below(n));
  auto j = static_cast<std::uint32_t>(pair_rng_.below(n - 1));
  if (j >= i) ++j;  // uniform over ordered pairs of distinct agents
  ++interactions_;
  if (asleep(i) || asleep(j)) {  // stuck agent: null interaction
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
    return false;
  }
  const StateId p = population_.state_of(i);
  const StateId q = population_.state_of(j);
  if (!table_->effective(p, q)) {
    PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, false));
    return false;
  }
  const Transition& t = table_->apply(p, q);
  population_.apply(i, j, t);
  ++effective_;
  oracle.on_transition(p, q, t.initiator, t.responder);
  if (observer_) {
    observer_(SimEvent{interactions_, i, j, p, q, t.initiator, t.responder});
  }
  PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
  return true;
}

Snapshot ChurnSimulator::snapshot() const {
  SnapshotWriter w("churn");
  w.rng(pair_rng_);
  w.rng(fault_rng_);
  w.u64(interactions_);
  w.u64(effective_);
  w.u64(next_event_);
  w.u64(default_join_state_);
  w.states(population_.states());
  w.u64(sleep_until_.size());
  for (const std::uint64_t until : sleep_until_) w.u64(until);
  return std::move(w).take();
}

void ChurnSimulator::restore(const Snapshot& snap) {
  SnapshotReader r(snap, "churn");
  r.rng(pair_rng_);
  r.rng(fault_rng_);
  interactions_ = r.u64();
  effective_ = r.u64();
  const std::uint64_t next_event = r.u64();
  PPK_EXPECTS(next_event <= schedule_.size());
  const std::uint64_t join_state = r.u64();
  PPK_EXPECTS(join_state < table_->num_states());
  auto states = r.states(table_->num_states());
  const std::uint64_t sleep_len = r.u64();
  PPK_EXPECTS(sleep_len == states.size());
  std::vector<std::uint64_t> sleep_until(sleep_len, 0);
  for (auto& until : sleep_until) until = r.u64();
  r.finish();
  next_event_ = next_event;
  default_join_state_ = static_cast<StateId>(join_state);
  population_.restore_states(std::move(states));
  sleep_until_ = std::move(sleep_until);
}

SimResult ChurnSimulator::run(StabilityOracle& oracle,
                              std::uint64_t max_interactions) {
  oracle.reset(population_.counts());
  return resume(oracle, max_interactions);
}

SimResult ChurnSimulator::resume(StabilityOracle& oracle,
                                 std::uint64_t max_interactions) {
  SimResult result;
  const std::uint64_t start = interactions_;
  const std::uint64_t start_effective = effective_;
  while (interactions_ - start < max_interactions) {
    if (oracle.stable()) {
      if (next_event_ >= schedule_.size()) break;
      // Events fire at the top of a step, so the last one reachable under
      // this budget has at <= start + max_interactions - 1.  A stable
      // population whose remaining events all lie beyond that would only
      // draw null pairs until the budget runs out -- stop now instead.
      const std::uint64_t next_at = schedule_[next_event_].at;
      if (next_at >= start && next_at - start >= max_interactions) break;
    }
    step(oracle);
  }
  result.interactions = interactions_ - start;
  result.effective = effective_ - start_effective;
  result.stabilized = oracle.stable();
  return result;
}

}  // namespace ppk::pp
