// Fault injection and population churn.
//
// The paper motivates uniform k-partition with fault-prone sensor
// deployments, but its protocol assumes a fixed population and designated
// initial states.  This subsystem makes the gap measurable: it defines the
// injectable fault events (agent crash, join, transient state corruption,
// temporarily stuck agents), and a churn-capable engine that executes a
// deterministic, seed-reproducible fault schedule against the agent-array
// simulator while recording a complete fault trace.
//
// Semantics:
//  - kCrash    an agent disappears; its state (and any group slot the
//              protocol's bookkeeping assigned to it) is lost.
//  - kJoin     a new agent appears, by default in the configured join
//              state (the protocol's designated initial state).
//  - kCorrupt  an agent's memory is overwritten with another state
//              (a transient bit-flip; the agent keeps running).
//  - kSleep    an agent stops responding for `duration` interactions;
//              pairs that draw a sleeping agent are null interactions.
//  - kReset    a surgical write performed by a recovery layer (see
//              core/recovery.hpp); never produced by schedules, but
//              recorded in the trace so it is a complete audit log.
//
// Determinism: fault-target resolution draws from an RNG stream separate
// from the pair-sampling stream, so enabling a schedule never perturbs the
// interaction sequence itself, and (seed, schedule) reproduces a run
// bit-for-bit.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

enum class FaultKind : std::uint8_t {
  kCrash,
  kJoin,
  kCorrupt,
  kSleep,
  kReset,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One scheduled fault.  Unset optional fields are resolved by the engine
/// when the event fires (uniform agent draw / default join state / uniform
/// corrupt state).
struct FaultEvent {
  /// The event fires after `at` pairs have been drawn, i.e. just before
  /// the (at+1)-th interaction; at = 0 fires before the first pair.
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kCrash;
  std::optional<std::uint32_t> agent;
  std::optional<StateId> state;
  /// kSleep only: how many interactions the agent stays stuck.
  std::uint64_t duration = 0;
};

/// What actually happened: every applied fault, with the resolved agent and
/// states, in execution order.
struct FaultRecord {
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t agent = 0;
  StateId old_state = 0;  // kJoin: equals new_state
  StateId new_state = 0;  // kCrash: equals old_state
  std::uint32_t population_after = 0;
};

using FaultTrace = std::vector<FaultRecord>;

/// Per-interaction fault probabilities for rate-based schedules.
struct FaultRates {
  double crash = 0.0;
  double join = 0.0;
  double corrupt = 0.0;
  double sleep = 0.0;
  /// Duration assigned to every rate-generated kSleep event.
  std::uint64_t sleep_duration = 10'000;
};

/// Expands rates into an explicit, deterministic event list over the first
/// `horizon` interactions (geometric gap sampling, so cost is O(#events)
/// not O(horizon)).  Events are sorted by firing time.
[[nodiscard]] std::vector<FaultEvent> make_fault_schedule(
    const FaultRates& rates, std::uint64_t horizon, std::uint64_t seed);

/// The churn-capable reference engine.  Behaves exactly like AgentSimulator
/// (ordered uniform pair draws; null interactions count) plus a fault
/// schedule executed at the scheduled interaction indices, surgical fault
/// primitives for recovery layers, and a fault trace.
///
/// Every fault notifies the stability oracle via on_external_change() --
/// oracles built for a fixed population go stale and fail loudly (see
/// stability.hpp) -- and then the fault observer, which may itself apply
/// surgical writes (this is how core::RecoveryManager seeds reset waves).
class ChurnSimulator {
 public:
  ChurnSimulator(const TransitionTable& table, Population population,
                 std::uint64_t seed)
      : table_(&table),
        population_(std::move(population)),
        pair_rng_(derive_stream_seed(seed, 0)),
        fault_rng_(derive_stream_seed(seed, 1)),
        sleep_until_(population_.size(), 0) {
    PPK_EXPECTS(population_.size() >= 2);
  }

  /// Installs the fault schedule (sorted by firing time internally).
  void set_schedule(std::vector<FaultEvent> schedule);

  /// State that kJoin events without an explicit state enter; defaults to
  /// state 0.  Recovery layers keep this pointed at the current epoch's
  /// initial state.
  void set_default_join_state(StateId s) {
    PPK_EXPECTS(s < table_->num_states());
    default_join_state_ = s;
  }

  /// Observer invoked after every applied fault (including surgical ones).
  void set_fault_observer(std::function<void(const FaultRecord&)> observer) {
    fault_observer_ = std::move(observer);
  }

  /// Observer invoked after every effective interaction, as in
  /// AgentSimulator.
  void set_observer(std::function<void(const SimEvent&)> observer) {
    observer_ = std::move(observer);
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified per drawn interaction, counts applied faults per kind
  /// (faults.crash, faults.join, ...) and tracks the live population size
  /// in the churn.population gauge; it must outlive the simulator.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Applies due faults, then draws and applies one pair.  Returns true
  /// iff the interaction was effective.
  bool step(StabilityOracle& oracle);

  /// Runs until the oracle reports stability *and* no scheduled events
  /// remain, or the interaction budget is exhausted.  (A stable population
  /// keeps drawing null pairs until the next scheduled fault fires, so
  /// fault times are honored on the same interaction clock the paper
  /// measures.)  Events scheduled beyond the budget never fire; once the
  /// oracle is stable and only such events remain, the run ends early
  /// instead of idling the rest of the budget away on null draws.
  SimResult run(StabilityOracle& oracle, std::uint64_t max_interactions);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress (e.g. a quiescence
  /// lull spanning the chunk boundary).
  SimResult resume(StabilityOracle& oracle, std::uint64_t max_interactions);

  // --- Surgical fault primitives (recovery layers, examples) -------------
  // All of them record a FaultRecord, notify `oracle` (when non-null) via
  // on_external_change, and invoke the fault observer.

  /// Removes an agent (resolved uniformly when `agent` is unset).  Returns
  /// the removed agent's index, or nullopt if the population is already at
  /// the minimum size of 2 (the event is dropped).
  std::optional<std::uint32_t> crash(std::optional<std::uint32_t> agent,
                                     StabilityOracle* oracle);

  /// Adds an agent in `state` (default join state when unset); returns its
  /// index.
  std::uint32_t join(std::optional<StateId> state, StabilityOracle* oracle);

  /// Overwrites an agent's state; an unset `state` draws uniformly among
  /// the other states (a corrupting fault always corrupts).
  void corrupt(std::optional<std::uint32_t> agent,
               std::optional<StateId> state, StabilityOracle* oracle);

  /// Makes an agent unresponsive for `duration` interactions.
  void sleep(std::optional<std::uint32_t> agent, std::uint64_t duration,
             StabilityOracle* oracle);

  /// Recovery-layer write: sets an agent's state, recorded as kReset.
  void overwrite_state(std::uint32_t agent, StateId state,
                       StabilityOracle* oracle);

  /// Serializable mid-run state: per-agent states, both RNG streams, the
  /// sleep table, the schedule cursor, the default join state and the
  /// interaction counters (contract in pp/snapshot.hpp).  The schedule
  /// itself is a constructor-time input -- reinstall it via set_schedule()
  /// before restoring -- and the fault trace is an audit log, not replayed
  /// state: a restored engine records faults from the restore point on.
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine with the same table and the
  /// same installed schedule; resuming afterwards is bit-identical to the
  /// snapshotted engine under the same resume() grants.
  void restore(const Snapshot& snap);

  // --- Accessors ----------------------------------------------------------

  [[nodiscard]] bool asleep(std::uint32_t agent) const noexcept {
    return sleep_until_[agent] > interactions_;
  }

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

  [[nodiscard]] const FaultTrace& trace() const noexcept { return trace_; }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

  [[nodiscard]] std::uint64_t effective() const noexcept { return effective_; }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return schedule_.size() - next_event_;
  }

 private:
  void apply_due_faults(StabilityOracle& oracle);
  std::uint32_t resolve_agent(const std::optional<std::uint32_t>& agent);
  void record(FaultKind kind, std::uint32_t agent, StateId old_state,
              StateId new_state, StabilityOracle* oracle);

  const TransitionTable* table_;
  Population population_;
  Xoshiro256 pair_rng_;
  Xoshiro256 fault_rng_;
  /// Per-agent wake time; kept index-aligned with the population across
  /// crash swap-removals.
  std::vector<std::uint64_t> sleep_until_;
  std::vector<FaultEvent> schedule_;
  std::size_t next_event_ = 0;
  StateId default_join_state_ = 0;
  FaultTrace trace_;
  std::function<void(const FaultRecord&)> fault_observer_;
  std::function<void(const SimEvent&)> observer_;
  obs::ObsSink* obs_ = nullptr;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

/// The ISSUE-facing name: a ChurnSimulator *is* the fault injector.
using FaultInjector = ChurnSimulator;

}  // namespace ppk::pp
