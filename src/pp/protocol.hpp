// Core abstractions of the population protocol model (Angluin et al. 2006).
//
// A protocol is P = (Q, delta) plus an output map.  We model delta on
// *ordered* pairs (initiator, responder): the general population protocol
// model distinguishes the two roles, and symmetric protocols -- the subclass
// the paper works in -- are exactly those whose delta commutes with swapping
// the pair.  Symmetry and determinism are checkable properties of a protocol
// (see transition_table.hpp), not assumptions baked into the interface.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppk::pp {

/// Index of a local state in Q.  Every protocol in this repository has at
/// most a few thousand states, so 16 bits keep configurations compact.
using StateId = std::uint16_t;

/// Index of an output group (the value of the output map f).
using GroupId = std::uint16_t;

/// Result of one pairwise interaction: the successor states of the
/// initiator and the responder.
struct Transition {
  StateId initiator;
  StateId responder;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// Declared state-permutation symmetry of a protocol's transition table,
/// given by generators.  Each generator is a permutation pi of
/// 0..num_states-1 (pi[s] = image of state s) under which the table is an
/// automorphism at the count level: for every ordered pair (p, q), the
/// output *multiset* of delta(pi(p), pi(q)) equals pi applied to the
/// output multiset of delta(p, q).  Such permutations act on count-vector
/// configurations, and the induced orbit quotient is a strongly lumpable
/// partition of the uniform-scheduler Markov chain (pp/symmetry.hpp has
/// the machinery; verify/lumped_markov.hpp certifies lumpability with an
/// exact rate-sum check instead of trusting this declaration).
struct SymmetrySpec {
  /// |Q| of the table the generators act on.
  StateId num_states = 0;
  /// Generator permutations; empty declares the trivial group {id}.
  std::vector<std::vector<StateId>> generators;

  /// True iff only the identity is declared.
  [[nodiscard]] bool trivial() const noexcept { return generators.empty(); }
};

/// Abstract interface of a deterministic population protocol with an output
/// map onto groups.  Implementations must be pure: delta() and group() may
/// not depend on anything but their arguments.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Human-readable identifier used in logs, CSV output and test names.
  [[nodiscard]] virtual std::string name() const = 0;

  /// |Q|.  State ids are 0 .. num_states()-1.
  [[nodiscard]] virtual StateId num_states() const = 0;

  /// The designated initial state s0 (protocols started from a non-uniform
  /// initial configuration, e.g. majority, still define a default).
  [[nodiscard]] virtual StateId initial_state() const = 0;

  /// delta applied to the ordered pair (initiator p, responder q).
  /// Pairs without an explicit rule must return {p, q} (the null transition).
  [[nodiscard]] virtual Transition delta(StateId p, StateId q) const = 0;

  /// The output map f: Q -> groups.
  [[nodiscard]] virtual GroupId group(StateId s) const = 0;

  /// Number of output groups (k for partition protocols).
  [[nodiscard]] virtual GroupId num_groups() const = 0;

  /// Debug name of a state; the default is "s<i>".
  [[nodiscard]] virtual std::string state_name(StateId s) const;

  /// The table's state-permutation symmetry group, declared as generators
  /// next to the transition rules (SymmetrySpec above).  The default is the
  /// trivial group; families override this with their true symmetries
  /// (e.g. the k-partition free-flip initial <-> initial').  Declarations
  /// are never trusted: pp::check_symmetry and the lumped Markov analysis
  /// verify them programmatically.
  [[nodiscard]] virtual SymmetrySpec symmetry() const;
};

}  // namespace ppk::pp
