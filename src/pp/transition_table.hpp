// Dense cache of a protocol's transition function, plus machine checks of
// the structural properties the paper relies on.
//
// Two distinct properties are checked:
//  - is_symmetric(): the paper's Definition (Section 2.1): a transition
//    (p,q) -> (p',q') is asymmetric iff p = q and p' != q'; a protocol is
//    symmetric iff no such transition exists.  Symmetric protocols need no
//    symmetry-breaking between identical agents.
//  - is_swap_consistent(): delta(q,p) is the swap of delta(p,q) for all
//    pairs, i.e. the rule set can be read as unordered rules.  Protocols
//    that use the initiator/responder distinction (leader election, exact
//    majority) are deliberately not swap-consistent on the diagonal.
//
// The simulators execute millions to billions of interactions per trial, so
// delta is flattened into a |Q|^2 array once and then every lookup is a
// single indexed load.  The table also precomputes which ordered pairs are
// *effective* (change at least one participant), which both engines and the
// silence detector rely on.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pp/protocol.hpp"

namespace ppk::pp {

class TransitionTable {
 public:
  /// Materializes delta for every ordered pair.  O(|Q|^2) time and space.
  explicit TransitionTable(const Protocol& protocol);

  [[nodiscard]] StateId num_states() const noexcept { return num_states_; }

  /// Cached delta(p, q).
  [[nodiscard]] const Transition& apply(StateId p, StateId q) const noexcept {
    return table_[index(p, q)];
  }

  /// True iff delta(p, q) differs from (p, q).
  [[nodiscard]] bool effective(StateId p, StateId q) const noexcept {
    return effective_[index(p, q)] != 0;
  }

  /// Paper's symmetry: no rule maps equal states to distinct states.
  [[nodiscard]] bool is_symmetric() const noexcept {
    return asymmetric_diagonal_.empty();
  }

  /// True iff delta(q, p) == swap(delta(p, q)) for all ordered pairs.
  [[nodiscard]] bool is_swap_consistent() const noexcept {
    return swap_consistent_;
  }

  /// States p with an asymmetric diagonal rule delta(p,p) = (p', q'),
  /// p' != q' (empty exactly for symmetric protocols).
  [[nodiscard]] const std::vector<StateId>& asymmetric_diagonal_states()
      const noexcept {
    return asymmetric_diagonal_;
  }

 private:
  [[nodiscard]] std::size_t index(StateId p, StateId q) const noexcept {
    return static_cast<std::size_t>(p) * num_states_ + q;
  }

  StateId num_states_;
  std::vector<Transition> table_;
  std::vector<char> effective_;  // char, not bool: avoids bitset proxy cost
  std::vector<StateId> asymmetric_diagonal_;
  bool swap_consistent_;
};

}  // namespace ppk::pp
