#include "pp/transition_table.hpp"

#include "util/assert.hpp"

namespace ppk::pp {

TransitionTable::TransitionTable(const Protocol& protocol)
    : num_states_(protocol.num_states()), swap_consistent_(true) {
  PPK_EXPECTS(num_states_ > 0);
  const std::size_t n = num_states_;
  table_.resize(n * n);
  effective_.resize(n * n);

  for (StateId p = 0; p < num_states_; ++p) {
    for (StateId q = 0; q < num_states_; ++q) {
      const Transition t = protocol.delta(p, q);
      PPK_ASSERT(t.initiator < num_states_ && t.responder < num_states_);
      table_[index(p, q)] = t;
      effective_[index(p, q)] =
          static_cast<char>(t.initiator != p || t.responder != q);
    }
  }

  for (StateId p = 0; p < num_states_; ++p) {
    const Transition diag = table_[index(p, p)];
    if (diag.initiator != diag.responder) {
      asymmetric_diagonal_.push_back(p);
    }
    for (StateId q = 0; q < num_states_; ++q) {
      const Transition forward = table_[index(p, q)];
      const Transition backward = table_[index(q, p)];
      if (backward.initiator != forward.responder ||
          backward.responder != forward.initiator) {
        swap_consistent_ = false;
      }
    }
  }
}

}  // namespace ppk::pp
