// Result types shared by both simulation engines.

#pragma once

#include <cstdint>

#include "pp/protocol.hpp"

namespace ppk::pp {

/// One effective interaction, as reported to observers.
struct SimEvent {
  std::uint64_t interaction;  // 1-based index of the drawn pair
  std::uint32_t initiator;
  std::uint32_t responder;
  StateId p, q;            // states before
  StateId p_next, q_next;  // states after
};

/// Outcome of a run.
struct SimResult {
  std::uint64_t interactions = 0;  // total pairs drawn, incl. null
  std::uint64_t effective = 0;     // pairs whose rule changed a state
  bool stabilized = false;
};

}  // namespace ppk::pp
