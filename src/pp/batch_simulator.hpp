// The collision-free batch simulation engine: o(1) amortized work per
// interaction, distribution-identical to AgentSimulator.
//
// Every other engine pays at least O(1) per *drawn* interaction (agent,
// count) or O(|Q|) per *effective* interaction (jump).  This engine applies
// whole groups of interactions at once and touches the RNG O(|Q|) times per
// group, so its per-interaction cost vanishes as n grows.
//
// Exactness is the crux.  A naive batch -- draw B ordered state pairs from
// the multinomial over the |Q|^2 pair weights c_p (c_q - [p==q]) and apply
// them in aggregate -- is exact only while no drawn agent has already been
// changed within the batch: the first effective pair makes some agents'
// states "dirty", and subsequent draws must see the updated configuration.
// Instead of bounding B heuristically, the engine batches exactly up to the
// first repeated agent (the birthday boundary):
//
//  1. Run length.  Let L be the number of leading interactions in which all
//     drawn agents are distinct (2L distinct agents).  Under the uniform
//     scheduler P(L >= l) = n! / ((n-2l)! * (n(n-1))^l), a birthday-type
//     survival function with E[L] = Theta(sqrt(n)).  L is sampled by
//     inverting that CDF in log space (two lgamma calls per probe, binary
//     search over l).
//  2. Composition.  Conditioned on L, the 2L agents are a uniform
//     without-replacement sample: the initiators' state multiset U is
//     multivariate hypergeometric over the counts, the responders' V over
//     the remainder, and the ordered state-pair contingency table N[p][q]
//     follows from pairing U against V by a uniform matching -- each row a
//     sequential (multivariate) hypergeometric split of V.  Every draw uses
//     the exact samplers in util/rng.hpp.
//  3. Aggregate apply.  All L interactions touch pairwise-distinct agents,
//     so their transitions commute: each cell (p, q) with N[p][q] = m moves
//     m agents per rule output in O(1); null cells are free.
//  4. The collision interaction.  If the budget allows, the (L+1)-th
//     interaction -- the one that first touches an already-touched agent --
//     is drawn exactly: a uniform ordered pair conditioned on not being
//     fresh-fresh, with integer weights c_a (c_b - [a==b]) minus the
//     fresh-fresh weights (fresh counts = post-batch counts minus the
//     per-state touched counts accumulated in step 3).
//
// After the collision interaction the batch merges into the plain count
// vector and the next batch starts from scratch; the scheduler is i.i.d.,
// so no information leaks across the boundary.  When an interaction budget
// truncates a batch the engine conditions only on "the first b draws are
// collision-free" (it never uses the sampled run length beyond the
// truncation point), which keeps budgets exact.
//
// Sparse regime.  Near silence the batch above still advances only
// Theta(sqrt(n)) interactions per O(|Q|^2) of work while almost all of them
// are null.  There the engine switches to a thin regime -- the jump
// engine's trick: skip the geometric(p_eff) null run in O(1), draw one
// effective pair with exact integer weights.  kAuto picks per advance:
// batch while p_eff * sqrt(n) >= 1, thin below (the crossover where a
// single geometric skip outruns a whole batch).  Tests pin either regime
// via set_batch_mode().
//
// Oracles see batches through StabilityOracle::on_batch (endpoints only;
// see stability.hpp for why that is exact for configuration-function
// oracles) and thin-regime draws through the usual on_transition.

#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

/// Regime selection for BatchSimulator.  kAuto is the production setting;
/// the forced modes exist so tests can exercise one code path in isolation.
enum class BatchMode {
  kAuto,        ///< per-advance choice between batch and thin (default)
  kForceBatch,  ///< always the collision-free batch path
  kForceThin,   ///< always the geometric-skip pairwise path
};

class BatchSimulator {
 public:
  BatchSimulator(const TransitionTable& table, Counts initial,
                 std::uint64_t seed);

  /// One bounded advance: a collision-free batch (plus its collision
  /// interaction) or one thin-regime effective draw, per the mode.  Returns
  /// false iff the configuration is silent (nothing can advance).
  bool step(StabilityOracle& oracle);

  /// Runs until the oracle reports stability, the interaction budget is
  /// exhausted, or the configuration goes silent without satisfying the
  /// oracle (stabilized = false).  The budget is exact: batches truncate at
  /// the boundary (conditioning only on collision-freeness of the draws
  /// actually used) and thin-regime null skips clamp like the jump engine.
  /// The oracle is reset from the current counts.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress.  Note that because
  /// the oracle observes batch *endpoints*, a stabilization that occurs
  /// mid-batch is reported at the batch's end -- at most Theta(sqrt(n))
  /// interactions late against the Theta(n^2) totals being measured.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  void set_batch_mode(BatchMode mode) noexcept { mode_ = mode; }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink sees each batch at its endpoint (timeline samples inside a batch
  /// carry the endpoint configuration -- the on_batch attribution contract)
  /// and each thin-regime null run / effective pair exactly; it must
  /// outlive the simulator.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Serializable mid-run state: counts, RNG position, interaction counters
  /// and the batch mode (contract in pp/snapshot.hpp).  Batches never carry
  /// state across advances (each one merges into the count vector at its
  /// collision boundary), so nothing else needs saving; the lgamma table
  /// and scratch buffers are rebuilt/retained by the receiving engine.
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.
  void restore(const Snapshot& snap);

  [[nodiscard]] BatchMode batch_mode() const noexcept { return mode_; }

  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

  /// Exact total weight of effective ordered pairs (out of n(n-1)) in the
  /// current configuration; 0 iff silent.
  [[nodiscard]] std::uint64_t effective_weight() const;

 private:
  /// Advances at most `budget` (>= 1) interactions.  Returns the number
  /// actually advanced; 0 iff the configuration is silent.
  std::uint64_t advance(StabilityOracle& oracle, std::uint64_t budget);

  std::uint64_t batch_advance(StabilityOracle& oracle, std::uint64_t budget);
  std::uint64_t thin_advance(StabilityOracle& oracle, std::uint64_t budget,
                             std::uint64_t weight);

  /// Samples the birthday run length L (largest l such that the first l
  /// interactions touch 2l distinct agents), capped at floor(n/2).
  std::uint64_t sample_run_length();

  void apply_pair(StateId p, StateId q);

  /// log(x!) for the integral-valued double x.  Every hypergeometric draw
  /// needs several of these; for populations up to kLogFactTableMax the
  /// constructor borrows the process-wide shared lgamma table
  /// (util/log_fact.hpp; values bit-identical to calling lgamma live, and
  /// the fill cost is paid once per process instead of once per engine).
  /// Larger populations fall back to live lgamma, exactly as before the
  /// table was hoisted -- the sharded engine owns the fast large-n path.
  [[nodiscard]] double log_fact(double x) const {
    return log_fact_ == nullptr
               ? std::lgamma(x + 1.0)
               : (*log_fact_)[static_cast<std::size_t>(x)];
  }

  static constexpr std::uint64_t kLogFactTableMax = 1ULL << 20;

  const TransitionTable* table_;
  Counts counts_;
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
  BatchMode mode_ = BatchMode::kAuto;
  obs::ObsSink* obs_ = nullptr;
  double sqrt_n_ = 0.0;
  /// Shared table of log(i!) for i <= n when n is tabulable, else null.
  std::shared_ptr<const std::vector<double>> log_fact_;

  /// Effective cells (p, q) in deterministic (row-major) order; the thin
  /// regime's weight scans and the silence check iterate these.
  std::vector<std::pair<StateId, StateId>> effective_cells_;

  // Scratch buffers reused across batches (never shrink; |Q| is tiny).
  std::vector<std::uint32_t> initiators_;    // U: initiator state multiset
  std::vector<std::uint32_t> responders_;    // V: responder state multiset
  std::vector<std::uint32_t> remaining_;     // urn scratch for row splits
  std::vector<std::uint32_t> touched_;       // post-batch touched counts
  std::vector<std::int64_t> count_delta_;    // batch count deltas
};

}  // namespace ppk::pp
