// Human-readable execution traces, used by the paper-figure replay example
// and by failing-test diagnostics.

#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "pp/agent_simulator.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace ppk::pp {

/// "a1:initial a2:m2 ..." -- the per-agent view (paper Figs. 1-2 style).
inline std::string format_agents(const Protocol& protocol,
                                 const Population& population) {
  std::ostringstream out;
  for (std::uint32_t a = 0; a < population.size(); ++a) {
    if (a > 0) out << ' ';
    out << 'a' << (a + 1) << ':'
        << protocol.state_name(population.state_of(a));
  }
  return out.str();
}

/// "{initial:4, g1:1, m2:1}" -- the count-vector view.
inline std::string format_counts(const Protocol& protocol,
                                 const Counts& counts) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (StateId s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << protocol.state_name(s) << ':' << counts[s];
  }
  out << '}';
  return out.str();
}

/// Collects effective-interaction events; attach via
/// simulator.set_observer(recorder.observer()).
class TraceRecorder {
 public:
  explicit TraceRecorder(const Protocol& protocol) : protocol_(&protocol) {}

  [[nodiscard]] std::function<void(const SimEvent&)> observer() {
    return [this](const SimEvent& event) { events_.push_back(event); };
  }

  [[nodiscard]] const std::vector<SimEvent>& events() const noexcept {
    return events_;
  }

  /// One line per event: "#12 (a1,a6): initial' x initial -> m2 x g1".
  [[nodiscard]] std::string to_string() const {
    std::ostringstream out;
    for (const auto& e : events_) {
      out << '#' << e.interaction << " (a" << (e.initiator + 1) << ",a"
          << (e.responder + 1) << "): " << protocol_->state_name(e.p) << " x "
          << protocol_->state_name(e.q) << " -> "
          << protocol_->state_name(e.p_next) << " x "
          << protocol_->state_name(e.q_next) << '\n';
    }
    return out.str();
  }

 private:
  const Protocol* protocol_;
  std::vector<SimEvent> events_;
};

}  // namespace ppk::pp
