// The live-edge ("graph jump") simulation engine: GraphSimulator's
// distribution with JumpSimulator's null-skipping.
//
// On a sparse interaction graph the wedged endgame is even more extreme
// than the complete-graph one: a k-partition run on a ring typically ends
// with a handful of builders walled in by committed neighbours, where
// *every* adjacent pair is null and GraphSimulator draws null edges until
// the budget runs out.  This engine never draws a null pair and recognizes
// that dead end exactly, in O(1).
//
// It maintains the set of **live directed edges** -- orientations (i, j)
// of graph edges whose current endpoint-state pair (state(i), state(j))
// has an effective rule -- incrementally:
//
//  - CSR adjacency over the InteractionGraph (offset + incident-edge
//    arrays) locates the edges a state change can affect;
//  - a dense position index with swap-delete keeps the live set a
//    contiguous array, so membership updates are O(1) and sampling is one
//    uniform draw;
//  - an effective interaction at agents (i, j) re-derives liveness for
//    both orientations of every edge incident to i or j: O(deg i + deg j)
//    per effective interaction, independent of how many nulls it skipped.
//
// Sampling matches GraphSimulator's law exactly.  GraphSimulator draws a
// uniform edge then a uniform orientation -- a uniform directed edge out
// of 2m -- and the draw is effective iff that directed edge is live, so
// with L live directed edges each drawn pair is effective with probability
// p_eff = L / 2m and, conditioned on being effective, is uniform over the
// live set.  This engine samples the null-run length from geometric(p_eff)
// in O(1) and then one uniform live directed edge: the same conditional
// distribution, which the conformance harness KS-verifies per topology.
//
// Zero live directed edges is precisely the dead-silent condition on the
// graph (wedged, or globally silent): step() then returns false without
// advancing, so wedged runs stop immediately instead of exhausting the
// budget -- exact wedge detection, where GraphSimulator cannot detect it
// at all (see the contract note in graph_simulator.hpp).
//
// Chunked runs are bit-identical to unchunked ones: when a budget boundary
// truncates a null run, the *remainder* of the already-sampled run is
// carried into the next grant instead of being re-sampled (memorylessness
// makes re-sampling equally correct in law, but carrying the remainder
// keeps the RNG stream independent of the chunking, so run() + resume()
// reproduces an unchunked run bit for bit -- the conformance harness
// checks this engine under the pairwise chunked-resume net, which the
// complete-graph jump/batch engines cannot pass).  Liveness cannot change
// during a null run (counts do not move), so the carried remainder's
// p_eff is still exact.

#pragma once

#include <cstdint>
#include <vector>

#include "pp/interaction_graph.hpp"
#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

class GraphJumpSimulator {
 public:
  GraphJumpSimulator(const TransitionTable& table, InteractionGraph graph,
                     Population population, std::uint64_t seed);

  /// Advances to (and applies) the next effective interaction, adding the
  /// skipped null draws to interactions().  Returns false iff no directed
  /// edge is live (the configuration is dead-silent on the graph; calling
  /// step again keeps returning false without advancing).
  bool step(StabilityOracle& oracle);

  /// Runs until the oracle reports stability, the interaction budget is
  /// exhausted, or the live set empties without satisfying the oracle (a
  /// wedged configuration; stabilized = false with interactions() short of
  /// the budget).  The budget is exact: `interactions()` never advances
  /// past it, and a null run truncated at the boundary resumes from its
  /// remainder on the next grant.  The oracle is reset from the current
  /// configuration.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress (e.g. a quiescence
  /// lull spanning the chunk boundary).  Bit-identical to an unchunked run.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  /// Records, into `marks`, the interaction index of every increase of
  /// `state`'s count (one entry per unit of increase), exactly as the
  /// agent engine's observer would.  Pass nullptr to stop recording.
  void set_watch(StateId state, std::vector<std::uint64_t>* marks) {
    PPK_EXPECTS(marks == nullptr ||
                state < population_.counts().size());
    watch_state_ = state;
    watch_marks_ = marks;
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink sees each null run (before the concluding pair is applied, so
  /// timeline samples inside the run are exact) and each effective
  /// interaction; it must outlive the simulator.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Serializable mid-run state: per-agent states, RNG position,
  /// interaction counters, the parked null-run remainder, and the live
  /// list *in its current order* (draws index into it and swap-removal
  /// makes the order history-dependent, so it is sampling state, not a
  /// rebuildable cache; contract in pp/snapshot.hpp).  The topology is a
  /// constructor argument.
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments (same graph); resuming afterwards is bit-identical to the
  /// snapshotted engine under the same resume() grants.  Watch hooks are
  /// not part of a snapshot -- re-attach them after restoring.
  void restore(const Snapshot& snap);

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

  [[nodiscard]] const InteractionGraph& graph() const noexcept {
    return graph_;
  }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

  /// Number of live directed edges (orientations with an effective rule).
  /// Zero iff the configuration is dead-silent on this graph -- the exact
  /// O(1) wedge predicate.
  [[nodiscard]] std::uint64_t live_directed_edges() const noexcept {
    return live_.size();
  }

 private:
  /// One bounded advance: skips nulls and applies the next effective pair,
  /// but never moves interactions() forward by more than `budget`.  A null
  /// run reaching the budget consumes exactly `budget` draws and parks the
  /// remainder in pending_nulls_.  Returns false iff the live set is empty
  /// (nothing advanced).
  bool step_within(StabilityOracle& oracle, std::uint64_t budget);

  /// Re-derives liveness of both orientations of every edge incident to
  /// agent v from the current states.  Idempotent, so edges incident to
  /// both interaction endpoints may be refreshed twice.
  void refresh_incident(std::uint32_t v);

  /// Inserts/removes directed edge d in the live set (swap-delete; no-op
  /// if already in the requested status).
  void set_live(std::uint32_t d, bool live);

  /// Recomputes the live set from the current per-agent states (used by
  /// the constructor and by restore()).
  void rebuild_live();

  const TransitionTable* table_;
  InteractionGraph graph_;
  Population population_;
  Xoshiro256 rng_;

  /// CSR adjacency: incident *edge ids* of agent v are
  /// adj_edge_[adj_offset_[v] .. adj_offset_[v + 1]).
  std::vector<std::uint64_t> adj_offset_;
  std::vector<std::uint32_t> adj_edge_;

  /// Live directed edges, as ids 2 * edge + orientation (0 = stored a->b,
  /// 1 = reversed), contiguous for uniform sampling.
  std::vector<std::uint32_t> live_;
  /// pos_[d] = index of directed edge d inside live_, or kNoPos.
  std::vector<std::uint32_t> pos_;

  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
  /// Remainder of a geometric null run truncated at a budget boundary
  /// (valid iff has_pending_); consumed before any new draw so chunking
  /// never touches the RNG stream.
  std::uint64_t pending_nulls_ = 0;
  bool has_pending_ = false;

  StateId watch_state_ = 0;
  std::vector<std::uint64_t>* watch_marks_ = nullptr;
  obs::ObsSink* obs_ = nullptr;
};

}  // namespace ppk::pp
