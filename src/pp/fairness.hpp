// The fairness-policy axis: which scheduling guarantee a run exercises.
//
// A population protocol is only correct *relative to a fairness
// assumption*; the three papers this repo reproduces each assume a
// different one (see docs/fairness.md for the full matrix):
//
//  - kUniformRandom: every ordered pair equally likely each step.  The
//    standard probabilistic scheduler; globally fair with probability 1.
//  - kEpsilonFair: with probability 1 - epsilon the scheduler probes for
//    an interaction that makes no group-output progress.  Still globally
//    fair with probability 1 (every pair keeps epsilon/(n(n-1))
//    probability), but stalls progress -- a stress test for
//    global-fairness protocols, not a different correctness regime.
//  - kWeakRoundRobin: each round schedules every ordered pair exactly
//    once, in an adversarially chosen order (the scheduler probes for
//    non-progressing pairs first).  Any infinite execution interacts
//    every pair infinitely often and nothing more -- weakly fair by
//    construction, and NOT globally fair: protocols that need global
//    fairness (the paper's k-partition, the 4-state bipartition) livelock
//    or stabilize to wrong outputs under it, while
//    core::WeakKPartitionProtocol stabilizes.  Exhaustive ground truth
//    for which protocol survives which policy lives in
//    verify/weak_fairness.hpp.
//
// FairnessSpec rides in MonteCarloOptions: any protocol x policy x
// topology x engine combination is one scenario.  Policies other than
// kUniformRandom route the trial to the AdversarialSimulator (the only
// engine that schedules *agents* rather than state counts).

#pragma once

#include <cstdint>
#include <string>

#include "util/assert.hpp"

namespace ppk::pp {

/// The scheduling guarantee a run exercises (see the header comment).
enum class FairnessPolicy : std::uint8_t {
  kUniformRandom = 0,
  kEpsilonFair = 1,
  kWeakRoundRobin = 2,
};

/// A fairness policy plus its parameters; rides in MonteCarloOptions.
struct FairnessSpec {
  FairnessPolicy policy = FairnessPolicy::kUniformRandom;
  /// Probability of a uniform-random draw under kEpsilonFair (ignored by the
  /// other policies).  1.0 degenerates to kUniformRandom.
  double epsilon = 1.0;

  /// The standard scheduler: every ordered pair equally likely each step.
  [[nodiscard]] static FairnessSpec uniform_random() { return {}; }
  /// Adversarial stalling with a uniform draw at rate `epsilon` in (0, 1].
  [[nodiscard]] static FairnessSpec epsilon_fair(double epsilon) {
    PPK_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
    return {FairnessPolicy::kEpsilonFair, epsilon};
  }
  /// Weakly fair adversary: every ordered pair once per round.
  [[nodiscard]] static FairnessSpec weak_round_robin() {
    return {FairnessPolicy::kWeakRoundRobin, 1.0};
  }

  /// True iff the spec needs the agent-scheduling adversarial engine.
  [[nodiscard]] bool needs_adversarial_engine() const noexcept {
    return policy == FairnessPolicy::kWeakRoundRobin ||
           (policy == FairnessPolicy::kEpsilonFair && epsilon < 1.0);
  }
};

/// Stable display/serialization name of a policy.
[[nodiscard]] inline std::string to_string(FairnessPolicy policy) {
  switch (policy) {
    case FairnessPolicy::kUniformRandom:
      return "uniform-random";
    case FairnessPolicy::kEpsilonFair:
      return "epsilon-fair";
    case FairnessPolicy::kWeakRoundRobin:
      return "weak-round-robin";
  }
  PPK_ASSERT(false);
  return {};
}

}  // namespace ppk::pp
