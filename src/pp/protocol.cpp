#include "pp/protocol.hpp"

namespace ppk::pp {

std::string Protocol::state_name(StateId s) const {
  std::string name = "s";
  name += std::to_string(s);
  return name;
}

}  // namespace ppk::pp
