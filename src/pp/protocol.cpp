#include "pp/protocol.hpp"

namespace ppk::pp {

std::string Protocol::state_name(StateId s) const {
  std::string name = "s";
  name += std::to_string(s);
  return name;
}

SymmetrySpec Protocol::symmetry() const { return {num_states(), {}}; }

}  // namespace ppk::pp
