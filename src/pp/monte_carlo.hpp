// Repeated-trial driver: runs T independent simulations of a protocol and
// aggregates stabilization statistics, exactly as the paper's Section 5
// does ("we conduct a simulation 100 times and show the average values").
//
// Trials are deterministic functions of (master_seed, trial_index) -- stream
// seeds come from SplitMix64 -- so results are bit-reproducible regardless
// of how trials are spread over threads.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "pp/agent_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/fairness.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"

namespace ppk::obs {
class MetricsRegistry;
}  // namespace ppk::obs

namespace ppk::pp {

/// Which engine executes the trials.  kAuto picks per trial from the
/// population size, the requested instrumentation and whether a topology
/// is set (see resolve_engine(); docs/engines.md walks through the
/// policy).  kGraph (per-draw GraphSimulator) and kGraphJump (live-edge
/// skip-ahead; docs/topologies.md) require MonteCarloOptions::graph.
enum class Engine {
  kAgentArray,
  kCountVector,
  kJump,
  kBatch,
  kBatchSharded,
  kGraph,
  kGraphJump,
  kAuto,
};

/// Population size above which kAuto prefers kBatchSharded over kBatch:
/// the batch engine's log-factorial table stops at 2^20 agents, so past it
/// every hypergeometric draw pays live lgamma while the sharded engine's
/// shared-table + Stirling sampler keeps amortizing (docs/engines.md).
inline constexpr std::uint64_t kShardedCrossover = 1ULL << 20;

/// The engine kAuto resolves to for a population of n agents with (or
/// without) watch-mark instrumentation:
///  - a topology factory set: kGraphJump -- the live-edge engine records
///    exact watch marks and detects wedged configurations, so it strictly
///    dominates kGraph for unattended sweeps (pick kGraph explicitly for
///    per-drawn-pair observability).
///  - watch marks requested: agent for small n (per-agent state is cheap
///    and the observer is free), count above -- both record exact marks;
///    the batch engine cannot (aggregated draws have no per-interaction
///    indices) and is never chosen here.
///  - otherwise: agent while the population fits comfortably in cache
///    (n < 1024 -- batching overhead beats O(1) array steps only past
///    that), batch above, and the sharded SoA batch engine past
///    kShardedCrossover (where the plain batch engine falls off its
///    log-factorial table).
[[nodiscard]] Engine resolve_engine(Engine engine, std::uint64_t n,
                                    bool watch, bool graph = false);

/// Sub-stream (of a trial's stream seed) that seeds randomized topology
/// generation, keeping it independent of the interaction draws.  Shared
/// with the campaign runner (core/campaign.hpp) so both drivers derive
/// identical per-trial topologies from identical seeds.
inline constexpr std::uint64_t kGraphTopologyStream = 0x6772'6170'68ULL;

/// Default per-trial interaction budget.  The most expensive configuration
/// in the paper's evaluation (n = 960, k = 8) stabilizes in ~7e8
/// interactions, so legitimate runs never come near this, yet a
/// non-stabilizing trial (e.g. a post-crash population whose stable pattern
/// is unreachable) terminates with stabilized = false instead of spinning
/// forever.  Pass UINT64_MAX explicitly to disable the budget.
inline constexpr std::uint64_t kDefaultInteractionBudget =
    10'000'000'000ULL;

struct MonteCarloOptions {
  std::uint32_t trials = 100;
  std::uint64_t master_seed = 0x9E3779B97F4A7C15ULL;
  std::uint64_t max_interactions = kDefaultInteractionBudget;
  Engine engine = Engine::kAgentArray;
  /// 0 = one thread per hardware core.
  std::size_t threads = 1;
  /// Worker threads *inside* one trial's engine (currently consumed by
  /// kBatchSharded's sharded matching; other engines ignore it).  Results
  /// are bit-identical for every value -- the sharded engine's draws are a
  /// pure function of the seed -- so this is a throughput knob, not an
  /// experiment parameter.  0 = one worker per hardware core.
  std::size_t engine_threads = 1;
  /// If set, every time the count of this state increases, the current
  /// interaction index is recorded (the paper's NI_i grouping marks).
  /// Supported by the agent (observer hook), count and jump engines;
  /// requesting it with Engine::kBatch is a precondition violation (the
  /// batch engine aggregates draws and has no per-interaction indices --
  /// failing fast beats silently returning empty marks).  kAuto never
  /// resolves to batch when a watch is set.
  std::optional<StateId> watch_state;
  /// If set, a per-trial wall-clock cap: a trial that exceeds it stops at
  /// the next check (every ~4M interactions) and reports stabilized =
  /// false, timed_out = true.  Complements the interaction budget for
  /// configurations whose per-interaction cost is hard to predict.
  std::optional<double> wall_clock_limit_seconds;
  /// Interaction topology for the graph engines (kGraph / kGraphJump, or
  /// kAuto which resolves to kGraphJump when this is set): called once per
  /// trial with a seed derived from that trial's stream (so randomized
  /// topologies are independent across trials yet bit-reproducible), and
  /// must return a graph over exactly the population's agents.
  /// Deterministic topologies ignore the seed.  Unset for the
  /// complete-graph engines; setting it while forcing a non-graph engine
  /// is a precondition violation.
  std::function<InteractionGraph(std::uint64_t seed)> graph;
  /// Scheduling guarantee for the trials (pp/fairness.hpp).  The default
  /// uniform-random policy is what every count-based engine implements;
  /// kEpsilonFair (epsilon < 1) and kWeakRoundRobin route each trial to
  /// the agent-level AdversarialSimulator instead -- composed with `graph`
  /// when a topology factory is set, so fairness x topology is one
  /// scenario.  The adversarial scheduler needs the protocol's group map
  /// (to probe for non-progressing pairs), so a non-default policy
  /// requires the run_monte_carlo overload that takes a Protocol; it also
  /// excludes watch_state and forced count/batch engines (precondition
  /// violations -- those engines cannot realize the policy).
  FairnessSpec fairness{};
  /// If non-null, every trial runs with an observability sink writing into
  /// a private per-trial registry; the driver folds the trial registries
  /// into this one as trials finish (mutex-guarded -- the merge operations
  /// commute, so the aggregate is identical regardless of the thread
  /// interleaving).  Adds engine metrics (sim.*) plus per-trial outcome
  /// counters (trials, trials.stabilized, trials.timed_out, trials.stalled)
  /// and distribution histograms (trial.interactions, trial.effective).
  /// Must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
};

struct TrialResult {
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  bool stabilized = false;
  /// True iff wall_clock_limit_seconds stopped this trial.
  bool timed_out = false;
  /// True iff the engine stopped short of the interaction budget without
  /// stabilizing or timing out: the configuration went silent with the
  /// oracle unsatisfied (a dead configuration), distinct from ordinary
  /// budget exhaustion where interactions == max_interactions.
  bool stalled = false;
  /// Interaction indices at which `watch_state`'s count increased.
  std::vector<std::uint64_t> watch_marks;
};

struct MonteCarloResult {
  std::vector<TrialResult> trials;

  [[nodiscard]] double mean_interactions() const;
  [[nodiscard]] double stddev_interactions() const;
  [[nodiscard]] std::uint32_t stabilized_count() const;
};

/// Factory producing a fresh stability oracle per trial (oracles are
/// stateful and trials may run concurrently).
using OracleFactory = std::function<std::unique_ptr<StabilityOracle>()>;

/// Runs `options.trials` independent simulations of `table` starting from
/// `initial` counts.
MonteCarloResult run_monte_carlo(const TransitionTable& table,
                                 const Counts& initial,
                                 const OracleFactory& make_oracle,
                                 const MonteCarloOptions& options);

/// Convenience overload: n agents, all in the protocol's designated initial
/// state.
MonteCarloResult run_monte_carlo(const Protocol& protocol,
                                 const TransitionTable& table, std::uint32_t n,
                                 const OracleFactory& make_oracle,
                                 const MonteCarloOptions& options);

}  // namespace ppk::pp
