// The aggregated simulation engine.
//
// Population protocol dynamics under the uniform-random scheduler depend on
// the configuration only through its state-count vector: drawing an ordered
// pair of distinct agents uniformly at random induces the distribution
//
//   P(initiator in state p, responder in state q)
//     = c[p] * (c[q] - [p == q]) / (n * (n - 1)).
//
// CountSimulator samples directly from that distribution, so it is
// distribution-identical to AgentSimulator (the test suite checks both a
// schedule-level correspondence and a statistical agreement) while keeping
// only O(|Q|) memory -- configurations of a billion agents fit in a cache
// line.  The counts live in a Fenwick tree, so each of the two weighted
// draws per interaction is an O(log |Q|) descent and a transition's four
// count updates are four O(log |Q|) point updates; the tree's descent
// visits states in the same cumulative order the old linear scan did, so
// the upgrade is bit-reproducible with earlier versions.

#pragma once

#include <cstdint>
#include <vector>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

class CountSimulator {
 public:
  CountSimulator(const TransitionTable& table, Counts initial,
                 std::uint64_t seed)
      : table_(&table), counts_(std::move(initial)), rng_(seed) {
    PPK_EXPECTS(counts_.size() == table.num_states());
    fenwick_.assign(counts_);
    n_ = fenwick_.total();
    PPK_EXPECTS(n_ >= 2);
  }

  /// Draws one state pair from the pair distribution and applies the rule.
  /// Returns true iff the interaction was effective.
  bool step(StabilityOracle& oracle);

  /// Runs until stability or the interaction budget is exhausted.  The
  /// oracle is reset from the current counts.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress (e.g. a quiescence
  /// lull spanning the chunk boundary).
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  /// Records, into `marks`, the interaction index of every increase of
  /// `state`'s count (one entry per unit of increase, matching the agent
  /// engine's observer-based marks; the paper's NI_i grouping marks).
  /// Pass nullptr to stop recording.
  void set_watch(StateId state, std::vector<std::uint64_t>* marks) {
    PPK_EXPECTS(marks == nullptr || state < counts_.size());
    watch_state_ = state;
    watch_marks_ = marks;
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified after every drawn interaction (null or effective)
  /// and must outlive the simulator.  Totals count from attachment.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Serializable mid-run state: counts, RNG position and interaction
  /// counters (contract in pp/snapshot.hpp).  The Fenwick mirror is derived
  /// state and rebuilt by restore().
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.  Watch hooks are not part of a
  /// snapshot -- re-attach them after restoring.
  void restore(const Snapshot& snap);

  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

 private:
  const TransitionTable* table_;
  Counts counts_;
  FenwickTree fenwick_;  // mirrors counts_; the sampling structure
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
  StateId watch_state_ = 0;
  std::vector<std::uint64_t>* watch_marks_ = nullptr;
  obs::ObsSink* obs_ = nullptr;
};

}  // namespace ppk::pp
