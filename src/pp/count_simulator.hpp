// The aggregated simulation engine.
//
// Population protocol dynamics under the uniform-random scheduler depend on
// the configuration only through its state-count vector: drawing an ordered
// pair of distinct agents uniformly at random induces the distribution
//
//   P(initiator in state p, responder in state q)
//     = c[p] * (c[q] - [p == q]) / (n * (n - 1)).
//
// CountSimulator samples directly from that distribution, so it is
// distribution-identical to AgentSimulator (the test suite checks both a
// schedule-level correspondence and a statistical agreement) while keeping
// only O(|Q|) memory -- configurations of a billion agents fit in a cache
// line.  Per interaction it costs O(#present states) for the weighted draw,
// which for the protocols here (|Q| <= ~40) is comparable to the agent
// engine's O(1) but with far better locality for huge n.

#pragma once

#include <cstdint>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::pp {

class CountSimulator {
 public:
  CountSimulator(const TransitionTable& table, Counts initial,
                 std::uint64_t seed)
      : table_(&table), counts_(std::move(initial)), rng_(seed) {
    PPK_EXPECTS(counts_.size() == table.num_states());
    n_ = 0;
    for (auto c : counts_) n_ += c;
    PPK_EXPECTS(n_ >= 2);
  }

  /// Draws one state pair from the pair distribution and applies the rule.
  /// Returns true iff the interaction was effective.
  bool step(StabilityOracle& oracle);

  /// Runs until stability or the interaction budget is exhausted.  The
  /// oracle is reset from the current counts.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks without discarding oracle progress (e.g. a quiescence
  /// lull spanning the chunk boundary).
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

 private:
  /// Samples a state with probability counts[s]/total, after conceptually
  /// removing `exclude_one_of` (set to num_states() for no exclusion).
  StateId sample_state(std::uint64_t total, StateId exclude_one_of);

  const TransitionTable* table_;
  Counts counts_;
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

}  // namespace ppk::pp
