// The sharded structure-of-arrays batch engine: the collision-free batch
// algorithm (batch_simulator.hpp) rebuilt for single trials at
// n = 10^8..10^9, where the plain batch engine's remaining per-batch costs
// -- live lgamma past its table bound, division-bound pmf walks, O(|Q|^2)
// scalar weight scans -- dominate the wall clock.
//
// Same stochastic process, three structural changes:
//
//  1. SoA tiles + SIMD kernels.  Counts live in a 64-byte-aligned padded
//     mirror; the effective cells are flat index arrays (cell_p / cell_q /
//     diag) in aligned tiles.  Weight totals, the thin-regime weighted
//     pick and the collision-pair row scans run through the
//     runtime-dispatched kernels in util/simd.hpp (AVX2 gathers with a
//     bit-identical scalar fallback), and every hypergeometric draw uses
//     the blocked sampler (util/block_sampler.hpp) whose packed divides
//     take the pmf walk's division off the critical path.  Log-factorials
//     come from the shared table (util/log_fact.hpp) below 2^20 and its
//     deterministic Stirling tail above -- never live lgamma, which is the
//     single biggest win over the plain batch engine at n = 10^8.
//
//  2. Sharded matching.  A batch's uniform U-against-V matching is
//     decomposed in two exact levels: the initiator rows are partitioned
//     into kShards contiguous blocks, the responder multiset V is split
//     across the blocks by sequential multivariate-hypergeometric draws on
//     the engine's root RNG (conditioning on how many responders each
//     block receives -- the same urn decomposition the row-by-row matching
//     already uses, so the contingency-table law is unchanged), and each
//     block then matches its rows against its private responder share on
//     an independent generator seeded by derive_stream_seed(batch_seed, s)
//     where batch_seed is one root draw.  Shards write into private
//     cache-line-aligned delta/touched tiles, merged by a fixed-order
//     commutative integer reduction (the obs layer's merge discipline).
//
//  3. Deterministic parallelism.  Because every random draw happens either
//     on the root stream (fixed sequence) or on a per-shard derived stream
//     (fixed seeds), the trajectory is a pure function of the seed: worker
//     threads only decide *when* shard work runs, never what it draws.
//     Results are bit-identical across thread counts (1 == 2 == 4 == 8)
//     and across SIMD dispatch -- both pinned by tests and the bench
//     verdict fingerprints.  Shard work is dispatched to the pool only
//     when a batch clears the parallel grain (small batches and small |Q|
//     run inline; the pool is created lazily on first use).
//
// Thin regime, kAuto crossover, budget truncation, the exact collision
// interaction, oracle on_batch endpoints and the snapshot contract are all
// inherited from the batch engine's design unchanged; the engine is
// distribution-identical to it (and so to AgentSimulator), which the
// conformance KS net enforces.  Like the batch engine it is excluded from
// the pairwise chunked-resume net: budget truncation legitimately changes
// where the RNG stream is consumed.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pp/batch_simulator.hpp"
#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/aligned.hpp"
#include "util/log_fact.hpp"
#include "util/rng.hpp"

namespace ppk {
class ThreadPool;
}  // namespace ppk

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

class BatchShardedSimulator {
 public:
  /// Fixed shard count: the matching decomposition always uses this many
  /// responder splits, so trajectories do not depend on the worker-thread
  /// count (threads only execute shards; they never reshape the split).
  static constexpr std::uint32_t kShards = 8;

  /// `threads` is the worker count for shard execution (1 = inline, 0 =
  /// one per hardware core).  It affects wall clock only -- never results.
  BatchShardedSimulator(const TransitionTable& table, Counts initial,
                        std::uint64_t seed, std::size_t threads = 1);
  ~BatchShardedSimulator();

  BatchShardedSimulator(const BatchShardedSimulator&) = delete;
  BatchShardedSimulator& operator=(const BatchShardedSimulator&) = delete;

  /// One bounded advance (batch + collision, or one thin draw).  False iff
  /// the configuration is silent.
  bool step(StabilityOracle& oracle);

  /// As BatchSimulator::run: oracle reset + resume.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// As BatchSimulator::resume: continues without resetting the oracle;
  /// budgets are exact (truncated batches condition only on the draws
  /// actually used).
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  void set_batch_mode(BatchMode mode) noexcept { mode_ = mode; }

  /// Minimum batch length that dispatches shard work to the thread pool;
  /// below it shards run inline on the calling thread.  Test hook: 0
  /// forces pool dispatch for every batch (the thread-determinism tests);
  /// the default keeps small-population batches overhead-free.
  void set_parallel_grain(std::uint64_t grain) noexcept {
    parallel_grain_ = grain;
  }

  /// Attaches an observability sink (nullptr detaches); same endpoint
  /// semantics as the batch engine.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Snapshot contract (pp/snapshot.hpp), tag "batch-sharded": RNG, the
  /// interaction counters, the mode and the counts.  Shard streams are
  /// derived per batch and never live across advances; thread count and
  /// grain are execution policy, not state.
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  [[nodiscard]] BatchMode batch_mode() const noexcept { return mode_; }
  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t population_size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Exact total weight of effective ordered pairs; 0 iff silent.
  [[nodiscard]] std::uint64_t effective_weight() const;

 private:
  /// Per-shard workspace: one contiguous initiator-row block, its private
  /// responder share and its private output tiles.  Cache-line aligned so
  /// concurrent shard writes never share a line.
  struct alignas(kCacheLineBytes) Shard {
    StateId row_begin = 0;
    StateId row_end = 0;
    std::uint64_t need = 0;       // responders this shard's rows consume
    std::uint64_t seed = 0;       // derive_stream_seed(batch_seed, s)
    std::uint64_t effective = 0;  // effective interactions matched
    AlignedVector<std::uint32_t> v_share;  // private responder multiset
    AlignedVector<std::int64_t> delta;     // count deltas (d_padded)
    AlignedVector<std::uint32_t> touched;  // touched counts (d_padded)
  };

  std::uint64_t advance(StabilityOracle& oracle, std::uint64_t budget);
  std::uint64_t batch_advance(StabilityOracle& oracle, std::uint64_t budget);
  std::uint64_t thin_advance(StabilityOracle& oracle, std::uint64_t budget,
                             std::uint64_t weight);
  std::uint64_t sample_run_length();
  void run_shard(Shard& shard);
  void apply_pair(StateId p, StateId q);
  void sync_soa_counts();

  const TransitionTable* table_;
  Counts counts_;
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
  BatchMode mode_ = BatchMode::kAuto;
  obs::ObsSink* obs_ = nullptr;
  double sqrt_n_ = 0.0;
  LogFact log_fact_;

  std::size_t d_padded_ = 0;  // states + zero sentinel, rounded up to 8
  std::size_t e_padded_ = 0;  // effective cells rounded up to 8

  // SoA tiles (64-byte aligned; padded entries weigh zero by construction).
  AlignedVector<std::uint32_t> counts_soa_;  // counts mirror + sentinel
  AlignedVector<std::uint32_t> fresh_;       // counts - touched scratch
  AlignedVector<std::int32_t> cell_p_;       // effective-cell initiators
  AlignedVector<std::int32_t> cell_q_;       // effective-cell responders
  AlignedVector<std::uint32_t> cell_diag_;   // 1 on p == q cells
  AlignedVector<std::uint32_t> touched_;     // merged touched counts
  AlignedVector<std::int64_t> count_delta_;  // merged batch deltas

  // Root-stream scratch for the batch composition.
  std::vector<std::uint32_t> initiators_;  // U multiset
  std::vector<std::uint32_t> responders_;  // V multiset
  std::vector<std::uint32_t> v_rem_;       // V remainder during the split

  std::vector<Shard> shards_;
  std::size_t threads_ = 1;
  std::uint64_t parallel_grain_ = 1ULL << 14;
  std::unique_ptr<ThreadPool> pool_;  // lazily created on first dispatch
};

}  // namespace ppk::pp
