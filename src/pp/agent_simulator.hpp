// The reference simulation engine: the literal model of Section 5 of the
// paper.  Each step draws an ordered pair of distinct agents uniformly at
// random and applies delta.  Every draw -- including null interactions,
// where the rule leaves both agents unchanged -- counts as one interaction,
// matching the paper's measurement "total number of interactions until a
// population reaches a stable configuration".

#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "pp/population.hpp"
#include "pp/sim_result.hpp"
#include "pp/snapshot.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::pp {

class AgentSimulator {
 public:
  AgentSimulator(const TransitionTable& table, Population population,
                 std::uint64_t seed)
      : table_(&table), population_(std::move(population)), rng_(seed) {
    PPK_EXPECTS(population_.size() >= 2);
  }

  /// Observer invoked after every *effective* interaction.  Null
  /// interactions are invisible to observers (they change nothing).
  void set_observer(std::function<void(const SimEvent&)> observer) {
    observer_ = std::move(observer);
  }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// sink is notified after every drawn interaction (null or effective)
  /// and must outlive the simulator.  Totals count from attachment.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

  /// Draws one pair and applies the rule.  Returns true iff effective.
  bool step(StabilityOracle& oracle);

  /// Runs until the oracle reports stability or `max_interactions` pairs
  /// have been drawn.  The oracle is reset from the current configuration.
  SimResult run(StabilityOracle& oracle,
                std::uint64_t max_interactions = UINT64_MAX);

  /// Like run(), but does NOT reset the oracle: continues a run split into
  /// budget chunks (e.g. for wall-clock checks) without discarding oracle
  /// progress such as a QuiescenceOracle lull spanning the chunk boundary.
  SimResult resume(StabilityOracle& oracle,
                   std::uint64_t max_interactions = UINT64_MAX);

  /// Applies an explicit interaction schedule (pairs of agent indices);
  /// used for trace replay and engine cross-validation.  Returns the number
  /// of effective interactions.
  std::uint64_t replay(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& schedule);

  /// Serializable mid-run state: per-agent states, RNG position and
  /// interaction counters (contract in pp/snapshot.hpp).
  [[nodiscard]] Snapshot snapshot() const;

  /// Restores a snapshot() taken from an engine constructed with the same
  /// arguments; resuming afterwards is bit-identical to the snapshotted
  /// engine under the same resume() grants.
  void restore(const Snapshot& snap);

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }

 private:
  void apply_pair(std::uint32_t i, std::uint32_t j, StabilityOracle* oracle,
                  bool* effective);

  const TransitionTable* table_;
  Population population_;
  Xoshiro256 rng_;
  std::function<void(const SimEvent&)> observer_;
  obs::ObsSink* obs_ = nullptr;
  std::uint64_t interactions_ = 0;
  std::uint64_t effective_ = 0;
};

}  // namespace ppk::pp
