// Convergence timeline: count-vector snapshots at fixed interaction strides.
//
// The recorder turns a live run into the trajectory data behind the paper's
// Section 5 figures: at every `stride` interactions it captures the count
// vector plus derived grouping statistics (per-group sizes under the
// protocol's output map, their spread, and whether the configuration is a
// uniform partition).
//
// Sampling semantics under aggregated advances (the subtle part, tested by
// tests/obs_timeline_test.cpp):
//
//  - Pairwise engines (agent, count, churn) call record() once per
//    interaction, so every stride boundary is observed with the exact
//    configuration at that boundary.
//
//  - Aggregating engines (jump, batch) advance the interaction clock by
//    whole runs at a time -- a geometric null-run or a collision-free
//    batch.  record(now, ...) therefore emits one sample for EVERY stride
//    boundary in (last, now]; boundaries crossed inside a batch are never
//    skipped.  Each such sample carries the configuration at the advance
//    endpoint, and records that endpoint in `observed_at` so downstream
//    analysis can tell exact samples (observed_at == interaction) from
//    endpoint-attributed ones (observed_at > interaction).  For null-runs
//    (jump engine skips, batch thin-mode skips) the endpoint attribution
//    is still exact: the configuration does not change during a null run,
//    and the engines report the skipped span before applying the following
//    effective pair.  Only collision-free batches produce genuinely
//    attributed samples, with error bounded by the batch width Theta(√n).
//
// See docs/observability.md, "Sampling under batching".

#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "io/json.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::obs {

/// Records count-vector snapshots plus derived grouping statistics at a
/// fixed interaction stride; batch-aware (see the file comment).
class ConvergenceTimeline {
 public:
  /// One snapshot.
  struct Sample {
    /// The stride boundary (or forced sample point) this sample stands for.
    std::uint64_t interaction = 0;
    /// Interaction count at which the configuration was actually captured;
    /// equal to `interaction` for exact samples, the enclosing advance's
    /// endpoint for batch-attributed ones.
    std::uint64_t observed_at = 0;
    /// Cumulative effective (state-changing) interactions at observed_at.
    std::uint64_t effective = 0;
    /// Full per-state count vector.
    pp::Counts counts;
    /// Per-group population under the protocol's output map.
    std::vector<std::uint32_t> group_sizes;
    /// max(group_sizes) - min(group_sizes); <= 1 means uniform.
    std::uint32_t spread = 0;
  };

  /// Creates a timeline sampling every `stride` interactions (stride >= 1)
  /// of a run of `protocol`.  The protocol must outlive the timeline.
  ConvergenceTimeline(const pp::Protocol& protocol, std::uint64_t stride)
      : protocol_(&protocol), stride_(stride), next_boundary_(stride) {
    PPK_EXPECTS(stride >= 1);
  }

  /// Sampling stride in interactions.
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

  /// Records the initial configuration as the sample at interaction 0
  /// (no-op once any sample exists).
  void seed(const pp::Counts& counts) {
    if (samples_.empty()) push(0, 0, 0, counts);
  }

  /// Notifies the timeline that the run has advanced to `interactions_now`
  /// total interactions (`effective_total` of them effective), with the
  /// configuration now `counts`.  Emits one sample per uncovered stride
  /// boundary in (previous, interactions_now] -- zero when no boundary was
  /// crossed (the hot-path case: one compare), several when an aggregated
  /// advance spanned multiple boundaries.
  void record(std::uint64_t interactions_now, const pp::Counts& counts,
              std::uint64_t effective_total) {
    while (next_boundary_ <= interactions_now) {
      push(next_boundary_, interactions_now, effective_total, counts);
      next_boundary_ += stride_;
    }
  }

  /// Forces a final off-grid sample at `interactions_now` (run end), unless
  /// that point was already covered by a stride boundary.
  void finish(std::uint64_t interactions_now, const pp::Counts& counts,
              std::uint64_t effective_total) {
    record(interactions_now, counts, effective_total);
    if (!samples_.empty() && samples_.back().interaction == interactions_now) {
      return;
    }
    push(interactions_now, interactions_now, effective_total, counts);
  }

  /// All samples, in increasing `interaction` order.
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Writes one CSV row per sample: interaction, observed_at, effective,
  /// spread, uniform, then group_0..group_{k-1}, then count_0..count_{Q-1}.
  void write_csv(std::ostream& out) const {
    out << "interaction,observed_at,effective,spread,uniform";
    const auto groups = static_cast<std::size_t>(protocol_->num_groups());
    const auto states = static_cast<std::size_t>(protocol_->num_states());
    for (std::size_t g = 0; g < groups; ++g) out << ",group_" << g;
    for (std::size_t s = 0; s < states; ++s) out << ",count_" << s;
    out << '\n';
    for (const auto& sample : samples_) {
      out << sample.interaction << ',' << sample.observed_at << ','
          << sample.effective << ',' << sample.spread << ','
          << (sample.spread <= 1 ? 1 : 0);
      for (auto g : sample.group_sizes) out << ',' << g;
      for (auto c : sample.counts) out << ',' << c;
      out << '\n';
    }
  }

  /// Emits {"stride", "samples": [{"interaction", "observed_at",
  /// "effective", "spread", "uniform", "group_sizes", "counts"}...]} into
  /// an open JSON writer.
  void write_json(io::JsonWriter& json) const {
    json.begin_object();
    json.member("stride", stride_);
    json.key("samples");
    json.begin_array();
    for (const auto& sample : samples_) {
      json.begin_object();
      json.member("interaction", sample.interaction);
      json.member("observed_at", sample.observed_at);
      json.member("effective", sample.effective);
      json.member("spread", sample.spread);
      json.member("uniform", sample.spread <= 1);
      json.key("group_sizes");
      json.begin_array();
      for (auto g : sample.group_sizes) json.value(g);
      json.end_array();
      json.key("counts");
      json.begin_array();
      for (auto c : sample.counts) json.value(c);
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

 private:
  void push(std::uint64_t boundary, std::uint64_t observed_at,
            std::uint64_t effective_total, const pp::Counts& counts) {
    Sample sample;
    sample.interaction = boundary;
    sample.observed_at = observed_at;
    sample.effective = effective_total;
    sample.counts = counts;
    sample.group_sizes.assign(protocol_->num_groups(), 0);
    for (pp::StateId s = 0; s < counts.size(); ++s) {
      if (counts[s] > 0) sample.group_sizes[protocol_->group(s)] += counts[s];
    }
    std::uint32_t lo = sample.group_sizes.empty() ? 0 : sample.group_sizes[0];
    std::uint32_t hi = lo;
    for (auto v : sample.group_sizes) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    sample.spread = hi - lo;
    samples_.push_back(std::move(sample));
  }

  const pp::Protocol* protocol_;
  std::uint64_t stride_;
  std::uint64_t next_boundary_;
  std::vector<Sample> samples_;
};

}  // namespace ppk::obs
