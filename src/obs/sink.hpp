// ObsSink: the single hook type the engines know about, and the
// PPK_OBS_HOOK macro that keeps the hot path free when observability is
// disabled.
//
// Layering.  Engines (pp/, faults, recovery) hold a nullable `ObsSink*`
// and invoke it through PPK_OBS_HOOK at their instrumentation points; they
// never touch MetricsRegistry or ConvergenceTimeline directly.  The sink
// resolves its counters/histograms once at construction and caches raw
// pointers, so a hook invocation on the hot path is: one null check, a few
// pointer-chased increments, and one compare for the timeline stride.
//
// Disablement is layered:
//  - Runtime: no sink attached (the default).  PPK_OBS_HOOK is a single
//    always-false, branch-predictable null test; measured overhead on the
//    batch and count engines is within noise (the <= 2% CI gate in
//    scripts/check_bench_regression.py).
//  - Compile time: building with PPK_OBS_ENABLED=0 (CMake option
//    PPK_OBSERVABILITY=OFF) compiles every hook out entirely; the sink
//    pointer remains so the API surface does not change shape.
//
// Totals counted by a sink start at the moment it is attached; attach
// before run() for whole-run numbers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "pp/population.hpp"

// Compile-time master switch for the observability hooks.  Defined to 0 by
// the build when PPK_OBSERVABILITY=OFF; defaults to on so header-only
// consumers get working hooks without extra configuration.
#ifndef PPK_OBS_ENABLED
#define PPK_OBS_ENABLED 1
#endif

// Invokes `call` on non-null sink pointer `sink`; compiles to nothing when
// observability is disabled at build time.  Usage:
//   PPK_OBS_HOOK(obs_, on_step(population_.counts(), interactions_, true));
#if PPK_OBS_ENABLED
#define PPK_OBS_HOOK(sink, call)            \
  do {                                      \
    if ((sink) != nullptr) (sink)->call;    \
  } while (false)
#else
#define PPK_OBS_HOOK(sink, call) \
  do {                           \
  } while (false)
#endif

namespace ppk::obs {

/// How an engine advanced the interaction clock at a hook point; selects
/// the advances.* counter and advance_size.* histogram a hook feeds.
enum class AdvanceKind : std::size_t {
  /// One drawn pair, applied individually (agent, count, churn engines).
  kPairwise = 0,
  /// A geometric null-run plus one effective pair (jump engine).
  kJump = 1,
  /// The batch engine's thin regime (same shape as kJump).
  kThin = 2,
  /// A collision-free batch (batch engine).
  kBatch = 3,
};

/// Number of AdvanceKind values (array sizing).
inline constexpr std::size_t kNumAdvanceKinds = 4;

/// Name of an AdvanceKind ("pairwise", "jump", "thin", "batch").
[[nodiscard]] constexpr const char* advance_kind_name(AdvanceKind kind) {
  switch (kind) {
    case AdvanceKind::kPairwise:
      return "pairwise";
    case AdvanceKind::kJump:
      return "jump";
    case AdvanceKind::kThin:
      return "thin";
    case AdvanceKind::kBatch:
      return "batch";
  }
  return "unknown";
}

/// The hook object engines invoke.  Binds a MetricsRegistry (owned by the
/// caller) and an optional ConvergenceTimeline; not thread-safe -- one
/// sink per engine per thread, merged afterwards (see MetricsRegistry).
class ObsSink {
 public:
  /// Creates a sink writing into `registry`, optionally feeding `timeline`
  /// (both must outlive the sink).  Resolves and caches all hot-path
  /// instruments up front so hook invocations never perform name lookups.
  explicit ObsSink(MetricsRegistry& registry,
                   ConvergenceTimeline* timeline = nullptr)
      : registry_(&registry),
        timeline_(timeline),
        interactions_(&registry.counter("sim.interactions")),
        effective_(&registry.counter("sim.effective")) {
    for (std::size_t kind = 0; kind < kNumAdvanceKinds; ++kind) {
      const char* name = advance_kind_name(static_cast<AdvanceKind>(kind));
      advances_[kind] = &registry.counter(std::string("sim.advances.") + name);
      null_run_[kind] =
          &registry.histogram(std::string("sim.null_run.") + name);
      advance_size_[kind] =
          &registry.histogram(std::string("sim.advance_size.") + name);
    }
  }

  /// Pairwise hook: one interaction was drawn and applied, bringing the
  /// total to `now`; `effective` says whether it changed a state.
  void on_step(const pp::Counts& counts, std::uint64_t now, bool effective) {
    interactions_->inc();
    if (effective) {
      effective_->inc();
      ++effective_total_;
    }
    if (timeline_ != nullptr) timeline_->record(now, counts, effective_total_);
  }

  /// Null-run hook (jump engine, batch thin regime): `skipped` null
  /// interactions were skipped in one go, bringing the clock to `now`
  /// without changing the configuration -- so timeline boundaries inside
  /// the run get exact configurations.  Engines call this BEFORE applying
  /// the effective pair that ends the run (and alone when a budget clamp
  /// truncates the run with no pair applied).
  void on_skip(const pp::Counts& counts, std::uint64_t now,
               std::uint64_t skipped, AdvanceKind kind) {
    interactions_->inc(skipped);
    null_run_[static_cast<std::size_t>(kind)]->record(skipped);
    if (timeline_ != nullptr) timeline_->record(now, counts, effective_total_);
  }

  /// Effective-pair hook (jump engine, batch thin regime): the single
  /// effective interaction concluding a null run was applied at `now`.
  void on_apply(const pp::Counts& counts, std::uint64_t now,
                AdvanceKind kind) {
    interactions_->inc();
    effective_->inc();
    ++effective_total_;
    advances_[static_cast<std::size_t>(kind)]->inc();
    if (timeline_ != nullptr) timeline_->record(now, counts, effective_total_);
  }

  /// Batch hook: a collision-free batch of `drawn` interactions (of which
  /// `effective` changed states) advanced the clock to `now`.  Timeline
  /// boundaries inside the batch receive the endpoint configuration (see
  /// obs/timeline.hpp for the attribution contract).
  void on_advance(const pp::Counts& counts, std::uint64_t now,
                  std::uint64_t drawn, std::uint64_t effective,
                  AdvanceKind kind) {
    interactions_->inc(drawn);
    effective_->inc(effective);
    effective_total_ += effective;
    const auto k = static_cast<std::size_t>(kind);
    advances_[k]->inc();
    advance_size_[k]->record(drawn);
    if (timeline_ != nullptr) timeline_->record(now, counts, effective_total_);
  }

  /// Named event counter (fault injections, recovery waves, ...); not a
  /// hot path -- resolves the counter by name and caches nothing.
  void on_event(const char* name, std::uint64_t delta = 1) {
    registry_->counter(name).inc(delta);
  }

  /// Sets the named gauge (current epoch, live population size, ...).
  void set_gauge(const char* name, std::int64_t value) {
    registry_->gauge(name).set(value);
  }

  /// The bound registry.
  [[nodiscard]] MetricsRegistry& registry() noexcept { return *registry_; }

  /// The bound timeline (may be null).
  [[nodiscard]] ConvergenceTimeline* timeline() noexcept { return timeline_; }

 private:
  MetricsRegistry* registry_;
  ConvergenceTimeline* timeline_;
  Counter* interactions_;
  Counter* effective_;
  Counter* advances_[kNumAdvanceKinds] = {};
  Histogram* null_run_[kNumAdvanceKinds] = {};
  Histogram* advance_size_[kNumAdvanceKinds] = {};
  std::uint64_t effective_total_ = 0;
};

}  // namespace ppk::obs
