// Phase profiler: wall-clock attribution of a run to named phases.
//
// Two idioms, both built on util/stopwatch.hpp:
//
//   PhaseProfile profile;
//   { ScopedSpan span(profile, "build_table"); build(); }   // RAII span
//
//   PhaseTimer timer(profile);          // exclusive phase switching
//   timer.enter("grouping_1");          // closes nothing (first phase)
//   ...
//   timer.enter("grouping_2");          // attributes elapsed to grouping_1
//   timer.stop();                       // attributes elapsed to grouping_2
//
// Spans may nest (each span attributes its own wall time, so nested phases
// are counted in both the inner and outer phase -- attribution is
// inclusive).  PhaseTimer is exclusive: exactly one phase is open at a
// time, so its entries partition the timed interval.
//
// Wall-clock values are inherently non-deterministic; callers that need
// bit-reproducible artifacts (examples/observed_run.cpp) print the profile
// to stdout and keep it out of their JSON bundles.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "util/stopwatch.hpp"

namespace ppk::obs {

/// Accumulated wall-clock time per named phase, in first-use order.
class PhaseProfile {
 public:
  /// One phase's accumulated totals.
  struct Entry {
    /// Phase name as passed to add() / ScopedSpan / PhaseTimer::enter().
    std::string name;
    /// Total wall-clock seconds attributed to the phase.
    double seconds = 0.0;
    /// Number of times the phase was entered.
    std::uint64_t entries = 0;
  };

  /// Attributes `seconds` of wall time (and `entries` phase entries) to
  /// `phase`, creating the phase on first use.
  void add(std::string_view phase, double seconds, std::uint64_t entries = 1) {
    Entry& entry = find_or_create(phase);
    entry.seconds += seconds;
    entry.entries += entries;
  }

  /// All phases, in order of first use (deterministic given the same
  /// sequence of phase names).
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Sum of all attributed seconds (spans may overlap; see file comment).
  [[nodiscard]] double total_seconds() const noexcept {
    double total = 0.0;
    for (const auto& e : entries_) total += e.seconds;
    return total;
  }

  /// Folds another profile in (seconds and entry counts add; phases new to
  /// this profile are appended in the other profile's order).
  void merge(const PhaseProfile& other) {
    for (const auto& e : other.entries_) add(e.name, e.seconds, e.entries);
  }

  /// Emits [{"phase", "seconds", "entries"}...] into an open JSON writer.
  /// Note: seconds are wall-clock and therefore non-deterministic.
  void write_json(io::JsonWriter& json) const {
    json.begin_array();
    for (const auto& e : entries_) {
      json.begin_object();
      json.member("phase", e.name);
      json.member("seconds", e.seconds);
      json.member("entries", e.entries);
      json.end_object();
    }
    json.end_array();
  }

  /// Prints an aligned table with per-phase percentages of the total.
  void print(std::ostream& out) const {
    const double total = total_seconds();
    std::size_t width = 5;
    for (const auto& e : entries_) width = std::max(width, e.name.size());
    for (const auto& e : entries_) {
      const double pct = total > 0.0 ? 100.0 * e.seconds / total : 0.0;
      char line[128];
      std::snprintf(line, sizeof line, "  %-*s %10.3f ms  %5.1f%%  x%llu\n",
                    static_cast<int>(width), e.name.c_str(), e.seconds * 1e3,
                    pct, static_cast<unsigned long long>(e.entries));
      out << line;
    }
  }

 private:
  Entry& find_or_create(std::string_view phase) {
    for (auto& e : entries_) {
      if (e.name == phase) return e;
    }
    entries_.push_back(Entry{std::string(phase), 0.0, 0});
    return entries_.back();
  }

  std::vector<Entry> entries_;
};

/// RAII span: attributes the wall time between construction and destruction
/// to one phase of a PhaseProfile.  Spans may nest (inclusive attribution).
class ScopedSpan {
 public:
  /// Opens a span named `phase` against `profile`.
  ScopedSpan(PhaseProfile& profile, std::string_view phase)
      : profile_(&profile), phase_(phase) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span, attributing the elapsed wall time.
  ~ScopedSpan() { profile_->add(phase_, watch_.seconds()); }

 private:
  PhaseProfile* profile_;
  std::string phase_;
  Stopwatch watch_;
};

/// Exclusive phase switcher: at most one phase is open at a time, so the
/// recorded entries partition the interval between the first enter() and
/// stop().  enter() closes the current phase (attributing its elapsed
/// time) and opens the next; repeated enter() of the same name accumulates.
class PhaseTimer {
 public:
  /// Creates an idle timer writing into `profile`.
  explicit PhaseTimer(PhaseProfile& profile) : profile_(&profile) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Closes any open phase on destruction.
  ~PhaseTimer() { stop(); }

  /// Closes the current phase (if any) and opens `phase`.
  void enter(std::string_view phase) {
    close();
    current_ = phase;
    open_ = true;
    watch_.reset();
  }

  /// Closes the current phase (if any); the timer becomes idle.
  void stop() {
    close();
    open_ = false;
  }

 private:
  void close() {
    if (open_) profile_->add(current_, watch_.seconds());
  }

  PhaseProfile* profile_;
  std::string current_;
  bool open_ = false;
  Stopwatch watch_;
};

}  // namespace ppk::obs
